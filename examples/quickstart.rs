//! Quickstart: plan charging tours for a small sensor network.
//!
//! Builds a 12-sensor network with two charger depots, runs Algorithm 3
//! (`MinTotalDistance`), prints the resulting charging schedule, and
//! verifies that no sensor can ever run out of energy.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use perpetuum::prelude::*;

fn main() {
    // --- Network geometry ---------------------------------------------------
    // Twelve sensors on two rings around the field centre; depots at the
    // centre (co-located with the base station) and in a corner.
    let mut sensors = Vec::new();
    for ring in 0..2 {
        let radius = 150.0 + 250.0 * ring as f64;
        for i in 0..6 {
            let a = i as f64 * std::f64::consts::TAU / 6.0;
            sensors.push(Point2::new(500.0 + radius * a.cos(), 500.0 + radius * a.sin()));
        }
    }
    let depots = vec![Point2::new(500.0, 500.0), Point2::new(50.0, 50.0)];
    let network = Network::new(sensors, depots);

    // --- Maximum charging cycles ---------------------------------------------
    // Inner-ring sensors relay traffic and drain fast; outer-ring sensors
    // last much longer, each a little different.
    let cycles = vec![
        1.0, 1.5, 2.0, 2.5, 3.0, 3.5, // inner ring
        9.0, 11.0, 13.0, 15.0, 18.0, 22.0, // outer ring
    ];
    let horizon = 64.0;
    let instance = Instance::new(network, cycles, horizon);

    // --- Plan ----------------------------------------------------------------
    let plan = plan_min_total_distance(&instance, &MtdConfig::default());
    check_series(&instance, &plan).expect("the plan must keep every sensor alive");

    println!("MinTotalDistance plan for T = {horizon}");
    println!(
        "  service cost : {:.1} m over {} dispatches ({} sensor charges)",
        plan.service_cost(),
        plan.dispatch_count(),
        plan.total_charges(),
    );

    // The distinct tour sets Algorithm 3 rotates between.
    println!("  distinct tour sets:");
    for (k, set) in plan.sets().iter().enumerate() {
        println!("    D_{k}: {:2} sensors, {:7.1} m per dispatch", set.sensors().len(), set.cost());
    }

    // First few dispatches.
    println!("  first dispatches:");
    for d in plan.dispatches().iter().take(6) {
        let set = plan.set_of(d);
        println!(
            "    t = {:4.1}: charge {:2} sensors, travel {:7.1} m",
            d.time,
            set.sensors().len(),
            set.cost()
        );
    }

    // --- Compare with the greedy baseline -------------------------------------
    let greedy = plan_greedy_fixed(&instance, &GreedyConfig::paper_default(1.0));
    check_series(&instance, &greedy).expect("greedy must also be feasible");
    println!(
        "\nGreedy baseline: {:.1} m — MinTotalDistance saves {:.0}%",
        greedy.service_cost(),
        (1.0 - plan.service_cost() / greedy.service_cost()) * 100.0
    );
}
