//! Flood-detection WSN (the paper's motivating application).
//!
//! A periodic-monitoring network in a 1 km² catchment: sensors near the
//! base station relay everyone else's readings and drain far faster than
//! the edge sensors — exactly the *linear* charging-cycle distribution of
//! Section VII.A. This example runs the full simulation pipeline at paper
//! scale (`T = 1000`, `q = 5`) and compares `MinTotalDistance` against the
//! greedy baseline across several deployments.
//!
//! ```text
//! cargo run --release --example flood_monitoring
//! ```

use perpetuum::exp::scenario::{Algo, Scenario};
use perpetuum::par::{mean, par_map};

fn main() {
    let topologies = 10usize;
    let seed = 2014;

    println!("Flood-detection WSN — linear cycle distribution, q = 5, T = 1000");
    println!("averaging {topologies} random deployments per point\n");
    println!("{:>6} {:>22} {:>22} {:>8}", "n", "MinTotalDistance (km)", "Greedy (km)", "ratio");

    for n in [100usize, 200, 300] {
        let scenario = Scenario { n, ..Scenario::paper_fixed() };
        let mtd: Vec<f64> = par_map(topologies, |i| {
            let r = scenario.run_once(Algo::Mtd, seed, i as u64);
            assert!(r.is_perpetual(), "a sensor died under MinTotalDistance");
            r.service_cost / 1000.0
        });
        let greedy: Vec<f64> = par_map(topologies, |i| {
            let r = scenario.run_once(Algo::Greedy, seed, i as u64);
            assert!(r.is_perpetual(), "a sensor died under Greedy");
            r.service_cost / 1000.0
        });
        let (m, g) = (mean(&mtd), mean(&greedy));
        println!("{n:>6} {m:>22.1} {g:>22.1} {:>8.3}", m / g);
    }

    println!("\nThe proposed algorithm charges distant long-cycle sensors rarely");
    println!("while folding the hungry relay sensors near the base station into");
    println!("every dispatch — the greedy baseline pays full tours for both.");
}
