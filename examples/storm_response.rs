//! Storm response: event-detection WSN under bursty load.
//!
//! The paper's motivating flood-detection scenario, taken seriously: when
//! a storm front passes, sampling rates spike and sensor cycles collapse
//! by ~8x for a couple of slots (a two-state Markov burst process).
//! `MinTotalDistance-var` must detect the collapse through its
//! applicability-band test and replan — this example compares it against
//! the greedy baseline across increasing storm frequency, with and without
//! a planning safety margin.
//!
//! ```text
//! cargo run --release --example storm_response
//! ```

use perpetuum::core::network::Network;
use perpetuum::energy::CycleDistribution;
use perpetuum::geom::{deploy, derived_rng, Field};
use perpetuum::prelude::*;

fn main() {
    let field = Field::paper_default();
    let n = 120;
    let horizon = 500.0;

    println!("Storm-response WSN — bursty Markov loads, n = {n}, q = 5, T = {horizon}");
    println!("burst: cycles collapse 8x, storms last ~2 slots\n");
    println!(
        "{:>14} {:>16} {:>10} {:>16} {:>10} {:>9}",
        "storm p", "var (km)", "deaths", "greedy (km)", "deaths", "replans"
    );

    for p_storm in [0.0, 0.1, 0.25] {
        let mut var_cost = 0.0;
        let mut var_deaths = 0;
        let mut var_replans = 0;
        let mut greedy_cost = 0.0;
        let mut greedy_deaths = 0;
        let runs = 5u64;
        for seed in 0..runs {
            let mut rng = derived_rng(1606, seed);
            let sensors = deploy::uniform_deployment(field, n, &mut rng);
            let depots = deploy::place_depots(
                field,
                field.center(),
                5,
                deploy::DepotPlacement::OneAtBaseStation,
                &mut rng,
            );
            let network = Network::new(sensors, depots);
            let dist = CycleDistribution::linear_default();
            let means = dist.mean_all(network.sensor_positions(), field.center(), 1.0, 50.0);
            let make = || World::bursty(network.clone(), &means, 8.0, p_storm, 0.5, 1.0, 50.0);
            let cfg = SimConfig { horizon, slot: 10.0, seed: 7000 + seed, charger_speed: None };

            let mut vp = VarPolicy::new(&network);
            let rv = run(make(), &cfg, &mut vp);
            var_cost += rv.service_cost / 1000.0;
            var_deaths += rv.deaths.len();
            var_replans += vp.replans();

            let mut gp = GreedyPolicy::new(&network, 1.0);
            let rg = run(make(), &cfg, &mut gp);
            greedy_cost += rg.service_cost / 1000.0;
            greedy_deaths += rg.deaths.len();
        }
        println!(
            "{p_storm:>14.2} {:>16.1} {:>10} {:>16.1} {:>10} {:>9}",
            var_cost / runs as f64,
            var_deaths,
            greedy_cost / runs as f64,
            greedy_deaths,
            var_replans / runs as usize,
        );
    }

    println!("\nStorms compress the schedule toward 'everyone is urgent', so the");
    println!("structured schedule's advantage narrows — but the conservative");
    println!("max(EWMA, measured-now) rate estimate keeps everyone alive even");
    println!("while cycles whipsaw by 8x between slots.");
}
