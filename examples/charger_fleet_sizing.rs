//! Charger fleet sizing: how many mobile chargers does a deployment need?
//!
//! An operations question the paper's machinery answers directly: sweep the
//! number of depots `q` and watch the service cost and the per-charger
//! workload. More chargers shorten tours (each charger serves a smaller
//! region) with diminishing returns — useful when trading vehicle capital
//! cost against travel cost.
//!
//! ```text
//! cargo run --release --example charger_fleet_sizing
//! ```

use perpetuum::core::network::Network;
use perpetuum::energy::CycleDistribution;
use perpetuum::geom::{deploy, derived_rng, Field};
use perpetuum::prelude::*;

fn main() {
    let field = Field::paper_default();
    let n = 200;
    let horizon = 500.0;
    let dist = CycleDistribution::linear_default();

    println!("Charger fleet sizing — n = {n}, T = {horizon}, linear distribution\n");
    println!(
        "{:>3} {:>18} {:>22} {:>24}",
        "q", "service cost (km)", "max charger load (km)", "marginal saving (km)"
    );

    let mut prev_cost: Option<f64> = None;
    for q in [1usize, 2, 3, 5, 7, 10] {
        // Average over a few deployments; the sensor layout stays fixed per
        // seed while the q-1 non-base-station depots are re-drawn.
        let mut costs = Vec::new();
        let mut max_loads = Vec::new();
        for seed in 0..5u64 {
            let mut rng = derived_rng(31337, seed);
            let sensors = deploy::uniform_deployment(field, n, &mut rng);
            let depots = deploy::place_depots(
                field,
                field.center(),
                q,
                deploy::DepotPlacement::OneAtBaseStation,
                &mut rng,
            );
            let network = Network::new(sensors, depots);
            let cycles =
                dist.sample_all(network.sensor_positions(), field.center(), 1.0, 50.0, &mut rng);
            let world = World::fixed(network.clone(), &cycles);
            let cfg = SimConfig { horizon, slot: 10.0, seed: 9000 + seed, charger_speed: None };
            let mut policy = MtdPolicy::new(&network);
            let r = run(world, &cfg, &mut policy);
            assert!(r.is_perpetual());
            costs.push(r.service_cost / 1000.0);
            max_loads.push(r.per_charger_distance.iter().cloned().fold(0.0f64, f64::max) / 1000.0);
        }
        let cost = perpetuum::par::mean(&costs);
        let max_load = perpetuum::par::mean(&max_loads);
        let saving = prev_cost.map(|p| p - cost);
        match saving {
            Some(s) => println!("{q:>3} {cost:>18.1} {max_load:>22.1} {s:>24.1}"),
            None => println!("{q:>3} {cost:>18.1} {max_load:>22.1} {:>24}", "-"),
        }
        prev_cost = Some(cost);
    }

    println!("\nWith one depot already at the base station (where the hungry relay");
    println!("sensors cluster), extra randomly-placed chargers barely move the");
    println!("*total* service cost — but they spread the workload: the busiest");
    println!("charger's share falls steadily, which is what bounds per-vehicle");
    println!("battery/fuel requirements and fleet turnaround time.");
}
