//! Multimedia surveillance WSN with workload swings (Section VI).
//!
//! Camera sensors burn energy on image processing, so consumption is
//! unrelated to the distance from the base station (the *random*
//! distribution) and changes with scene activity. This example runs the
//! variable-cycle pipeline: per-slot cycle resampling, EWMA prediction at
//! each sensor, and `MinTotalDistance-var` replanning whenever a sensor
//! drifts out of its applicability band — versus the greedy baseline.
//!
//! ```text
//! cargo run --release --example multimedia_surveillance
//! ```

use perpetuum::core::network::Network;
use perpetuum::energy::CycleDistribution;
use perpetuum::geom::{deploy, derived_rng, Field};
use perpetuum::prelude::*;

fn main() {
    let field = Field::paper_default();
    let n = 150;
    let horizon = 1000.0;
    let slot = 10.0;

    println!("Multimedia surveillance WSN — random cycle distribution, variable load");
    println!("n = {n}, q = 5, T = {horizon}, dT = {slot}\n");

    let mut total_var = 0.0;
    let mut total_greedy = 0.0;
    for seed in 0..5u64 {
        let mut rng = derived_rng(77, seed);
        let sensors = deploy::uniform_deployment(field, n, &mut rng);
        let depots = deploy::place_depots(
            field,
            field.center(),
            5,
            deploy::DepotPlacement::OneAtBaseStation,
            &mut rng,
        );
        let network = Network::new(sensors, depots);
        let dist = CycleDistribution::Random;
        let means = dist.mean_all(network.sensor_positions(), field.center(), 1.0, 50.0);
        let cfg = SimConfig { horizon, slot, seed: 1000 + seed, charger_speed: None };

        let world = World::variable(network.clone(), &means, dist, 1.0, 50.0);
        let mut var_policy = VarPolicy::new(&network);
        let rv = run(world.clone(), &cfg, &mut var_policy);
        assert!(rv.is_perpetual(), "deaths under MinTotalDistance-var: {:?}", rv.deaths);

        let mut greedy_policy = GreedyPolicy::new(&network, 1.0);
        let rg = run(world, &cfg, &mut greedy_policy);
        assert!(rg.is_perpetual(), "deaths under Greedy: {:?}", rg.deaths);

        println!(
            "deployment {seed}: var {:7.1} km ({:3} replans, {:5} charges) | greedy {:7.1} km ({:5} charges)",
            rv.service_cost / 1000.0,
            var_policy.replans(),
            rv.charges,
            rg.service_cost / 1000.0,
            rg.charges,
        );
        total_var += rv.service_cost;
        total_greedy += rg.service_cost;
    }

    println!("\noverall: var/greedy cost ratio = {:.3}", total_var / total_greedy);
    println!("Under the random distribution the gap narrows (paper: 87%–93%):");
    println!("short-cycle sensors sit anywhere in the field, so every dispatch");
    println!("must cover most of the area regardless of scheduling cleverness.");
}
