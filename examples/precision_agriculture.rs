//! Precision-agriculture WSN with range-limited charger drones.
//!
//! A planned (low-discrepancy Halton) deployment of soil-moisture sensors,
//! charged by battery-limited drone chargers: every trip must fit within
//! the drone's own range `L`. This example combines three extensions on
//! top of the paper's Algorithm 3:
//!
//! * an engineered (non-random) deployment ([`halton_deployment`]),
//! * range-constrained tour splitting (Beasley split),
//! * the min–max balanced cover (bounding the busiest drone's trip).
//!
//! ```text
//! cargo run --release --example precision_agriculture
//! ```

use perpetuum::core::minmax::min_max_cover;
use perpetuum::core::qtsp::Routing;
use perpetuum::core::split::split_tour_set;
use perpetuum::energy::CycleDistribution;
use perpetuum::geom::{deploy, derived_rng, Field};
use perpetuum::prelude::*;

fn main() {
    let field = Field::new(800.0, 800.0);
    let n = 120;

    // Engineered deployment: sensors on a low-discrepancy pattern; drone
    // pads at the corners plus one at the farm office (centre).
    let sensors = deploy::halton_deployment(field, n, 0);
    let depots = vec![
        field.center(),
        Point2::new(50.0, 50.0),
        Point2::new(750.0, 50.0),
        Point2::new(50.0, 750.0),
        Point2::new(750.0, 750.0),
    ];
    let network = Network::new(sensors, depots);

    // Irrigation-zone dependent duty cycles.
    let mut rng = derived_rng(808, 0);
    let dist = CycleDistribution::Random;
    let cycles = dist.sample_all(network.sensor_positions(), field.center(), 2.0, 30.0, &mut rng);

    let horizon = 240.0;
    let instance = Instance::new(network.clone(), cycles, horizon);
    let plan = plan_min_total_distance(&instance, &MtdConfig::default());
    check_series(&instance, &plan).expect("plan keeps the farm sensing");

    println!("Precision agriculture — n = {n}, 5 drone pads, T = {horizon}");
    println!(
        "unconstrained plan: {:.1} km over {} dispatches\n",
        plan.service_cost() / 1000.0,
        plan.dispatch_count()
    );

    // How much does a per-trip drone range cost?
    println!("{:>18} {:>16} {:>18}", "drone range (m)", "cost (km)", "extra trips/dispatch");
    for range in [4000.0, 3000.0, 2500.0, 2000.0] {
        let mut total = 0.0;
        let mut trips = 0usize;
        for d in plan.dispatches() {
            let split = split_tour_set(network.dist(), plan.set_of(d), range)
                .expect("every sensor is reachable at these ranges");
            total += split.total;
            trips += split
                .trips
                .iter()
                .map(|per| per.iter().filter(|t| t.len() > 1).count())
                .sum::<usize>();
        }
        println!(
            "{range:>18.0} {:>16.1} {:>18.2}",
            total / 1000.0,
            trips as f64 / plan.dispatch_count() as f64
        );
    }

    // Balance the fleet: how long is the busiest drone's tour when all
    // sensors need a simultaneous post-storm recharge?
    let all: Vec<usize> = (0..n).collect();
    let qt = perpetuum::core::qtsp::q_rooted_tsp(network.dist(), &all, &network.depot_nodes(), 0);
    let alg2_span = qt.tours.iter().map(|t| t.length(network.dist())).fold(0.0f64, f64::max);
    let balanced = min_max_cover(&network, &all, Routing::Doubling, 200);
    println!(
        "\nfull-recharge makespan: Algorithm 2 routing {:.0} m, balanced cover {:.0} m \
         ({} rebalancing moves, total {:.0} m vs {:.0} m)",
        alg2_span, balanced.makespan, balanced.moves, balanced.total, qt.cost,
    );
}
