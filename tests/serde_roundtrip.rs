//! Serde round-trips of the public data types (plans survive persistence).

use perpetuum::core::mtd::{plan_min_total_distance, MtdConfig};
use perpetuum::core::network::{Instance, Network};
use perpetuum::core::rounding::partition_cycles;
use perpetuum::core::schedule::{ScheduleSeries, TourSet};
use perpetuum::geom::Point2;

fn instance() -> Instance {
    let sensors =
        vec![Point2::new(100.0, 50.0), Point2::new(300.0, 400.0), Point2::new(700.0, 200.0)];
    let depots = vec![Point2::new(500.0, 500.0)];
    Instance::new(Network::new(sensors, depots), vec![1.0, 3.0, 8.0], 32.0)
}

#[test]
fn schedule_series_round_trips_with_identical_semantics() {
    let inst = instance();
    let plan = plan_min_total_distance(&inst, &MtdConfig::default());
    let json = serde_json::to_string(&plan).unwrap();
    let back: ScheduleSeries = serde_json::from_str(&json).unwrap();
    assert_eq!(back.dispatch_count(), plan.dispatch_count());
    assert!((back.service_cost() - plan.service_cost()).abs() < 1e-12);
    for i in 0..3 {
        assert_eq!(back.charge_times(i), plan.charge_times(i));
    }
    // The restored plan still passes feasibility.
    perpetuum::core::feasibility::check_series(&inst, &back).unwrap();
}

#[test]
fn tour_set_round_trip_preserves_membership_and_cost() {
    let inst = instance();
    let plan = plan_min_total_distance(&inst, &MtdConfig::default());
    let set = &plan.sets()[plan.sets().len() - 1];
    let json = serde_json::to_string(set).unwrap();
    let back: TourSet = serde_json::from_str(&json).unwrap();
    assert_eq!(back.sensors(), set.sensors());
    assert!((back.cost() - set.cost()).abs() < 1e-9);
    assert_eq!(back.tours().len(), set.tours().len());
}

#[test]
fn cycle_partition_round_trips() {
    let p = partition_cycles(&[1.0, 2.5, 7.0, 40.0]);
    let json = serde_json::to_string(&p).unwrap();
    let back: perpetuum::core::rounding::CyclePartition = serde_json::from_str(&json).unwrap();
    assert_eq!(back, p);
}

#[test]
fn point_and_field_round_trip() {
    let p = Point2::new(12.5, -3.25);
    let back: Point2 = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
    assert_eq!(back, p);
    let f = perpetuum::geom::Field::paper_default();
    let back: perpetuum::geom::Field =
        serde_json::from_str(&serde_json::to_string(&f).unwrap()).unwrap();
    assert_eq!(back, f);
}

#[test]
fn every_scenario_file_round_trips() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let mut seen = 0usize;
    for entry in std::fs::read_dir(dir).expect("scenarios/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).expect("readable scenario file");
        let exp = perpetuum::exp::CustomExperiment::from_json(&text)
            .unwrap_or_else(|e| panic!("{path:?} failed to parse: {e}"));

        // Serialize → reparse → everything semantic survives.
        let json = serde_json::to_string(&exp).expect("re-serialize");
        let back = perpetuum::exp::CustomExperiment::from_json(&json)
            .unwrap_or_else(|e| panic!("{path:?} re-parse failed: {e}"));
        assert_eq!(back.name, exp.name, "{path:?}");
        assert_eq!(back.scenario, exp.scenario, "{path:?}");
        assert_eq!(back.algos, exp.algos, "{path:?}");
        assert_eq!(back.network_sizes, exp.network_sizes, "{path:?}");
        assert_eq!(back.faults, exp.faults, "{path:?}");
    }
    assert!(seen >= 4, "expected the committed scenario files, found {seen}");
}

#[test]
fn sim_result_round_trips() {
    use perpetuum::prelude::*;
    let sensors = vec![Point2::new(50.0, 0.0), Point2::new(0.0, 80.0)];
    let network = Network::new(sensors, vec![Point2::ORIGIN]);
    let world = World::fixed(network.clone(), &[2.0, 5.0]);
    let cfg = SimConfig { horizon: 20.0, slot: 10.0, seed: 3, charger_speed: None };
    let mut policy = MtdPolicy::new(&network);
    let r = run(world, &cfg, &mut policy);
    let json = serde_json::to_string(&r).unwrap();
    let back: SimResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back.service_cost, r.service_cost);
    assert_eq!(back.charge_log, r.charge_log);
    assert_eq!(back.dispatches, r.dispatches);
}
