//! Cross-crate integration tests: scenario generation → planning →
//! simulation → ground-truth feasibility.

use perpetuum::core::feasibility;
use perpetuum::core::greedy::{plan_greedy_fixed, GreedyConfig};
use perpetuum::core::mtd::{plan_min_total_distance, MtdConfig};
use perpetuum::core::network::Instance;
use perpetuum::core::qtsp::q_rooted_tsp;
use perpetuum::core::schedule::{ScheduleSeries, TourSet};
use perpetuum::exp::scenario::{Algo, Scenario};

fn small_fixed_scenario(n: usize) -> Scenario {
    Scenario { n, horizon: 120.0, ..Scenario::paper_fixed() }
}

#[test]
fn executed_charges_match_planned_charges_for_mtd() {
    let s = small_fixed_scenario(25);
    let topo = s.build_topology(1, 0);
    let r = s.run_once(Algo::Mtd, 1, 0);
    assert!(r.is_perpetual());

    let inst = Instance::new(topo.network.clone(), topo.init_cycles.clone(), s.horizon);
    let plan = plan_min_total_distance(&inst, &MtdConfig::default());
    for i in 0..25 {
        // The simulated policy reconstructs cycles from rates (τ → 1/τ → τ),
        // so dispatch times can differ by float ulps from the offline plan.
        let sim_times = &r.charge_log[i];
        let plan_times = plan.charge_times(i);
        assert_eq!(sim_times.len(), plan_times.len(), "sensor {i}");
        for (a, b) in sim_times.iter().zip(plan_times.iter()) {
            assert!((a - b).abs() < 1e-6, "sensor {i}: {a} vs {b}");
        }
    }
}

#[test]
fn simulated_runs_pass_ground_truth_feasibility() {
    let s = small_fixed_scenario(30);
    for algo in [Algo::Mtd, Algo::Greedy] {
        for idx in 0..3u64 {
            let topo = s.build_topology(9, idx);
            let r = s.run_once(algo, 9, idx);
            assert!(r.is_perpetual(), "{}: {:?}", algo.name(), r.deaths);
            feasibility::check_with(&topo.init_cycles, s.horizon, |i| r.charge_log[i].clone())
                .unwrap_or_else(|e| panic!("{} topo {idx}: {e:?}", algo.name()));
        }
    }
}

#[test]
fn mtd_never_costs_more_than_charge_everyone_every_tau_min() {
    // The naive strategy the paper's Section III.C dismisses: visit every
    // sensor every τ_min. Algorithm 3 must be no worse.
    let s = small_fixed_scenario(20);
    for idx in 0..3u64 {
        let topo = s.build_topology(4, idx);
        let inst = Instance::new(topo.network.clone(), topo.init_cycles.clone(), s.horizon);
        let mtd = plan_min_total_distance(&inst, &MtdConfig::default());

        // Naive plan: the all-sensor tour set dispatched at every multiple
        // of τ_min.
        let tau_min = topo.init_cycles.iter().cloned().fold(f64::INFINITY, f64::min);
        let all: Vec<usize> = (0..20).collect();
        let qt = q_rooted_tsp(topo.network.dist(), &all, &topo.network.depot_nodes(), 0);
        let mut naive = ScheduleSeries::new();
        let set = naive.add_set(TourSet::from_qtours(qt, |v| v >= 20));
        let mut t = tau_min;
        while t < s.horizon {
            naive.push_dispatch(t, set);
            t += tau_min;
        }
        feasibility::check_series(&inst, &naive).expect("naive plan is feasible");

        assert!(
            mtd.service_cost() <= naive.service_cost() + 1e-6,
            "topo {idx}: MTD {} vs naive {}",
            mtd.service_cost(),
            naive.service_cost()
        );
    }
}

#[test]
fn greedy_offline_and_online_agree_across_topologies() {
    let s = small_fixed_scenario(15);
    for idx in 0..3u64 {
        let topo = s.build_topology(12, idx);
        let r = s.run_once(Algo::Greedy, 12, idx);
        let inst = Instance::new(topo.network.clone(), topo.init_cycles.clone(), s.horizon);
        let offline = plan_greedy_fixed(&inst, &GreedyConfig::paper_default(s.tau_min));
        assert!((r.service_cost - offline.service_cost()).abs() < 1e-6, "topo {idx}");
    }
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let s = Scenario { n: 20, horizon: 150.0, ..Scenario::paper_variable() };
    for algo in [Algo::MtdVar, Algo::Greedy] {
        let a = s.run_once(algo, 33, 0);
        let b = s.run_once(algo, 33, 0);
        assert_eq!(a.service_cost, b.service_cost, "{}", algo.name());
        assert_eq!(a.dispatches, b.dispatches);
        assert_eq!(a.charge_log, b.charge_log);
    }
}

#[test]
fn different_seeds_give_different_topologies_but_same_qualitative_order() {
    let s = small_fixed_scenario(40);
    let mut mtd_total = 0.0;
    let mut greedy_total = 0.0;
    for idx in 0..4u64 {
        mtd_total += s.run_once(Algo::Mtd, 5, idx).service_cost;
        greedy_total += s.run_once(Algo::Greedy, 5, idx).service_cost;
    }
    assert!(
        mtd_total < greedy_total,
        "MTD {mtd_total} should undercut Greedy {greedy_total} under the linear distribution"
    );
}

#[test]
fn service_cost_scales_with_horizon() {
    // Twice the monitoring period ≈ twice the dispatches ≈ twice the cost
    // (up to boundary effects) — a sanity check on cost accounting.
    let short = Scenario { n: 20, horizon: 100.0, ..Scenario::paper_fixed() };
    let long = Scenario { n: 20, horizon: 200.0, ..Scenario::paper_fixed() };
    let a = short.run_once(Algo::Mtd, 8, 0).service_cost;
    let b = long.run_once(Algo::Mtd, 8, 0).service_cost;
    let ratio = b / a;
    assert!((1.7..=2.3).contains(&ratio), "cost ratio {ratio} should be near 2");
}

#[test]
fn per_charger_distances_always_sum_to_service_cost() {
    let s = Scenario { n: 25, horizon: 100.0, ..Scenario::paper_variable() };
    for algo in [Algo::MtdVar, Algo::Greedy] {
        let r = s.run_once(algo, 14, 0);
        let sum: f64 = r.per_charger_distance.iter().sum();
        assert!(
            (sum - r.service_cost).abs() < 1e-6,
            "{}: {sum} vs {}",
            algo.name(),
            r.service_cost
        );
    }
}
