//! Empirical validation of the paper's approximation guarantees against
//! exact reference optima (Held–Karp) on small instances.

use perpetuum::core::mtd::{plan_min_total_distance, MtdConfig};
use perpetuum::core::network::{Instance, Network};
use perpetuum::core::qmsf::q_rooted_msf;
use perpetuum::core::qtsp::q_rooted_tsp;
use perpetuum::core::rounding::partition_cycles;
use perpetuum::geom::Point2;
use perpetuum::graph::tsp_exact::held_karp;
use perpetuum::graph::DistMatrix;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0))).collect()
}

/// Exact optimum of the q-rooted TSP by brute-force assignment + Held–Karp
/// per group. Exponential — tiny instances only.
fn exact_q_rooted_tsp(dist: &DistMatrix, terminals: &[usize], roots: &[usize]) -> f64 {
    let m = terminals.len();
    let q = roots.len();
    let mut best = f64::INFINITY;
    let mut assign = vec![0usize; m];
    loop {
        let mut total = 0.0;
        for (r, &root) in roots.iter().enumerate() {
            let group: Vec<usize> =
                (0..m).filter(|&t| assign[t] == r).map(|t| terminals[t]).collect();
            if group.is_empty() {
                continue;
            }
            let mut nodes = vec![root];
            nodes.extend_from_slice(&group);
            let sub = dist.induced(&nodes);
            let (_, opt) = held_karp(&sub);
            total += opt;
        }
        best = best.min(total);
        let mut i = 0;
        loop {
            if i == m {
                return best;
            }
            assign[i] += 1;
            if assign[i] < q {
                break;
            }
            assign[i] = 0;
            i += 1;
        }
    }
}

#[test]
fn qtsp_within_factor_two_of_exact_optimum() {
    for seed in 0..6u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 70);
        let m = rng.gen_range(3..7);
        let q = rng.gen_range(1..3);
        let pts = random_points(m + q, seed);
        let dist = DistMatrix::from_points(&pts);
        let terminals: Vec<usize> = (0..m).collect();
        let roots: Vec<usize> = (m..m + q).collect();

        let approx = q_rooted_tsp(&dist, &terminals, &roots, 0).cost;
        let opt = exact_q_rooted_tsp(&dist, &terminals, &roots);
        assert!(approx <= 2.0 * opt + 1e-6, "seed {seed}: approx {approx} > 2x opt {opt}");
        assert!(approx >= opt - 1e-6, "seed {seed}: approx beat the optimum?!");
    }
}

#[test]
fn qmsf_lower_bounds_exact_qtsp_optimum() {
    // Lemma 3's cornerstone: the optimal q-rooted forest is a lower bound
    // on any q-rooted tour cover.
    for seed in 0..6u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 400);
        let m = rng.gen_range(3..7);
        let q = rng.gen_range(1..3);
        let pts = random_points(m + q, seed + 1000);
        let dist = DistMatrix::from_points(&pts);
        let terminals: Vec<usize> = (0..m).collect();
        let roots: Vec<usize> = (m..m + q).collect();
        let forest = q_rooted_msf(&dist, &terminals, &roots);
        let opt = exact_q_rooted_tsp(&dist, &terminals, &roots);
        assert!(
            forest.weight <= opt + 1e-6,
            "seed {seed}: forest {} > optimum {opt}",
            forest.weight
        );
    }
}

/// A (weak but valid) lower bound on the optimal fixed-cycle service cost,
/// from Lemma 3 with k = K: any feasible solution must charge every sensor
/// at least ⌊T / τ_max⌋... — we use the simplest version: over each window
/// of length 2·τ'_K the chargers must jointly visit all sensors at least
/// once, costing at least the optimal q-rooted TSP of the full set.
fn lemma3_style_lower_bound(inst: &Instance) -> f64 {
    let partition = partition_cycles(inst.cycles());
    let window = 2.0 * partition.super_period();
    let windows = (inst.horizon() / window).floor();
    if windows < 1.0 {
        return 0.0;
    }
    let n = inst.n();
    let all: Vec<usize> = (0..n).collect();
    let depots = inst.network().depot_nodes();
    // The 2-approximate tour is within 2x of the optimal full-cover cost,
    // so half of it is a valid lower bound on one window's cover.
    let cover = q_rooted_tsp(inst.network().dist(), &all, &depots, 0).cost;
    windows * cover / 2.0
}

#[test]
fn mtd_respects_theorem_2_bound_against_lemma3_lower_bound() {
    for seed in 0..4u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 8);
        let n = 12;
        let pts = random_points(n + 2, seed + 50);
        let sensors = pts[..n].to_vec();
        let depots = pts[n..].to_vec();
        let cycles: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..8.0)).collect();
        let network = Network::new(sensors, depots);
        let inst = Instance::new(network, cycles.clone(), 128.0);

        let plan = plan_min_total_distance(&inst, &MtdConfig::default());
        let lb = lemma3_style_lower_bound(&inst);
        let partition = partition_cycles(&cycles);
        let k = partition.k_max() as f64;
        // Theorem 2: cost ≤ 2(K+2)·OPT ≤ 2(K+2)·(anything ≥ OPT is not a
        // bound) — we check cost against the *lower* bound instead, with
        // the extra factor 2·super-period/τ-window slack the bound carries.
        // This is deliberately loose; it catches gross accounting bugs.
        let budget = 2.0 * (k + 2.0) * 4.0; // 4x slack for the weak bound
        assert!(
            lb <= 0.0 || plan.service_cost() <= budget * lb,
            "seed {seed}: cost {} vs lower bound {lb} (budget factor {budget})",
            plan.service_cost()
        );
    }
}

#[test]
fn rounding_never_more_than_doubles_charge_frequency() {
    // Equation (1) consequence: the rounded plan dispatches each sensor at
    // most 2x as often as its true cycle requires.
    let pts = random_points(18, 99);
    let sensors = pts[..16].to_vec();
    let depots = pts[16..].to_vec();
    let network = Network::new(sensors, depots);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let cycles: Vec<f64> = (0..16).map(|_| rng.gen_range(1.0..32.0)).collect();
    let horizon = 256.0;
    let inst = Instance::new(network, cycles.clone(), horizon);
    let plan = plan_min_total_distance(&inst, &MtdConfig::default());
    for (i, &tau) in cycles.iter().enumerate() {
        let charges = plan.charge_times(i).len() as f64;
        let minimal = (horizon / tau).floor();
        assert!(
            charges <= 2.0 * minimal + 1.0,
            "sensor {i}: {charges} charges vs minimal {minimal}"
        );
    }
}
