//! Scaled-down smoke runs of every figure: the paper's qualitative claims
//! must already show at small replication counts and shortened horizons.

use perpetuum::exp::figures::{run_figure_scaled, FigureId};

const TOPOLOGIES: usize = 2;
const SEED: u64 = 4242;
const SCALE: f64 = 0.1; // T = 100 instead of 1000

#[test]
fn fig1a_mtd_beats_greedy_under_linear_distribution() {
    let fd = run_figure_scaled(FigureId::Fig1a, TOPOLOGIES, SEED, SCALE);
    for (i, r) in fd.ratio(0, 1).iter().enumerate() {
        assert!(*r < 0.9, "n = {}: ratio {r}", fd.xs[i]);
    }
    assert_perpetual(&fd);
    assert_costs_grow_with_x(&fd);
}

#[test]
fn fig1b_gap_narrows_under_random_distribution() {
    let fd1a = run_figure_scaled(FigureId::Fig1a, TOPOLOGIES, SEED, SCALE);
    let fd1b = run_figure_scaled(FigureId::Fig1b, TOPOLOGIES, SEED, SCALE);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let linear_ratio = mean(&fd1a.ratio(0, 1));
    let random_ratio = mean(&fd1b.ratio(0, 1));
    assert!(
        random_ratio > linear_ratio,
        "random-distribution ratio {random_ratio} should exceed linear {linear_ratio}"
    );
    assert!(random_ratio < 1.05, "MTD should stay competitive: {random_ratio}");
    assert_perpetual(&fd1b);
}

#[test]
fn fig2a_costs_converge_at_small_tau_max() {
    let fd = run_figure_scaled(FigureId::Fig2a, TOPOLOGIES, SEED, SCALE);
    let ratios = fd.ratio(0, 1);
    // τ_max = 1: every sensor has cycle 1; both algorithms must charge
    // everyone every time unit → near-identical cost.
    assert!((ratios[0] - 1.0).abs() < 0.1, "τ_max = 1 ratio should be ~1, got {}", ratios[0]);
    // τ_max = 50: the gap is wide open.
    let last = *ratios.last().unwrap();
    assert!(last < 0.8, "τ_max = 50 ratio should be well below 1, got {last}");
    assert_perpetual(&fd);
}

#[test]
fn fig3_var_beats_greedy_under_linear_distribution() {
    let fd = run_figure_scaled(FigureId::Fig3, TOPOLOGIES, SEED, SCALE);
    for (i, r) in fd.ratio(0, 1).iter().enumerate() {
        assert!(*r < 1.0, "n = {}: ratio {r}", fd.xs[i]);
    }
    assert_perpetual(&fd);
    assert_costs_grow_with_x(&fd);
}

#[test]
fn fig5_costs_fall_as_slots_stabilize() {
    let fd = run_figure_scaled(FigureId::Fig5, TOPOLOGIES, SEED, SCALE);
    assert_perpetual(&fd);
    // Compare the most unstable (ΔT = 1) against the most stable (ΔT = 20)
    // points for the var algorithm: stability must help.
    let var = &fd.series[0].values;
    assert!(
        var[0] > *var.last().unwrap(),
        "ΔT = 1 cost {} should exceed ΔT = 20 cost {}",
        var[0],
        var.last().unwrap()
    );
}

#[test]
fn fig6_costs_rise_with_jitter() {
    let fd = run_figure_scaled(FigureId::Fig6, TOPOLOGIES, SEED, SCALE);
    assert_perpetual(&fd);
    let var = &fd.series[0].values;
    // σ = 0 vs σ = 50: large jitter puts short cycles far from the base
    // station, inflating tours.
    assert!(
        *var.last().unwrap() > var[0],
        "σ = 50 cost {} should exceed σ = 0 cost {}",
        var.last().unwrap(),
        var[0]
    );
}

fn assert_perpetual(fd: &perpetuum::exp::figures::FigureData) {
    for s in &fd.series {
        let deaths: usize = s.deaths.iter().sum();
        assert_eq!(deaths, 0, "{} ({}): sensor deaths", s.name, fd.id);
    }
}

fn assert_costs_grow_with_x(fd: &perpetuum::exp::figures::FigureData) {
    for s in &fd.series {
        assert!(
            *s.values.last().unwrap() > s.values[0],
            "{} ({}): cost should grow across the sweep",
            s.name,
            fd.id
        );
    }
}
