//! Sensor-side telemetry suppression for the `perpetuum` closed loop.
//!
//! The paper's online story (Section VI) has every sensor stream a
//! consumption sample each slot, but the base station only *acts* when a
//! sensor's power-of-two rounding class leaves the margin band — everything
//! else is wasted wire and ingest work. This crate is the other half of
//! that observation: it runs the base station's drift test *on the sensor*,
//! so only class-crossing events ever reach the network.
//!
//! # What lives here
//!
//! * [`power_class`] — the Section V.A rounding-class computation (the
//!   canonical definition; `perpetuum-core` re-exports it),
//! * [`SensorClient`] — a fixed-size, alloc-free mirror of one sensor's
//!   slice of the server-side `OnlineController` state: the EWMA predictor,
//!   the pessimistic `max(predicted, observed)` rate estimate, the lazily
//!   settled energy level, and the margin/hysteresis drift check,
//! * [`ClientState`] — the exact predictor/level state a suppressed event
//!   carries so the server can *reconstruct* its estimator instead of
//!   re-observing.
//!
//! # The state-reconstruction invariant
//!
//! [`SensorClient::observe`] performs, bit for bit, the same float
//! operations in the same order as the controller's per-record ingest path:
//! settle the level with the *old* rate estimate, fold the observation into
//! the EWMA, then run the drift test with the *new* estimate against the
//! currently assigned cycle. Because both sides execute identical IEEE-754
//! expression trees on identical inputs, the sensor knows *exactly* when
//! the server would replan — and when it would not. Slots where the new
//! `τ̂` stays inside the applicability band are not sent at all; slots where
//! it leaves the band emit a [`ClientState`] whose fields the server adopts
//! verbatim (`EwmaPredictor::from_state`), making the suppressed stream's
//! plan sequence byte-identical to full per-slot streaming.
//!
//! The invariant requires that the sensor's picture of the plan stays
//! fresh: after any ingest that changes the plan revision, the base station
//! must push the new `(τ₁, assigned)` back down ([`SensorClient::plan_update`])
//! and charge completions must be mirrored ([`SensorClient::recharged`]).
//! It also requires rate-only telemetry — a sensor that reports externally
//! measured *levels* reintroduces information the suppressed path cannot
//! reconstruct, so level reports stay on the per-slot streaming path.
//!
//! # `no_std`
//!
//! The crate is `#![no_std]`, allocation-free and dependency-free apart
//! from the prediction module of `perpetuum-energy` (itself pure `core`
//! math, pulled in with `default-features = false`). State per sensor is a
//! handful of `f64`s and two counters; no heap, no formatting, no I/O.

#![no_std]
#![deny(unsafe_code)]

pub use perpetuum_energy::predictor::{schedule_still_applicable, EwmaPredictor, HoltPredictor};

/// Largest `k ≥ 0` such that `2^k · tau1 ≤ tau` — the power-of-two
/// rounding class of Section V.A.
///
/// Computed by repeated doubling rather than `log2` so the class boundary
/// semantics are exact even when `tau/tau1` sits on a power of two.
///
/// # Panics
/// Panics when `tau < tau1` or either is non-positive.
pub fn power_class(tau1: f64, tau: f64) -> usize {
    assert!(tau1 > 0.0 && tau >= tau1, "need 0 < tau1 <= tau, got {tau1}, {tau}");
    let mut k = 0usize;
    let mut v = tau1;
    while v * 2.0 <= tau {
        v *= 2.0;
        k += 1;
    }
    k
}

/// The exact post-observation estimator state a suppressed event carries.
///
/// The server adopts these fields verbatim: `ρ̂` via
/// `EwmaPredictor::from_state`, `last_rate` and `level` directly (the level
/// is clamped to the battery capacity on the server, which knows it
/// authoritatively). Reconstructing from state — instead of replaying the
/// skipped observations — is what makes suppression lossless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientState {
    /// EWMA prediction `ρ̂(t+1)` after folding in this slot's observation.
    pub rho_hat: f64,
    /// The raw rate observed this slot (the pessimistic-estimate partner).
    pub last_rate: f64,
    /// Energy level settled to this slot's timestamp.
    pub level: f64,
}

/// The sensor's current copy of the base-station plan: the base interval
/// `τ₁` and the rounded cycle this sensor is charged at.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Plan {
    tau1: f64,
    assigned: f64,
}

/// One sensor's half of the closed control loop.
///
/// Mirrors the per-sensor state of the server-side `OnlineController`
/// bit-for-bit so the drift test can run at the edge. Create it with the
/// same `(γ, margin, horizon, capacity, initial_rate)` the controller was
/// seeded with, push the first plan via [`SensorClient::plan_update`], then
/// call [`SensorClient::observe`] once per slot; a `Some(state)` return is
/// the (rare) event that must go on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorClient {
    margin: f64,
    horizon: f64,
    capacity: f64,
    predictor: EwmaPredictor,
    last_rate: f64,
    level: f64,
    level_time: f64,
    plan: Option<Plan>,
    observed: u64,
    sent: u64,
}

impl SensorClient {
    /// Creates a client mirroring a freshly seeded controller sensor:
    /// predictor initialised at `initial_rate`, battery full, clock at 0.
    ///
    /// No plan is known yet, so [`SensorClient::observe`] reports every
    /// slot until the first [`SensorClient::plan_update`] arrives —
    /// conservative, never wrong.
    ///
    /// # Panics
    /// Panics unless `0 < gamma < 1`, `0 ≤ margin < 1`, and `horizon`,
    /// `capacity` and `initial_rate` are positive and finite.
    pub fn new(gamma: f64, margin: f64, horizon: f64, capacity: f64, initial_rate: f64) -> Self {
        assert!((0.0..1.0).contains(&margin), "margin must be in [0, 1), got {margin}");
        assert!(horizon > 0.0 && horizon.is_finite(), "horizon must be positive and finite");
        assert!(capacity > 0.0 && capacity.is_finite(), "capacity must be positive and finite");
        Self {
            margin,
            horizon,
            capacity,
            predictor: EwmaPredictor::new(gamma, initial_rate),
            last_rate: initial_rate,
            level: capacity,
            level_time: 0.0,
            plan: None,
            observed: 0,
            sent: 0,
        }
    }

    /// Pessimistic rate estimate `max(ρ̂, last observed)` — identical to the
    /// controller's `rate_estimate`.
    #[inline]
    pub fn rate_estimate(&self) -> f64 {
        self.predictor.predicted_rate().max(self.last_rate)
    }

    /// Estimated maximum charging cycle `τ̂` under the current estimate,
    /// margin-shrunk and horizon-capped exactly like the controller's.
    #[inline]
    pub fn tau_hat(&self) -> f64 {
        let rate = self.rate_estimate();
        if rate <= 0.0 {
            self.horizon
        } else {
            (self.capacity / rate * (1.0 - self.margin)).min(self.horizon)
        }
    }

    /// The Section VI.B applicability band with hysteresis margin: the
    /// current scheduling survives iff `τ̂ ≥ assigned·(1−margin)` and
    /// `τ̂ < 2·assigned` (the exact paper band when `margin = 0`).
    #[inline]
    fn still_applicable(&self, assigned: f64, tau: f64) -> bool {
        if self.margin == 0.0 {
            schedule_still_applicable(assigned, tau)
        } else {
            tau >= assigned * (1.0 - self.margin) && tau < 2.0 * assigned
        }
    }

    /// Feeds the rate observed for the slot ending at `time` and runs the
    /// drift test. Returns `Some(state)` when the base station must hear
    /// about this slot — the new `τ̂` left the applicability band (or no
    /// plan is known yet) — and `None` when the slot is safely suppressed.
    ///
    /// Mirrors the controller's ingest order exactly: settle the level over
    /// `[level_time, time]` with the *old* estimate, observe, then test
    /// with the *new* estimate.
    pub fn observe(&mut self, time: f64, rate: f64) -> Option<ClientState> {
        let est = self.rate_estimate();
        self.level = (self.level - est * (time - self.level_time)).max(0.0);
        self.level_time = time;
        self.predictor.observe(rate);
        self.last_rate = rate;
        self.observed += 1;
        let must_send = match self.plan {
            None => true,
            Some(p) => !self.still_applicable(p.assigned, self.tau_hat()),
        };
        if must_send {
            self.sent += 1;
            Some(self.state())
        } else {
            None
        }
    }

    /// Mirrors a completed charge: the charger visited at `time` and the
    /// battery is full again. Must be fed the charge times the base
    /// station reports so the level pictures stay aligned.
    pub fn recharged(&mut self, time: f64) {
        self.level = self.capacity;
        self.level_time = time;
    }

    /// Downlink: adopts the plan `(τ₁, assigned cycle)` from the base
    /// station. Must be called after any ingest that changed the plan
    /// revision, or the two drift tests drift apart.
    ///
    /// # Panics
    /// Panics unless `0 < tau1 ≤ assigned`, both finite.
    pub fn plan_update(&mut self, tau1: f64, assigned: f64) {
        assert!(
            tau1 > 0.0 && assigned >= tau1 && assigned.is_finite(),
            "need 0 < tau1 <= assigned, got {tau1}, {assigned}"
        );
        self.plan = Some(Plan { tau1, assigned });
    }

    /// The current estimator state — what a sync record carries for this
    /// sensor. Valid immediately after [`SensorClient::observe`] for the
    /// current slot (the level is settled to that slot's timestamp).
    #[inline]
    pub fn state(&self) -> ClientState {
        ClientState {
            rho_hat: self.predictor.predicted_rate(),
            last_rate: self.last_rate,
            level: self.level,
        }
    }

    /// Counts this sensor's record in a full-sync batch (a record sent on
    /// the wire that [`SensorClient::observe`] had suppressed).
    #[inline]
    pub fn record_sync(&mut self) {
        self.sent += 1;
    }

    /// The rounding class this sensor's `τ̂` falls in under the current
    /// plan's `τ₁`, or `None` when no plan is known or `τ̂ < τ₁` (the
    /// base-interval itself must shrink — a full replan on the server).
    pub fn drift_class(&self) -> Option<usize> {
        let p = self.plan?;
        let tau = self.tau_hat();
        if tau < p.tau1 {
            None
        } else {
            Some(power_class(p.tau1, tau))
        }
    }

    /// Slots observed so far (cumulative).
    #[inline]
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Event records put on the wire so far, sync records included
    /// (cumulative).
    #[inline]
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// The current plan `(τ₁, assigned)` if one has been received.
    #[inline]
    pub fn plan(&self) -> Option<(f64, f64)> {
        self.plan.map(|p| (p.tau1, p.assigned))
    }

    /// Energy level settled to the last observation or charge.
    #[inline]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Battery capacity.
    #[inline]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }
}
