//! Rounding-class boundary and hysteresis-margin pinning tests.
//!
//! These pin the *exact* float semantics of the edge drift test: class
//! edges land where repeated doubling says they land (no `log2` slop), the
//! applicability band is closed below and open above, and a rate that
//! oscillates across a class boundary while staying inside the margin band
//! produces zero events — the whole point of the hysteresis.

use perpetuum_client::{power_class, SensorClient};
use proptest::prelude::*;

#[test]
fn power_class_exact_powers_of_two() {
    // tau = 2^k · tau1 is exactly representable (exponent bump only), so
    // the boundary must land in class k with no floating-point slop.
    for k in 0..50usize {
        let tau = (1u64 << k) as f64;
        assert_eq!(power_class(1.0, tau), k, "tau = 2^{k}");
        assert_eq!(power_class(0.375, 0.375 * tau), k, "tau1 = 0.375, tau = 0.375·2^{k}");
    }
}

#[test]
fn power_class_just_below_boundary_stays_in_lower_class() {
    for k in 1..40usize {
        let tau = (1u64 << k) as f64;
        let below = f64::from_bits(tau.to_bits() - 1); // next float down
        assert_eq!(power_class(1.0, below), k - 1, "just below 2^{k}");
    }
}

#[test]
#[should_panic(expected = "tau1 <= tau")]
fn power_class_rejects_tau_below_tau1() {
    power_class(2.0, f64::from_bits(2.0f64.to_bits() - 1));
}

/// Band edges with `margin = 0`: the paper's exact `assigned ≤ τ̂ < 2·assigned`.
#[test]
fn band_is_closed_below_open_above_at_zero_margin() {
    // est = max(ρ̂, last) = last when last ≥ ρ̂ history; constant-rate feeds
    // keep everything exact: τ̂ = capacity / rate (margin 0, horizon huge).
    let mk = |assigned: f64| {
        let mut c = SensorClient::new(0.5, 0.0, 1e6, 16.0, 2.0);
        c.plan_update(4.0, assigned);
        c
    };
    // τ̂ = 16/2 = 8 exactly.
    let mut c = mk(8.0);
    assert!(c.observe(1.0, 2.0).is_none(), "τ̂ = assigned is in band (closed below)");
    let mut c = mk(4.0);
    assert!(c.observe(1.0, 2.0).is_some(), "τ̂ = 2·assigned leaves band (open above)");
    // One ulp inside the upper edge stays suppressed.
    let mut c = SensorClient::new(0.5, 0.0, 1e6, f64::from_bits(16.0f64.to_bits() - 1), 2.0);
    c.plan_update(4.0, 4.0);
    assert!(c.observe(1.0, 2.0).is_none(), "τ̂ one ulp under 2·assigned is in band");
}

/// Band edge at the hysteresis margin: `τ̂ = assigned·(1−margin)` exactly is
/// still in band; one ulp below is an event. margin = 0.25 keeps all the
/// arithmetic exact in binary floating point.
#[test]
fn margin_edge_is_closed() {
    let mut c = SensorClient::new(0.5, 0.25, 1e6, 16.0, 2.0);
    c.plan_update(8.0, 8.0);
    // τ̂ = 16/2 · 0.75 = 6.0 = assigned·(1−margin) exactly.
    assert!(c.observe(1.0, 2.0).is_none(), "τ̂ exactly at the margin edge is in band");

    let mut c = SensorClient::new(0.5, 0.25, 1e6, 16.0, 2.0);
    c.plan_update(8.0, 8.0);
    // A hair more drain: τ̂ drops below 6 and the event fires.
    let rate = f64::from_bits(2.0f64.to_bits() + 1);
    let ev = c.observe(1.0, rate);
    assert!(ev.is_some(), "τ̂ one ulp below the margin edge leaves the band");
    assert_eq!(ev.unwrap().last_rate, rate, "event carries the raw observation");
}

/// The headline hysteresis property: a rate oscillating across the class
/// boundary (τ̂ crossing 2^1·τ₁ = 4 back and forth) but staying inside the
/// margin band produces *zero* events over hundreds of slots.
#[test]
fn no_event_storm_across_class_boundary_within_margin() {
    // capacity 8, margin 0.1 → τ̂ = 7.2/rate. Rates alternating 1.7/1.9
    // give τ̂ ∈ [3.79, 4.24] — straddling the class boundary at 4.0, but
    // comfortably inside the band [assigned·0.9, 2·assigned) = [3.6, 8).
    let mut c = SensorClient::new(0.5, 0.1, 1000.0, 8.0, 1.8);
    c.plan_update(4.0, 4.0);
    let mut crossed_down = false;
    let mut crossed_up = false;
    for slot in 1..=400u32 {
        let rate = if slot % 2 == 0 { 1.7 } else { 1.9 };
        assert!(c.observe(slot as f64, rate).is_none(), "slot {slot} must be suppressed");
        match c.tau_hat() {
            t if t < 4.0 => crossed_down = true,
            _ => crossed_up = true,
        }
    }
    assert!(crossed_down && crossed_up, "τ̂ really did oscillate across the class boundary");
    assert_eq!(c.observed(), 400);
    assert_eq!(c.sent(), 0, "no event storm");

    // Breaking out of the band fires exactly one event.
    assert!(c.observe(401.0, 3.0).is_some(), "τ̂ = 2.4 < 3.6 leaves the band");
    assert_eq!(c.sent(), 1);
}

/// Sustained downward drift in the rate eventually pushes τ̂ past the
/// 2·assigned edge — the "could charge half as often" exit fires too.
#[test]
fn upward_tau_exit_fires_after_sustained_rate_drop() {
    let mut c = SensorClient::new(0.5, 0.1, 1000.0, 8.0, 1.8);
    c.plan_update(4.0, 4.0);
    let mut fired_at = None;
    for slot in 1..=20u32 {
        if c.observe(slot as f64, 0.8).is_some() {
            fired_at = Some(slot);
            break;
        }
    }
    let slot = fired_at.expect("the EWMA must decay into the upper exit within 20 slots");
    assert!(c.tau_hat() >= 8.0, "exit was through the 2·assigned edge");
    assert!(slot > 1, "hysteresis absorbs the first drop (est is pessimistic max)");
}

#[test]
fn observe_without_plan_always_reports() {
    let mut c = SensorClient::new(0.5, 0.1, 1000.0, 8.0, 1.8);
    assert!(c.observe(1.0, 1.8).is_some(), "unconfigured sensor is conservative");
    c.plan_update(4.0, 4.0);
    assert!(c.observe(2.0, 1.8).is_none());
}

#[test]
fn drift_class_tracks_tau_hat() {
    let mut c = SensorClient::new(0.5, 0.0, 1000.0, 8.0, 2.0);
    assert_eq!(c.drift_class(), None, "no plan yet");
    c.plan_update(1.0, 4.0);
    c.observe(1.0, 2.0); // τ̂ = 4 → class 2 over τ₁ = 1
    assert_eq!(c.drift_class(), Some(2));
}

proptest! {
    /// Doubling invariant: `2^k · τ₁ ≤ τ < 2^(k+1) · τ₁` with *exact*
    /// arithmetic (scaling by two only bumps the exponent).
    #[test]
    fn power_class_doubling_invariant(
        tau1 in 1e-3f64..1e3,
        factor in 1.0f64..1e6,
    ) {
        let tau = tau1 * factor;
        let k = power_class(tau1, tau);
        let lo = tau1 * 2f64.powi(k as i32);
        prop_assert!(lo <= tau, "2^k·τ₁ = {lo} must not exceed τ = {tau}");
        prop_assert!(lo * 2.0 > tau, "2^(k+1)·τ₁ = {} must exceed τ = {tau}", lo * 2.0);
    }

    /// Event fires iff τ̂ leaves the band — pinned against the public
    /// τ̂ accessor so the decision and the estimate cannot drift apart.
    #[test]
    fn event_iff_band_exit(
        margin_idx in 0usize..4,
        assigned_pow in 0u32..4,
        capacity in 1.0f64..100.0,
        rates in prop::collection::vec(0.01f64..10.0, 1..40),
    ) {
        let margin = [0.0, 0.05, 0.1, 0.25][margin_idx];
        let tau1 = 2.0;
        let assigned = tau1 * f64::from(1u32 << assigned_pow);
        let mut c = SensorClient::new(0.5, margin, 1e4, capacity, 1.0);
        c.plan_update(tau1, assigned);
        for (i, &r) in rates.iter().enumerate() {
            let ev = c.observe((i + 1) as f64, r);
            let tau = c.tau_hat();
            let in_band = if margin == 0.0 {
                assigned <= tau && tau < 2.0 * assigned
            } else {
                tau >= assigned * (1.0 - margin) && tau < 2.0 * assigned
            };
            prop_assert_eq!(ev.is_some(), !in_band, "slot {}: τ̂ = {}", i + 1, tau);
            if let Some(s) = ev {
                prop_assert_eq!(s.last_rate, r);
                prop_assert_eq!(s.level, c.level());
            }
        }
    }

    /// Generalised no-storm property: any rate sequence confined to an
    /// interval whose τ̂ image sits strictly inside the band never emits an
    /// event (the EWMA and the pessimistic max are both interval-stable).
    #[test]
    fn rates_confined_to_band_interior_never_event(
        raw in prop::collection::vec(0.0f64..1.0, 1..200),
    ) {
        // capacity 8, margin 0.1, assigned 4 → band τ̂ ∈ [3.6, 8).
        // rates in [1.0, 1.9] → τ̂ = 7.2/rate ∈ [3.79, 7.2] ⊂ (3.6, 8).
        let (lo, hi) = (1.0, 1.9);
        let mut c = SensorClient::new(0.5, 0.1, 1000.0, 8.0, lo);
        c.plan_update(4.0, 4.0);
        for (i, &u) in raw.iter().enumerate() {
            let rate = lo + u * (hi - lo);
            prop_assert!(c.observe((i + 1) as f64, rate).is_none(), "slot {}", i + 1);
        }
        prop_assert_eq!(c.sent(), 0);
    }
}
