#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Experiment harness reproducing every figure of Section VII.
//!
//! | Id | Paper figure | Sweep | Algorithms |
//! |---|---|---|---|
//! | `fig1a` | Fig. 1(a) | network size `n`, linear distribution | MinTotalDistance vs Greedy |
//! | `fig1b` | Fig. 1(b) | network size `n`, random distribution | MinTotalDistance vs Greedy |
//! | `fig2a` | Fig. 2(a) | `τ_max`, linear distribution | MinTotalDistance vs Greedy |
//! | `fig2b` | Fig. 2(b) | `τ_max`, random distribution | MinTotalDistance vs Greedy |
//! | `fig3`  | Fig. 3 | network size `n`, variable cycles | MinTotalDistance-var vs Greedy |
//! | `fig4`  | Fig. 4 | `τ_max`, variable cycles | MinTotalDistance-var vs Greedy |
//! | `fig5`  | Fig. 5 | slot length `ΔT`, variable cycles | MinTotalDistance-var vs Greedy |
//! | `fig6`  | Fig. 6 | jitter `σ`, variable cycles | MinTotalDistance-var vs Greedy |
//!
//! Every data point is the mean over `topologies` independent seeded
//! topologies (100 in the paper), run in parallel with `perpetuum-par` and
//! reported in km.

pub mod ablation;
pub mod extras;
pub mod figures;
pub mod output;
pub mod plot;
pub mod report;
pub mod scenario;
pub mod viz;

pub use ablation::{run_ablation, AblationId};
pub use extras::{run_extension, ExtensionId};
pub use figures::{run_figure, FigureData, FigureId, Series};
pub use scenario::{
    parse_world, realise_world, scenario_from_value, world_from_value, Algo, CustomExperiment,
    Deployment, ParsedWorld, Scenario, ScenarioError, Topology,
};
