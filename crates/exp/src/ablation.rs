//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! These are not paper figures; they quantify *why* the paper's design
//! decisions pay off:
//!
//! * **rounding** — power-of-two cycle rounding + dispatch alignment
//!   (Algorithm 3) versus charging each sensor at its exact cadence with
//!   no tour sharing, and versus charging everyone every `τ_min`;
//! * **tour-polish** — how much of Algorithm 2's tree-doubling slack a
//!   cheap 2-opt/Or-opt pass recovers (the guarantee says ≤ 2×, practice
//!   is usually much tighter);
//! * **repair** — `MinTotalDistance-var`'s nearest-scheduling `V^a`
//!   insertion versus naively charging all of `V^a` immediately;
//! * **routing** — Algorithm 2's tree doubling versus the
//!   Christofides-style odd-vertex matching, with and without the
//!   2-opt/Or-opt polish.

use crate::figures::{FigureData, Series};
use crate::scenario::Scenario;
use perpetuum_core::mtd::{plan_min_total_distance, MtdConfig};
use perpetuum_core::naive::{plan_charge_all, plan_per_sensor_cadence};
use perpetuum_core::network::Instance;
use perpetuum_core::qtsp::Routing;
use perpetuum_core::var::RepairStrategy;
use perpetuum_par::{mean, par_map, std_dev};
use perpetuum_sim::{run, SimConfig, VarPolicy};

/// Identifier of an ablation experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AblationId {
    /// Power-of-two rounding + alignment vs exact cadence vs charge-all.
    Rounding,
    /// Algorithm 2 plain vs + local-search polish.
    TourPolish,
    /// Nearest-scheduling `V^a` repair vs charge-all-now.
    Repair,
    /// Tree doubling vs odd-vertex matching, plain and polished.
    Routing,
}

impl AblationId {
    /// All ablations.
    pub const ALL: [AblationId; 4] =
        [AblationId::Rounding, AblationId::TourPolish, AblationId::Repair, AblationId::Routing];

    /// Parses `"rounding"`, `"tour-polish"` / `"polish"`, `"repair"`.
    pub fn parse(s: &str) -> Option<AblationId> {
        match s.to_ascii_lowercase().as_str() {
            "rounding" => Some(AblationId::Rounding),
            "tour-polish" | "polish" => Some(AblationId::TourPolish),
            "repair" => Some(AblationId::Repair),
            "routing" => Some(AblationId::Routing),
            _ => None,
        }
    }

    /// Short id for file names.
    pub fn id(&self) -> &'static str {
        match self {
            AblationId::Rounding => "ablation_rounding",
            AblationId::TourPolish => "ablation_tour_polish",
            AblationId::Repair => "ablation_repair",
            AblationId::Routing => "ablation_routing",
        }
    }

    /// Caption.
    pub fn title(&self) -> &'static str {
        match self {
            AblationId::Rounding => {
                "Ablation: power-of-2 rounding + alignment vs exact cadence vs charge-all"
            }
            AblationId::TourPolish => "Ablation: Algorithm 2 plain vs 2-opt/Or-opt polish",
            AblationId::Repair => {
                "Ablation: V^a nearest-scheduling repair vs charge-all-now repair"
            }
            AblationId::Routing => {
                "Ablation: tree doubling vs odd-vertex matching routing (plain / polished)"
            }
        }
    }
}

fn collect(
    id: AblationId,
    x_label: &str,
    xs: Vec<f64>,
    names: &[&str],
    cells: Vec<Vec<Vec<f64>>>, // [x][variant][samples] in km
    topologies: usize,
    seed: u64,
) -> FigureData {
    let mut series: Vec<Series> = names
        .iter()
        .map(|n| Series {
            name: n.to_string(),
            values: Vec::new(),
            std_devs: Vec::new(),
            deaths: Vec::new(),
        })
        .collect();
    for per_x in &cells {
        for (vi, samples) in per_x.iter().enumerate() {
            series[vi].values.push(mean(samples));
            series[vi].std_devs.push(std_dev(samples));
            series[vi].deaths.push(0);
        }
    }
    FigureData {
        id: id.id().to_string(),
        title: id.title().to_string(),
        x_label: x_label.to_string(),
        xs,
        series,
        topologies,
        seed,
    }
}

/// Runs one ablation with `topologies` replications per point.
pub fn run_ablation(id: AblationId, topologies: usize, seed: u64) -> FigureData {
    match id {
        AblationId::Rounding => {
            let ns = [50usize, 100, 200];
            let mut cells = Vec::new();
            for &n in &ns {
                let s = Scenario { n, horizon: 200.0, ..Scenario::paper_fixed() };
                let rows = par_map(topologies, |i| {
                    let topo = s.build_topology(seed, i as u64);
                    let inst =
                        Instance::new(topo.network.clone(), topo.init_cycles.clone(), s.horizon);
                    let mtd = plan_min_total_distance(&inst, &MtdConfig::default()).service_cost();
                    let per_sensor = plan_per_sensor_cadence(&inst).service_cost();
                    let charge_all = plan_charge_all(&inst).service_cost();
                    [mtd / 1000.0, per_sensor / 1000.0, charge_all / 1000.0]
                });
                cells.push(transpose(rows));
            }
            collect(
                id,
                "network size n",
                ns.iter().map(|&n| n as f64).collect(),
                &["MinTotalDistance", "per-sensor exact cadence", "charge all every tau_min"],
                cells,
                topologies,
                seed,
            )
        }
        AblationId::TourPolish => {
            let ns = [50usize, 100, 200];
            let mut cells = Vec::new();
            for &n in &ns {
                let s = Scenario { n, horizon: 200.0, ..Scenario::paper_fixed() };
                let rows = par_map(topologies, |i| {
                    let topo = s.build_topology(seed, i as u64);
                    let inst =
                        Instance::new(topo.network.clone(), topo.init_cycles.clone(), s.horizon);
                    let plain =
                        plan_min_total_distance(&inst, &MtdConfig::default()).service_cost();
                    let polished = plan_min_total_distance(
                        &inst,
                        &MtdConfig { polish_rounds: 10, ..MtdConfig::default() },
                    )
                    .service_cost();
                    [plain / 1000.0, polished / 1000.0]
                });
                cells.push(transpose(rows));
            }
            collect(
                id,
                "network size n",
                ns.iter().map(|&n| n as f64).collect(),
                &["Algorithm 2 (doubling)", "Algorithm 2 + 2-opt/Or-opt"],
                cells,
                topologies,
                seed,
            )
        }
        AblationId::Routing => {
            let ns = [50usize, 100, 200];
            let mut cells = Vec::new();
            for &n in &ns {
                let s = Scenario { n, horizon: 200.0, ..Scenario::paper_fixed() };
                let rows = par_map(topologies, |i| {
                    let topo = s.build_topology(seed, i as u64);
                    let inst =
                        Instance::new(topo.network.clone(), topo.init_cycles.clone(), s.horizon);
                    let plan = |routing: Routing, polish_rounds: usize| {
                        plan_min_total_distance(&inst, &MtdConfig { routing, polish_rounds })
                            .service_cost()
                            / 1000.0
                    };
                    [
                        plan(Routing::Doubling, 0),
                        plan(Routing::Matching, 0),
                        plan(Routing::Savings, 0),
                        plan(Routing::Doubling, 10),
                        plan(Routing::Matching, 10),
                    ]
                });
                cells.push(transpose(rows));
            }
            collect(
                id,
                "network size n",
                ns.iter().map(|&n| n as f64).collect(),
                &[
                    "doubling (Algorithm 2)",
                    "matching",
                    "savings (Clarke-Wright)",
                    "doubling + polish",
                    "matching + polish",
                ],
                cells,
                topologies,
                seed,
            )
        }
        AblationId::Repair => {
            let sigmas = [2.0, 10.0, 30.0];
            let mut cells = Vec::new();
            for &sigma in &sigmas {
                let s = Scenario {
                    n: 100,
                    horizon: 300.0,
                    dist: perpetuum_energy::CycleDistribution::Linear { sigma },
                    ..Scenario::paper_variable()
                };
                let rows = par_map(topologies, |i| {
                    let topo = s.build_topology(seed, i as u64);
                    let cfg = SimConfig {
                        horizon: s.horizon,
                        slot: s.slot,
                        seed: topo.sim_seed,
                        charger_speed: None,
                    };
                    let mut nearest = VarPolicy::new(&topo.network);
                    let rn = run(s.build_world(&topo), &cfg, &mut nearest);
                    let mut naive = VarPolicy::new(&topo.network);
                    naive.repair = RepairStrategy::ChargeAllNow;
                    let ra = run(s.build_world(&topo), &cfg, &mut naive);
                    [rn.service_cost / 1000.0, ra.service_cost / 1000.0]
                });
                cells.push(transpose(rows));
            }
            collect(
                id,
                "sigma",
                sigmas.to_vec(),
                &["nearest-scheduling repair", "charge-all-now repair"],
                cells,
                topologies,
                seed,
            )
        }
    }
}

/// `rows[sample][variant]` → `out[variant][sample]`.
#[allow(clippy::needless_range_loop)]
fn transpose<const V: usize>(rows: Vec<[f64; V]>) -> Vec<Vec<f64>> {
    let mut out = vec![Vec::with_capacity(rows.len()); V];
    for row in rows {
        for (v, x) in row.into_iter().enumerate() {
            out[v].push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_ids() {
        assert_eq!(AblationId::parse("rounding"), Some(AblationId::Rounding));
        assert_eq!(AblationId::parse("polish"), Some(AblationId::TourPolish));
        assert_eq!(AblationId::parse("repair"), Some(AblationId::Repair));
        assert_eq!(AblationId::parse("nope"), None);
    }

    #[test]
    fn rounding_ablation_orders_variants() {
        let fd = run_ablation(AblationId::Rounding, 2, 5);
        // MTD beats both strawmen at every point.
        for i in 0..fd.xs.len() {
            let mtd = fd.series[0].values[i];
            let per_sensor = fd.series[1].values[i];
            let charge_all = fd.series[2].values[i];
            assert!(mtd < per_sensor, "point {i}: {mtd} vs per-sensor {per_sensor}");
            assert!(mtd < charge_all, "point {i}: {mtd} vs charge-all {charge_all}");
        }
    }

    #[test]
    fn routing_ablation_matching_helps() {
        let fd = run_ablation(AblationId::Routing, 2, 8);
        for i in 0..fd.xs.len() {
            // Matching beats plain doubling; polished doubling beats plain.
            assert!(fd.series[1].values[i] <= fd.series[0].values[i] + 1e-9);
            assert!(fd.series[3].values[i] <= fd.series[0].values[i] + 1e-9);
            // Savings has no guarantee but should stay in the same league.
            assert!(fd.series[2].values[i] <= fd.series[0].values[i] * 1.3);
        }
    }

    #[test]
    fn polish_ablation_never_worse() {
        let fd = run_ablation(AblationId::TourPolish, 2, 6);
        for i in 0..fd.xs.len() {
            assert!(fd.series[1].values[i] <= fd.series[0].values[i] + 1e-9);
        }
    }
}
