//! Terminal (ASCII) line plots of figure data.
//!
//! `perpetuum-exp --plot` renders each figure the way the paper plots it —
//! service cost against the swept parameter, one curve per algorithm —
//! directly in the terminal, so the shape comparison with the paper's
//! figures needs no external tooling.

use crate::figures::FigureData;

/// Per-series glyphs, in series order.
const GLYPHS: [char; 6] = ['o', 'x', '+', '*', '#', '@'];

/// Renders `fd` as an ASCII chart of `width × height` characters
/// (excluding axis labels). Values are linearly mapped; the y-axis starts
/// at zero like the paper's figures.
pub fn render_ascii(fd: &FigureData, width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "chart too small to draw");
    let y_max = fd
        .series
        .iter()
        .flat_map(|s| s.values.iter())
        .cloned()
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let x_min = fd.xs.first().copied().unwrap_or(0.0);
    let x_max = fd.xs.last().copied().unwrap_or(1.0);
    let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in fd.series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Mark data points and connect consecutive ones with interpolation.
        let coord = |i: usize| -> (isize, isize) {
            let cx = ((fd.xs[i] - x_min) / x_span * (width - 1) as f64).round() as isize;
            let cy = (height - 1) as isize
                - (s.values[i] / y_max * (height - 1) as f64).round() as isize;
            (cx, cy)
        };
        for i in 0..fd.xs.len() {
            let (cx, cy) = coord(i);
            if i + 1 < fd.xs.len() {
                let (nx, ny) = coord(i + 1);
                let steps = (nx - cx).abs().max((ny - cy).abs()).max(1);
                for step in 0..=steps {
                    let frac = step as f64 / steps as f64;
                    let px = cx + ((nx - cx) as f64 * frac).round() as isize;
                    let py = cy + ((ny - cy) as f64 * frac).round() as isize;
                    if (0..width as isize).contains(&px) && (0..height as isize).contains(&py) {
                        let cell = &mut grid[py as usize][px as usize];
                        if *cell == ' ' {
                            *cell = '.';
                        }
                    }
                }
            }
            if (0..width as isize).contains(&cx) && (0..height as isize).contains(&cy) {
                grid[cy as usize][cx as usize] = glyph;
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{}\n", fd.title));
    for (row, line) in grid.iter().enumerate() {
        let label = if row == 0 {
            format!("{y_max:>9.0} |")
        } else if row == height - 1 {
            format!("{:>9.0} |", 0.0)
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>9}  {:<width$}\n",
        "",
        format!("{x_min:.0} … {x_max:.0}  ({})", fd.x_label),
        width = width
    ));
    for (si, s) in fd.series.iter().enumerate() {
        out.push_str(&format!("{:>9}  {} {}\n", "", GLYPHS[si % GLYPHS.len()], s.name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Series;

    fn sample() -> FigureData {
        FigureData {
            id: "fig".into(),
            title: "Title".into(),
            x_label: "n".into(),
            xs: vec![100.0, 200.0, 300.0],
            series: vec![
                Series {
                    name: "A".into(),
                    values: vec![10.0, 20.0, 30.0],
                    std_devs: vec![0.0; 3],
                    deaths: vec![0; 3],
                },
                Series {
                    name: "B".into(),
                    values: vec![30.0, 45.0, 60.0],
                    std_devs: vec![0.0; 3],
                    deaths: vec![0; 3],
                },
            ],
            topologies: 1,
            seed: 0,
        }
    }

    #[test]
    fn renders_glyphs_and_legend() {
        let s = render_ascii(&sample(), 40, 10);
        assert!(s.contains('o'), "series A glyph missing:\n{s}");
        assert!(s.contains('x'), "series B glyph missing:\n{s}");
        assert!(s.contains("o A"));
        assert!(s.contains("x B"));
        assert!(s.contains("Title"));
        assert!(s.contains("100 … 300"));
    }

    #[test]
    fn y_axis_runs_from_zero_to_max() {
        let s = render_ascii(&sample(), 40, 10);
        assert!(s.contains("       60 |"), "max label:\n{s}");
        assert!(s.contains("        0 |"), "zero label:\n{s}");
    }

    #[test]
    fn monotone_series_has_monotone_heights() {
        // The top-most marked row of series B must be to the right of the
        // bottom-most (costs grow with x).
        let s = render_ascii(&sample(), 40, 12);
        // Only chart rows (they carry the " |" axis); skips the legend.
        let rows: Vec<&str> = s.lines().filter(|l| l.contains(" |")).collect();
        let mut first_x_col = None;
        let mut last_x_col = None;
        for line in &rows {
            if let Some(col) = line.find('x') {
                if first_x_col.is_none() {
                    first_x_col = Some(col); // topmost 'x' (highest value)
                }
                last_x_col = Some(col);
            }
        }
        // Topmost x (largest y) is at the right edge; bottom-most at left.
        assert!(first_x_col.unwrap() > last_x_col.unwrap());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_canvas() {
        render_ascii(&sample(), 5, 2);
    }
}
