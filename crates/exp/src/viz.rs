//! SVG rendering of topologies and charging tours.
//!
//! Pure string generation (no drawing dependencies): sensors as dots
//! colour-graded by maximum charging cycle, depots as squares, and each
//! charger's tour as a coloured closed polyline. Produces the kind of
//! deployment picture the paper's Fig. 1-style discussions reason about.

use perpetuum_core::network::Network;
use perpetuum_core::schedule::TourSet;

/// Charger tour colours (cycled when `q` exceeds the palette).
const TOUR_COLORS: [&str; 6] = ["#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"];

/// Renders the network and one tour set as a standalone SVG document.
///
/// `cycles` (one per sensor) drives the sensor dot shading: short-cycle
/// (hungry) sensors are dark, long-cycle ones light. `title` is printed in
/// the top-left corner.
pub fn render_tour_set_svg(
    network: &Network,
    cycles: &[f64],
    set: &TourSet,
    title: &str,
) -> String {
    assert_eq!(cycles.len(), network.n(), "one cycle per sensor");
    let n = network.n();

    // Bounding box over everything, with a margin.
    let all: Vec<_> = (0..n)
        .map(|i| network.sensor_pos(i))
        .chain((0..network.q()).map(|l| network.depot_pos(l)))
        .collect();
    let bb = perpetuum_geom::Aabb::containing(&all).unwrap_or(perpetuum_geom::Aabb::new(
        perpetuum_geom::Point2::ORIGIN,
        perpetuum_geom::Point2::new(1.0, 1.0),
    ));
    let margin = 0.05 * bb.width().max(bb.height()).max(1.0);
    let (x0, y0) = (bb.min.x - margin, bb.min.y - margin);
    let w = bb.width() + 2.0 * margin;
    let h = bb.height() + 2.0 * margin;

    let (tau_min, tau_max) =
        cycles.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &c| (lo.min(c), hi.max(c)));
    let shade = |tau: f64| -> u8 {
        // Dark (40) for τ_min, light (210) for τ_max.
        if tau_max <= tau_min {
            120
        } else {
            (40.0 + 170.0 * (tau - tau_min) / (tau_max - tau_min)) as u8
        }
    };

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"{x0} {y0} {w} {h}\" \
         width=\"800\" height=\"800\">\n"
    ));
    svg.push_str(&format!(
        "<rect x=\"{x0}\" y=\"{y0}\" width=\"{w}\" height=\"{h}\" fill=\"#fcfcf8\"/>\n"
    ));

    // Tours (drawn first, under the nodes).
    for (l, tour) in set.tours().iter().enumerate() {
        if tour.len() < 2 {
            continue;
        }
        let color = TOUR_COLORS[l % TOUR_COLORS.len()];
        let mut path = String::new();
        for (i, &node) in tour.nodes().iter().enumerate() {
            let p = if node < n { network.sensor_pos(node) } else { network.depot_pos(node - n) };
            path.push_str(&format!("{}{:.1},{:.1} ", if i == 0 { "M" } else { "L" }, p.x, p.y));
        }
        path.push('Z');
        svg.push_str(&format!(
            "<path d=\"{path}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"{:.2}\" \
             stroke-opacity=\"0.8\"/>\n",
            w / 400.0
        ));
    }

    // Sensors.
    for (i, &cycle) in cycles.iter().enumerate() {
        let p = network.sensor_pos(i);
        let g = shade(cycle);
        let covered = set.contains_sensor(network.sensor_node(i));
        svg.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{:.2}\" fill=\"rgb({g},{g},{g})\" \
             stroke=\"{}\" stroke-width=\"{:.2}\"/>\n",
            p.x,
            p.y,
            w / 180.0,
            if covered { "#000000" } else { "none" },
            w / 900.0,
        ));
    }

    // Depots.
    for l in 0..network.q() {
        let p = network.depot_pos(l);
        let s = w / 70.0;
        let color = TOUR_COLORS[l % TOUR_COLORS.len()];
        svg.push_str(&format!(
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{s:.1}\" height=\"{s:.1}\" \
             fill=\"{color}\" stroke=\"#222\" stroke-width=\"{:.2}\"/>\n",
            p.x - s / 2.0,
            p.y - s / 2.0,
            w / 900.0,
        ));
    }

    svg.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\" font-family=\"monospace\" font-size=\"{:.1}\">{}</text>\n",
        x0 + margin * 0.4,
        y0 + margin * 0.8,
        w / 45.0,
        xml_escape(title),
    ));
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_core::qtsp::q_rooted_tsp;
    use perpetuum_core::schedule::TourSet;
    use perpetuum_geom::Point2;

    fn setup() -> (Network, Vec<f64>, TourSet) {
        let sensors =
            vec![Point2::new(100.0, 100.0), Point2::new(900.0, 100.0), Point2::new(500.0, 900.0)];
        let depots = vec![Point2::new(500.0, 500.0), Point2::new(0.0, 0.0)];
        let network = Network::new(sensors, depots);
        let qt = q_rooted_tsp(network.dist(), &[0, 1, 2], &network.depot_nodes(), 0);
        let set = TourSet::from_qtours(qt, |v| v >= 3);
        (network, vec![1.0, 10.0, 50.0], set)
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let (network, cycles, set) = setup();
        let svg = render_tour_set_svg(&network, &cycles, &set, "test <render>");
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 3 sensors, 2 depots, at least one tour path.
        assert_eq!(svg.matches("<circle").count(), 3);
        assert_eq!(svg.matches("<rect").count(), 3); // background + 2 depots
        assert!(svg.matches("<path").count() >= 1);
        // Title is XML-escaped.
        assert!(svg.contains("test &lt;render&gt;"));
        assert!(!svg.contains("test <render>"));
    }

    #[test]
    fn covered_sensors_are_outlined() {
        let (network, cycles, set) = setup();
        let svg = render_tour_set_svg(&network, &cycles, &set, "t");
        // All three sensors are covered → all circles get a black outline.
        assert_eq!(svg.matches("stroke=\"#000000\"").count(), 3);
    }

    #[test]
    fn idle_charger_tours_are_skipped() {
        let (network, cycles, _) = setup();
        // Tour set covering nothing: only singleton tours.
        let qt = q_rooted_tsp(network.dist(), &[], &network.depot_nodes(), 0);
        let set = TourSet::from_qtours(qt, |v| v >= 3);
        let svg = render_tour_set_svg(&network, &cycles, &set, "idle");
        assert_eq!(svg.matches("<path").count(), 0);
    }

    #[test]
    #[should_panic(expected = "one cycle per sensor")]
    fn cycle_count_checked() {
        let (network, _, set) = setup();
        render_tour_set_svg(&network, &[1.0], &set, "bad");
    }
}
