#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! `perpetuum-exp` — reproduce the figures of the ICPP 2014 paper.
//!
//! ```text
//! perpetuum-exp --figure fig1a [--topologies 100] [--seed 42] [--out results] [--scale 1.0]
//! perpetuum-exp --all [--topologies 100] ...
//! perpetuum-exp --list
//! ```

use perpetuum_exp::ablation::{run_ablation, AblationId};
use perpetuum_exp::extras::{run_extension, ExtensionId};
use perpetuum_exp::figures::{run_figure_scaled, FigureId};
use perpetuum_exp::output::{render_table, write_files};
use perpetuum_exp::plot::render_ascii;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    figures: Vec<FigureId>,
    ablations: Vec<AblationId>,
    extensions: Vec<ExtensionId>,
    topologies: usize,
    seed: u64,
    out: Option<PathBuf>,
    scale: f64,
    plot: bool,
    render_topology: Option<PathBuf>,
    report: Option<PathBuf>,
    scenarios: Vec<PathBuf>,
    validate: Vec<PathBuf>,
}

const USAGE: &str = "\
perpetuum-exp: reproduce the evaluation figures of
  \"Towards Perpetual Sensor Networks via Deploying Multiple Mobile
   Wireless Chargers\" (ICPP 2014)

USAGE:
  perpetuum-exp --figure <id>     run one figure (fig1a fig1b fig2a fig2b fig3 fig4 fig5 fig6)
  perpetuum-exp --ablation <id>   run one ablation (rounding | polish | repair | routing)
  perpetuum-exp --extension <id>  run one extension experiment (burst | minmax | range | speed
                                  | noise | ratio | aging | deploy | robustness | drift)
  perpetuum-exp --all             run every figure, ablation and extension
  perpetuum-exp --list            list figure ids and captions
  perpetuum-exp validate <FILE.json>...
                                  parse + validate scenario JSON files; prints one line
                                  per file and exits non-zero if any is invalid

OPTIONS:
  --topologies <N>   topologies averaged per data point (default 100, as the paper)
  --seed <S>         master seed (default 42)
  --out <DIR>        also write <DIR>/<fig>.csv and <DIR>/<fig>.json
  --scale <F>        scale the monitoring period T by F (default 1.0; use
                     e.g. 0.1 for a quick pass)
  --plot             also render each result as an ASCII chart
  --render-topology <FILE.svg>
                     render one paper-default topology with its Algorithm 3
                     full-network tours as an SVG and exit
  --report <FILE.md> after running (or from an existing --out directory),
                     write a markdown report of every result JSON in --out
  --scenario <FILE.json>
                     run a custom experiment described in JSON (see
                     CustomExperiment in perpetuum-exp's docs)
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        figures: Vec::new(),
        ablations: Vec::new(),
        extensions: Vec::new(),
        topologies: 100,
        seed: 42,
        out: None,
        scale: 1.0,
        plot: false,
        render_topology: None,
        report: None,
        scenarios: Vec::new(),
        validate: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    let mut listed = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--figure" | "-f" => {
                let v = it.next().ok_or("--figure needs a value")?;
                let id = FigureId::parse(&v).ok_or(format!("unknown figure '{v}'"))?;
                args.figures.push(id);
            }
            "--ablation" => {
                let v = it.next().ok_or("--ablation needs a value")?;
                let id = AblationId::parse(&v).ok_or(format!("unknown ablation '{v}'"))?;
                args.ablations.push(id);
            }
            "--extension" | "-e" => {
                let v = it.next().ok_or("--extension needs a value")?;
                let id = ExtensionId::parse(&v).ok_or(format!("unknown extension '{v}'"))?;
                args.extensions.push(id);
            }
            "--all" | "-a" => {
                args.figures.extend(FigureId::ALL);
                args.ablations.extend(AblationId::ALL);
                args.extensions.extend(ExtensionId::ALL);
            }
            "--list" | "-l" => {
                for id in FigureId::ALL {
                    println!("{:6}  {}", id.id(), id.title());
                }
                for id in AblationId::ALL {
                    println!("{:6}  {}", id.id(), id.title());
                }
                for id in ExtensionId::ALL {
                    println!("{:6}  {}", id.id(), id.title());
                }
                listed = true;
            }
            "--topologies" | "-t" => {
                let v = it.next().ok_or("--topologies needs a value")?;
                args.topologies = v.parse().map_err(|_| format!("bad topology count '{v}'"))?;
            }
            "--seed" | "-s" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--out" | "-o" => {
                let v = it.next().ok_or("--out needs a value")?;
                args.out = Some(PathBuf::from(v));
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = v.parse().map_err(|_| format!("bad scale '{v}'"))?;
                if args.scale <= 0.0 {
                    return Err("--scale must be positive".into());
                }
            }
            "--plot" | "-p" => args.plot = true,
            "--render-topology" => {
                let v = it.next().ok_or("--render-topology needs a file path")?;
                args.render_topology = Some(PathBuf::from(v));
            }
            "--report" => {
                let v = it.next().ok_or("--report needs a file path")?;
                args.report = Some(PathBuf::from(v));
            }
            "--scenario" => {
                let v = it.next().ok_or("--scenario needs a file path")?;
                args.scenarios.push(PathBuf::from(v));
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                listed = true;
            }
            "validate" => {
                let paths: Vec<PathBuf> = it.by_ref().map(PathBuf::from).collect();
                if paths.is_empty() {
                    return Err("validate needs at least one scenario file".into());
                }
                args.validate = paths;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.figures.is_empty()
        && args.ablations.is_empty()
        && args.extensions.is_empty()
        && args.render_topology.is_none()
        && args.report.is_none()
        && args.scenarios.is_empty()
        && args.validate.is_empty()
        && !listed
    {
        return Err(
            "nothing to do: pass --figure <id>, --ablation <id>, --extension <id>, --all, or --list"
                .into(),
        );
    }
    if args.topologies == 0 {
        return Err("--topologies must be at least 1".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &args.render_topology {
        use perpetuum_core::qtsp::q_rooted_tsp;
        use perpetuum_core::schedule::TourSet;
        let scenario = perpetuum_exp::Scenario::paper_fixed();
        let topo = scenario.build_topology(args.seed, 0);
        let all: Vec<usize> = (0..topo.network.n()).collect();
        let qt = q_rooted_tsp(topo.network.dist(), &all, &topo.network.depot_nodes(), 0);
        let n = topo.network.n();
        let set = TourSet::from_qtours(qt, |v| v >= n);
        let svg = perpetuum_exp::viz::render_tour_set_svg(
            &topo.network,
            &topo.init_cycles,
            &set,
            &format!("paper-default topology, seed {} (full-network tours)", args.seed),
        );
        if let Err(e) = std::fs::write(path, svg) {
            eprintln!("error writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }

    if !args.validate.is_empty() {
        let mut failed = false;
        for path in &args.validate {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{}: unreadable: {e}", path.display());
                    failed = true;
                    continue;
                }
            };
            // Accept both a bare `Scenario` object and the wrapper shapes
            // used by custom-experiment files and daemon request bodies
            // (`{"scenario": {...}, ...}`) — catching a bad file *before*
            // a deploy is the point of this subcommand.
            let result = match serde_json::parse_value(&text) {
                Ok(tree) => match tree.get("scenario") {
                    Some(sub) => perpetuum_exp::scenario::world_from_value(sub, args.seed, 0),
                    None => perpetuum_exp::scenario::parse_world(&text, args.seed, 0),
                },
                Err(_) => perpetuum_exp::scenario::parse_world(&text, args.seed, 0),
            };
            match result {
                Ok(parsed) => println!(
                    "{}: ok (n={}, q={}, horizon={})",
                    path.display(),
                    parsed.topology.network.n(),
                    parsed.topology.network.q(),
                    parsed.scenario.horizon,
                ),
                Err(e) => {
                    eprintln!("{}: invalid: {e}", path.display());
                    failed = true;
                }
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
    }

    let mut outputs: Vec<perpetuum_exp::FigureData> = Vec::new();
    for id in &args.figures {
        let start = std::time::Instant::now();
        let fd = run_figure_scaled(*id, args.topologies, args.seed, args.scale);
        println!("{}", render_table(&fd));
        if args.plot {
            println!("{}", render_ascii(&fd, 64, 18));
        }
        println!("({} in {:.1?})\n", fd.id, start.elapsed());
        outputs.push(fd);
    }
    for id in &args.ablations {
        let start = std::time::Instant::now();
        let fd = run_ablation(*id, args.topologies, args.seed);
        println!("{}", render_table(&fd));
        if args.plot {
            println!("{}", render_ascii(&fd, 64, 18));
        }
        println!("({} in {:.1?})\n", fd.id, start.elapsed());
        outputs.push(fd);
    }
    for path in &args.scenarios {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error reading {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let exp = match perpetuum_exp::CustomExperiment::from_json(&text) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("error parsing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let start = std::time::Instant::now();
        let fd = exp.run(args.topologies, args.seed);
        println!("{}", render_table(&fd));
        if args.plot {
            println!("{}", render_ascii(&fd, 64, 18));
        }
        println!("({} in {:.1?})\n", fd.id, start.elapsed());
        outputs.push(fd);
    }
    for id in &args.extensions {
        let start = std::time::Instant::now();
        let fd = run_extension(*id, args.topologies, args.seed);
        println!("{}", render_table(&fd));
        if args.plot {
            println!("{}", render_ascii(&fd, 64, 18));
        }
        println!("({} in {:.1?})\n", fd.id, start.elapsed());
        outputs.push(fd);
    }
    if let Some(dir) = &args.out {
        for fd in &outputs {
            if let Err(e) = write_files(fd, dir) {
                eprintln!("error writing {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(report_path) = &args.report {
        // Prefer the persisted directory (it may hold results from earlier
        // invocations); fall back to this run's in-memory outputs.
        let figures = match &args.out {
            Some(dir) => match perpetuum_exp::report::load_results_dir(dir) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error loading {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            },
            None => outputs,
        };
        let md =
            perpetuum_exp::report::render_markdown_report(&figures, "perpetuum experiment report");
        if let Err(e) = std::fs::write(report_path, md) {
            eprintln!("error writing {}: {e}", report_path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", report_path.display());
    }
    ExitCode::SUCCESS
}
