//! Markdown report generation.
//!
//! `perpetuum-exp --out results --report report.md` turns every
//! `results/*.json` produced by the runners into one markdown document
//! with a table per experiment — the raw material EXPERIMENTS.md is
//! curated from.

use crate::figures::FigureData;
use std::path::Path;

/// Renders one figure as a markdown section with a pipe table.
pub fn render_markdown_section(fd: &FigureData) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {}\n\n", fd.title));
    out.push_str(&format!(
        "{} topologies per point, seed {}, costs in km (mean ± sd).\n\n",
        fd.topologies, fd.seed
    ));

    // Header row.
    out.push_str(&format!("| {} |", fd.x_label));
    for s in &fd.series {
        out.push_str(&format!(" {} |", s.name));
    }
    let two_cost_series = fd.series.len() == 2;
    if two_cost_series {
        out.push_str(" ratio |");
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &fd.series {
        out.push_str("---|");
    }
    if two_cost_series {
        out.push_str("---|");
    }
    out.push('\n');

    for (i, &x) in fd.xs.iter().enumerate() {
        out.push_str(&format!("| {x} |"));
        for s in &fd.series {
            out.push_str(&format!(" {:.1} ± {:.1} |", s.values[i], s.std_devs[i]));
        }
        if two_cost_series {
            let denom = fd.series[1].values[i];
            if denom.abs() > f64::MIN_POSITIVE {
                out.push_str(&format!(" {:.3} |", fd.series[0].values[i] / denom));
            } else {
                out.push_str(" - |");
            }
        }
        out.push('\n');
    }

    let deaths: usize = fd.series.iter().flat_map(|s| s.deaths.iter()).sum();
    out.push_str(&format!("\nTotal sensor deaths across all runs: **{deaths}**.\n\n"));
    out
}

/// Renders a full report from multiple figures.
pub fn render_markdown_report(figures: &[FigureData], heading: &str) -> String {
    let mut out = format!("# {heading}\n\n");
    for fd in figures {
        out.push_str(&render_markdown_section(fd));
    }
    out
}

/// Loads every `*.json` under `dir` (as written by
/// [`crate::output::write_files`]) in lexicographic order.
pub fn load_results_dir(dir: &Path) -> std::io::Result<Vec<FigureData>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let text = std::fs::read_to_string(&p)?;
        let fd: FigureData = serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        out.push(fd);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Series;
    use crate::output::write_files;

    fn sample(id: &str) -> FigureData {
        FigureData {
            id: id.into(),
            title: format!("Figure {id}"),
            x_label: "n".into(),
            xs: vec![100.0, 200.0],
            series: vec![
                Series {
                    name: "A".into(),
                    values: vec![10.0, 20.0],
                    std_devs: vec![1.0, 2.0],
                    deaths: vec![0, 0],
                },
                Series {
                    name: "B".into(),
                    values: vec![20.0, 50.0],
                    std_devs: vec![2.0, 5.0],
                    deaths: vec![0, 0],
                },
            ],
            topologies: 7,
            seed: 3,
        }
    }

    #[test]
    fn section_contains_table_and_ratio() {
        let md = render_markdown_section(&sample("x"));
        assert!(md.contains("## Figure x"));
        assert!(md.contains("| n | A | B | ratio |"));
        assert!(md.contains("| 100 | 10.0 ± 1.0 | 20.0 ± 2.0 | 0.500 |"));
        assert!(md.contains("deaths across all runs: **0**"));
    }

    #[test]
    fn report_concatenates_sections() {
        let md = render_markdown_report(&[sample("a"), sample("b")], "Results");
        assert!(md.starts_with("# Results"));
        assert!(md.contains("## Figure a"));
        assert!(md.contains("## Figure b"));
    }

    #[test]
    fn round_trip_through_results_dir() {
        let dir = std::env::temp_dir().join("perpetuum_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Clean stale files from earlier runs.
        for e in std::fs::read_dir(&dir).unwrap().flatten() {
            std::fs::remove_file(e.path()).ok();
        }
        write_files(&sample("fig_a"), &dir).unwrap();
        write_files(&sample("fig_b"), &dir).unwrap();
        let loaded = load_results_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].id, "fig_a");
        assert_eq!(loaded[1].id, "fig_b");
        std::fs::remove_dir_all(&dir).ok();
    }
}
