//! Experiment scenarios: the workload generator of Section VII.A.
//!
//! Defaults match the paper exactly: `n` sensors uniform in a 1000 m ×
//! 1000 m field, base station at the centre, `q = 5` depots (one at the
//! base station, the rest uniform), `T = 1000`, `ΔT = 10`, `τ_min = 1`,
//! `τ_max = 50`, linear cycle distribution with `σ = 2`, and each data
//! point averaged over 100 random topologies.

use perpetuum_core::network::Network;
use perpetuum_energy::CycleDistribution;
use perpetuum_geom::Point2;
use perpetuum_geom::{deploy, derived_rng, Field};
use perpetuum_sim::{
    run_with_faults, FaultModel, GreedyPolicy, MtdPolicy, SimConfig, SimResult, VarPolicy, World,
    WorldError,
};
use serde::{Deserialize, Serialize};

/// Why a scenario description is rejected. Every malformed input a user
/// can reach through `--scenario` JSON surfaces as one of these instead
/// of a panic deep inside the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The JSON itself failed to parse.
    Json(String),
    /// A numeric field is NaN or infinite.
    NonFinite {
        /// The offending field.
        field: &'static str,
        /// Its value.
        value: f64,
    },
    /// A field that must be strictly positive is not.
    NonPositive {
        /// The offending field.
        field: &'static str,
        /// Its value.
        value: f64,
    },
    /// `q = 0`: an empty depot set can never charge anything.
    EmptyDepots,
    /// `n = 0` (or a zero entry in `network_sizes`).
    NoSensors,
    /// `τ_max < τ_min`.
    BadCycleRange {
        /// Lower bound.
        tau_min: f64,
        /// Upper bound.
        tau_max: f64,
    },
    /// The experiment lists no algorithms to compare.
    NoAlgos,
    /// The fault model's parameters are out of range.
    Faults(String),
    /// World construction rejected the realised topology.
    World(WorldError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Json(e) => write!(f, "invalid JSON: {e}"),
            ScenarioError::NonFinite { field, value } => {
                write!(f, "{field} must be finite, got {value}")
            }
            ScenarioError::NonPositive { field, value } => {
                write!(f, "{field} must be positive, got {value}")
            }
            ScenarioError::EmptyDepots => write!(f, "q must be at least 1 (empty depot set)"),
            ScenarioError::NoSensors => write!(f, "n must be at least 1 (no sensors)"),
            ScenarioError::BadCycleRange { tau_min, tau_max } => {
                write!(f, "tau_max {tau_max} is below tau_min {tau_min}")
            }
            ScenarioError::NoAlgos => write!(f, "algos must list at least one algorithm"),
            ScenarioError::Faults(e) => write!(f, "invalid fault model: {e}"),
            ScenarioError::World(e) => write!(f, "invalid world: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<WorldError> for ScenarioError {
    fn from(e: WorldError) -> Self {
        ScenarioError::World(e)
    }
}

/// Which algorithm a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algo {
    /// Algorithm 3, planned once from the initial cycles.
    Mtd,
    /// `MinTotalDistance-var`: Algorithm 3 + applicability-band replanning.
    MtdVar,
    /// The greedy threshold baseline.
    Greedy,
}

impl Algo {
    /// Display name (matches the paper's figure legends).
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Mtd => "MinTotalDistance",
            Algo::MtdVar => "MinTotalDistance-var",
            Algo::Greedy => "Greedy",
        }
    }
}

/// How sensors are placed in the field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Deployment {
    /// Uniform random — the paper's evaluation setting.
    Uniform,
    /// Low-discrepancy Halton pattern (engineered deployments).
    Halton,
    /// Clustered around `clusters` random hot spots with the given spread.
    Clustered {
        /// Number of cluster centres.
        clusters: usize,
        /// Triangular-kernel spread around each centre (m).
        spread: f64,
    },
}

/// A fully specified experiment scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Field width and height (m).
    pub field_size: f64,
    /// Number of sensors `n`.
    pub n: usize,
    /// Number of depots / chargers `q`.
    pub q: usize,
    /// Minimum maximum-charging-cycle `τ_min`.
    pub tau_min: f64,
    /// Maximum maximum-charging-cycle `τ_max`.
    pub tau_max: f64,
    /// Cycle distribution (linear-in-distance or uniform random).
    pub dist: CycleDistribution,
    /// Monitoring period `T`.
    pub horizon: f64,
    /// Slot length `ΔT` (variable-cycle experiments).
    pub slot: f64,
    /// Whether cycles vary over time (Section VI) or stay fixed (Section V).
    pub variable: bool,
    /// Sensor placement pattern (the paper uses [`Deployment::Uniform`]).
    pub deployment: Deployment,
}

impl Scenario {
    /// The paper's default setting (fixed cycles).
    pub fn paper_fixed() -> Self {
        Self {
            field_size: 1000.0,
            n: 200,
            q: 5,
            tau_min: 1.0,
            tau_max: 50.0,
            dist: CycleDistribution::linear_default(),
            horizon: 1000.0,
            slot: 10.0,
            variable: false,
            deployment: Deployment::Uniform,
        }
    }

    /// The paper's default variable-cycle setting.
    pub fn paper_variable() -> Self {
        Self { variable: true, ..Self::paper_fixed() }
    }

    /// The deployment field.
    pub fn field(&self) -> Field {
        Field::new(self.field_size, self.field_size)
    }

    /// Rejects scenarios that cannot be realised: NaN/non-positive sizes
    /// and periods, empty sensor or depot sets, inverted cycle ranges,
    /// degenerate deployments.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let positive = |field: &'static str, value: f64| -> Result<(), ScenarioError> {
            if !value.is_finite() {
                return Err(ScenarioError::NonFinite { field, value });
            }
            if value <= 0.0 {
                return Err(ScenarioError::NonPositive { field, value });
            }
            Ok(())
        };
        positive("field_size", self.field_size)?;
        if self.n == 0 {
            return Err(ScenarioError::NoSensors);
        }
        if self.q == 0 {
            return Err(ScenarioError::EmptyDepots);
        }
        positive("tau_min", self.tau_min)?;
        positive("tau_max", self.tau_max)?;
        if self.tau_max < self.tau_min {
            return Err(ScenarioError::BadCycleRange {
                tau_min: self.tau_min,
                tau_max: self.tau_max,
            });
        }
        positive("horizon", self.horizon)?;
        positive("slot", self.slot)?;
        if let Deployment::Clustered { clusters, spread } = self.deployment {
            if clusters == 0 {
                return Err(ScenarioError::NonPositive { field: "clusters", value: 0.0 });
            }
            if !spread.is_finite() {
                return Err(ScenarioError::NonFinite { field: "spread", value: spread });
            }
            if spread < 0.0 {
                return Err(ScenarioError::NonPositive { field: "spread", value: spread });
            }
        }
        Ok(())
    }

    /// Builds topology number `index` for this scenario under `master_seed`.
    ///
    /// Stream layout: sub-stream 0 drives positions, 1 drives cycles, 2
    /// drives in-simulation rate resampling — so e.g. changing `σ` never
    /// perturbs sensor placement across compared runs.
    pub fn build_topology(&self, master_seed: u64, index: u64) -> Topology {
        let field = self.field();
        let base = perpetuum_geom::derive_seed(master_seed, index);
        let mut pos_rng = derived_rng(base, 0);
        let sensors: Vec<Point2> = match self.deployment {
            Deployment::Uniform => deploy::uniform_deployment(field, self.n, &mut pos_rng),
            Deployment::Halton => {
                // Distinct deterministic pattern per topology index.
                deploy::halton_deployment(field, self.n, (index as usize) * self.n)
            }
            Deployment::Clustered { clusters, spread } => {
                deploy::clustered_deployment(field, clusters, self.n, spread, &mut pos_rng)
            }
        };
        let depots = deploy::place_depots(
            field,
            field.center(),
            self.q,
            deploy::DepotPlacement::OneAtBaseStation,
            &mut pos_rng,
        );
        // `auto` keeps the dense matrix at paper scale and switches to the
        // sparse pipeline above the node threshold — every consumer routes
        // distances through `dist_source()` either way.
        let network = Network::auto(sensors, depots);

        let bs = field.center();
        let mean_cycles =
            self.dist.mean_all(network.sensor_positions(), bs, self.tau_min, self.tau_max);
        let mut cyc_rng = derived_rng(base, 1);
        let init_cycles = self.dist.sample_all(
            network.sensor_positions(),
            bs,
            self.tau_min,
            self.tau_max,
            &mut cyc_rng,
        );

        Topology {
            network,
            mean_cycles,
            init_cycles,
            sim_seed: perpetuum_geom::derive_seed(base, 2),
        }
    }

    /// Builds the simulated world for a topology.
    pub fn build_world(&self, topo: &Topology) -> World {
        if self.variable {
            World::variable(
                topo.network.clone(),
                &topo.mean_cycles,
                self.dist,
                self.tau_min,
                self.tau_max,
            )
        } else {
            World::fixed(topo.network.clone(), &topo.init_cycles)
        }
    }

    /// Runs one `(algorithm, topology)` pair end to end.
    pub fn run_once(&self, algo: Algo, master_seed: u64, index: u64) -> SimResult {
        self.run_once_faulted(algo, master_seed, index, &FaultModel::none())
    }

    /// Like [`Scenario::run_once`] but subjects the run to a fault model
    /// (the robustness extension's entry point). With [`FaultModel::none`]
    /// this is bit-identical to [`Scenario::run_once`].
    pub fn run_once_faulted(
        &self,
        algo: Algo,
        master_seed: u64,
        index: u64,
        faults: &FaultModel,
    ) -> SimResult {
        realise_world(*self, master_seed, index).simulate(algo, faults)
    }
}

/// One realised scenario: the validated description plus the seeded
/// topology it produced and the simulated world over it — everything the
/// CLI and the serving layer need to plan or simulate a request.
#[derive(Debug, Clone)]
pub struct ParsedWorld {
    /// The scenario description.
    pub scenario: Scenario,
    /// The realised topology (network geometry, cycles, sim seed).
    pub topology: Topology,
    /// The simulated world over the topology.
    pub world: World,
}

impl ParsedWorld {
    /// The fixed-cycle planning instance over the realised topology — the
    /// input Algorithm 3 ([`perpetuum_core::mtd::plan_min_total_distance`])
    /// takes. Distances dispatch through the network's `dist_source()`
    /// (dense at paper scale, sparse above the node threshold).
    pub fn instance(&self) -> perpetuum_core::network::Instance {
        perpetuum_core::network::Instance::new(
            self.topology.network.clone(),
            self.topology.init_cycles.clone(),
            self.scenario.horizon,
        )
    }

    /// Runs one algorithm over this world under a fault model, consuming
    /// the realised world (simulation mutates battery state).
    pub fn simulate(self, algo: Algo, faults: &FaultModel) -> SimResult {
        let cfg = SimConfig {
            horizon: self.scenario.horizon,
            slot: self.scenario.slot,
            seed: self.topology.sim_seed,
            charger_speed: None,
        };
        match algo {
            Algo::Mtd => {
                let mut p = MtdPolicy::new(&self.topology.network);
                run_with_faults(self.world, &cfg, &mut p, faults)
            }
            Algo::MtdVar => {
                let mut p = VarPolicy::new(&self.topology.network);
                let mut r = run_with_faults(self.world, &cfg, &mut p, faults);
                r.replans = p.replans();
                r
            }
            Algo::Greedy => {
                let mut p = GreedyPolicy::new(&self.topology.network, self.scenario.tau_min);
                run_with_faults(self.world, &cfg, &mut p, faults)
            }
        }
    }
}

/// Parses a bare [`Scenario`] JSON object, validates it, and realises
/// topology number `index` under `master_seed` — the single scenario→world
/// parser shared by the CLI and the serving daemon, with every malformed
/// input surfacing as a typed [`ScenarioError`].
pub fn parse_world(text: &str, master_seed: u64, index: u64) -> Result<ParsedWorld, ScenarioError> {
    let scenario: Scenario =
        serde_json::from_str(text).map_err(|e| ScenarioError::Json(e.to_string()))?;
    scenario.validate()?;
    Ok(realise_world(scenario, master_seed, index))
}

/// [`parse_world`] over an already-parsed JSON tree — for callers that
/// need the raw [`serde_json::Value`] too (the serving daemon hashes the
/// tree for its plan cache before building anything).
pub fn world_from_value(
    v: &serde_json::Value,
    master_seed: u64,
    index: u64,
) -> Result<ParsedWorld, ScenarioError> {
    let scenario = scenario_from_value(v)?;
    Ok(realise_world(scenario, master_seed, index))
}

/// Parses and validates a [`Scenario`] from a JSON tree.
pub fn scenario_from_value(v: &serde_json::Value) -> Result<Scenario, ScenarioError> {
    use serde::Deserialize as _;
    let scenario = Scenario::from_value(v).map_err(|e| ScenarioError::Json(e.0))?;
    scenario.validate()?;
    Ok(scenario)
}

/// Realises an already-validated scenario: builds the seeded topology and
/// the simulated world over it.
pub fn realise_world(scenario: Scenario, master_seed: u64, index: u64) -> ParsedWorld {
    let topology = scenario.build_topology(master_seed, index);
    let world = scenario.build_world(&topology);
    ParsedWorld { scenario, topology, world }
}

/// A custom experiment: a scenario plus the algorithms to compare and a
/// sweep over network sizes — loadable from JSON for the CLI's
/// `--scenario` flag.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CustomExperiment {
    /// Human-readable name (used as the table title and file stem).
    pub name: String,
    /// The base scenario.
    pub scenario: Scenario,
    /// Algorithms to compare.
    pub algos: Vec<Algo>,
    /// Network sizes to sweep (empty = just the scenario's own `n`).
    #[serde(default)]
    pub network_sizes: Vec<usize>,
    /// Fault model every run is subjected to (absent = fault-free, which
    /// is bit-identical to the plain engine).
    #[serde(default)]
    pub faults: FaultModel,
}

impl CustomExperiment {
    /// Parses and validates a JSON description. Malformed JSON and
    /// unrealisable scenarios (NaN/negative sizes, `q = 0`, inverted
    /// cycle ranges, no algorithms…) come back as a typed
    /// [`ScenarioError`] instead of a panic later in the pipeline.
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        let exp: Self =
            serde_json::from_str(text).map_err(|e| ScenarioError::Json(e.to_string()))?;
        exp.validate()?;
        Ok(exp)
    }

    /// Structural validation: the scenario must be realisable, at least
    /// one algorithm must be listed, and every swept network size must be
    /// non-zero.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.scenario.validate()?;
        if self.algos.is_empty() {
            return Err(ScenarioError::NoAlgos);
        }
        if self.network_sizes.contains(&0) {
            return Err(ScenarioError::NoSensors);
        }
        self.faults.validate().map_err(ScenarioError::Faults)?;
        Ok(())
    }

    /// Runs the experiment, averaging each point over `topologies`
    /// topologies.
    pub fn run(&self, topologies: usize, seed: u64) -> crate::figures::FigureData {
        use crate::figures::Series;
        use perpetuum_par::{mean, par_map, std_dev};
        let ns: Vec<usize> = if self.network_sizes.is_empty() {
            vec![self.scenario.n]
        } else {
            self.network_sizes.clone()
        };
        let mut series: Vec<Series> = self
            .algos
            .iter()
            .map(|a| Series {
                name: a.name().to_string(),
                values: Vec::new(),
                std_devs: Vec::new(),
                deaths: Vec::new(),
            })
            .collect();
        for &n in &ns {
            let s = Scenario { n, ..self.scenario };
            for (ai, &algo) in self.algos.iter().enumerate() {
                let results =
                    par_map(topologies, |i| s.run_once_faulted(algo, seed, i as u64, &self.faults));
                let costs: Vec<f64> = results.iter().map(|r| r.service_cost / 1000.0).collect();
                series[ai].values.push(mean(&costs));
                series[ai].std_devs.push(std_dev(&costs));
                series[ai].deaths.push(results.iter().map(|r| r.deaths.len()).sum());
            }
        }
        let id: String =
            self.name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
        crate::figures::FigureData {
            id,
            title: self.name.clone(),
            x_label: "network size n".to_string(),
            xs: ns.iter().map(|&n| n as f64).collect(),
            series,
            topologies,
            seed,
        }
    }
}

/// One concrete random topology of a scenario.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Sensor + depot geometry.
    pub network: Network,
    /// Mean cycle `τ̄_i` per sensor (drives slot resampling).
    pub mean_cycles: Vec<f64>,
    /// Initial realised cycles (fixed-cycle experiments use these for the
    /// whole run).
    pub init_cycles: Vec<f64>,
    /// Seed for the in-simulation rate-resampling stream.
    pub sim_seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_7a() {
        let s = Scenario::paper_fixed();
        assert_eq!(s.field_size, 1000.0);
        assert_eq!(s.q, 5);
        assert_eq!(s.tau_min, 1.0);
        assert_eq!(s.tau_max, 50.0);
        assert_eq!(s.horizon, 1000.0);
        assert_eq!(s.slot, 10.0);
        assert!(!s.variable);
        assert!(Scenario::paper_variable().variable);
    }

    #[test]
    fn topology_is_deterministic() {
        let s = Scenario { n: 30, ..Scenario::paper_fixed() };
        let a = s.build_topology(42, 3);
        let b = s.build_topology(42, 3);
        assert_eq!(a.init_cycles, b.init_cycles);
        assert_eq!(a.sim_seed, b.sim_seed);
        assert_eq!(a.network.sensor_positions(), b.network.sensor_positions());
        let c = s.build_topology(42, 4);
        assert_ne!(a.init_cycles, c.init_cycles);
    }

    #[test]
    fn first_depot_at_base_station() {
        let s = Scenario { n: 10, ..Scenario::paper_fixed() };
        let t = s.build_topology(7, 0);
        assert_eq!(t.network.depot_pos(0), s.field().center());
    }

    #[test]
    fn cycles_within_range() {
        let s = Scenario { n: 100, ..Scenario::paper_fixed() };
        let t = s.build_topology(11, 0);
        assert!(t.init_cycles.iter().all(|&c| (s.tau_min..=s.tau_max).contains(&c)));
        assert!(t.mean_cycles.iter().all(|&c| (s.tau_min..=s.tau_max).contains(&c)));
    }

    #[test]
    fn deployment_kinds_produce_valid_topologies() {
        for deployment in [
            Deployment::Uniform,
            Deployment::Halton,
            Deployment::Clustered { clusters: 4, spread: 60.0 },
        ] {
            let s = Scenario { n: 25, deployment, ..Scenario::paper_fixed() };
            let t = s.build_topology(3, 1);
            assert_eq!(t.network.n(), 25);
            let bounds = s.field().bounds();
            assert!(t.network.sensor_positions().iter().all(|&p| bounds.contains(p)));
            // Halton is deterministic per index, independent of the seed.
            if deployment == Deployment::Halton {
                let t2 =
                    Scenario { n: 25, deployment, ..Scenario::paper_fixed() }.build_topology(99, 1);
                assert_eq!(t.network.sensor_positions(), t2.network.sensor_positions());
            }
        }
    }

    #[test]
    fn custom_experiment_round_trips_and_runs() {
        let json = r#"{
            "name": "tiny sweep",
            "scenario": {
                "field_size": 1000.0, "n": 10, "q": 3,
                "tau_min": 1.0, "tau_max": 20.0,
                "dist": { "Linear": { "sigma": 2.0 } },
                "horizon": 50.0, "slot": 10.0,
                "variable": false, "deployment": "Uniform"
            },
            "algos": ["Mtd", "Greedy"],
            "network_sizes": [10, 20]
        }"#;
        let exp = match CustomExperiment::from_json(json) {
            Ok(e) => e,
            Err(e) => panic!("valid scenario rejected: {e}"),
        };
        assert_eq!(exp.algos.len(), 2);
        let fd = exp.run(2, 5);
        assert_eq!(fd.xs, vec![10.0, 20.0]);
        assert_eq!(fd.series.len(), 2);
        assert!(fd.series.iter().all(|s| s.deaths.iter().all(|&d| d == 0)));
        // MTD wins under the linear distribution here too.
        assert!(fd.series[0].values[1] < fd.series[1].values[1]);
        // Bad JSON reports an error instead of panicking.
        assert!(matches!(CustomExperiment::from_json("{"), Err(ScenarioError::Json(_))));
    }

    #[test]
    fn malformed_scenarios_are_rejected_with_typed_errors() {
        let base = Scenario { n: 10, ..Scenario::paper_fixed() };
        assert_eq!(base.validate(), Ok(()));
        assert_eq!(Scenario { q: 0, ..base }.validate(), Err(ScenarioError::EmptyDepots));
        assert_eq!(Scenario { n: 0, ..base }.validate(), Err(ScenarioError::NoSensors));
        assert_eq!(
            Scenario { field_size: -10.0, ..base }.validate(),
            Err(ScenarioError::NonPositive { field: "field_size", value: -10.0 })
        );
        assert!(matches!(
            Scenario { horizon: f64::NAN, ..base }.validate(),
            Err(ScenarioError::NonFinite { field: "horizon", .. })
        ));
        assert_eq!(
            Scenario { tau_min: 5.0, tau_max: 2.0, ..base }.validate(),
            Err(ScenarioError::BadCycleRange { tau_min: 5.0, tau_max: 2.0 })
        );
        assert_eq!(
            Scenario { slot: 0.0, ..base }.validate(),
            Err(ScenarioError::NonPositive { field: "slot", value: 0.0 })
        );
        assert!(matches!(
            Scenario { deployment: Deployment::Clustered { clusters: 0, spread: 1.0 }, ..base }
                .validate(),
            Err(ScenarioError::NonPositive { field: "clusters", .. })
        ));
        // Errors print actionable diagnostics.
        let msg = ScenarioError::BadCycleRange { tau_min: 5.0, tau_max: 2.0 }.to_string();
        assert!(msg.contains("tau_max 2"), "{msg}");
    }

    #[test]
    fn from_json_rejects_unrealisable_scenarios() {
        // Parses fine, but q = 0 can never charge anything.
        let json = r#"{
            "name": "bad", "scenario": {
                "field_size": 1000.0, "n": 10, "q": 0,
                "tau_min": 1.0, "tau_max": 20.0,
                "dist": { "Linear": { "sigma": 2.0 } },
                "horizon": 50.0, "slot": 10.0,
                "variable": false, "deployment": "Uniform"
            },
            "algos": ["Mtd"]
        }"#;
        assert_eq!(CustomExperiment::from_json(json).unwrap_err(), ScenarioError::EmptyDepots);
        // An empty algorithm list is an error too.
        let no_algos = json.replace(r#""q": 0"#, r#""q": 3"#).replace(r#"["Mtd"]"#, "[]");
        assert_eq!(CustomExperiment::from_json(&no_algos).unwrap_err(), ScenarioError::NoAlgos);
    }

    #[test]
    fn parse_world_realises_and_rejects_like_run_once() {
        let json = r#"{
            "field_size": 1000.0, "n": 12, "q": 3,
            "tau_min": 1.0, "tau_max": 20.0,
            "dist": { "Linear": { "sigma": 2.0 } },
            "horizon": 60.0, "slot": 10.0,
            "variable": false, "deployment": "Uniform"
        }"#;
        let pw = match parse_world(json, 9, 0) {
            Ok(pw) => pw,
            Err(e) => panic!("valid scenario rejected: {e}"),
        };
        assert_eq!(pw.topology.network.n(), 12);
        assert_eq!(pw.topology.network.q(), 3);
        // The planning instance is buildable and plans feasibly.
        let inst = pw.instance();
        let plan = perpetuum_core::mtd::plan_min_total_distance(
            &inst,
            &perpetuum_core::mtd::MtdConfig::default(),
        );
        assert!(plan.service_cost() > 0.0);
        // simulate() goes through the exact run_once_faulted path.
        let via_parse = pw.simulate(Algo::Mtd, &FaultModel::none());
        let direct: Scenario = match serde_json::from_str(json) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        };
        assert_eq!(via_parse, direct.run_once(Algo::Mtd, 9, 0));
        // The typed error surface is shared with the CLI path.
        assert!(matches!(parse_world("{", 0, 0), Err(ScenarioError::Json(_))));
        let bad = json.replace(r#""q": 3"#, r#""q": 0"#);
        assert_eq!(parse_world(&bad, 0, 0).unwrap_err(), ScenarioError::EmptyDepots);
    }

    #[test]
    fn experiment_fault_block_parses_validates_and_runs() {
        let json = r#"{
            "name": "faulty", "scenario": {
                "field_size": 1000.0, "n": 10, "q": 3,
                "tau_min": 1.0, "tau_max": 20.0,
                "dist": { "Linear": { "sigma": 2.0 } },
                "horizon": 50.0, "slot": 10.0,
                "variable": false, "deployment": "Uniform"
            },
            "algos": ["Mtd"],
            "faults": { "chargers": { "mtbf": 20.0, "mttr": 10.0 }, "seed": 3 }
        }"#;
        let exp = match CustomExperiment::from_json(json) {
            Ok(e) => e,
            Err(e) => panic!("valid faulty experiment rejected: {e}"),
        };
        assert!(exp.faults.chargers.is_some());
        let fd = exp.run(2, 5);
        assert_eq!(fd.series.len(), 1);
        // An out-of-range fault model is a typed error, not a panic.
        let bad = json.replace(r#""mtbf": 20.0"#, r#""mtbf": -1.0"#);
        assert!(matches!(CustomExperiment::from_json(&bad), Err(ScenarioError::Faults(_))));
    }

    #[test]
    fn run_once_faulted_none_matches_run_once() {
        let s = Scenario { n: 12, horizon: 80.0, ..Scenario::paper_fixed() };
        let plain = s.run_once(Algo::Mtd, 9, 0);
        let faulted = s.run_once_faulted(Algo::Mtd, 9, 0, &FaultModel::none());
        assert_eq!(plain, faulted);
        // A breakdown-heavy model changes the outcome and records faults.
        let fm = FaultModel::none().with_breakdowns(20.0, 30.0).with_seed(1);
        let broken = s.run_once_faulted(Algo::Mtd, 9, 0, &fm);
        assert!(broken.faults.breakdowns > 0);
    }

    #[test]
    fn run_once_all_algorithms_survive_small_case() {
        let s = Scenario { n: 15, horizon: 100.0, ..Scenario::paper_fixed() };
        for algo in [Algo::Mtd, Algo::Greedy] {
            let r = s.run_once(algo, 5, 0);
            assert!(r.is_perpetual(), "{}: {:?}", algo.name(), r.deaths);
            assert!(r.service_cost > 0.0);
        }
        let sv = Scenario { variable: true, ..s };
        for algo in [Algo::MtdVar, Algo::Greedy] {
            let r = sv.run_once(algo, 5, 0);
            assert!(r.is_perpetual(), "{} var: {:?}", algo.name(), r.deaths);
        }
    }
}
