//! Extension experiments — beyond the paper's evaluation, probing its
//! assumptions and the "future work" directions its related-work section
//! points at:
//!
//! * **burst** — robustness to bursty (two-state Markov) loads that
//!   violate the i.i.d. per-slot jitter of Section VII.A: does
//!   `MinTotalDistance-var` still undercut Greedy, and does anyone die?
//! * **minmax** — the min–max objective of the paper's reference \[16\]:
//!   how much *makespan* (longest tour) does minimising *total* distance
//!   leave on the table, and at what total-cost premium does the balanced
//!   cover buy it back?
//! * **range** — the charger energy-capacity constraint of reference \[7\]:
//!   how much total distance does range-splitting Algorithm 3's tours add
//!   as the per-trip budget `L` shrinks?
//! * **speed** — the zero-task-duration assumption of Section III.A:
//!   charges are delivered when the vehicle physically arrives; at which
//!   charger speed (relative to sensor lifetimes) do deaths appear, and
//!   how much planning margin buys them back?
//! * **noise** — the perfect-monitoring assumption of Section VI.A:
//!   sensors report rates with relative error; how much planning margin
//!   does a given reporting accuracy demand?
//! * **ratio** — how far below the worst-case `2(K+2)` guarantee the
//!   algorithm lands in practice, certified against the Lemma 3 lower
//!   bound;
//! * **aging** — battery capacity fades with every recharge (cycle
//!   aging): an adaptive policy with planning margin must re-tighten its
//!   schedule, an oblivious one loses sensors;
//! * **deploy** — how deployment regularity (uniform random vs engineered
//!   Halton vs clustered hot spots) shifts the service cost and the
//!   MinTotalDistance/Greedy gap;
//! * **robustness** — seeded fault injection: charger breakdowns at
//!   increasing intensity, with the degraded-mode recovery planner
//!   re-routing orphaned sensors onto the surviving depots — what do
//!   faults cost in service distance, deaths and downtime?
//! * **drift** — the closed control loop under compounding consumption
//!   drift: the static open-loop plan vs the telemetry-driven
//!   [`perpetuum_sim::OnlinePolicy`] vs the every-slot-replanning oracle
//!   — deaths and planner invocations per arm.

use crate::figures::{FigureData, Series};
use crate::scenario::{Deployment, Scenario};
use perpetuum_core::bounds::lemma3_lower_bound;
use perpetuum_core::greedy::{plan_greedy_fixed, GreedyConfig};
use perpetuum_core::minmax::min_max_cover;
use perpetuum_core::mtd::{plan_min_total_distance, MtdConfig};
use perpetuum_core::network::Instance;
use perpetuum_core::qtsp::{q_rooted_tsp, Routing};
use perpetuum_core::rounding::partition_cycles;
use perpetuum_core::split::split_tour_set;
use perpetuum_par::{mean, par_map, std_dev};
use perpetuum_sim::{
    compare_under_drift, run, FaultModel, GreedyPolicy, MtdPolicy, SimConfig, VarPolicy, World,
};

/// Identifier of an extension experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtensionId {
    /// Bursty-load robustness sweep.
    Burst,
    /// Total-distance vs min–max objective comparison.
    MinMax,
    /// Charger-range splitting overhead sweep.
    Range,
    /// Travel-time / zero-task-duration assumption sweep.
    Speed,
    /// Measurement-noise robustness sweep.
    Noise,
    /// Empirical approximation ratio vs the Lemma 3 lower bound.
    Ratio,
    /// Battery-aging adaptation sweep.
    Aging,
    /// Deployment-pattern comparison.
    Deploy,
    /// Fault-injection sweep: breakdown intensity vs service cost, deaths
    /// and recovery effort.
    Robustness,
    /// Closed-loop telemetry control under compounding rate drift.
    Drift,
}

impl ExtensionId {
    /// All extensions.
    pub const ALL: [ExtensionId; 10] = [
        ExtensionId::Burst,
        ExtensionId::MinMax,
        ExtensionId::Range,
        ExtensionId::Speed,
        ExtensionId::Noise,
        ExtensionId::Ratio,
        ExtensionId::Aging,
        ExtensionId::Deploy,
        ExtensionId::Robustness,
        ExtensionId::Drift,
    ];

    /// Parses `"burst"`, `"minmax"`, `"range"`.
    pub fn parse(s: &str) -> Option<ExtensionId> {
        match s.to_ascii_lowercase().as_str() {
            "burst" => Some(ExtensionId::Burst),
            "minmax" | "min-max" => Some(ExtensionId::MinMax),
            "range" => Some(ExtensionId::Range),
            "speed" => Some(ExtensionId::Speed),
            "noise" => Some(ExtensionId::Noise),
            "ratio" => Some(ExtensionId::Ratio),
            "aging" => Some(ExtensionId::Aging),
            "deploy" | "deployment" => Some(ExtensionId::Deploy),
            "robustness" | "faults" => Some(ExtensionId::Robustness),
            "drift" | "online" => Some(ExtensionId::Drift),
            _ => None,
        }
    }

    /// Short id for file names.
    pub fn id(&self) -> &'static str {
        match self {
            ExtensionId::Burst => "ext_burst",
            ExtensionId::MinMax => "ext_minmax",
            ExtensionId::Range => "ext_range",
            ExtensionId::Speed => "ext_speed",
            ExtensionId::Noise => "ext_noise",
            ExtensionId::Ratio => "ext_ratio",
            ExtensionId::Aging => "ext_aging",
            ExtensionId::Deploy => "ext_deploy",
            ExtensionId::Robustness => "ext_robustness",
            ExtensionId::Drift => "ext_drift",
        }
    }

    /// Caption.
    pub fn title(&self) -> &'static str {
        match self {
            ExtensionId::Burst => {
                "Extension: bursty (Markov) loads — MinTotalDistance-var vs Greedy"
            }
            ExtensionId::MinMax => "Extension: total-distance routing vs min-max balanced cover",
            ExtensionId::Range => {
                "Extension: service-cost inflation under a charger range constraint"
            }
            ExtensionId::Speed => {
                "Extension: sensor deaths vs charger speed (zero-task-duration assumption)"
            }
            ExtensionId::Noise => {
                "Extension: sensor deaths vs rate-reporting noise (perfect-monitoring assumption)"
            }
            ExtensionId::Ratio => {
                "Extension: empirical approximation ratio vs the Lemma 3 lower bound"
            }
            ExtensionId::Aging => {
                "Extension: battery cycle-aging — adaptive replanning vs an oblivious plan"
            }
            ExtensionId::Deploy => {
                "Extension: deployment pattern (uniform / Halton / clustered) vs service cost"
            }
            ExtensionId::Robustness => {
                "Extension: charger breakdown intensity vs service cost, deaths and recovery"
            }
            ExtensionId::Drift => {
                "Extension: rate drift — static open loop vs telemetry closed loop vs oracle"
            }
        }
    }
}

/// Runs one extension experiment.
pub fn run_extension(id: ExtensionId, topologies: usize, seed: u64) -> FigureData {
    match id {
        ExtensionId::Burst => run_burst(topologies, seed),
        ExtensionId::MinMax => run_minmax(topologies, seed),
        ExtensionId::Range => run_range(topologies, seed),
        ExtensionId::Speed => run_speed(topologies, seed),
        ExtensionId::Noise => run_noise(topologies, seed),
        ExtensionId::Ratio => run_ratio(topologies, seed),
        ExtensionId::Aging => run_aging(topologies, seed),
        ExtensionId::Deploy => run_deploy(topologies, seed),
        ExtensionId::Robustness => run_robustness(topologies, seed),
        ExtensionId::Drift => run_drift(topologies, seed),
    }
}

fn series(name: &str) -> Series {
    Series { name: name.to_string(), values: Vec::new(), std_devs: Vec::new(), deaths: Vec::new() }
}

fn run_burst(topologies: usize, seed: u64) -> FigureData {
    let p_enters = [0.0, 0.05, 0.1, 0.2, 0.4];
    let s = Scenario { n: 100, horizon: 500.0, ..Scenario::paper_variable() };
    let mut var_series = series("MinTotalDistance-var");
    let mut greedy_series = series("Greedy");

    for &p_enter in &p_enters {
        let rows = par_map(topologies, |i| {
            let topo = s.build_topology(seed, i as u64);
            let build = || {
                World::bursty(
                    topo.network.clone(),
                    &topo.mean_cycles,
                    8.0, // bursts shorten cycles 8x
                    p_enter,
                    0.5, // bursts last ~2 slots
                    s.tau_min,
                    s.tau_max,
                )
            };
            let cfg = SimConfig {
                horizon: s.horizon,
                slot: s.slot,
                seed: topo.sim_seed,
                charger_speed: None,
            };
            let mut vp = VarPolicy::new(&topo.network);
            let rv = run(build(), &cfg, &mut vp);
            let mut gp = GreedyPolicy::new(&topo.network, s.tau_min);
            let rg = run(build(), &cfg, &mut gp);
            (rv.service_cost / 1000.0, rv.deaths.len(), rg.service_cost / 1000.0, rg.deaths.len())
        });
        let var_costs: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let greedy_costs: Vec<f64> = rows.iter().map(|r| r.2).collect();
        var_series.values.push(mean(&var_costs));
        var_series.std_devs.push(std_dev(&var_costs));
        var_series.deaths.push(rows.iter().map(|r| r.1).sum());
        greedy_series.values.push(mean(&greedy_costs));
        greedy_series.std_devs.push(std_dev(&greedy_costs));
        greedy_series.deaths.push(rows.iter().map(|r| r.3).sum());
    }

    FigureData {
        id: ExtensionId::Burst.id().to_string(),
        title: ExtensionId::Burst.title().to_string(),
        x_label: "burst entry probability".to_string(),
        xs: p_enters.to_vec(),
        series: vec![var_series, greedy_series],
        topologies,
        seed,
    }
}

fn run_minmax(topologies: usize, seed: u64) -> FigureData {
    let ns = [50usize, 100, 200];
    let mut total_alg2 = series("total distance (Algorithm 2)");
    let mut span_alg2 = series("makespan (Algorithm 2)");
    let mut total_mm = series("total distance (min-max cover)");
    let mut span_mm = series("makespan (min-max cover)");

    for &n in &ns {
        let s = Scenario { n, ..Scenario::paper_fixed() };
        let rows = par_map(topologies, |i| {
            let topo = s.build_topology(seed, i as u64);
            let sensors: Vec<usize> = (0..n).collect();
            let qt = q_rooted_tsp(topo.network.dist(), &sensors, &topo.network.depot_nodes(), 0);
            let alg2_span =
                qt.tours.iter().map(|t| t.length(topo.network.dist())).fold(0.0f64, f64::max);
            let mm = min_max_cover(&topo.network, &sensors, Routing::Doubling, 200);
            [qt.cost / 1000.0, alg2_span / 1000.0, mm.total / 1000.0, mm.makespan / 1000.0]
        });
        for (idx, s) in
            [&mut total_alg2, &mut span_alg2, &mut total_mm, &mut span_mm].into_iter().enumerate()
        {
            let col: Vec<f64> = rows.iter().map(|r| r[idx]).collect();
            s.values.push(mean(&col));
            s.std_devs.push(std_dev(&col));
            s.deaths.push(0);
        }
    }

    FigureData {
        id: ExtensionId::MinMax.id().to_string(),
        title: ExtensionId::MinMax.title().to_string(),
        x_label: "network size n".to_string(),
        xs: ns.iter().map(|&n| n as f64).collect(),
        series: vec![total_alg2, span_alg2, total_mm, span_mm],
        topologies,
        seed,
    }
}

fn run_range(topologies: usize, seed: u64) -> FigureData {
    // Range L swept as a multiple of the *minimum feasible* range of each
    // topology (the worst sensor round trip from the depot of its own
    // tour) — guaranteed splittable, and directly interpretable: 1.0 is
    // the tightest battery any charger of this fleet could have.
    let multiples = [1.0, 1.2, 1.5, 2.0, 4.0];
    let s = Scenario { n: 100, horizon: 200.0, ..Scenario::paper_fixed() };
    let mut cost_series = series("service cost after splitting");
    let mut trips_series = series("mean trips per dispatch");

    for &mult in &multiples {
        let rows = par_map(topologies, |i| {
            let topo = s.build_topology(seed, i as u64);
            let inst = Instance::new(topo.network.clone(), topo.init_cycles.clone(), s.horizon);
            let plan = plan_min_total_distance(&inst, &MtdConfig::default());
            // Minimum feasible range over the whole plan.
            let dist = topo.network.dist();
            let mut l_min = 0.0f64;
            for set in plan.sets() {
                for tour in set.tours() {
                    let Some(depot) = tour.start() else { continue };
                    for &v in &tour.nodes()[1..] {
                        l_min = l_min.max(2.0 * dist.get(depot, v));
                    }
                }
            }
            let max_len = l_min * mult;
            let mut total = 0.0;
            let mut trips = 0usize;
            let mut dispatches = 0usize;
            for d in plan.dispatches() {
                let set = plan.set_of(d);
                let split = split_tour_set(dist, set, max_len)
                    .expect("multiples of the minimum feasible range always split");
                total += split.total;
                trips += split
                    .trips
                    .iter()
                    .map(|per| per.iter().filter(|t| t.len() > 1).count())
                    .sum::<usize>();
                dispatches += 1;
            }
            [total / 1000.0, trips as f64 / dispatches.max(1) as f64]
        });
        let costs: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let trips: Vec<f64> = rows.iter().map(|r| r[1]).collect();
        cost_series.values.push(mean(&costs));
        cost_series.std_devs.push(std_dev(&costs));
        cost_series.deaths.push(0);
        trips_series.values.push(mean(&trips));
        trips_series.std_devs.push(std_dev(&trips));
        trips_series.deaths.push(0);
    }

    FigureData {
        id: ExtensionId::Range.id().to_string(),
        title: ExtensionId::Range.title().to_string(),
        x_label: "charger range (multiples of minimum feasible)".to_string(),
        xs: multiples.to_vec(),
        series: vec![cost_series, trips_series],
        topologies,
        seed,
    }
}

fn run_speed(topologies: usize, seed: u64) -> FigureData {
    // Speeds in m per time unit. A full-field tour is a few thousand
    // metres, so 1e5 makes any task ~1% of τ_min = 1 (the paper's
    // "orders of magnitude" regime); 1e3 makes tours take multiple cycles.
    let speeds = [1.0e5, 3.0e4, 1.0e4, 3.0e3, 1.0e3];
    let s = Scenario { n: 100, horizon: 200.0, ..Scenario::paper_fixed() };
    let mut plain = series("deaths, no margin");
    let mut margined = series("deaths, 10% cycle margin");
    let mut delay = series("max charge delay (time units)");

    for &speed in &speeds {
        let rows = par_map(topologies, |i| {
            let topo = s.build_topology(seed, i as u64);
            let cfg = SimConfig {
                horizon: s.horizon,
                slot: s.slot,
                seed: topo.sim_seed,
                charger_speed: Some(speed),
            };
            let mut p0 = MtdPolicy::new(&topo.network);
            let r0 = run(s.build_world(&topo), &cfg, &mut p0);
            let mut p1 = MtdPolicy::with_margin(&topo.network, 0.10);
            let r1 = run(s.build_world(&topo), &cfg, &mut p1);
            (r0.deaths.len(), r1.deaths.len(), r1.max_charge_delay)
        });
        let d0: Vec<f64> = rows.iter().map(|r| r.0 as f64).collect();
        let d1: Vec<f64> = rows.iter().map(|r| r.1 as f64).collect();
        let dl: Vec<f64> = rows.iter().map(|r| r.2).collect();
        plain.values.push(mean(&d0));
        plain.std_devs.push(std_dev(&d0));
        plain.deaths.push(rows.iter().map(|r| r.0).sum());
        margined.values.push(mean(&d1));
        margined.std_devs.push(std_dev(&d1));
        margined.deaths.push(rows.iter().map(|r| r.1).sum());
        delay.values.push(mean(&dl));
        delay.std_devs.push(std_dev(&dl));
        delay.deaths.push(0);
    }

    FigureData {
        id: ExtensionId::Speed.id().to_string(),
        title: ExtensionId::Speed.title().to_string(),
        x_label: "charger speed (m per time unit)".to_string(),
        xs: speeds.to_vec(),
        series: vec![plain, margined, delay],
        topologies,
        seed,
    }
}

fn run_noise(topologies: usize, seed: u64) -> FigureData {
    let noises = [0.0, 0.05, 0.10, 0.20];
    let s = Scenario { n: 100, horizon: 300.0, ..Scenario::paper_variable() };
    let mut plain = series("deaths, no margin");
    let mut margined = series("deaths, 2x-noise margin");
    let mut cost_margined = series("cost with margin (km)");

    for &noise in &noises {
        let rows = par_map(topologies, |i| {
            let topo = s.build_topology(seed, i as u64);
            let cfg = SimConfig {
                horizon: s.horizon,
                slot: s.slot,
                seed: topo.sim_seed,
                charger_speed: None,
            };
            let make = || s.build_world(&topo).with_measurement_noise(noise);
            let mut p0 = VarPolicy::new(&topo.network);
            let r0 = run(make(), &cfg, &mut p0);
            let mut p1 = VarPolicy::with_margin(&topo.network, (2.0 * noise).min(0.5));
            let r1 = run(make(), &cfg, &mut p1);
            (r0.deaths.len(), r1.deaths.len(), r1.service_cost / 1000.0)
        });
        let d0: Vec<f64> = rows.iter().map(|r| r.0 as f64).collect();
        let d1: Vec<f64> = rows.iter().map(|r| r.1 as f64).collect();
        let c1: Vec<f64> = rows.iter().map(|r| r.2).collect();
        plain.values.push(mean(&d0));
        plain.std_devs.push(std_dev(&d0));
        plain.deaths.push(rows.iter().map(|r| r.0).sum());
        margined.values.push(mean(&d1));
        margined.std_devs.push(std_dev(&d1));
        margined.deaths.push(rows.iter().map(|r| r.1).sum());
        cost_margined.values.push(mean(&c1));
        cost_margined.std_devs.push(std_dev(&c1));
        cost_margined.deaths.push(0);
    }

    FigureData {
        id: ExtensionId::Noise.id().to_string(),
        title: ExtensionId::Noise.title().to_string(),
        x_label: "relative reporting noise".to_string(),
        xs: noises.to_vec(),
        series: vec![plain, margined, cost_margined],
        topologies,
        seed,
    }
}

fn run_ratio(topologies: usize, seed: u64) -> FigureData {
    let ns = [50usize, 100, 200, 400];
    let s0 = Scenario { horizon: 512.0, ..Scenario::paper_fixed() };
    let mut mtd_ratio = series("MinTotalDistance / lower bound");
    let mut greedy_ratio = series("Greedy / lower bound");
    let mut guarantee = series("worst-case guarantee 2(K+2)");

    for &n in &ns {
        let s = Scenario { n, ..s0 };
        let rows = par_map(topologies, |i| {
            let topo = s.build_topology(seed, i as u64);
            let inst = Instance::new(topo.network.clone(), topo.init_cycles.clone(), s.horizon);
            let lb = lemma3_lower_bound(&inst).bound;
            let mtd = plan_min_total_distance(&inst, &MtdConfig::default()).service_cost();
            let greedy =
                plan_greedy_fixed(&inst, &GreedyConfig::paper_default(s.tau_min)).service_cost();
            let k = partition_cycles(inst.cycles()).k_max() as f64;
            [mtd / lb, greedy / lb, 2.0 * (k + 2.0)]
        });
        for (idx, out) in
            [&mut mtd_ratio, &mut greedy_ratio, &mut guarantee].into_iter().enumerate()
        {
            let col: Vec<f64> = rows.iter().map(|r| r[idx]).collect();
            out.values.push(mean(&col));
            out.std_devs.push(std_dev(&col));
            out.deaths.push(0);
        }
    }

    FigureData {
        id: ExtensionId::Ratio.id().to_string(),
        title: ExtensionId::Ratio.title().to_string(),
        x_label: "network size n".to_string(),
        xs: ns.iter().map(|&n| n as f64).collect(),
        series: vec![mtd_ratio, greedy_ratio, guarantee],
        topologies,
        seed,
    }
}

fn run_aging(topologies: usize, seed: u64) -> FigureData {
    // Relative capacity fade per recharge (50% end-of-life floor).
    let fades = [0.0, 0.005, 0.01, 0.02];
    let s = Scenario { n: 100, horizon: 400.0, ..Scenario::paper_fixed() };
    let mut oblivious = series("deaths, MinTotalDistance (oblivious)");
    let mut adaptive = series("deaths, var + fade-matched margin");
    let mut adaptive_cost = series("adaptive cost (km)");

    for &fade in &fades {
        // Replans only happen at slot boundaries; a τ_min-cycle sensor can
        // recharge ~ΔT/τ_min times in between, each shaving `fade` off its
        // capacity. The planning margin must cover that worst-case sag
        // (x1.25 safety), floored at 8%.
        let margin = ((1.0 - (1.0f64 - fade).powf(s.slot / s.tau_min)) * 1.25).clamp(0.08, 0.45);
        let rows = par_map(topologies, |i| {
            let topo = s.build_topology(seed, i as u64);
            let cfg = SimConfig {
                horizon: s.horizon,
                slot: s.slot,
                seed: topo.sim_seed,
                charger_speed: None,
            };
            let make = || s.build_world(&topo).with_battery_fade(fade);
            let mut p0 = MtdPolicy::new(&topo.network);
            let r0 = run(make(), &cfg, &mut p0);
            let mut p1 = VarPolicy::with_margin(&topo.network, margin);
            let r1 = run(make(), &cfg, &mut p1);
            (r0.deaths.len(), r1.deaths.len(), r1.service_cost / 1000.0)
        });
        let d0: Vec<f64> = rows.iter().map(|r| r.0 as f64).collect();
        let d1: Vec<f64> = rows.iter().map(|r| r.1 as f64).collect();
        let c1: Vec<f64> = rows.iter().map(|r| r.2).collect();
        oblivious.values.push(mean(&d0));
        oblivious.std_devs.push(std_dev(&d0));
        oblivious.deaths.push(rows.iter().map(|r| r.0).sum());
        adaptive.values.push(mean(&d1));
        adaptive.std_devs.push(std_dev(&d1));
        adaptive.deaths.push(rows.iter().map(|r| r.1).sum());
        adaptive_cost.values.push(mean(&c1));
        adaptive_cost.std_devs.push(std_dev(&c1));
        adaptive_cost.deaths.push(0);
    }

    FigureData {
        id: ExtensionId::Aging.id().to_string(),
        title: ExtensionId::Aging.title().to_string(),
        x_label: "capacity fade per recharge".to_string(),
        xs: fades.to_vec(),
        series: vec![oblivious, adaptive, adaptive_cost],
        topologies,
        seed,
    }
}

fn run_deploy(topologies: usize, seed: u64) -> FigureData {
    use crate::scenario::Algo;
    let kinds = [
        ("uniform", Deployment::Uniform),
        ("halton", Deployment::Halton),
        ("clustered", Deployment::Clustered { clusters: 5, spread: 80.0 }),
    ];
    let mut mtd = series("MinTotalDistance");
    let mut greedy = series("Greedy");

    for (idx, &(_, deployment)) in kinds.iter().enumerate() {
        let s = Scenario { n: 150, horizon: 300.0, deployment, ..Scenario::paper_fixed() };
        let rows = par_map(topologies, |i| {
            let a = s.run_once(Algo::Mtd, seed, i as u64);
            let b = s.run_once(Algo::Greedy, seed, i as u64);
            (a.service_cost / 1000.0, a.deaths.len(), b.service_cost / 1000.0, b.deaths.len())
        });
        let _ = idx;
        let ca: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let cb: Vec<f64> = rows.iter().map(|r| r.2).collect();
        mtd.values.push(mean(&ca));
        mtd.std_devs.push(std_dev(&ca));
        mtd.deaths.push(rows.iter().map(|r| r.1).sum());
        greedy.values.push(mean(&cb));
        greedy.std_devs.push(std_dev(&cb));
        greedy.deaths.push(rows.iter().map(|r| r.3).sum());
    }

    FigureData {
        id: ExtensionId::Deploy.id().to_string(),
        title: ExtensionId::Deploy.title().to_string(),
        // The x axis is categorical: 0 = uniform, 1 = halton, 2 = clustered.
        x_label: "deployment (0=uniform 1=halton 2=clustered)".to_string(),
        xs: (0..kinds.len()).map(|i| i as f64).collect(),
        series: vec![mtd, greedy],
        topologies,
        seed,
    }
}

fn run_robustness(topologies: usize, seed: u64) -> FigureData {
    use crate::scenario::Algo;
    // Expected breakdowns per charger over the horizon; 0 is the fault-free
    // baseline (the engine takes the exact pre-fault code path there).
    let intensities = [0.0, 0.5, 1.0, 2.0, 4.0];
    let s = Scenario { n: 100, horizon: 300.0, ..Scenario::paper_fixed() };
    let mut cost = series("service cost (MinTotalDistance)");
    let mut rescues = series("emergency dispatches per run");
    let mut downtime = series("charger downtime fraction");

    for &lambda in &intensities {
        let rows = par_map(topologies, |i| {
            let faults = if lambda == 0.0 {
                FaultModel::none()
            } else {
                // MTBF so each charger expects `lambda` failures per
                // horizon; repairs take a quarter of an up phase.
                FaultModel::none()
                    .with_breakdowns(s.horizon / lambda, s.horizon / (4.0 * lambda))
                    .with_seed(seed ^ 0xFA)
            };
            let r = s.run_once_faulted(Algo::Mtd, seed, i as u64, &faults);
            let down_frac = r.faults.total_downtime() / (s.horizon * s.q as f64);
            (
                r.service_cost / 1000.0,
                r.deaths.len(),
                r.faults.emergency_dispatches as f64,
                down_frac,
            )
        });
        let costs: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let resc: Vec<f64> = rows.iter().map(|r| r.2).collect();
        let down: Vec<f64> = rows.iter().map(|r| r.3).collect();
        let deaths: usize = rows.iter().map(|r| r.1).sum();
        cost.values.push(mean(&costs));
        cost.std_devs.push(std_dev(&costs));
        cost.deaths.push(deaths);
        rescues.values.push(mean(&resc));
        rescues.std_devs.push(std_dev(&resc));
        rescues.deaths.push(deaths);
        downtime.values.push(mean(&down));
        downtime.std_devs.push(std_dev(&down));
        downtime.deaths.push(deaths);
    }

    FigureData {
        id: ExtensionId::Robustness.id().to_string(),
        title: ExtensionId::Robustness.title().to_string(),
        x_label: "expected breakdowns per charger over the horizon".to_string(),
        xs: intensities.to_vec(),
        series: vec![cost, rescues, downtime],
        topologies,
        seed,
    }
}

fn run_drift(topologies: usize, seed: u64) -> FigureData {
    // Per-slot compounding drift on every true rate; 1.5%/slot over 30
    // slots ends ~1.6x the planning-time rates.
    let drifts = [0.0, 0.005, 0.01, 0.015];
    let s = Scenario { n: 60, horizon: 300.0, ..Scenario::paper_fixed() };
    let mut static_deaths = series("deaths, static (open loop)");
    let mut online_deaths = series("deaths, online (closed loop)");
    let mut oracle_deaths = series("deaths, oracle (every-slot replan)");
    let mut online_calls = series("online planner calls per run");
    let mut oracle_calls = series("oracle planner calls per run");

    for &drift in &drifts {
        let rows = par_map(topologies, |i| {
            let topo = s.build_topology(seed, i as u64);
            let cfg = SimConfig {
                horizon: s.horizon,
                slot: s.slot,
                seed: topo.sim_seed,
                charger_speed: None,
            };
            let outcome = compare_under_drift(&s.build_world(&topo), &cfg, drift);
            [
                outcome.static_arm.deaths as f64,
                outcome.online_arm.deaths as f64,
                outcome.oracle_arm.deaths as f64,
                outcome.online_arm.planner_calls as f64,
                outcome.oracle_arm.planner_calls as f64,
            ]
        });
        for (idx, out) in [
            &mut static_deaths,
            &mut online_deaths,
            &mut oracle_deaths,
            &mut online_calls,
            &mut oracle_calls,
        ]
        .into_iter()
        .enumerate()
        {
            let col: Vec<f64> = rows.iter().map(|r| r[idx]).collect();
            out.values.push(mean(&col));
            out.std_devs.push(std_dev(&col));
            out.deaths.push(if idx < 3 { col.iter().sum::<f64>() as usize } else { 0 });
        }
    }

    FigureData {
        id: ExtensionId::Drift.id().to_string(),
        title: ExtensionId::Drift.title().to_string(),
        x_label: "per-slot compounding rate drift".to_string(),
        xs: drifts.to_vec(),
        series: vec![static_deaths, online_deaths, oracle_deaths, online_calls, oracle_calls],
        topologies,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_ids() {
        assert_eq!(ExtensionId::parse("burst"), Some(ExtensionId::Burst));
        assert_eq!(ExtensionId::parse("min-max"), Some(ExtensionId::MinMax));
        assert_eq!(ExtensionId::parse("range"), Some(ExtensionId::Range));
        assert_eq!(ExtensionId::parse("robustness"), Some(ExtensionId::Robustness));
        assert_eq!(ExtensionId::parse("faults"), Some(ExtensionId::Robustness));
        assert_eq!(ExtensionId::parse("drift"), Some(ExtensionId::Drift));
        assert_eq!(ExtensionId::parse("x"), None);
    }

    #[test]
    fn drift_sweep_closed_loop_beats_open_loop() {
        let fd = run_extension(ExtensionId::Drift, 2, 7);
        assert_eq!(fd.xs.len(), 4);
        assert_eq!(fd.series.len(), 5);
        let static_deaths = &fd.series[0].values;
        let online_deaths = &fd.series[1].values;
        let oracle_deaths = &fd.series[2].values;
        let online_calls = &fd.series[3].values;
        let oracle_calls = &fd.series[4].values;
        // Drift-free: nobody dies, the online arm plans exactly once.
        assert_eq!(static_deaths[0], 0.0);
        assert_eq!(online_deaths[0], 0.0);
        assert_eq!(online_calls[0], 1.0, "{online_calls:?}");
        // At the strongest drift the open loop starves sensors and the
        // closed loop saves them at a fraction of the oracle's planning.
        assert!(static_deaths.last().unwrap() > &0.0, "{static_deaths:?}");
        assert!(
            online_deaths.last().unwrap() < static_deaths.last().unwrap(),
            "online {online_deaths:?} vs static {static_deaths:?}"
        );
        assert!(oracle_deaths.last().unwrap() <= online_deaths.last().unwrap());
        assert!(
            online_calls.last().unwrap() < oracle_calls.last().unwrap(),
            "online {online_calls:?} vs oracle {oracle_calls:?}"
        );
    }

    #[test]
    fn robustness_sweep_faults_cost_something() {
        let fd = run_extension(ExtensionId::Robustness, 2, 7);
        assert_eq!(fd.xs.len(), 5);
        assert_eq!(fd.series.len(), 3);
        // Fault-free baseline: no rescues, no downtime.
        assert_eq!(fd.series[1].values[0], 0.0);
        assert_eq!(fd.series[2].values[0], 0.0);
        // At the highest intensity the fault machinery demonstrably runs.
        assert!(
            *fd.series[2].values.last().unwrap() > 0.0,
            "downtime expected: {:?}",
            fd.series[2].values
        );
        // Downtime fraction grows with breakdown intensity.
        let down = &fd.series[2].values;
        assert!(down.last().unwrap() > &down[1], "{down:?}");
        // Costs stay finite and positive throughout.
        assert!(fd.series[0].values.iter().all(|&c| c.is_finite() && c > 0.0));
    }

    #[test]
    fn minmax_trades_total_for_makespan() {
        let fd = run_extension(ExtensionId::MinMax, 2, 3);
        for i in 0..fd.xs.len() {
            let total_alg2 = fd.series[0].values[i];
            let span_alg2 = fd.series[1].values[i];
            let total_mm = fd.series[2].values[i];
            let span_mm = fd.series[3].values[i];
            // The balanced cover never has a longer makespan, and the
            // total-distance solution never has a larger total.
            assert!(span_mm <= span_alg2 + 1e-9, "point {i}");
            assert!(total_alg2 <= total_mm + 1e-9, "point {i}");
        }
    }

    #[test]
    fn range_splitting_monotone_in_budget() {
        let fd = run_extension(ExtensionId::Range, 2, 4);
        let costs = &fd.series[0].values;
        // A tighter range can only cost more.
        for w in costs.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "{} then {}", w[0], w[1]);
        }
        // At 4 diagonals the constraint is inactive for most dispatches:
        // trips/dispatch close to the active-tour count.
        let trips = &fd.series[1].values;
        assert!(trips[0] >= *trips.last().unwrap());
    }

    #[test]
    fn speed_sweep_margin_helps_and_slow_kills() {
        let fd = run_extension(ExtensionId::Speed, 2, 6);
        let plain = &fd.series[0].values;
        let margined = &fd.series[1].values;
        // At the slowest speed there are deaths even with margin; at the
        // fastest, the margin eliminates them.
        assert!(plain.last().unwrap() > &0.0, "slow chargers must kill: {plain:?}");
        assert_eq!(*margined.first().unwrap(), 0.0, "fast + margin: {margined:?}");
        // Margin never hurts.
        for i in 0..fd.xs.len() {
            assert!(margined[i] <= plain[i] + 1e-9, "point {i}");
        }
        // Delays grow as speed drops.
        let delays = &fd.series[2].values;
        assert!(delays.last().unwrap() > delays.first().unwrap());
    }

    #[test]
    fn ratio_extension_certifies_the_guarantee() {
        let fd = run_extension(ExtensionId::Ratio, 2, 9);
        for i in 0..fd.xs.len() {
            let mtd = fd.series[0].values[i];
            let worst = fd.series[2].values[i];
            assert!(mtd >= 1.0 - 1e-9, "ratio below 1 is impossible: {mtd}");
            assert!(mtd <= worst, "point {i}: {mtd} above guarantee {worst}");
            // Empirically the certified ratio sits clearly below the
            // guarantee (the bound itself is ~2x loose, so the true ratio
            // is smaller still).
            assert!(mtd <= worst * 0.9, "point {i}: surprisingly weak ({mtd} vs {worst})");
        }
    }

    #[test]
    fn noise_sweep_margin_suppresses_deaths() {
        let fd = run_extension(ExtensionId::Noise, 2, 7);
        let plain = &fd.series[0];
        let margined = &fd.series[1];
        // Zero noise: nobody dies either way.
        assert_eq!(plain.deaths[0], 0);
        assert_eq!(margined.deaths[0], 0);
        // At every noise level the margin strictly helps or ties.
        for i in 0..fd.xs.len() {
            assert!(margined.deaths[i] <= plain.deaths[i], "point {i}");
        }
        // High noise without margin should visibly bite.
        assert!(plain.deaths.last().unwrap() > &0);
    }

    #[test]
    fn deploy_extension_runs_all_patterns_alive() {
        let fd = run_extension(ExtensionId::Deploy, 2, 11);
        assert_eq!(fd.xs.len(), 3);
        for s in &fd.series {
            assert!(s.deaths.iter().all(|&d| d == 0), "{:?}", s.deaths);
            assert!(s.values.iter().all(|&v| v > 0.0));
        }
        // MinTotalDistance wins under every pattern (linear cycles).
        for i in 0..3 {
            assert!(fd.series[0].values[i] < fd.series[1].values[i], "pattern {i}");
        }
    }

    #[test]
    fn aging_sweep_adaptive_policy_survives() {
        let fd = run_extension(ExtensionId::Aging, 2, 10);
        let oblivious = &fd.series[0];
        let adaptive = &fd.series[1];
        // No fade: both survive.
        assert_eq!(oblivious.deaths[0], 0);
        assert_eq!(adaptive.deaths[0], 0);
        // Strong fade: the oblivious plan loses sensors, the adaptive one
        // does not.
        assert!(oblivious.deaths.last().unwrap() > &0);
        assert_eq!(*adaptive.deaths.last().unwrap(), 0, "{:?}", adaptive.deaths);
        // Adaptation costs more as batteries shrink.
        let cost = &fd.series[2].values;
        assert!(cost.last().unwrap() > cost.first().unwrap());
    }

    #[test]
    fn burst_runs_and_var_stays_competitive() {
        let fd = run_extension(ExtensionId::Burst, 2, 5);
        // At p = 0 this is the σ-jitter-free world: var well below greedy.
        assert!(fd.series[0].values[0] < fd.series[1].values[0]);
    }
}
