//! Rendering figure data as aligned text tables, CSV and JSON.

use crate::figures::FigureData;
use std::io::Write;
use std::path::Path;

/// Renders a figure as an aligned text table (the "same rows the paper
/// plots" view).
pub fn render_table(fd: &FigureData) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}\n", fd.title));
    out.push_str(&format!(
        "topologies per point: {}   seed: {}   costs in km\n",
        fd.topologies, fd.seed
    ));

    // Header.
    let mut header = format!("{:>14}", fd.x_label);
    for s in &fd.series {
        header.push_str(&format!("  {:>22}", s.name));
    }
    if fd.series.len() == 2 {
        header.push_str(&format!("  {:>8}", "ratio"));
    }
    out.push_str(&header);
    out.push('\n');
    out.push_str(&"-".repeat(header.len()));
    out.push('\n');

    for (i, &x) in fd.xs.iter().enumerate() {
        out.push_str(&format!("{:>14}", format_x(x)));
        for s in &fd.series {
            out.push_str(&format!("  {:>13.1} ±{:>6.1}", s.values[i], s.std_devs[i]));
        }
        if fd.series.len() == 2 {
            let r = fd.series[0].values[i] / fd.series[1].values[i].max(f64::MIN_POSITIVE);
            out.push_str(&format!("  {r:>8.3}"));
        }
        out.push('\n');
    }

    let total_deaths: usize = fd.series.iter().flat_map(|s| s.deaths.iter()).sum();
    out.push_str(&format!("total sensor deaths across all runs: {total_deaths}\n"));
    out
}

/// Formats an x value with just enough precision: integers plainly,
/// sub-10 values with three decimals, the rest with one.
fn format_x(x: f64) -> String {
    if x == x.trunc() {
        format!("{x:.0}")
    } else if x.abs() < 10.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.1}")
    }
}

/// Renders a figure as CSV: `x,<series...>,<series_std...>,<series_deaths...>`.
pub fn render_csv(fd: &FigureData) -> String {
    let mut out = String::new();
    out.push_str(&fd.x_label.replace(' ', "_"));
    for s in &fd.series {
        out.push_str(&format!(",{}", s.name.replace(' ', "_")));
    }
    for s in &fd.series {
        out.push_str(&format!(",{}_std", s.name.replace(' ', "_")));
    }
    for s in &fd.series {
        out.push_str(&format!(",{}_deaths", s.name.replace(' ', "_")));
    }
    out.push('\n');
    for (i, &x) in fd.xs.iter().enumerate() {
        out.push_str(&format!("{x}"));
        for s in &fd.series {
            out.push_str(&format!(",{}", s.values[i]));
        }
        for s in &fd.series {
            out.push_str(&format!(",{}", s.std_devs[i]));
        }
        for s in &fd.series {
            out.push_str(&format!(",{}", s.deaths[i]));
        }
        out.push('\n');
    }
    out
}

/// Writes `<dir>/<id>.csv` and `<dir>/<id>.json` for a figure, creating
/// `dir` if needed.
pub fn write_files(fd: &FigureData, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let csv_path = dir.join(format!("{}.csv", fd.id));
    let mut f = std::fs::File::create(csv_path)?;
    f.write_all(render_csv(fd).as_bytes())?;
    let json_path = dir.join(format!("{}.json", fd.id));
    let mut g = std::fs::File::create(json_path)?;
    g.write_all(serde_json::to_string_pretty(fd)?.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Series;

    fn sample() -> FigureData {
        FigureData {
            id: "fig1a".into(),
            title: "Fig. 1(a)".into(),
            x_label: "network size n".into(),
            xs: vec![100.0, 200.0],
            series: vec![
                Series {
                    name: "MinTotalDistance".into(),
                    values: vec![1000.5, 2000.25],
                    std_devs: vec![10.0, 20.0],
                    deaths: vec![0, 0],
                },
                Series {
                    name: "Greedy".into(),
                    values: vec![2000.0, 4000.0],
                    std_devs: vec![30.0, 40.0],
                    deaths: vec![0, 0],
                },
            ],
            topologies: 100,
            seed: 42,
        }
    }

    #[test]
    fn table_contains_all_series_and_ratio() {
        let t = render_table(&sample());
        assert!(t.contains("MinTotalDistance"));
        assert!(t.contains("Greedy"));
        assert!(t.contains("ratio"));
        assert!(t.contains("0.500"));
        assert!(t.contains("total sensor deaths across all runs: 0"));
    }

    #[test]
    fn csv_layout() {
        let c = render_csv(&sample());
        let mut lines = c.lines();
        assert_eq!(
            lines.next().unwrap(),
            "network_size_n,MinTotalDistance,Greedy,MinTotalDistance_std,Greedy_std,MinTotalDistance_deaths,Greedy_deaths"
        );
        assert_eq!(lines.next().unwrap(), "100,1000.5,2000,10,30,0,0");
        assert_eq!(lines.next().unwrap(), "200,2000.25,4000,20,40,0,0");
    }

    #[test]
    fn write_files_round_trips() {
        let dir = std::env::temp_dir().join("perpetuum_exp_test_out");
        let fd = sample();
        write_files(&fd, &dir).unwrap();
        let json = std::fs::read_to_string(dir.join("fig1a.json")).unwrap();
        let parsed: FigureData = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.xs, fd.xs);
        assert_eq!(parsed.series[1].values, fd.series[1].values);
        let csv = std::fs::read_to_string(dir.join("fig1a.csv")).unwrap();
        assert!(csv.starts_with("network_size_n,"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
