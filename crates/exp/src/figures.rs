//! Figure runners — one per figure of Section VII.

use crate::scenario::{Algo, Scenario};
use perpetuum_par::{mean, par_map};
use serde::{Deserialize, Serialize};

/// Identifier of a reproduced figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum FigureId {
    Fig1a,
    Fig1b,
    Fig2a,
    Fig2b,
    Fig3,
    Fig4,
    Fig5,
    Fig6,
}

impl FigureId {
    /// All figures, in paper order.
    pub const ALL: [FigureId; 8] = [
        FigureId::Fig1a,
        FigureId::Fig1b,
        FigureId::Fig2a,
        FigureId::Fig2b,
        FigureId::Fig3,
        FigureId::Fig4,
        FigureId::Fig5,
        FigureId::Fig6,
    ];

    /// Parses `"fig1a"`, `"fig3"`, ….
    pub fn parse(s: &str) -> Option<FigureId> {
        match s.to_ascii_lowercase().as_str() {
            "fig1a" => Some(FigureId::Fig1a),
            "fig1b" => Some(FigureId::Fig1b),
            "fig2a" => Some(FigureId::Fig2a),
            "fig2b" => Some(FigureId::Fig2b),
            "fig3" => Some(FigureId::Fig3),
            "fig4" => Some(FigureId::Fig4),
            "fig5" => Some(FigureId::Fig5),
            "fig6" => Some(FigureId::Fig6),
            _ => None,
        }
    }

    /// Short id used in file names (`fig1a`, …).
    pub fn id(&self) -> &'static str {
        match self {
            FigureId::Fig1a => "fig1a",
            FigureId::Fig1b => "fig1b",
            FigureId::Fig2a => "fig2a",
            FigureId::Fig2b => "fig2b",
            FigureId::Fig3 => "fig3",
            FigureId::Fig4 => "fig4",
            FigureId::Fig5 => "fig5",
            FigureId::Fig6 => "fig6",
        }
    }

    /// Human-readable title (the paper's caption, abridged).
    pub fn title(&self) -> &'static str {
        match self {
            FigureId::Fig1a => "Fig. 1(a): service cost vs network size, linear distribution",
            FigureId::Fig1b => "Fig. 1(b): service cost vs network size, random distribution",
            FigureId::Fig2a => "Fig. 2(a): service cost vs tau_max, linear distribution",
            FigureId::Fig2b => "Fig. 2(b): service cost vs tau_max, random distribution",
            FigureId::Fig3 => "Fig. 3: variable cycles, service cost vs network size",
            FigureId::Fig4 => "Fig. 4: variable cycles, service cost vs tau_max",
            FigureId::Fig5 => "Fig. 5: variable cycles, service cost vs slot length dT",
            FigureId::Fig6 => "Fig. 6: variable cycles, service cost vs jitter sigma",
        }
    }
}

/// One curve of a figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// Mean service cost (km) per x value.
    pub values: Vec<f64>,
    /// Sample standard deviation (km) per x value.
    pub std_devs: Vec<f64>,
    /// Total sensor deaths across all topologies per x value (0 =
    /// perpetual operation, as the problem demands).
    pub deaths: Vec<usize>,
}

/// The reproduced data behind one figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureData {
    /// Which figure.
    pub id: String,
    /// Caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Swept x values.
    pub xs: Vec<f64>,
    /// One series per algorithm.
    pub series: Vec<Series>,
    /// Topologies averaged per point.
    pub topologies: usize,
    /// Master seed.
    pub seed: u64,
}

impl FigureData {
    /// Ratio series `series[a] / series[b]` — e.g. MinTotalDistance over
    /// Greedy, the number the paper's prose quotes (55%–60% etc).
    pub fn ratio(&self, a: usize, b: usize) -> Vec<f64> {
        self.series[a]
            .values
            .iter()
            .zip(self.series[b].values.iter())
            .map(|(&x, &y)| if y == 0.0 { f64::NAN } else { x / y })
            .collect()
    }
}

/// A single point of a sweep: scenario + the algorithms to compare on it.
struct SweepPoint {
    x: f64,
    scenario: Scenario,
}

fn sweep(
    id: FigureId,
    x_label: &str,
    points: Vec<SweepPoint>,
    algos: &[Algo],
    topologies: usize,
    seed: u64,
) -> FigureData {
    let mut series: Vec<Series> = algos
        .iter()
        .map(|a| Series {
            name: a.name().to_string(),
            values: Vec::with_capacity(points.len()),
            std_devs: Vec::with_capacity(points.len()),
            deaths: Vec::with_capacity(points.len()),
        })
        .collect();
    let mut xs = Vec::with_capacity(points.len());

    for point in &points {
        xs.push(point.x);
        for (ai, &algo) in algos.iter().enumerate() {
            let results = par_map(topologies, |i| point.scenario.run_once(algo, seed, i as u64));
            let costs_km: Vec<f64> = results.iter().map(|r| r.service_cost / 1000.0).collect();
            let deaths: usize = results.iter().map(|r| r.deaths.len()).sum();
            series[ai].values.push(mean(&costs_km));
            series[ai].std_devs.push(perpetuum_par::std_dev(&costs_km));
            series[ai].deaths.push(deaths);
        }
    }

    FigureData {
        id: id.id().to_string(),
        title: id.title().to_string(),
        x_label: x_label.to_string(),
        xs,
        series,
        topologies,
        seed,
    }
}

/// Network-size values the paper sweeps (Figures 1 and 3).
pub const NETWORK_SIZES: [usize; 5] = [100, 200, 300, 400, 500];
/// `τ_max` values swept in Figures 2 and 4.
pub const TAU_MAX_VALUES: [f64; 11] =
    [1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0];
/// Slot lengths swept in Figure 5.
pub const SLOT_VALUES: [f64; 11] = [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0];
/// Jitter values swept in Figure 6.
pub const SIGMA_VALUES: [f64; 8] = [0.0, 2.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0];

/// Runs one figure at the given replication count and master seed.
pub fn run_figure(id: FigureId, topologies: usize, seed: u64) -> FigureData {
    run_figure_scaled(id, topologies, seed, 1.0)
}

/// [`run_figure`] with the monitoring period scaled by `horizon_scale`
/// (< 1.0 shrinks runs for benches and CI; 1.0 is the paper's `T = 1000`).
pub fn run_figure_scaled(
    id: FigureId,
    topologies: usize,
    seed: u64,
    horizon_scale: f64,
) -> FigureData {
    use perpetuum_energy::CycleDistribution;
    assert!(topologies > 0, "need at least one topology");
    assert!(horizon_scale > 0.0);
    let scale = |mut s: Scenario| {
        s.horizon *= horizon_scale;
        s
    };

    match id {
        FigureId::Fig1a | FigureId::Fig1b => {
            let dist = if id == FigureId::Fig1a {
                CycleDistribution::linear_default()
            } else {
                CycleDistribution::Random
            };
            let points = NETWORK_SIZES
                .iter()
                .map(|&n| SweepPoint {
                    x: n as f64,
                    scenario: scale(Scenario { n, dist, ..Scenario::paper_fixed() }),
                })
                .collect();
            sweep(id, "network size n", points, &[Algo::Mtd, Algo::Greedy], topologies, seed)
        }
        FigureId::Fig2a | FigureId::Fig2b => {
            let dist = if id == FigureId::Fig2a {
                CycleDistribution::linear_default()
            } else {
                CycleDistribution::Random
            };
            let points = TAU_MAX_VALUES
                .iter()
                .map(|&tau_max| SweepPoint {
                    x: tau_max,
                    scenario: scale(Scenario { tau_max, dist, ..Scenario::paper_fixed() }),
                })
                .collect();
            sweep(id, "tau_max", points, &[Algo::Mtd, Algo::Greedy], topologies, seed)
        }
        FigureId::Fig3 => {
            let points = NETWORK_SIZES
                .iter()
                .map(|&n| SweepPoint {
                    x: n as f64,
                    scenario: scale(Scenario { n, ..Scenario::paper_variable() }),
                })
                .collect();
            sweep(id, "network size n", points, &[Algo::MtdVar, Algo::Greedy], topologies, seed)
        }
        FigureId::Fig4 => {
            let points = TAU_MAX_VALUES
                .iter()
                .map(|&tau_max| SweepPoint {
                    x: tau_max,
                    scenario: scale(Scenario { tau_max, ..Scenario::paper_variable() }),
                })
                .collect();
            sweep(id, "tau_max", points, &[Algo::MtdVar, Algo::Greedy], topologies, seed)
        }
        FigureId::Fig5 => {
            let points = SLOT_VALUES
                .iter()
                .map(|&slot| SweepPoint {
                    x: slot,
                    scenario: scale(Scenario { slot, ..Scenario::paper_variable() }),
                })
                .collect();
            sweep(id, "slot length dT", points, &[Algo::MtdVar, Algo::Greedy], topologies, seed)
        }
        FigureId::Fig6 => {
            let points = SIGMA_VALUES
                .iter()
                .map(|&sigma| SweepPoint {
                    x: sigma,
                    scenario: scale(Scenario {
                        dist: CycleDistribution::Linear { sigma },
                        ..Scenario::paper_variable()
                    }),
                })
                .collect();
            sweep(id, "sigma", points, &[Algo::MtdVar, Algo::Greedy], topologies, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for id in FigureId::ALL {
            assert_eq!(FigureId::parse(id.id()), Some(id));
        }
        assert_eq!(FigureId::parse("FIG1A"), Some(FigureId::Fig1a));
        assert_eq!(FigureId::parse("fig9"), None);
    }

    #[test]
    fn ratio_helper() {
        let fd = FigureData {
            id: "x".into(),
            title: "t".into(),
            x_label: "x".into(),
            xs: vec![1.0, 2.0],
            series: vec![
                Series {
                    name: "a".into(),
                    values: vec![1.0, 2.0],
                    std_devs: vec![0.0, 0.0],
                    deaths: vec![0, 0],
                },
                Series {
                    name: "b".into(),
                    values: vec![2.0, 4.0],
                    std_devs: vec![0.0, 0.0],
                    deaths: vec![0, 0],
                },
            ],
            topologies: 1,
            seed: 0,
        };
        assert_eq!(fd.ratio(0, 1), vec![0.5, 0.5]);
    }

    /// Smoke test: a heavily scaled-down Fig. 1(a) still shows the paper's
    /// ordering (MinTotalDistance below Greedy under the linear
    /// distribution).
    #[test]
    fn mini_fig1a_preserves_ordering() {
        let fd = run_figure_scaled(FigureId::Fig1a, 2, 7, 0.1);
        assert_eq!(fd.series.len(), 2);
        assert_eq!(fd.xs.len(), NETWORK_SIZES.len());
        let ratios = fd.ratio(0, 1);
        for (i, r) in ratios.iter().enumerate() {
            assert!(*r < 1.0, "point {i}: MTD/Greedy ratio {r} >= 1");
        }
        // Perpetual operation everywhere.
        for s in &fd.series {
            assert!(s.deaths.iter().all(|&d| d == 0), "{}: deaths", s.name);
        }
    }
}
