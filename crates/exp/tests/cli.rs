//! End-to-end tests of the `perpetuum-exp` binary.

use std::process::Command;

fn exe() -> Command {
    Command::new(env!("CARGO_BIN_EXE_perpetuum-exp"))
}

#[test]
fn list_shows_every_experiment_id() {
    let out = exe().arg("--list").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for id in [
        "fig1a",
        "fig1b",
        "fig2a",
        "fig2b",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "ablation_rounding",
        "ablation_tour_polish",
        "ablation_repair",
        "ablation_routing",
        "ext_burst",
        "ext_minmax",
        "ext_range",
        "ext_speed",
        "ext_noise",
        "ext_ratio",
        "ext_aging",
        "ext_deploy",
        "ext_robustness",
        "ext_drift",
    ] {
        assert!(text.contains(id), "missing {id} in --list output");
    }
}

#[test]
fn figure_run_prints_table_and_writes_files() {
    let dir = std::env::temp_dir().join("perpetuum_cli_test_out");
    std::fs::remove_dir_all(&dir).ok();
    let out = exe()
        .args(["--figure", "fig1a", "--topologies", "1", "--scale", "0.02", "--out"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Fig. 1(a)"));
    assert!(text.contains("MinTotalDistance"));
    assert!(text.contains("Greedy"));
    assert!(dir.join("fig1a.csv").exists());
    assert!(dir.join("fig1a.json").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plot_flag_renders_ascii_chart() {
    let out = exe()
        .args(["--figure", "fig1a", "--topologies", "1", "--scale", "0.02", "--plot"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("o MinTotalDistance"), "legend missing:\n{text}");
    assert!(text.contains("x Greedy"));
}

#[test]
fn render_topology_writes_svg() {
    let path = std::env::temp_dir().join("perpetuum_cli_topo.svg");
    std::fs::remove_file(&path).ok();
    let out = exe().arg("--render-topology").arg(&path).output().expect("binary runs");
    assert!(out.status.success());
    let svg = std::fs::read_to_string(&path).unwrap();
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("<circle"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn report_from_results_dir() {
    let dir = std::env::temp_dir().join("perpetuum_cli_report_out");
    std::fs::remove_dir_all(&dir).ok();
    let report = std::env::temp_dir().join("perpetuum_cli_report.md");
    std::fs::remove_file(&report).ok();
    let out = exe()
        .args(["--figure", "fig1a", "--topologies", "1", "--scale", "0.02", "--out"])
        .arg(&dir)
        .arg("--report")
        .arg(&report)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let md = std::fs::read_to_string(&report).unwrap();
    assert!(md.starts_with("# perpetuum experiment report"));
    assert!(md.contains("## Fig. 1(a)"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&report).ok();
}

#[test]
fn bad_arguments_fail_with_usage() {
    for args in [vec!["--figure", "fig99"], vec!["--bogus"], vec![]] {
        let out = exe().args(&args).output().expect("binary runs");
        assert!(!out.status.success(), "args {args:?} should fail");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("USAGE"), "no usage for {args:?}");
    }
}

#[test]
fn custom_scenario_json_runs() {
    let path = std::env::temp_dir().join("perpetuum_cli_scenario.json");
    std::fs::write(
        &path,
        r#"{
            "name": "cli custom",
            "scenario": {
                "field_size": 1000.0, "n": 8, "q": 2,
                "tau_min": 1.0, "tau_max": 10.0,
                "dist": { "Linear": { "sigma": 2.0 } },
                "horizon": 30.0, "slot": 10.0,
                "variable": false, "deployment": "Halton"
            },
            "algos": ["Mtd", "Greedy"]
        }"#,
    )
    .unwrap();
    let out =
        exe().args(["--topologies", "1", "--scenario"]).arg(&path).output().expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("cli custom"));
    assert!(text.contains("MinTotalDistance"));
    std::fs::remove_file(&path).ok();

    // Malformed JSON fails cleanly.
    let bad = std::env::temp_dir().join("perpetuum_cli_scenario_bad.json");
    std::fs::write(&bad, "{ nope").unwrap();
    let out = exe().arg("--scenario").arg(&bad).output().expect("binary runs");
    assert!(!out.status.success());
    std::fs::remove_file(&bad).ok();
}

#[test]
fn validate_accepts_good_scenarios_and_rejects_bad_ones() {
    let good = std::env::temp_dir().join("perpetuum_cli_validate_good.json");
    std::fs::write(
        &good,
        r#"{
            "field_size": 1000.0, "n": 8, "q": 2,
            "tau_min": 1.0, "tau_max": 10.0,
            "dist": { "Linear": { "sigma": 2.0 } },
            "horizon": 30.0, "slot": 10.0,
            "variable": false, "deployment": "Halton"
        }"#,
    )
    .unwrap();
    let out = exe().arg("validate").arg(&good).output().expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("ok (n=8, q=2, horizon=30)"), "unexpected stdout:\n{text}");

    // q = 0 parses as JSON but fails semantic validation with a typed error.
    let bad = std::env::temp_dir().join("perpetuum_cli_validate_bad.json");
    std::fs::write(
        &bad,
        r#"{
            "field_size": 1000.0, "n": 8, "q": 0,
            "tau_min": 1.0, "tau_max": 10.0,
            "dist": { "Linear": { "sigma": 2.0 } },
            "horizon": 30.0, "slot": 10.0,
            "variable": false, "deployment": "Halton"
        }"#,
    )
    .unwrap();
    let out = exe().arg("validate").arg(&good).arg(&bad).output().expect("binary runs");
    assert!(!out.status.success(), "q=0 scenario must fail validation");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("invalid"), "stderr lacks the typed error:\n{err}");
    assert!(err.contains("q must be at least 1"), "stderr lacks the typed error:\n{err}");
    // The good file still validated on the same invocation.
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("ok (n=8"), "good file not reported:\n{text}");

    // Wrapper shapes (custom-experiment files, daemon request bodies) are
    // validated through their "scenario" subtree.
    let wrapped = std::env::temp_dir().join("perpetuum_cli_validate_wrapped.json");
    std::fs::write(
        &wrapped,
        r#"{"name": "wrapped", "scenario": {
            "field_size": 1000.0, "n": 8, "q": 2,
            "tau_min": 1.0, "tau_max": 10.0,
            "dist": { "Linear": { "sigma": 2.0 } },
            "horizon": 30.0, "slot": 10.0,
            "variable": false, "deployment": "Halton"
        }, "algos": ["Mtd"]}"#,
    )
    .unwrap();
    let out = exe().arg("validate").arg(&wrapped).output().expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("ok (n=8, q=2, horizon=30)"), "unexpected stdout:\n{text}");
    std::fs::remove_file(&wrapped).ok();

    // A missing file is reported and fails the run.
    let gone = std::env::temp_dir().join("perpetuum_cli_validate_missing.json");
    std::fs::remove_file(&gone).ok();
    let out = exe().arg("validate").arg(&gone).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unreadable"), "stderr:\n{err}");

    // No files at all is a usage error.
    let out = exe().arg("validate").output().expect("binary runs");
    assert!(!out.status.success());

    std::fs::remove_file(&good).ok();
    std::fs::remove_file(&bad).ok();
}

#[test]
fn zero_topologies_rejected() {
    let out = exe().args(["--figure", "fig1a", "--topologies", "0"]).output().expect("binary runs");
    assert!(!out.status.success());
}
