//! Deterministic RNG streams.
//!
//! Every source of randomness in the workspace is a [`rand::rngs::StdRng`]
//! derived from a master seed with [`derive_seed`]. An experiment that runs
//! 100 topologies draws topology `i` from `derived_rng(master, i as u64)`,
//! which makes each data point independent of the order in which topologies
//! are executed (and therefore safe to parallelise).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
///
/// Used to derive statistically independent child seeds from `(base,
/// stream)` pairs; identical inputs always produce identical outputs.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed for stream `stream` of master seed `base`.
#[inline]
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    // Two rounds of mixing decorrelate consecutive stream indices.
    splitmix64(splitmix64(base).wrapping_add(splitmix64(stream ^ 0xA076_1D64_78BD_642F)))
}

/// A seeded RNG for the master seed itself.
pub fn master_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A seeded RNG for stream `stream` derived from master seed `base`.
pub fn derived_rng(base: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(base, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn derive_seed_differs_across_streams() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(42, 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_seed_differs_across_bases() {
        assert_ne!(derive_seed(1, 5), derive_seed(2, 5));
    }

    #[test]
    fn derived_rng_reproducible() {
        let mut r1 = derived_rng(99, 3);
        let mut r2 = derived_rng(99, 3);
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn derived_streams_decorrelated() {
        // Crude avalanche check: consecutive streams should not share many
        // leading draws.
        let mut r1 = derived_rng(7, 100);
        let mut r2 = derived_rng(7, 101);
        let same = (0..64).filter(|_| r1.gen::<u64>() == r2.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn splitmix_avalanche_on_single_bit() {
        // Flipping one input bit should flip roughly half of the output
        // bits; require at least a quarter as a loose sanity bound.
        let a = splitmix64(0x1234_5678);
        let b = splitmix64(0x1234_5679);
        let flipped = (a ^ b).count_ones();
        assert!(flipped >= 16, "weak avalanche: only {flipped} bits flipped");
    }
}
