//! Convex hulls (Andrew's monotone chain).
//!
//! Used as a test oracle for the TSP machinery: for points in convex
//! position the optimal tour *is* the hull, and in general every closed
//! tour through a point set is at least as long as the perimeter of its
//! convex hull.

use crate::point::Point2;

/// Cross product `(b − a) × (c − a)`: positive for a left turn.
#[inline]
fn cross(a: Point2, b: Point2, c: Point2) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// The convex hull of `points` in counter-clockwise order, starting from
/// the lexicographically smallest point. Collinear boundary points are
/// dropped; duplicates are tolerated. Fewer than three distinct points
/// return what is left (possibly a single point or a segment).
pub fn convex_hull(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .expect("coordinates must not be NaN")
            .then(a.y.partial_cmp(&b.y).expect("coordinates must not be NaN"))
    });
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    let n = pts.len();
    if n <= 2 {
        return pts;
    }

    let mut hull: Vec<Point2> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point repeats the first
    hull
}

/// Perimeter of the convex hull of `points` — a lower bound on the length
/// of any closed tour visiting all of them.
pub fn hull_perimeter(points: &[Point2]) -> f64 {
    let hull = convex_hull(points);
    crate::point::closed_tour_length(&hull)
}

/// True when `p` lies inside or on the boundary of the convex polygon
/// `hull` (counter-clockwise vertex order, as produced by
/// [`convex_hull`]).
pub fn hull_contains(hull: &[Point2], p: Point2) -> bool {
    if hull.len() < 3 {
        // Degenerate hull: containment means lying on the point/segment.
        return match hull {
            [] => false,
            [a] => a.dist(p) < 1e-9,
            [a, b] => {
                let d = a.dist(*b);
                (a.dist(p) + p.dist(*b) - d).abs() < 1e-9
            }
            _ => unreachable!(),
        };
    }
    for i in 0..hull.len() {
        let a = hull[i];
        let b = hull[(i + 1) % hull.len()];
        if cross(a, b, p) < -1e-9 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_hull() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
            Point2::new(0.5, 0.5), // interior
            Point2::new(0.5, 0.0), // collinear on an edge
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!((hull_perimeter(&pts) - 4.0).abs() < 1e-12);
        assert!(hull_contains(&hull, Point2::new(0.5, 0.5)));
        assert!(hull_contains(&hull, Point2::new(1.0, 1.0)));
        assert!(!hull_contains(&hull, Point2::new(1.1, 0.5)));
    }

    #[test]
    fn degenerate_hulls() {
        assert!(convex_hull(&[]).is_empty());
        let single = [Point2::new(2.0, 3.0)];
        assert_eq!(convex_hull(&single).len(), 1);
        assert_eq!(hull_perimeter(&single), 0.0);
        // Collinear points: hull degenerates to the two extremes.
        let line: Vec<Point2> = (0..5).map(|i| Point2::new(i as f64, 0.0)).collect();
        let hull = convex_hull(&line);
        assert_eq!(hull.len(), 2);
        assert!(hull_contains(&hull, Point2::new(2.0, 0.0)));
        assert!(!hull_contains(&hull, Point2::new(2.0, 0.1)));
    }

    #[test]
    fn duplicates_tolerated() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        ];
        assert_eq!(convex_hull(&pts).len(), 3);
    }

    #[test]
    fn hull_contains_all_inputs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let pts: Vec<Point2> = (0..100)
            .map(|_| Point2::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let hull = convex_hull(&pts);
        assert!(hull.len() >= 3);
        for &p in &pts {
            assert!(hull_contains(&hull, p));
        }
    }
}
