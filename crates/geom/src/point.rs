//! 2-D points with Euclidean geometry.

use serde::{Deserialize, Serialize};

/// A point in the two-dimensional deployment plane.
///
/// Coordinates are metres throughout the workspace. The type is `Copy` and
/// 16 bytes, so it is passed by value everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate (m).
    pub x: f64,
    /// Vertical coordinate (m).
    pub y: f64,
}

impl Point2 {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point2) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed).
    #[inline]
    pub fn dist_sq(&self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint of the segment between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: Point2) -> Point2 {
        Point2::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    #[inline]
    pub fn lerp(&self, other: Point2, t: f64) -> Point2 {
        Point2::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }

    /// Component-wise translation.
    #[inline]
    pub fn translate(&self, dx: f64, dy: f64) -> Point2 {
        Point2::new(self.x + dx, self.y + dy)
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl std::ops::Add for Point2 {
    type Output = Point2;
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Sub for Point2 {
    type Output = Point2;
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl std::ops::Mul<f64> for Point2 {
    type Output = Point2;
    fn mul(self, k: f64) -> Point2 {
        Point2::new(self.x * k, self.y * k)
    }
}

impl std::ops::Neg for Point2 {
    type Output = Point2;
    fn neg(self) -> Point2 {
        Point2::new(-self.x, -self.y)
    }
}

/// Centroid (arithmetic mean) of a non-empty point set.
///
/// Returns `None` for an empty slice.
pub fn centroid(points: &[Point2]) -> Option<Point2> {
    if points.is_empty() {
        return None;
    }
    let (sx, sy) = points.iter().fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
    let n = points.len() as f64;
    Some(Point2::new(sx / n, sy / n))
}

/// Index of the point in `points` nearest to `target`, together with the
/// distance. Ties are broken by the lowest index. `None` on an empty slice.
pub fn nearest(points: &[Point2], target: Point2) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, p) in points.iter().enumerate() {
        let d2 = p.dist_sq(target);
        match best {
            Some((_, bd2)) if bd2 <= d2 => {}
            _ => best = Some((i, d2)),
        }
    }
    best.map(|(i, d2)| (i, d2.sqrt()))
}

/// Total length of the open polyline visiting `points` in order.
pub fn polyline_length(points: &[Point2]) -> f64 {
    points.windows(2).map(|w| w[0].dist(w[1])).sum()
}

/// Total length of the closed polygon visiting `points` in order and
/// returning to the start. A single point (or empty slice) has length zero.
pub fn closed_tour_length(points: &[Point2]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    polyline_length(points) + points[points.len() - 1].dist(points[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_is_euclidean() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist_sq(b), 25.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point2::new(1.5, -2.0);
        let b = Point2::new(-4.0, 7.25);
        assert_eq!(a.dist(b), b.dist(a));
    }

    #[test]
    fn dist_to_self_is_zero() {
        let a = Point2::new(123.456, -789.0);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 6.0);
        let m = a.midpoint(b);
        assert_eq!(m, Point2::new(1.0, 3.0));
        assert!((a.dist(m) - b.dist(m)).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(5.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
    }

    #[test]
    fn translate_moves_point() {
        let a = Point2::new(1.0, 1.0);
        assert_eq!(a.translate(2.0, -3.0), Point2::new(3.0, -2.0));
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(2.0, 2.0),
            Point2::new(0.0, 2.0),
        ];
        assert_eq!(centroid(&pts), Some(Point2::new(1.0, 1.0)));
    }

    #[test]
    fn centroid_empty_is_none() {
        assert_eq!(centroid(&[]), None);
    }

    #[test]
    fn nearest_finds_closest_and_breaks_ties_low() {
        let pts = [Point2::new(0.0, 0.0), Point2::new(10.0, 0.0), Point2::new(0.0, 10.0)];
        let (i, d) = nearest(&pts, Point2::new(1.0, 1.0)).unwrap();
        assert_eq!(i, 0);
        assert!((d - 2f64.sqrt()).abs() < 1e-12);

        // Equidistant from the first two points: lowest index wins.
        let (i, _) = nearest(&pts, Point2::new(5.0, 0.0)).unwrap();
        assert_eq!(i, 0);
    }

    #[test]
    fn nearest_empty_is_none() {
        assert_eq!(nearest(&[], Point2::ORIGIN), None);
    }

    #[test]
    fn polyline_and_closed_lengths() {
        let pts = [Point2::new(0.0, 0.0), Point2::new(3.0, 0.0), Point2::new(3.0, 4.0)];
        assert_eq!(polyline_length(&pts), 7.0);
        assert_eq!(closed_tour_length(&pts), 12.0);
    }

    #[test]
    fn degenerate_tours_have_zero_length() {
        assert_eq!(closed_tour_length(&[]), 0.0);
        assert_eq!(closed_tour_length(&[Point2::new(5.0, 5.0)]), 0.0);
    }

    #[test]
    fn vector_operators() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -1.0);
        assert_eq!(a + b, Point2::new(4.0, 1.0));
        assert_eq!(b - a, Point2::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point2::new(2.0, 4.0));
        assert_eq!(-a, Point2::new(-1.0, -2.0));
        // lerp expressed through the operators agrees with the method.
        let t = 0.25;
        assert_eq!(a + (b - a) * t, a.lerp(b, t));
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(Point2::new(1.0, 2.0).is_finite());
        assert!(!Point2::new(f64::NAN, 0.0).is_finite());
        assert!(!Point2::new(0.0, f64::INFINITY).is_finite());
    }
}
