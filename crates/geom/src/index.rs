//! Spatial indexes over point sets: a uniform grid and a kd-tree.
//!
//! Both structures answer **exact** k-nearest-neighbour and radius queries —
//! they are accelerators, not approximations, so planner output built on
//! them is identical to what brute force would produce. Ties in distance are
//! broken by the lower point index, which makes every query deterministic
//! and lets the two indexes (and a brute-force scan) agree bit-for-bit.
//!
//! The planning pipeline uses these to build sparse k-NN candidate graphs
//! in O(n·k·log n) instead of sorting dense O(n²) distance rows.

use crate::aabb::Aabb;
use crate::point::Point2;
use std::collections::BinaryHeap;

/// `f64` ordered by `total_cmp`, for use inside heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Nf64(f64);

impl Eq for Nf64 {}

impl PartialOrd for Nf64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Nf64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Bounded max-heap keeping the k smallest `(distance, index)` pairs seen.
struct KBest {
    k: usize,
    heap: BinaryHeap<(Nf64, usize)>,
}

impl KBest {
    fn new(k: usize) -> Self {
        Self { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    #[inline]
    fn offer(&mut self, d: f64, i: usize) {
        if self.heap.len() < self.k {
            self.heap.push((Nf64(d), i));
        } else if let Some(&(worst, wi)) = self.heap.peek() {
            // Strict (d, i) ordering: on distance ties the lower index wins.
            if (Nf64(d), i) < (worst, wi) {
                self.heap.pop();
                self.heap.push((Nf64(d), i));
            }
        }
    }

    #[inline]
    fn full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// Current k-th best distance (pruning threshold); ∞ while not full.
    #[inline]
    fn threshold(&self) -> f64 {
        if self.full() {
            self.heap.peek().map_or(f64::INFINITY, |&(d, _)| d.0)
        } else {
            f64::INFINITY
        }
    }

    fn into_sorted(self) -> Vec<(usize, f64)> {
        let mut out: Vec<(Nf64, usize)> = self.heap.into_vec();
        out.sort_unstable();
        out.into_iter().map(|(d, i)| (i, d.0)).collect()
    }
}

/// Common interface of the spatial indexes (and of brute force, for tests).
pub trait SpatialIndex {
    /// Number of indexed points.
    fn len(&self) -> usize;

    /// True when the index holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The indexed point `i`.
    fn point(&self, i: usize) -> Point2;

    /// The `min(k, len)` points nearest to `query`, as `(index, distance)`
    /// sorted by ascending `(distance, index)`. Exact; a point at the query
    /// location is returned like any other (callers filter self-matches).
    fn knn(&self, query: Point2, k: usize) -> Vec<(usize, f64)>;

    /// All points within `radius` of `center` (closed ball), sorted by
    /// ascending `(distance, index)`.
    fn in_radius(&self, center: Point2, radius: f64) -> Vec<(usize, f64)>;

    /// The single nearest point, or `None` on an empty index.
    fn nearest(&self, query: Point2) -> Option<(usize, f64)> {
        self.knn(query, 1).into_iter().next()
    }
}

/// Reference implementation: exhaustive scan. O(n) per query — used as the
/// parity oracle in tests and as the fallback for tiny point sets.
pub struct BruteForceIndex {
    points: Vec<Point2>,
}

impl BruteForceIndex {
    /// Indexes `points` (indices into this slice are the query results).
    pub fn new(points: &[Point2]) -> Self {
        Self { points: points.to_vec() }
    }
}

impl SpatialIndex for BruteForceIndex {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn point(&self, i: usize) -> Point2 {
        self.points[i]
    }

    fn knn(&self, query: Point2, k: usize) -> Vec<(usize, f64)> {
        let mut best = KBest::new(k.min(self.points.len()));
        for (i, p) in self.points.iter().enumerate() {
            best.offer(p.dist(query), i);
        }
        best.into_sorted()
    }

    fn in_radius(&self, center: Point2, radius: f64) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.dist(center)))
            .filter(|&(_, d)| d <= radius)
            .collect();
        out.sort_unstable_by_key(|&(i, d)| (Nf64(d), i));
        out
    }
}

// ---- uniform grid ----------------------------------------------------------

/// A uniform bucket grid over the points' bounding box.
///
/// Cell counts are chosen so the average occupancy is ~1 point per cell;
/// k-NN queries expand outward ring by ring and stop once the ring's
/// lower-bound distance exceeds the current k-th best, which keeps them
/// exact. Near-O(1) per query for uniformly deployed fields (the paper's
/// evaluation setting); worst case degrades gracefully to O(n).
pub struct UniformGrid {
    points: Vec<Point2>,
    bounds: Aabb,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
    /// CSR cell layout: points of cell `c` are `order[start[c]..start[c+1]]`.
    start: Vec<u32>,
    order: Vec<u32>,
}

impl UniformGrid {
    /// Builds the grid in O(n).
    pub fn new(points: &[Point2]) -> Self {
        let n = points.len();
        let bounds =
            Aabb::containing(points).unwrap_or(Aabb::new(Point2::ORIGIN, Point2::new(1.0, 1.0)));
        // ~1 point per cell on average; degenerate (zero-extent) axes get a
        // single row/column.
        let side = (n as f64).sqrt().ceil().max(1.0) as usize;
        let cols = if bounds.width() > 0.0 { side } else { 1 };
        let rows = if bounds.height() > 0.0 { side } else { 1 };
        let cell_w = if cols > 1 { bounds.width() / cols as f64 } else { f64::INFINITY };
        let cell_h = if rows > 1 { bounds.height() / rows as f64 } else { f64::INFINITY };

        let mut grid = Self {
            points: points.to_vec(),
            bounds,
            cols,
            rows,
            cell_w,
            cell_h,
            start: vec![0; cols * rows + 1],
            order: vec![0; n],
        };
        // Counting sort of point indices into CSR cell buckets.
        let cells: Vec<u32> = points
            .iter()
            .map(|&p| {
                let (cx, cy) = grid.cell_of(p);
                (cy * grid.cols + cx) as u32
            })
            .collect();
        for &c in &cells {
            grid.start[c as usize + 1] += 1;
        }
        for c in 0..cols * rows {
            grid.start[c + 1] += grid.start[c];
        }
        let mut cursor: Vec<u32> = grid.start[..cols * rows].to_vec();
        for (i, &c) in cells.iter().enumerate() {
            grid.order[cursor[c as usize] as usize] = i as u32;
            cursor[c as usize] += 1;
        }
        grid
    }

    /// Cell coordinates of `p`, clamped into the grid.
    #[inline]
    fn cell_of(&self, p: Point2) -> (usize, usize) {
        let fx = if self.cell_w.is_finite() {
            ((p.x - self.bounds.min.x) / self.cell_w).floor()
        } else {
            0.0
        };
        let fy = if self.cell_h.is_finite() {
            ((p.y - self.bounds.min.y) / self.cell_h).floor()
        } else {
            0.0
        };
        let cx = (fx.max(0.0) as usize).min(self.cols - 1);
        let cy = (fy.max(0.0) as usize).min(self.rows - 1);
        (cx, cy)
    }

    #[inline]
    fn scan_cell(&self, cx: usize, cy: usize, query: Point2, best: &mut KBest) {
        let c = cy * self.cols + cx;
        for &i in &self.order[self.start[c] as usize..self.start[c + 1] as usize] {
            best.offer(self.points[i as usize].dist(query), i as usize);
        }
    }

    /// Lower bound on the distance from `q` (in cell `(cx, cy)`) to any
    /// point in a cell at Chebyshev ring `r` or beyond; ∞ when no such cell
    /// exists.
    fn ring_lower_bound(&self, q: Point2, cx: usize, cy: usize, r: usize) -> f64 {
        let mut lb = f64::INFINITY;
        if cx >= r {
            lb = lb.min(q.x - (self.bounds.min.x + (cx - r + 1) as f64 * self.cell_w));
        }
        if cx + r < self.cols {
            lb = lb.min(self.bounds.min.x + (cx + r) as f64 * self.cell_w - q.x);
        }
        if cy >= r {
            lb = lb.min(q.y - (self.bounds.min.y + (cy - r + 1) as f64 * self.cell_h));
        }
        if cy + r < self.rows {
            lb = lb.min(self.bounds.min.y + (cy + r) as f64 * self.cell_h - q.y);
        }
        // A query outside the bounding box can make the gap negative; zero
        // keeps the bound valid (it only ever stops the search early).
        lb.max(0.0)
    }
}

impl SpatialIndex for UniformGrid {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn point(&self, i: usize) -> Point2 {
        self.points[i]
    }

    fn knn(&self, query: Point2, k: usize) -> Vec<(usize, f64)> {
        let k = k.min(self.points.len());
        let mut best = KBest::new(k);
        if k == 0 {
            return Vec::new();
        }
        let (cx, cy) = self.cell_of(query);
        let max_ring = cx.max(self.cols - 1 - cx).max(cy).max(self.rows - 1 - cy);
        for r in 0..=max_ring {
            if best.full() && self.ring_lower_bound(query, cx, cy, r) > best.threshold() {
                break;
            }
            if r == 0 {
                self.scan_cell(cx, cy, query, &mut best);
                continue;
            }
            // Top and bottom rows of the ring.
            let x_lo = cx.saturating_sub(r);
            let x_hi = (cx + r).min(self.cols - 1);
            if cy >= r {
                for x in x_lo..=x_hi {
                    self.scan_cell(x, cy - r, query, &mut best);
                }
            }
            if cy + r < self.rows {
                for x in x_lo..=x_hi {
                    self.scan_cell(x, cy + r, query, &mut best);
                }
            }
            // Left and right columns (excluding the corners already done).
            let y_lo = cy.saturating_sub(r - 1);
            let y_hi = (cy + r - 1).min(self.rows - 1);
            if cx >= r {
                for y in y_lo..=y_hi {
                    self.scan_cell(cx - r, y, query, &mut best);
                }
            }
            if cx + r < self.cols {
                for y in y_lo..=y_hi {
                    self.scan_cell(cx + r, y, query, &mut best);
                }
            }
        }
        best.into_sorted()
    }

    fn in_radius(&self, center: Point2, radius: f64) -> Vec<(usize, f64)> {
        if self.points.is_empty() || radius < 0.0 {
            return Vec::new();
        }
        let (lo_x, lo_y) = self.cell_of(Point2::new(center.x - radius, center.y - radius));
        let (hi_x, hi_y) = self.cell_of(Point2::new(center.x + radius, center.y + radius));
        let mut out = Vec::new();
        for cy in lo_y..=hi_y {
            for cx in lo_x..=hi_x {
                let c = cy * self.cols + cx;
                for &i in &self.order[self.start[c] as usize..self.start[c + 1] as usize] {
                    let d = self.points[i as usize].dist(center);
                    if d <= radius {
                        out.push((i as usize, d));
                    }
                }
            }
        }
        out.sort_unstable_by_key(|&(i, d)| (Nf64(d), i));
        out
    }
}

// ---- kd-tree ---------------------------------------------------------------

/// Size below which kd-tree nodes become scanned leaves.
const KD_LEAF: usize = 8;

/// A balanced, implicitly laid-out 2-d tree.
///
/// Built in O(n log n) with median splits (`select_nth_unstable`); k-NN and
/// radius queries prune subtrees by splitting-plane distance and are exact.
/// Robust to any point distribution, including the clustered deployments of
/// Section VII.A where a uniform grid's occupancy degrades.
pub struct KdTree {
    points: Vec<Point2>,
    /// Permutation of point indices; subranges form the tree, each split at
    /// its midpoint by the node's axis.
    order: Vec<u32>,
}

impl KdTree {
    /// Builds the tree in O(n log n).
    pub fn new(points: &[Point2]) -> Self {
        let mut tree = Self { points: points.to_vec(), order: (0..points.len() as u32).collect() };
        let n = points.len();
        tree.build(0, n, 0);
        tree
    }

    #[inline]
    fn coord(&self, i: u32, axis: usize) -> f64 {
        let p = self.points[i as usize];
        if axis == 0 {
            p.x
        } else {
            p.y
        }
    }

    fn build(&mut self, lo: usize, hi: usize, axis: usize) {
        if hi - lo <= KD_LEAF {
            return;
        }
        let mid = (lo + hi) / 2;
        let points = &self.points;
        self.order[lo..hi].select_nth_unstable_by(mid - lo, |&a, &b| {
            let (pa, pb) = (points[a as usize], points[b as usize]);
            let (ca, cb) = if axis == 0 { (pa.x, pb.x) } else { (pa.y, pb.y) };
            ca.total_cmp(&cb).then(a.cmp(&b))
        });
        self.build(lo, mid, axis ^ 1);
        self.build(mid + 1, hi, axis ^ 1);
    }

    fn knn_rec(&self, lo: usize, hi: usize, axis: usize, q: Point2, best: &mut KBest) {
        if hi - lo <= KD_LEAF {
            for &i in &self.order[lo..hi] {
                best.offer(self.points[i as usize].dist(q), i as usize);
            }
            return;
        }
        let mid = (lo + hi) / 2;
        let pivot = self.order[mid];
        best.offer(self.points[pivot as usize].dist(q), pivot as usize);
        let split = self.coord(pivot, axis);
        let qc = if axis == 0 { q.x } else { q.y };
        let (near, far) =
            if qc < split { ((lo, mid), (mid + 1, hi)) } else { ((mid + 1, hi), (lo, mid)) };
        self.knn_rec(near.0, near.1, axis ^ 1, q, best);
        // The far half can only matter if the splitting plane is closer
        // than the current k-th best.
        if (qc - split).abs() <= best.threshold() {
            self.knn_rec(far.0, far.1, axis ^ 1, q, best);
        }
    }

    fn radius_rec(
        &self,
        lo: usize,
        hi: usize,
        axis: usize,
        c: Point2,
        radius: f64,
        out: &mut Vec<(usize, f64)>,
    ) {
        if hi - lo <= KD_LEAF {
            for &i in &self.order[lo..hi] {
                let d = self.points[i as usize].dist(c);
                if d <= radius {
                    out.push((i as usize, d));
                }
            }
            return;
        }
        let mid = (lo + hi) / 2;
        let pivot = self.order[mid];
        let d = self.points[pivot as usize].dist(c);
        if d <= radius {
            out.push((pivot as usize, d));
        }
        let split = self.coord(pivot, axis);
        let qc = if axis == 0 { c.x } else { c.y };
        if qc - radius < split {
            self.radius_rec(lo, mid, axis ^ 1, c, radius, out);
        }
        if qc + radius >= split {
            self.radius_rec(mid + 1, hi, axis ^ 1, c, radius, out);
        }
    }
}

impl SpatialIndex for KdTree {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn point(&self, i: usize) -> Point2 {
        self.points[i]
    }

    fn knn(&self, query: Point2, k: usize) -> Vec<(usize, f64)> {
        let k = k.min(self.points.len());
        if k == 0 {
            return Vec::new();
        }
        let mut best = KBest::new(k);
        self.knn_rec(0, self.points.len(), 0, query, &mut best);
        best.into_sorted()
    }

    fn in_radius(&self, center: Point2, radius: f64) -> Vec<(usize, f64)> {
        if self.points.is_empty() || radius < 0.0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.radius_rec(0, self.points.len(), 0, center, radius, &mut out);
        out.sort_unstable_by_key(|&(i, d)| (Nf64(d), i));
        out
    }
}

/// Exact k-NN lists for every indexed point, excluding the point itself:
/// `result[i]` holds up to `k` neighbour indices of point `i`, nearest
/// first. This is the candidate-list builder the sparse planning pipeline
/// feeds to graph construction and 2-opt, in O(n·k·log n) total.
pub fn knn_lists<I: SpatialIndex>(index: &I, k: usize) -> Vec<Vec<usize>> {
    (0..index.len())
        .map(|i| {
            index
                .knn(index.point(i), k + 1)
                .into_iter()
                .filter(|&(j, _)| j != i)
                .take(k)
                .map(|(j, _)| j)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point2> {
        coords.iter().map(|&(x, y)| Point2::new(x, y)).collect()
    }

    /// Pseudo-random but fully deterministic point cloud (no RNG dep here).
    fn cloud(n: usize, salt: u64) -> Vec<Point2> {
        let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point2::new(next() * 1000.0, next() * 1000.0)).collect()
    }

    fn assert_index_matches_brute<I: SpatialIndex>(index: &I, points: &[Point2], k: usize) {
        let brute = BruteForceIndex::new(points);
        for (qi, &q) in points.iter().enumerate().step_by(7) {
            assert_eq!(index.knn(q, k), brute.knn(q, k), "knn mismatch at {qi}");
        }
        let center = Point2::new(400.0, 600.0);
        for radius in [0.0, 35.0, 250.0, 5000.0] {
            assert_eq!(
                index.in_radius(center, radius),
                brute.in_radius(center, radius),
                "radius {radius} mismatch"
            );
        }
    }

    #[test]
    fn grid_knn_matches_brute_force() {
        let points = cloud(257, 1);
        assert_index_matches_brute(&UniformGrid::new(&points), &points, 5);
    }

    #[test]
    fn kdtree_knn_matches_brute_force() {
        let points = cloud(257, 2);
        assert_index_matches_brute(&KdTree::new(&points), &points, 5);
    }

    #[test]
    fn clustered_points_still_exact() {
        // Heavy clustering: grid occupancy is badly skewed, kd-tree deep.
        let mut points = cloud(64, 3);
        for p in cloud(192, 4) {
            points.push(Point2::new(p.x * 0.01 + 500.0, p.y * 0.01 + 500.0));
        }
        assert_index_matches_brute(&UniformGrid::new(&points), &points, 9);
        assert_index_matches_brute(&KdTree::new(&points), &points, 9);
    }

    #[test]
    fn duplicate_points_tie_break_by_index() {
        let points = pts(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0), (9.0, 9.0)]);
        for index in [&UniformGrid::new(&points) as &dyn SpatialIndex, &KdTree::new(&points)] {
            let got = index.knn(Point2::new(1.0, 1.0), 2);
            assert_eq!(got, vec![(0, 0.0), (1, 0.0)]);
        }
    }

    #[test]
    fn collinear_points_handled() {
        // Zero vertical extent: the grid degenerates to one row.
        let points: Vec<Point2> = (0..40).map(|i| Point2::new(i as f64 * 3.0, 5.0)).collect();
        assert_index_matches_brute(&UniformGrid::new(&points), &points, 4);
        assert_index_matches_brute(&KdTree::new(&points), &points, 4);
    }

    #[test]
    fn empty_and_tiny_sets() {
        for index in [
            &UniformGrid::new(&[]) as &dyn SpatialIndex,
            &KdTree::new(&[]),
            &BruteForceIndex::new(&[]),
        ] {
            assert!(index.is_empty());
            assert!(index.knn(Point2::ORIGIN, 3).is_empty());
            assert!(index.in_radius(Point2::ORIGIN, 10.0).is_empty());
            assert_eq!(index.nearest(Point2::ORIGIN), None);
        }
        let one = pts(&[(3.0, 4.0)]);
        let grid = UniformGrid::new(&one);
        assert_eq!(grid.nearest(Point2::ORIGIN), Some((0, 5.0)));
        assert_eq!(grid.knn(Point2::ORIGIN, 10), vec![(0, 5.0)]);
    }

    #[test]
    fn query_outside_bounds() {
        let points = cloud(100, 5);
        let grid = UniformGrid::new(&points);
        let tree = KdTree::new(&points);
        let brute = BruteForceIndex::new(&points);
        for q in [Point2::new(-500.0, -500.0), Point2::new(2000.0, 500.0), Point2::new(500.0, -1e6)]
        {
            assert_eq!(grid.knn(q, 3), brute.knn(q, 3));
            assert_eq!(tree.knn(q, 3), brute.knn(q, 3));
        }
    }

    #[test]
    fn knn_lists_exclude_self() {
        let points = cloud(50, 6);
        let tree = KdTree::new(&points);
        let lists = knn_lists(&tree, 4);
        assert_eq!(lists.len(), 50);
        for (i, list) in lists.iter().enumerate() {
            assert_eq!(list.len(), 4);
            assert!(!list.contains(&i), "list of {i} contains itself");
            // Nearest-first: distances are non-decreasing.
            let d: Vec<f64> = list.iter().map(|&j| points[i].dist(points[j])).collect();
            assert!(d.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let points = cloud(5, 7);
        let grid = UniformGrid::new(&points);
        assert_eq!(grid.knn(Point2::new(500.0, 500.0), 100).len(), 5);
        let lists = knn_lists(&grid, 100);
        assert!(lists.iter().all(|l| l.len() == 4));
    }
}
