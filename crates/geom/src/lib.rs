//! Planar geometry substrate for the `perpetuum` workspace.
//!
//! The paper ("Towards Perpetual Sensor Networks via Deploying Multiple
//! Mobile Wireless Chargers", ICPP 2014) models a wireless sensor network as
//! points in a two-dimensional field with Euclidean distances. This crate
//! provides:
//!
//! * [`Point2`] — a 2-D point with the handful of vector operations the
//!   schedulers need,
//! * [`Aabb`] and [`Field`] — axis-aligned regions and the rectangular
//!   deployment field used throughout the evaluation (1000 m × 1000 m in the
//!   paper),
//! * [`deploy`] — random/grid/clustered sensor deployments and depot
//!   placement matching Section VII.A of the paper,
//! * [`index`] — exact spatial indexes (uniform grid, kd-tree) powering the
//!   near-linear sparse planning pipeline,
//! * [`rng`] — deterministic derivation of per-topology RNG streams from a
//!   single master seed, so every experiment is reproducible bit-for-bit.

pub mod aabb;
pub mod deploy;
pub mod hull;
pub mod index;
pub mod point;
pub mod rng;

pub use aabb::{Aabb, Field};
pub use deploy::{
    clustered_deployment, grid_deployment, halton_deployment, place_depots, uniform_deployment,
    DepotPlacement,
};
pub use hull::{convex_hull, hull_contains, hull_perimeter};
pub use index::{knn_lists, BruteForceIndex, KdTree, SpatialIndex, UniformGrid};
pub use point::Point2;
pub use rng::{derive_seed, derived_rng, master_rng};
