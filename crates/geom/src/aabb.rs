//! Axis-aligned bounding boxes and the rectangular deployment field.

use crate::point::Point2;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box, closed on all sides.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Lower-left corner.
    pub min: Point2,
    /// Upper-right corner.
    pub max: Point2,
}

impl Aabb {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Point2, b: Point2) -> Self {
        Self {
            min: Point2::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Smallest box containing every point, or `None` for an empty slice.
    pub fn containing(points: &[Point2]) -> Option<Self> {
        let first = *points.first()?;
        let mut bb = Aabb::new(first, first);
        for p in &points[1..] {
            bb.min.x = bb.min.x.min(p.x);
            bb.min.y = bb.min.y.min(p.y);
            bb.max.x = bb.max.x.max(p.x);
            bb.max.y = bb.max.y.max(p.y);
        }
        Some(bb)
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Geometric centre.
    #[inline]
    pub fn center(&self) -> Point2 {
        self.min.midpoint(self.max)
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Length of the diagonal — an upper bound on any pairwise distance
    /// inside the box.
    #[inline]
    pub fn diameter(&self) -> f64 {
        self.min.dist(self.max)
    }
}

/// The rectangular deployment field of a sensor network, anchored at the
/// origin. The paper's evaluation uses a 1000 m × 1000 m field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Field {
    /// Field width (m).
    pub width: f64,
    /// Field height (m).
    pub height: f64,
}

impl Field {
    /// Creates a field of the given dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is not strictly positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "field dimensions must be positive and finite, got {width} x {height}"
        );
        Self { width, height }
    }

    /// The paper's default evaluation field: 1000 m × 1000 m.
    pub fn paper_default() -> Self {
        Self::new(1000.0, 1000.0)
    }

    /// The field as a bounding box anchored at the origin.
    pub fn bounds(&self) -> Aabb {
        Aabb::new(Point2::ORIGIN, Point2::new(self.width, self.height))
    }

    /// Centre of the field — where the paper places the base station.
    pub fn center(&self) -> Point2 {
        Point2::new(self.width * 0.5, self.height * 0.5)
    }

    /// Maximum possible distance between any two points of the field.
    pub fn diameter(&self) -> f64 {
        self.bounds().diameter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aabb_normalizes_corners() {
        let bb = Aabb::new(Point2::new(5.0, -1.0), Point2::new(-2.0, 3.0));
        assert_eq!(bb.min, Point2::new(-2.0, -1.0));
        assert_eq!(bb.max, Point2::new(5.0, 3.0));
        assert_eq!(bb.width(), 7.0);
        assert_eq!(bb.height(), 4.0);
    }

    #[test]
    fn aabb_containing_points() {
        let pts = [Point2::new(1.0, 2.0), Point2::new(-3.0, 5.0), Point2::new(0.0, 0.0)];
        let bb = Aabb::containing(&pts).unwrap();
        assert_eq!(bb.min, Point2::new(-3.0, 0.0));
        assert_eq!(bb.max, Point2::new(1.0, 5.0));
        for p in pts {
            assert!(bb.contains(p));
        }
        assert!(Aabb::containing(&[]).is_none());
    }

    #[test]
    fn aabb_contains_boundary() {
        let bb = Aabb::new(Point2::ORIGIN, Point2::new(1.0, 1.0));
        assert!(bb.contains(Point2::new(0.0, 0.0)));
        assert!(bb.contains(Point2::new(1.0, 1.0)));
        assert!(bb.contains(Point2::new(0.5, 1.0)));
        assert!(!bb.contains(Point2::new(1.0001, 0.5)));
    }

    #[test]
    fn field_center_and_diameter() {
        let f = Field::paper_default();
        assert_eq!(f.center(), Point2::new(500.0, 500.0));
        assert!((f.diameter() - 2f64.sqrt() * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn field_bounds_anchored_at_origin() {
        let f = Field::new(200.0, 100.0);
        let bb = f.bounds();
        assert_eq!(bb.min, Point2::ORIGIN);
        assert_eq!(bb.max, Point2::new(200.0, 100.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn field_rejects_zero_width() {
        Field::new(0.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn field_rejects_nan() {
        Field::new(f64::NAN, 10.0);
    }
}
