//! Sensor deployments and depot placement.
//!
//! Section VII.A of the paper deploys `n` sensors uniformly at random in a
//! 1000 m × 1000 m field, puts the base station at the centre, and uses
//! `q = 5` depots — one co-located with the base station (the most
//! energy-hungry sensors cluster there) and the rest uniform in the field.
//! [`uniform_deployment`] and [`place_depots`] reproduce exactly that;
//! [`grid_deployment`] and [`clustered_deployment`] provide additional
//! workloads for the examples and tests.

use crate::aabb::Field;
use crate::point::Point2;
use rand::Rng;

/// Draws `n` points uniformly at random inside the field.
pub fn uniform_deployment<R: Rng + ?Sized>(field: Field, n: usize, rng: &mut R) -> Vec<Point2> {
    (0..n)
        .map(|_| Point2::new(rng.gen_range(0.0..=field.width), rng.gen_range(0.0..=field.height)))
        .collect()
}

/// A regular `nx × ny` grid of points, inset by half a cell from the field
/// boundary so no point lies on the edge.
pub fn grid_deployment(field: Field, nx: usize, ny: usize) -> Vec<Point2> {
    assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
    let dx = field.width / nx as f64;
    let dy = field.height / ny as f64;
    let mut pts = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            pts.push(Point2::new((i as f64 + 0.5) * dx, (j as f64 + 0.5) * dy));
        }
    }
    pts
}

/// Draws `n` points grouped around `clusters` uniformly-placed cluster
/// centres with a Gaussian-ish spread (`spread` is the standard deviation of
/// a clamped-into-field triangular kernel — cheap and dependency-free).
///
/// Models the "hot spot" deployments common in surveillance WSNs.
pub fn clustered_deployment<R: Rng + ?Sized>(
    field: Field,
    clusters: usize,
    n: usize,
    spread: f64,
    rng: &mut R,
) -> Vec<Point2> {
    assert!(clusters > 0, "need at least one cluster");
    assert!(spread >= 0.0, "spread must be non-negative");
    let centers = uniform_deployment(field, clusters, rng);
    let bounds = field.bounds();
    (0..n)
        .map(|i| {
            let c = centers[i % clusters];
            // Sum of two uniforms gives a triangular kernel centred on 0.
            let jitter = |rng: &mut R| {
                (rng.gen_range(-1.0..=1.0f64) + rng.gen_range(-1.0..=1.0f64)) * spread
            };
            let p = Point2::new(c.x + jitter(rng), c.y + jitter(rng));
            Point2::new(
                p.x.clamp(bounds.min.x, bounds.max.x),
                p.y.clamp(bounds.min.y, bounds.max.y),
            )
        })
        .collect()
}

/// A low-discrepancy (Halton-sequence) deployment: `n` points whose
/// coordinates follow the base-2 and base-3 van der Corput sequences.
/// Covers the field far more evenly than uniform random placement — the
/// "engineered deployment" counterpart to [`uniform_deployment`], used by
/// examples to show how deployment regularity affects tour lengths.
///
/// `offset` skips the first `offset` sequence elements, giving distinct
/// deterministic deployments.
pub fn halton_deployment(field: Field, n: usize, offset: usize) -> Vec<Point2> {
    (0..n)
        .map(|i| {
            let k = i + offset + 1; // index 0 of van der Corput is 0 — skip
            Point2::new(van_der_corput(k, 2) * field.width, van_der_corput(k, 3) * field.height)
        })
        .collect()
}

/// The `k`-th element of the van der Corput sequence in the given base:
/// reflect the base-`b` digits of `k` about the radix point.
fn van_der_corput(mut k: usize, base: usize) -> f64 {
    let mut result = 0.0;
    let mut denom = 1.0;
    while k > 0 {
        denom *= base as f64;
        result += (k % base) as f64 / denom;
        k /= base;
    }
    result
}

/// How depots are positioned relative to the base station.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepotPlacement {
    /// One depot co-located with the base station, the remaining `q − 1`
    /// uniform in the field — the paper's evaluation setting.
    OneAtBaseStation,
    /// All `q` depots uniform in the field.
    AllRandom,
}

/// Places `q` depots in the field.
///
/// With [`DepotPlacement::OneAtBaseStation`] the first depot is exactly
/// `base_station`; with `q = 0` the result is empty.
pub fn place_depots<R: Rng + ?Sized>(
    field: Field,
    base_station: Point2,
    q: usize,
    placement: DepotPlacement,
    rng: &mut R,
) -> Vec<Point2> {
    match placement {
        DepotPlacement::AllRandom => uniform_deployment(field, q, rng),
        DepotPlacement::OneAtBaseStation => {
            if q == 0 {
                return Vec::new();
            }
            let mut depots = Vec::with_capacity(q);
            depots.push(base_station);
            depots.extend(uniform_deployment(field, q - 1, rng));
            depots
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derived_rng;

    #[test]
    fn uniform_points_inside_field() {
        let field = Field::paper_default();
        let mut rng = derived_rng(1, 0);
        let pts = uniform_deployment(field, 200, &mut rng);
        assert_eq!(pts.len(), 200);
        let bounds = field.bounds();
        assert!(pts.iter().all(|&p| bounds.contains(p)));
    }

    #[test]
    fn uniform_deployment_deterministic_per_seed() {
        let field = Field::paper_default();
        let a = uniform_deployment(field, 50, &mut derived_rng(9, 4));
        let b = uniform_deployment(field, 50, &mut derived_rng(9, 4));
        assert_eq!(a, b);
        let c = uniform_deployment(field, 50, &mut derived_rng(9, 5));
        assert_ne!(a, c);
    }

    #[test]
    fn grid_shape_and_bounds() {
        let field = Field::new(100.0, 50.0);
        let pts = grid_deployment(field, 4, 2);
        assert_eq!(pts.len(), 8);
        let bounds = field.bounds();
        assert!(pts.iter().all(|&p| bounds.contains(p)));
        // First cell centre.
        assert_eq!(pts[0], Point2::new(12.5, 12.5));
        // Last cell centre.
        assert_eq!(pts[7], Point2::new(87.5, 37.5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn grid_rejects_zero_dim() {
        grid_deployment(Field::paper_default(), 0, 3);
    }

    #[test]
    fn clustered_points_inside_field_and_clustered() {
        let field = Field::paper_default();
        let mut rng = derived_rng(2, 0);
        let pts = clustered_deployment(field, 3, 300, 30.0, &mut rng);
        assert_eq!(pts.len(), 300);
        let bounds = field.bounds();
        assert!(pts.iter().all(|&p| bounds.contains(p)));
        // Points assigned to the same cluster (stride 3) should be close to
        // each other on average compared with the field diameter.
        let same_cluster_dist = pts[0].dist(pts[3]);
        assert!(same_cluster_dist < field.diameter() / 2.0);
    }

    #[test]
    fn halton_points_inside_field_and_deterministic() {
        let field = Field::paper_default();
        let pts = halton_deployment(field, 100, 0);
        assert_eq!(pts.len(), 100);
        let bounds = field.bounds();
        assert!(pts.iter().all(|&p| bounds.contains(p)));
        assert_eq!(pts, halton_deployment(field, 100, 0));
        assert_ne!(pts, halton_deployment(field, 100, 100));
    }

    #[test]
    fn halton_covers_more_evenly_than_clumps() {
        // Low-discrepancy check: split the field into a 4x4 grid; every
        // cell should receive at least one of 64 Halton points.
        let field = Field::paper_default();
        let pts = halton_deployment(field, 64, 0);
        let mut cells = [[false; 4]; 4];
        for p in pts {
            let cx = ((p.x / 250.0) as usize).min(3);
            let cy = ((p.y / 250.0) as usize).min(3);
            cells[cx][cy] = true;
        }
        assert!(cells.iter().flatten().all(|&c| c), "{cells:?}");
    }

    #[test]
    fn van_der_corput_known_values() {
        // Base 2: 1 → 0.5, 2 → 0.25, 3 → 0.75, 4 → 0.125.
        let f = Field::new(1.0, 1.0);
        let pts = halton_deployment(f, 4, 0);
        let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![0.5, 0.25, 0.75, 0.125]);
        // Base 3: 1 → 1/3, 2 → 2/3, 3 → 1/9.
        assert!((pts[0].y - 1.0 / 3.0).abs() < 1e-12);
        assert!((pts[1].y - 2.0 / 3.0).abs() < 1e-12);
        assert!((pts[2].y - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn depots_one_at_base_station() {
        let field = Field::paper_default();
        let bs = field.center();
        let mut rng = derived_rng(3, 0);
        let depots = place_depots(field, bs, 5, DepotPlacement::OneAtBaseStation, &mut rng);
        assert_eq!(depots.len(), 5);
        assert_eq!(depots[0], bs);
        let bounds = field.bounds();
        assert!(depots.iter().all(|&d| bounds.contains(d)));
    }

    #[test]
    fn depots_zero_q() {
        let field = Field::paper_default();
        let mut rng = derived_rng(3, 1);
        let depots =
            place_depots(field, field.center(), 0, DepotPlacement::OneAtBaseStation, &mut rng);
        assert!(depots.is_empty());
    }

    #[test]
    fn depots_all_random() {
        let field = Field::paper_default();
        let mut rng = derived_rng(3, 2);
        let depots = place_depots(field, field.center(), 4, DepotPlacement::AllRandom, &mut rng);
        assert_eq!(depots.len(), 4);
    }
}
