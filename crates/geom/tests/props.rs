//! Property-based tests for the geometry substrate.

use perpetuum_geom::{
    point::{centroid, closed_tour_length, polyline_length},
    Aabb, Point2,
};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -1.0e4..1.0e4
}

fn point() -> impl Strategy<Value = Point2> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point2::new(x, y))
}

proptest! {
    #[test]
    fn triangle_inequality(a in point(), b in point(), c in point()) {
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9);
    }

    #[test]
    fn distance_symmetry_and_nonnegativity(a in point(), b in point()) {
        prop_assert!((a.dist(b) - b.dist(a)).abs() < 1e-12);
        prop_assert!(a.dist(b) >= 0.0);
    }

    #[test]
    fn identity_of_indiscernibles(a in point()) {
        prop_assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn midpoint_halves_distance(a in point(), b in point()) {
        let m = a.midpoint(b);
        prop_assert!((a.dist(m) - a.dist(b) / 2.0).abs() < 1e-7);
    }

    #[test]
    fn containing_box_contains_all(pts in prop::collection::vec(point(), 1..64)) {
        let bb = Aabb::containing(&pts).unwrap();
        for p in &pts {
            prop_assert!(bb.contains(*p));
        }
        // Centroid also lies inside the box (convexity).
        prop_assert!(bb.contains(centroid(&pts).unwrap()));
    }

    #[test]
    fn closed_tour_at_least_polyline(pts in prop::collection::vec(point(), 2..32)) {
        prop_assert!(closed_tour_length(&pts) + 1e-9 >= polyline_length(&pts));
    }

    #[test]
    fn tour_length_invariant_under_rotation(pts in prop::collection::vec(point(), 3..16)) {
        // Rotating the starting node of a closed tour never changes its length.
        let base = closed_tour_length(&pts);
        let mut rotated = pts.clone();
        rotated.rotate_left(1);
        prop_assert!((closed_tour_length(&rotated) - base).abs() < 1e-6);
    }
}
