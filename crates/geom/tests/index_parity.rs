//! Property tests: the accelerated spatial indexes are *exact* — every
//! query agrees with the brute-force oracle on random point clouds,
//! including duplicated points and degenerate layouts.

use perpetuum_geom::index::{knn_lists, BruteForceIndex, KdTree, SpatialIndex, UniformGrid};
use perpetuum_geom::Point2;
use proptest::prelude::*;

prop_compose! {
    fn arb_points(max_n: usize)(
        xy in prop::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 1..max_n)
    ) -> Vec<Point2> {
        xy.into_iter().map(|(x, y)| Point2::new(x, y)).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn knn_parity_with_brute_force(
        points in arb_points(180),
        k in 1..12usize,
        qx in -100.0..1100.0f64,
        qy in -100.0..1100.0f64,
    ) {
        let q = Point2::new(qx, qy);
        let brute = BruteForceIndex::new(&points);
        let grid = UniformGrid::new(&points);
        let tree = KdTree::new(&points);
        let want = brute.knn(q, k);
        prop_assert_eq!(grid.knn(q, k), want.clone());
        prop_assert_eq!(tree.knn(q, k), want);
    }

    #[test]
    fn radius_parity_with_brute_force(
        points in arb_points(180),
        radius in 0.0..800.0f64,
        qx in 0.0..1000.0f64,
        qy in 0.0..1000.0f64,
    ) {
        let q = Point2::new(qx, qy);
        let brute = BruteForceIndex::new(&points);
        let want = brute.in_radius(q, radius);
        prop_assert_eq!(UniformGrid::new(&points).in_radius(q, radius), want.clone());
        prop_assert_eq!(KdTree::new(&points).in_radius(q, radius), want);
    }

    #[test]
    fn duplicated_points_keep_parity(
        base in arb_points(40),
        copies in 1..4usize,
        k in 1..8usize,
    ) {
        // Every point appears `copies + 1` times: distance ties everywhere.
        let mut points = base.clone();
        for _ in 0..copies {
            points.extend_from_slice(&base);
        }
        let brute = BruteForceIndex::new(&points);
        let grid = UniformGrid::new(&points);
        let tree = KdTree::new(&points);
        for &q in base.iter().take(10) {
            let want = brute.knn(q, k);
            prop_assert_eq!(grid.knn(q, k), want.clone());
            prop_assert_eq!(tree.knn(q, k), want);
        }
    }

    #[test]
    fn knn_lists_parity(points in arb_points(120), k in 1..9usize) {
        let brute = BruteForceIndex::new(&points);
        let grid = UniformGrid::new(&points);
        let tree = KdTree::new(&points);
        let want = knn_lists(&brute, k);
        prop_assert_eq!(knn_lists(&grid, k), want.clone());
        prop_assert_eq!(knn_lists(&tree, k), want);
    }
}
