//! Charging policies: what the base station runs.
//!
//! A policy sees only what a real base station would see — battery levels
//! reported by the sensors and the EWMA-predicted consumption rates
//! (Section VI.A) — never the ground-truth future rates. The engine calls
//! it at `t = 0` ([`ChargingPolicy::initialize`]), at every slot boundary
//! after rates change ([`ChargingPolicy::on_slot_boundary`]), and, if the
//! policy polls (the greedy baseline), every [`ChargingPolicy::check_interval`].

use crate::energy_core::EnergyCore;
use perpetuum_core::greedy::greedy_batch;
use perpetuum_core::incremental::{IncrementalPlanner, ReplanOutcome};
use perpetuum_core::mtd::{plan_min_total_distance, MtdConfig};
use perpetuum_core::network::{Instance, Network};
use perpetuum_core::schedule::{ScheduleSeries, TourSet};
use perpetuum_core::var::{replan_variable_with, RepairStrategy, VarInput};
use perpetuum_energy::predictor::schedule_still_applicable;
use std::time::{Duration, Instant};

/// What the base station observes at a decision point.
#[derive(Debug, Clone, Copy)]
pub struct Observation<'a> {
    /// Current time.
    pub time: f64,
    /// Monitoring period end `T`.
    pub horizon: f64,
    /// Residual energy per sensor (self-reported).
    pub levels: &'a [f64],
    /// EWMA-predicted consumption rate `ρ̂_i` per sensor (Section VI.A).
    pub rho_hat: &'a [f64],
    /// The consumption rate each sensor currently *measures*. The paper's
    /// sensors monitor their energy "periodically (e.g. every a few
    /// hours)", i.e. far more often than the slot length `ΔT`, so the
    /// current-slot rate is observable (the future is not).
    pub rho_now: &'a [f64],
    /// Battery capacity `B_i` per sensor.
    pub capacities: &'a [f64],
}

impl<'a> Observation<'a> {
    /// The conservative planning rate `max(ρ̂_i, ρ_i(now))`.
    ///
    /// The EWMA alone lags a sharp rate increase by several slots, long
    /// enough to kill a sensor whose cycle just collapsed; planning against
    /// the worse of the predicted and the currently measured rate is what
    /// makes "none of the sensors runs out of energy" actually hold. This
    /// is the one deliberate strengthening of the paper's estimator (see
    /// DESIGN.md).
    pub fn rate_safe(&self, i: usize) -> f64 {
        self.rho_hat[i].max(self.rho_now[i])
    }

    /// Estimated residual lifetime `l̂_i = re_i / max(ρ̂_i, ρ_i(now))`.
    pub fn residual_hat(&self, i: usize) -> f64 {
        self.levels[i] / self.rate_safe(i)
    }

    /// Estimated maximum charging cycle `τ̂_i = B_i / max(ρ̂_i, ρ_i(now))`.
    pub fn max_cycle_hat(&self, i: usize) -> f64 {
        self.capacities[i] / self.rate_safe(i)
    }

    /// The paper's un-guarded cycle estimate `B_i / ρ̂_i` (EWMA only).
    pub fn max_cycle_pred(&self, i: usize) -> f64 {
        self.capacities[i] / self.rho_hat[i]
    }

    /// All estimated maximum cycles.
    pub fn max_cycles_hat(&self) -> Vec<f64> {
        (0..self.levels.len()).map(|i| self.max_cycle_hat(i)).collect()
    }

    /// All estimated residual lifetimes, clamped to the estimated cycle
    /// (level ≤ capacity already guarantees this; the clamp absorbs
    /// floating-point noise).
    pub fn residuals_hat(&self) -> Vec<f64> {
        (0..self.levels.len()).map(|i| self.residual_hat(i).min(self.max_cycle_hat(i))).collect()
    }
}

/// What a policy sees at a polling check.
///
/// Polling checks fire every [`ChargingPolicy::check_interval`] — far more
/// often than slot boundaries — so the event-driven engine hands policies
/// this lazy view instead of a materialised [`Observation`]. A policy that
/// only asks [`CheckContext::urgent_within`] costs O(log n + answer) per
/// check (the engine answers from its urgency-prediction heap); calling
/// [`CheckContext::observation`] falls back to the full O(n) snapshot.
pub struct CheckContext<'a> {
    time: f64,
    horizon: f64,
    source: Source<'a>,
}

enum Source<'a> {
    /// A pre-built snapshot (reference engine and unit tests).
    Full(Observation<'a>),
    /// The event-driven engine's lazy energy state.
    Lazy(&'a mut EnergyCore),
}

impl<'a> CheckContext<'a> {
    /// Wraps a full observation; answers are computed by dense scans.
    pub fn from_observation(obs: Observation<'a>) -> Self {
        Self { time: obs.time, horizon: obs.horizon, source: Source::Full(obs) }
    }

    pub(crate) fn lazy(time: f64, horizon: f64, core: &'a mut EnergyCore) -> Self {
        Self { time, horizon, source: Source::Lazy(core) }
    }

    /// Current time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Monitoring period end `T`.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Ascending indices of the sensors whose estimated residual lifetime
    /// `re_i / max(ρ̂_i, ρ_i(now))` is at most `dt` (plus the engine's
    /// 1e-9 float slack) — the urgency test of the greedy baseline.
    pub fn urgent_within(&mut self, dt: f64) -> Vec<usize> {
        match &mut self.source {
            Source::Full(obs) => {
                (0..obs.levels.len()).filter(|&i| obs.residual_hat(i) <= dt + 1e-9).collect()
            }
            Source::Lazy(core) => core.urgent_within(self.time, dt),
        }
    }

    /// The full observation at the check time. On the event-driven engine
    /// this settles every battery (O(n)); prefer
    /// [`Self::urgent_within`] when the urgent set is all you need.
    pub fn observation(&mut self) -> Observation<'_> {
        match &mut self.source {
            Source::Full(obs) => *obs,
            Source::Lazy(core) => core.observation(self.time, self.horizon),
        }
    }
}

/// A policy's reaction to a decision point.
#[derive(Debug, Clone)]
pub enum PlanUpdate {
    /// Keep the pending dispatches.
    Keep,
    /// Drop all pending dispatches and install this series (all dispatch
    /// times must be `≥` the observation time).
    Replace(ScheduleSeries),
}

/// A base-station charging policy.
pub trait ChargingPolicy {
    /// Human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Polling period, if the policy polls between slot boundaries (the
    /// greedy baseline checks every `Δl`).
    fn check_interval(&self) -> Option<f64> {
        None
    }

    /// Called once at `t = 0`, after initial rates are known.
    fn initialize(&mut self, obs: &Observation) -> PlanUpdate;

    /// Called at every slot boundary (rates just changed, predictors
    /// updated).
    fn on_slot_boundary(&mut self, _obs: &Observation) -> PlanUpdate {
        PlanUpdate::Keep
    }

    /// Called every [`Self::check_interval`]; an immediate dispatch is
    /// executed at the check time.
    fn on_check(&mut self, _ctx: &mut CheckContext) -> Option<TourSet> {
        None
    }
}

// ---------------------------------------------------------------------------

/// **Algorithm 3** as a policy: plan once from the initial estimated cycles
/// and never look back. The right policy for fixed-cycle worlds; under
/// variable cycles it is knowingly oblivious (that is what Figures 3–6
/// replace it with `MinTotalDistance-var` for).
#[derive(Debug)]
pub struct MtdPolicy<'a> {
    network: &'a Network,
    cfg: MtdConfig,
    /// Safety margin: plan as if every cycle were `τ̂ · (1 − margin)`.
    /// Zero (the paper's model) plans against the exact cycles; a positive
    /// margin buys slack for charger travel time (see the `speed`
    /// extension experiment). Must lie in `[0, 1)`.
    pub cycle_margin: f64,
}

impl<'a> MtdPolicy<'a> {
    /// Plain Algorithm 3.
    pub fn new(network: &'a Network) -> Self {
        Self { network, cfg: MtdConfig::default(), cycle_margin: 0.0 }
    }

    /// Algorithm 3 with the ablation-only tour polish.
    pub fn with_config(network: &'a Network, cfg: MtdConfig) -> Self {
        Self { network, cfg, cycle_margin: 0.0 }
    }

    /// Algorithm 3 planning against `τ̂ · (1 − margin)`.
    pub fn with_margin(network: &'a Network, cycle_margin: f64) -> Self {
        assert!((0.0..1.0).contains(&cycle_margin), "margin must be in [0, 1)");
        Self { network, cfg: MtdConfig::default(), cycle_margin }
    }
}

impl ChargingPolicy for MtdPolicy<'_> {
    fn name(&self) -> &'static str {
        "MinTotalDistance"
    }

    fn initialize(&mut self, obs: &Observation) -> PlanUpdate {
        let shrink = 1.0 - self.cycle_margin;
        let cycles: Vec<f64> = obs.max_cycles_hat().iter().map(|c| c * shrink).collect();
        if cycles.is_empty() {
            return PlanUpdate::Keep;
        }
        let instance = Instance::new(self.network.clone(), cycles, obs.horizon);
        PlanUpdate::Replace(plan_min_total_distance(&instance, &self.cfg))
    }
}

// ---------------------------------------------------------------------------

/// The greedy baseline of Section VII.A as an online policy: every `Δl`,
/// batch the sensors whose estimated residual lifetime is `≤ Δl` and charge
/// them via the `q`-rooted TSP.
#[derive(Debug)]
pub struct GreedyPolicy<'a> {
    network: &'a Network,
    /// Residual-lifetime threshold `Δl` (`= τ_min` in the paper).
    pub threshold: f64,
    /// Polling period; defaults to the threshold (the paper couples the
    /// two), but can be shortened independently — e.g. to keep a widened
    /// noise-margin threshold from also slowing the polls.
    pub poll: Option<f64>,
    /// Local-search rounds per tour (ablation only).
    pub polish_rounds: usize,
}

impl<'a> GreedyPolicy<'a> {
    /// Greedy with the paper's threshold `Δl = τ_min`.
    pub fn new(network: &'a Network, tau_min: f64) -> Self {
        Self { network, threshold: tau_min, poll: None, polish_rounds: 0 }
    }
}

impl ChargingPolicy for GreedyPolicy<'_> {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn check_interval(&self) -> Option<f64> {
        Some(self.poll.unwrap_or(self.threshold))
    }

    fn initialize(&mut self, _obs: &Observation) -> PlanUpdate {
        PlanUpdate::Keep // purely reactive
    }

    fn on_check(&mut self, ctx: &mut CheckContext) -> Option<TourSet> {
        let pending = ctx.urgent_within(self.threshold);
        if pending.is_empty() {
            None
        } else {
            Some(greedy_batch(self.network, &pending, self.polish_rounds))
        }
    }
}

// ---------------------------------------------------------------------------

/// **`MinTotalDistance-var`** (Section VI.B): plan with Algorithm 3, then at
/// each slot boundary test whether every sensor's newly estimated maximum
/// cycle still lies in the applicability band `[τ̂'_i, 2·τ̂'_i)` of its
/// assigned cycle; replan (with the `V^a` repair) whenever one does not.
///
/// Replans go through the incremental planner
/// ([`perpetuum_core::incremental`]) by default: the first plan seeds
/// per-class forest/tour state, later replans splice it and re-emit the
/// anchor grid, falling back to a full re-seed when the cached partition no
/// longer applies. [`VarPolicy::full_replanning`] restores the from-scratch
/// behaviour (the ablation baseline the `sim` bench compares against).
#[derive(Debug)]
pub struct VarPolicy<'a> {
    network: &'a Network,
    assigned: Vec<f64>,
    /// Ascending scheduled charge times per sensor, from the current plan.
    scheduled: Vec<Vec<f64>>,
    /// Repair strategy (paper default: nearest scheduling). Applies to the
    /// seeding full replans; incremental replans use the anchor-grid
    /// urgency repair regardless.
    pub repair: RepairStrategy,
    /// Local-search rounds per tour (ablation only).
    pub polish_rounds: usize,
    /// Safety margin: plan as if cycles and residuals were a factor
    /// `(1 − margin)` smaller. Zero is the paper's model; a positive
    /// margin absorbs measurement noise and charger travel time. Must lie
    /// in `[0, 1)`.
    pub cycle_margin: f64,
    replans: usize,
    /// `None` until seeded; also the incremental/full mode switch.
    planner: Option<IncrementalPlanner>,
    incremental_enabled: bool,
    incremental_replans: usize,
    full_replans: usize,
    planner_time_incremental: Duration,
    planner_time_full: Duration,
}

impl<'a> VarPolicy<'a> {
    /// The paper's `MinTotalDistance-var`, with incremental replanning.
    pub fn new(network: &'a Network) -> Self {
        Self {
            network,
            assigned: Vec::new(),
            scheduled: Vec::new(),
            repair: RepairStrategy::NearestScheduling,
            polish_rounds: 0,
            cycle_margin: 0.0,
            replans: 0,
            planner: None,
            incremental_enabled: true,
            incremental_replans: 0,
            full_replans: 0,
            planner_time_incremental: Duration::ZERO,
            planner_time_full: Duration::ZERO,
        }
    }

    /// `MinTotalDistance-var` that rebuilds every plan from scratch — the
    /// pre-incremental behaviour, kept as the bench/ablation baseline.
    pub fn full_replanning(network: &'a Network) -> Self {
        Self { incremental_enabled: false, ..Self::new(network) }
    }

    /// `MinTotalDistance-var` planning against `(1 − margin)`-shrunken
    /// estimates.
    pub fn with_margin(network: &'a Network, cycle_margin: f64) -> Self {
        assert!((0.0..1.0).contains(&cycle_margin), "margin must be in [0, 1)");
        Self { cycle_margin, ..Self::new(network) }
    }

    /// Number of replans performed after initialisation.
    pub fn replans(&self) -> usize {
        self.replans
    }

    /// Replans served by the incremental splice path.
    pub fn incremental_replans(&self) -> usize {
        self.incremental_replans
    }

    /// Full (from-scratch) replans, including the initial seed.
    pub fn full_replans(&self) -> usize {
        self.full_replans
    }

    /// Wall-clock seconds spent in incremental replans.
    pub fn planner_seconds_incremental(&self) -> f64 {
        self.planner_time_incremental.as_secs_f64()
    }

    /// Wall-clock seconds spent in full replans (including the seed).
    pub fn planner_seconds_full(&self) -> f64 {
        self.planner_time_full.as_secs_f64()
    }

    fn replan(&mut self, obs: &Observation) -> PlanUpdate {
        let shrink = 1.0 - self.cycle_margin;
        let max_cycles: Vec<f64> = obs.max_cycles_hat().iter().map(|c| c * shrink).collect();
        let residuals: Vec<f64> = obs.residuals_hat().iter().map(|r| r * shrink).collect();
        let input = VarInput {
            network: self.network,
            max_cycles: &max_cycles,
            residuals: &residuals,
            now: obs.time,
            horizon: obs.horizon,
            polish_rounds: self.polish_rounds,
        };
        // Timing is observational only — it never influences planning, so
        // runs stay deterministic.
        let t0 = Instant::now();
        let plan = if self.incremental_enabled {
            let spliced = self.planner.as_mut().and_then(|p| match p.replan(&input) {
                ReplanOutcome::Incremental(plan) => Some(plan),
                ReplanOutcome::NeedsFull(_) => None,
            });
            match spliced {
                Some(plan) => {
                    self.incremental_replans += 1;
                    self.planner_time_incremental += t0.elapsed();
                    plan
                }
                None => {
                    let (plan, planner) = IncrementalPlanner::seed(&input, self.repair);
                    self.planner = Some(planner);
                    self.full_replans += 1;
                    self.planner_time_full += t0.elapsed();
                    plan
                }
            }
        } else {
            let plan = replan_variable_with(&input, self.repair);
            self.full_replans += 1;
            self.planner_time_full += t0.elapsed();
            plan
        };
        self.assigned = plan.assigned_cycles;
        // Sensor node ids are 0..n, so the inverted pass indexes directly.
        self.scheduled = plan.series.charge_times_all(self.network.n());
        PlanUpdate::Replace(plan.series)
    }

    /// True when `sensor`'s estimated residual lifetime reaches its next
    /// scheduled charge (or the horizon, if it is never charged again).
    fn residual_reaches_next_charge(&self, obs: &Observation, sensor: usize) -> bool {
        let next = self.scheduled[sensor]
            .iter()
            .copied()
            .find(|&t| t > obs.time + 1e-9)
            .unwrap_or(obs.horizon);
        obs.time + self.residual_shrunk(obs, sensor) + 1e-9 >= next
    }

    fn residual_shrunk(&self, obs: &Observation, sensor: usize) -> f64 {
        obs.residual_hat(sensor) * (1.0 - self.cycle_margin)
    }
}

impl ChargingPolicy for VarPolicy<'_> {
    fn name(&self) -> &'static str {
        "MinTotalDistance-var"
    }

    fn initialize(&mut self, obs: &Observation) -> PlanUpdate {
        if obs.levels.is_empty() {
            return PlanUpdate::Keep;
        }
        self.replan(obs)
    }

    fn on_slot_boundary(&mut self, obs: &Observation) -> PlanUpdate {
        if self.assigned.is_empty() {
            return PlanUpdate::Keep;
        }
        // The paper's applicability band covers sensors that are charged
        // from full at their assigned cadence; a sensor part-way through a
        // wait can still be starved by an in-band rate increase, so the
        // residual must also reach its next scheduled charge.
        let shrink = 1.0 - self.cycle_margin;
        let applicable = (0..obs.levels.len()).all(|i| {
            schedule_still_applicable(self.assigned[i], obs.max_cycle_hat(i) * shrink)
                && self.residual_reaches_next_charge(obs, i)
        });
        if applicable {
            PlanUpdate::Keep
        } else {
            self.replans += 1;
            self.replan(obs)
        }
    }
}

// ---------------------------------------------------------------------------

/// The naive strategy Section III.C dismisses, as a policy: dispatch the
/// full-network tour set at every multiple of a fixed period. Used as the
/// upper-anchor baseline in tests and cost comparisons.
#[derive(Debug)]
pub struct PeriodicPolicy<'a> {
    network: &'a Network,
    /// Dispatch period (the paper's strawman uses `τ_min`).
    pub period: f64,
}

impl<'a> PeriodicPolicy<'a> {
    /// Charges everyone every `period`.
    pub fn new(network: &'a Network, period: f64) -> Self {
        assert!(period > 0.0, "period must be positive");
        Self { network, period }
    }
}

impl ChargingPolicy for PeriodicPolicy<'_> {
    fn name(&self) -> &'static str {
        "Periodic"
    }

    fn initialize(&mut self, obs: &Observation) -> PlanUpdate {
        let n = obs.levels.len();
        if n == 0 {
            return PlanUpdate::Keep;
        }
        let all: Vec<usize> = (0..n).collect();
        let set = greedy_batch(self.network, &all, 0);
        let mut series = ScheduleSeries::new();
        let id = series.add_set(set);
        let mut t = self.period;
        while t < obs.horizon {
            series.push_dispatch(t, id);
            t += self.period;
        }
        PlanUpdate::Replace(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_geom::Point2;

    fn net() -> Network {
        Network::new(
            vec![Point2::new(100.0, 0.0), Point2::new(0.0, 100.0), Point2::new(200.0, 200.0)],
            vec![Point2::ORIGIN],
        )
    }

    fn obs<'a>(
        time: f64,
        horizon: f64,
        levels: &'a [f64],
        rho: &'a [f64],
        caps: &'a [f64],
    ) -> Observation<'a> {
        // Tests drive steady-state observations: measured == predicted.
        Observation { time, horizon, levels, rho_hat: rho, rho_now: rho, capacities: caps }
    }

    #[test]
    fn observation_derived_quantities() {
        let levels = [0.5, 1.0];
        let rho = [0.25, 0.1];
        let caps = [1.0, 1.0];
        let o = obs(0.0, 10.0, &levels, &rho, &caps);
        assert!((o.residual_hat(0) - 2.0).abs() < 1e-12);
        assert!((o.max_cycle_hat(1) - 10.0).abs() < 1e-12);
        assert_eq!(o.max_cycles_hat(), vec![4.0, 10.0]);
        assert_eq!(o.residuals_hat(), vec![2.0, 10.0]);
    }

    #[test]
    fn conservative_rate_dominates_lagging_ewma() {
        let levels = [0.5];
        let rho_hat = [0.1]; // EWMA still remembers the old, slow drain
        let rho_now = [0.5]; // the sensor currently drains 5x faster
        let caps = [1.0];
        let o = Observation {
            time: 0.0,
            horizon: 10.0,
            levels: &levels,
            rho_hat: &rho_hat,
            rho_now: &rho_now,
            capacities: &caps,
        };
        assert_eq!(o.rate_safe(0), 0.5);
        assert!((o.residual_hat(0) - 1.0).abs() < 1e-12); // not 5.0
        assert!((o.max_cycle_hat(0) - 2.0).abs() < 1e-12); // not 10.0
        assert!((o.max_cycle_pred(0) - 10.0).abs() < 1e-12); // paper's raw estimate
    }

    #[test]
    fn mtd_policy_plans_once() {
        let network = net();
        let mut p = MtdPolicy::new(&network);
        let levels = [1.0, 1.0, 1.0];
        let rho = [1.0, 0.5, 0.25]; // cycles 1, 2, 4
        let caps = [1.0; 3];
        let o = obs(0.0, 16.0, &levels, &rho, &caps);
        match p.initialize(&o) {
            PlanUpdate::Replace(series) => {
                assert!(series.dispatch_count() > 0);
                // Sensor 0 (cycle 1) charged at every integer time.
                assert_eq!(series.charge_times(0).len(), 15);
            }
            PlanUpdate::Keep => panic!("expected a plan"),
        }
        // Slot boundaries never disturb the fixed plan.
        assert!(matches!(p.on_slot_boundary(&o), PlanUpdate::Keep));
    }

    #[test]
    fn greedy_policy_batches_urgent_sensors() {
        let network = net();
        let mut p = GreedyPolicy::new(&network, 1.0);
        assert_eq!(p.check_interval(), Some(1.0));
        let levels = [0.2, 1.0, 0.9];
        let rho = [0.5, 0.1, 1.0]; // residuals: 0.4, 10, 0.9
        let caps = [1.0; 3];
        let o = obs(5.0, 100.0, &levels, &rho, &caps);
        let mut ctx = CheckContext::from_observation(o);
        assert_eq!(ctx.time(), 5.0);
        assert_eq!(ctx.horizon(), 100.0);
        let set = p.on_check(&mut ctx).expect("two sensors are urgent");
        assert_eq!(set.sensors(), &[0, 2]);
        // Nothing urgent → no dispatch.
        let levels2 = [1.0, 1.0, 1.0];
        let rho2 = [0.1, 0.1, 0.1];
        let o2 = obs(6.0, 100.0, &levels2, &rho2, &caps);
        assert!(p.on_check(&mut CheckContext::from_observation(o2)).is_none());
    }

    #[test]
    fn check_context_exposes_the_wrapped_observation() {
        let levels = [0.2, 1.0];
        let rho = [0.5, 0.1];
        let caps = [1.0; 2];
        let o = obs(5.0, 100.0, &levels, &rho, &caps);
        let mut ctx = CheckContext::from_observation(o);
        assert_eq!(ctx.urgent_within(1.0), vec![0]);
        let seen = ctx.observation();
        assert_eq!(seen.levels, &levels);
        assert_eq!(seen.time, 5.0);
    }

    #[test]
    fn var_policy_replans_only_outside_band() {
        let network = net();
        let mut p = VarPolicy::new(&network);
        let caps = [1.0; 3];
        let levels = [1.0, 1.0, 1.0];
        let rho = [1.0, 0.5, 0.25]; // cycles 1, 2, 4 → assigned 1, 2, 4
        let o = obs(0.0, 64.0, &levels, &rho, &caps);
        assert!(matches!(p.initialize(&o), PlanUpdate::Replace(_)));
        assert_eq!(p.replans(), 0);

        // Cycles drift inside the band: 1.5, 3.0, 7.9 → keep.
        let rho_in = [1.0 / 1.5, 1.0 / 3.0, 1.0 / 7.9];
        let o_in = obs(10.0, 64.0, &levels, &rho_in, &caps);
        assert!(matches!(p.on_slot_boundary(&o_in), PlanUpdate::Keep));

        // Sensor 0's cycle halves below its assigned cycle → replan.
        let rho_out = [2.0, 0.5, 0.25];
        let levels_mid = [0.3, 0.8, 0.9];
        let o_out = obs(20.0, 64.0, &levels_mid, &rho_out, &caps);
        assert!(matches!(p.on_slot_boundary(&o_out), PlanUpdate::Replace(_)));
        assert_eq!(p.replans(), 1);
    }

    #[test]
    fn periodic_policy_plans_full_network_rounds() {
        let network = net();
        let mut p = PeriodicPolicy::new(&network, 2.0);
        let levels = [1.0, 1.0, 1.0];
        let rho = [0.5, 0.5, 0.5];
        let caps = [1.0; 3];
        let o = obs(0.0, 10.0, &levels, &rho, &caps);
        match p.initialize(&o) {
            PlanUpdate::Replace(series) => {
                assert_eq!(series.dispatch_count(), 4); // 2, 4, 6, 8
                for d in series.dispatches() {
                    assert_eq!(series.set_of(d).sensors().len(), 3);
                }
            }
            PlanUpdate::Keep => panic!("expected a plan"),
        }
    }

    #[test]
    fn var_policy_band_break_falls_back_to_full_replan() {
        // Same scenario as `var_policy_replans_only_outside_band`: the
        // cycle collapse undercuts the cached τ̂₁, so the incremental
        // planner refuses and the policy re-seeds from scratch.
        let network = net();
        let mut p = VarPolicy::new(&network);
        let caps = [1.0; 3];
        let levels = [1.0, 1.0, 1.0];
        let rho = [1.0, 0.5, 0.25];
        let o = obs(0.0, 64.0, &levels, &rho, &caps);
        assert!(matches!(p.initialize(&o), PlanUpdate::Replace(_)));
        assert_eq!(p.full_replans(), 1); // the seed
        assert_eq!(p.incremental_replans(), 0);

        let rho_out = [2.0, 0.5, 0.25];
        let levels_mid = [0.3, 0.8, 0.9];
        let o_out = obs(20.0, 64.0, &levels_mid, &rho_out, &caps);
        assert!(matches!(p.on_slot_boundary(&o_out), PlanUpdate::Replace(_)));
        assert_eq!(p.replans(), 1);
        assert_eq!(p.full_replans(), 2);
        assert_eq!(p.incremental_replans(), 0);
        assert!(p.planner_seconds_full() > 0.0);
    }

    #[test]
    fn var_policy_in_band_starvation_replans_incrementally() {
        // Classes unchanged, but sensor 2's residual no longer reaches its
        // next scheduled charge → the replan goes through the splice path
        // and charges it immediately.
        let network = net();
        let mut p = VarPolicy::new(&network);
        let caps = [1.0; 3];
        let levels = [1.0, 1.0, 1.0];
        let rho = [1.0, 0.5, 0.25]; // cycles 1, 2, 4
        let o = obs(0.0, 64.0, &levels, &rho, &caps);
        assert!(matches!(p.initialize(&o), PlanUpdate::Replace(_)));

        let levels_low = [1.0, 1.0, 0.05]; // sensor 2 residual 0.2 < next charge
        let o_low = obs(10.0, 64.0, &levels_low, &rho, &caps);
        match p.on_slot_boundary(&o_low) {
            PlanUpdate::Replace(series) => {
                let t2 = series.charge_times(2);
                assert_eq!(t2[0], 10.0, "starving sensor must be charged at once");
            }
            PlanUpdate::Keep => panic!("expected a replan"),
        }
        assert_eq!(p.replans(), 1);
        assert_eq!(p.incremental_replans(), 1);
        assert_eq!(p.full_replans(), 1); // only the seed
        assert!(p.planner_seconds_incremental() > 0.0);
    }

    #[test]
    fn full_replanning_mode_never_splices() {
        let network = net();
        let mut p = VarPolicy::full_replanning(&network);
        let caps = [1.0; 3];
        let levels = [1.0, 1.0, 1.0];
        let rho = [1.0, 0.5, 0.25];
        let o = obs(0.0, 64.0, &levels, &rho, &caps);
        assert!(matches!(p.initialize(&o), PlanUpdate::Replace(_)));
        let levels_low = [1.0, 1.0, 0.05];
        let o_low = obs(10.0, 64.0, &levels_low, &rho, &caps);
        assert!(matches!(p.on_slot_boundary(&o_low), PlanUpdate::Replace(_)));
        assert_eq!(p.incremental_replans(), 0);
        assert_eq!(p.full_replans(), 2);
    }

    #[test]
    fn var_policy_names() {
        let network = net();
        assert_eq!(VarPolicy::new(&network).name(), "MinTotalDistance-var");
        assert_eq!(MtdPolicy::new(&network).name(), "MinTotalDistance");
        assert_eq!(GreedyPolicy::new(&network, 1.0).name(), "Greedy");
    }
}
