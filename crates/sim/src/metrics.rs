//! Per-run simulation results.

use serde::{Deserialize, Serialize};

/// A sensor running out of energy before its next charge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeathEvent {
    /// The sensor that died.
    pub sensor: usize,
    /// Estimated death time (linear interpolation inside the drain segment
    /// in which the battery hit zero).
    pub time: f64,
}

/// Everything a simulation run measures.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimResult {
    /// Total travelled distance of all chargers — the paper's objective
    /// (same length unit as the input coordinates; the experiment harness
    /// reports km).
    pub service_cost: f64,
    /// Number of executed charging schedulings.
    pub dispatches: usize,
    /// Total individual sensor charges.
    pub charges: usize,
    /// Sensor deaths (perpetual operation means this stays empty).
    pub deaths: Vec<DeathEvent>,
    /// Travelled distance per charger (indexed by depot).
    pub per_charger_distance: Vec<f64>,
    /// Plan replacements after initialisation (MinTotalDistance-var
    /// recomputations; 0 for offline plans).
    pub replans: usize,
    /// Longest single charger tour observed across all dispatches (m).
    /// Divided by the vehicle speed this bounds the duration of a charging
    /// task — the quantity the paper assumes is "several orders of
    /// magnitude less than the lifetime of a fully-charged sensor".
    pub max_tour_length: f64,
    /// Largest total per-dispatch travel (the busiest single scheduling).
    pub max_dispatch_cost: f64,
    /// Travel-time mode only: summed delay between dispatch and the
    /// charger actually reaching each sensor (0 under instant charging).
    pub total_charge_delay: f64,
    /// Travel-time mode only: the worst single charge delay.
    pub max_charge_delay: f64,
    /// Ascending charge times per sensor — ground truth for feasibility
    /// checking in tests.
    pub charge_log: Vec<Vec<f64>>,
}

impl SimResult {
    /// True when every sensor survived the whole run.
    pub fn is_perpetual(&self) -> bool {
        self.deaths.is_empty()
    }

    /// Upper bound on any charging task's duration, given a charger speed
    /// (m per time unit): the longest tour divided by the speed.
    pub fn max_task_duration(&self, speed: f64) -> f64 {
        assert!(speed > 0.0, "speed must be positive");
        self.max_tour_length / speed
    }

    /// Mean charges per sensor.
    pub fn mean_charges_per_sensor(&self) -> f64 {
        if self.charge_log.is_empty() {
            0.0
        } else {
            self.charges as f64 / self.charge_log.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perpetual_iff_no_deaths() {
        let mut r = SimResult::default();
        assert!(r.is_perpetual());
        r.deaths.push(DeathEvent { sensor: 3, time: 12.5 });
        assert!(!r.is_perpetual());
    }

    #[test]
    fn max_task_duration_scales_with_speed() {
        let r = SimResult { max_tour_length: 3000.0, ..Default::default() };
        assert_eq!(r.max_task_duration(1000.0), 3.0);
    }

    #[test]
    fn mean_charges() {
        let r = SimResult { charges: 10, charge_log: vec![vec![]; 4], ..Default::default() };
        assert_eq!(r.mean_charges_per_sensor(), 2.5);
        assert_eq!(SimResult::default().mean_charges_per_sensor(), 0.0);
    }
}
