//! Per-run simulation results.

use serde::{Deserialize, Serialize};

/// A sensor running out of energy before its next charge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeathEvent {
    /// The sensor that died.
    pub sensor: usize,
    /// Estimated death time (linear interpolation inside the drain segment
    /// in which the battery hit zero).
    pub time: f64,
}

/// Degraded-mode accounting: what faults cost a run and how recovery
/// performed. All-zero (the `Default`) on fault-free runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Charger breakdowns observed inside the horizon.
    #[serde(default)]
    pub breakdowns: usize,
    /// Charger repairs observed inside the horizon.
    #[serde(default)]
    pub repairs: usize,
    /// Planned tours skipped because their charger was down at dispatch
    /// time (each orphans its covered sensors).
    #[serde(default)]
    pub aborted_tours: usize,
    /// Individual sensor stops lost to faults: sensors of skipped tours
    /// plus in-transit arrivals cancelled by a mid-tour breakdown.
    #[serde(default)]
    pub orphaned_charges: usize,
    /// Emergency schedulings executed by the recovery planner.
    #[serde(default)]
    pub emergency_dispatches: usize,
    /// Orphans served by emergency dispatches.
    #[serde(default)]
    pub recovered_orphans: usize,
    /// Summed orphaned-to-rescue latency over recovered orphans.
    #[serde(default)]
    pub total_recovery_latency: f64,
    /// Worst single orphaned-to-rescue latency.
    #[serde(default)]
    pub max_recovery_latency: f64,
    /// Recovery attempts deferred (with backoff) because no charger was
    /// up.
    #[serde(default)]
    pub recovery_retries: usize,
    /// Urgent orphans abandoned after the retry budget ran out.
    #[serde(default)]
    pub recovery_giveups: usize,
    /// Charges that arrived after their sensor had already depleted —
    /// missed deadlines per `τ_i` (the revival still counts as a charge).
    #[serde(default)]
    pub deadline_misses: usize,
    /// Total sensor-time spent dead (depletion to revival, plus the tail
    /// to the horizon for sensors that never recover).
    #[serde(default)]
    pub dead_sensor_time: f64,
    /// Accumulated down-phase time per charger (indexed by depot),
    /// clipped to the horizon.
    #[serde(default)]
    pub per_charger_downtime: Vec<f64>,
}

impl FaultStats {
    /// Mean orphaned-to-rescue latency (0 when nothing was recovered).
    pub fn mean_recovery_latency(&self) -> f64 {
        if self.recovered_orphans == 0 {
            0.0
        } else {
            self.total_recovery_latency / self.recovered_orphans as f64
        }
    }

    /// Summed downtime across all chargers.
    pub fn total_downtime(&self) -> f64 {
        // fold, not sum(): the float Sum identity is -0.0, which would leak
        // a "-0.0" into fault-free report tables.
        self.per_charger_downtime.iter().fold(0.0, |a, &b| a + b)
    }
}

/// Everything a simulation run measures.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Total travelled distance of all chargers — the paper's objective
    /// (same length unit as the input coordinates; the experiment harness
    /// reports km).
    pub service_cost: f64,
    /// Number of executed charging schedulings.
    pub dispatches: usize,
    /// Total individual sensor charges.
    pub charges: usize,
    /// Sensor deaths (perpetual operation means this stays empty).
    pub deaths: Vec<DeathEvent>,
    /// Travelled distance per charger (indexed by depot).
    pub per_charger_distance: Vec<f64>,
    /// Plan replacements after initialisation (MinTotalDistance-var
    /// recomputations; 0 for offline plans).
    pub replans: usize,
    /// Longest single charger tour observed across all dispatches (m).
    /// Divided by the vehicle speed this bounds the duration of a charging
    /// task — the quantity the paper assumes is "several orders of
    /// magnitude less than the lifetime of a fully-charged sensor".
    pub max_tour_length: f64,
    /// Largest total per-dispatch travel (the busiest single scheduling).
    pub max_dispatch_cost: f64,
    /// Travel-time mode only: summed delay between dispatch and the
    /// charger actually reaching each sensor (0 under instant charging).
    pub total_charge_delay: f64,
    /// Travel-time mode only: the worst single charge delay.
    pub max_charge_delay: f64,
    /// Ascending charge times per sensor — ground truth for feasibility
    /// checking in tests.
    pub charge_log: Vec<Vec<f64>>,
    /// Degraded-mode accounting (all zero on fault-free runs).
    #[serde(default)]
    pub faults: FaultStats,
}

impl SimResult {
    /// True when every sensor survived the whole run.
    pub fn is_perpetual(&self) -> bool {
        self.deaths.is_empty()
    }

    /// Upper bound on any charging task's duration, given a charger speed
    /// (m per time unit): the longest tour divided by the speed.
    pub fn max_task_duration(&self, speed: f64) -> f64 {
        assert!(speed > 0.0, "speed must be positive");
        self.max_tour_length / speed
    }

    /// Mean charges per sensor.
    pub fn mean_charges_per_sensor(&self) -> f64 {
        if self.charge_log.is_empty() {
            0.0
        } else {
            self.charges as f64 / self.charge_log.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perpetual_iff_no_deaths() {
        let mut r = SimResult::default();
        assert!(r.is_perpetual());
        r.deaths.push(DeathEvent { sensor: 3, time: 12.5 });
        assert!(!r.is_perpetual());
    }

    #[test]
    fn max_task_duration_scales_with_speed() {
        let r = SimResult { max_tour_length: 3000.0, ..Default::default() };
        assert_eq!(r.max_task_duration(1000.0), 3.0);
    }

    #[test]
    fn fault_stats_default_is_all_zero() {
        let s = FaultStats::default();
        assert_eq!(s, FaultStats::default());
        assert_eq!(s.mean_recovery_latency(), 0.0);
        assert_eq!(s.total_downtime(), 0.0);
    }

    #[test]
    fn fault_stats_latency_and_downtime() {
        let s = FaultStats {
            recovered_orphans: 4,
            total_recovery_latency: 6.0,
            per_charger_downtime: vec![1.5, 0.0, 2.5],
            ..Default::default()
        };
        assert!((s.mean_recovery_latency() - 1.5).abs() < 1e-12);
        assert!((s.total_downtime() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_charges() {
        let r = SimResult { charges: 10, charge_log: vec![vec![]; 4], ..Default::default() };
        assert_eq!(r.mean_charges_per_sensor(), 2.5);
        assert_eq!(SimResult::default().mean_charges_per_sensor(), 0.0);
    }
}
