//! Simulation event traces.
//!
//! [`crate::engine::run_traced`] records everything that happens in a run
//! as a time-ordered event list — the tool for debugging a policy, writing
//! fine-grained assertions in tests, or exporting a timeline for external
//! analysis. The hot experiment paths use [`crate::engine::run`], which
//! records nothing.

use serde::{Deserialize, Serialize};

/// One simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A slot boundary: rates were resampled for slot `slot`.
    SlotBoundary {
        /// Event time.
        time: f64,
        /// The slot that just started.
        slot: u64,
    },
    /// The policy replaced its pending plan.
    PlanReplaced {
        /// Event time.
        time: f64,
        /// Dispatches in the new plan.
        pending: usize,
    },
    /// A charging scheduling was executed.
    Dispatch {
        /// Event time.
        time: f64,
        /// Sensors covered.
        sensors: usize,
        /// Travel cost of the scheduling.
        cost: f64,
    },
    /// A sensor was charged to full.
    Charge {
        /// Event time (arrival time in travel-time mode).
        time: f64,
        /// The charged sensor.
        sensor: usize,
    },
    /// A sensor ran out of energy.
    Death {
        /// Estimated depletion instant.
        time: f64,
        /// The dead sensor.
        sensor: usize,
    },
    /// A charger broke down (fault injection).
    ChargerDown {
        /// Breakdown instant.
        time: f64,
        /// The failed charger (depot index).
        charger: usize,
    },
    /// A broken charger came back up.
    ChargerRepaired {
        /// Repair instant.
        time: f64,
        /// The repaired charger (depot index).
        charger: usize,
        /// Length of the ended down phase.
        downtime: f64,
    },
    /// A planned tour was skipped because its charger was down (mid-tour
    /// aborts of in-transit stops report the cancelled arrivals the same
    /// way).
    TourAborted {
        /// Abort instant.
        time: f64,
        /// The down charger (depot index).
        charger: usize,
        /// Sensors orphaned by the abort.
        orphans: usize,
    },
    /// The recovery planner executed an emergency scheduling over the
    /// surviving depots.
    EmergencyDispatch {
        /// Dispatch instant.
        time: f64,
        /// Urgent orphans served.
        sensors: usize,
        /// Travel cost of the degraded scheduling.
        cost: f64,
    },
    /// Recovery was deferred (no charger up); the next attempt waits an
    /// exponentially backed-off delay.
    RecoveryRetry {
        /// Evaluation instant.
        time: f64,
        /// Consecutive failed attempts so far (1-based).
        attempt: u32,
        /// Backoff delay until the next attempt.
        wait: f64,
    },
}

impl TraceEvent {
    /// The event's time stamp.
    pub fn time(&self) -> f64 {
        match *self {
            TraceEvent::SlotBoundary { time, .. }
            | TraceEvent::PlanReplaced { time, .. }
            | TraceEvent::Dispatch { time, .. }
            | TraceEvent::Charge { time, .. }
            | TraceEvent::Death { time, .. }
            | TraceEvent::ChargerDown { time, .. }
            | TraceEvent::ChargerRepaired { time, .. }
            | TraceEvent::TourAborted { time, .. }
            | TraceEvent::EmergencyDispatch { time, .. }
            | TraceEvent::RecoveryRetry { time, .. } => time,
        }
    }
}

/// A full recorded run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimTrace {
    /// Events in emission order (non-decreasing time, except deaths which
    /// are stamped with their interpolated depletion instant inside the
    /// drain segment that detected them).
    pub events: Vec<TraceEvent>,
}

impl SimTrace {
    /// Number of events of each kind: `(slots, replans, dispatches,
    /// charges, deaths)`. Fault events are counted separately by
    /// [`SimTrace::fault_counts`].
    pub fn counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for e in &self.events {
            match e {
                TraceEvent::SlotBoundary { .. } => c.0 += 1,
                TraceEvent::PlanReplaced { .. } => c.1 += 1,
                TraceEvent::Dispatch { .. } => c.2 += 1,
                TraceEvent::Charge { .. } => c.3 += 1,
                TraceEvent::Death { .. } => c.4 += 1,
                TraceEvent::ChargerDown { .. }
                | TraceEvent::ChargerRepaired { .. }
                | TraceEvent::TourAborted { .. }
                | TraceEvent::EmergencyDispatch { .. }
                | TraceEvent::RecoveryRetry { .. } => {}
            }
        }
        c
    }

    /// Number of fault events of each kind: `(breakdowns, repairs,
    /// aborted tours, emergency dispatches, recovery retries)`.
    pub fn fault_counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for e in &self.events {
            match e {
                TraceEvent::ChargerDown { .. } => c.0 += 1,
                TraceEvent::ChargerRepaired { .. } => c.1 += 1,
                TraceEvent::TourAborted { .. } => c.2 += 1,
                TraceEvent::EmergencyDispatch { .. } => c.3 += 1,
                TraceEvent::RecoveryRetry { .. } => c.4 += 1,
                _ => {}
            }
        }
        c
    }

    /// Events concerning one sensor (charges and deaths).
    pub fn sensor_events(&self, sensor: usize) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| {
                matches!(e,
                    TraceEvent::Charge { sensor: s, .. } |
                    TraceEvent::Death { sensor: s, .. } if *s == sensor)
            })
            .copied()
            .collect()
    }

    /// Renders the trace as one line per event — a timeline a human can
    /// diff.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let line = match *e {
                TraceEvent::SlotBoundary { time, slot } => {
                    format!("{time:>10.3}  slot     #{slot}")
                }
                TraceEvent::PlanReplaced { time, pending } => {
                    format!("{time:>10.3}  replan   {pending} pending dispatches")
                }
                TraceEvent::Dispatch { time, sensors, cost } => {
                    format!("{time:>10.3}  dispatch {sensors} sensors, {cost:.1} m")
                }
                TraceEvent::Charge { time, sensor } => {
                    format!("{time:>10.3}  charge   sensor {sensor}")
                }
                TraceEvent::Death { time, sensor } => {
                    format!("{time:>10.3}  DEATH    sensor {sensor}")
                }
                TraceEvent::ChargerDown { time, charger } => {
                    format!("{time:>10.3}  FAULT    charger {charger} down")
                }
                TraceEvent::ChargerRepaired { time, charger, downtime } => {
                    format!("{time:>10.3}  repair   charger {charger} up after {downtime:.3}")
                }
                TraceEvent::TourAborted { time, charger, orphans } => {
                    format!("{time:>10.3}  abort    charger {charger}, {orphans} orphans")
                }
                TraceEvent::EmergencyDispatch { time, sensors, cost } => {
                    format!("{time:>10.3}  rescue   {sensors} sensors, {cost:.1} m")
                }
                TraceEvent::RecoveryRetry { time, attempt, wait } => {
                    format!("{time:>10.3}  retry    attempt {attempt}, backoff {wait:.3}")
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_filtering() {
        let trace = SimTrace {
            events: vec![
                TraceEvent::SlotBoundary { time: 1.0, slot: 1 },
                TraceEvent::Dispatch { time: 1.0, sensors: 2, cost: 10.0 },
                TraceEvent::Charge { time: 1.0, sensor: 0 },
                TraceEvent::Charge { time: 1.0, sensor: 1 },
                TraceEvent::Death { time: 2.5, sensor: 0 },
            ],
        };
        assert_eq!(trace.counts(), (1, 0, 1, 2, 1));
        let s0 = trace.sensor_events(0);
        assert_eq!(s0.len(), 2);
        assert_eq!(s0[1], TraceEvent::Death { time: 2.5, sensor: 0 });
    }

    #[test]
    fn render_is_line_per_event() {
        let trace = SimTrace {
            events: vec![
                TraceEvent::PlanReplaced { time: 0.0, pending: 7 },
                TraceEvent::Death { time: 3.25, sensor: 9 },
            ],
        };
        let text = trace.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("replan   7 pending"));
        assert!(text.contains("DEATH    sensor 9"));
    }

    #[test]
    fn fault_events_counted_and_rendered() {
        let trace = SimTrace {
            events: vec![
                TraceEvent::ChargerDown { time: 5.0, charger: 1 },
                TraceEvent::TourAborted { time: 6.0, charger: 1, orphans: 3 },
                TraceEvent::EmergencyDispatch { time: 6.0, sensors: 3, cost: 42.0 },
                TraceEvent::RecoveryRetry { time: 7.0, attempt: 1, wait: 0.5 },
                TraceEvent::ChargerRepaired { time: 9.0, charger: 1, downtime: 4.0 },
            ],
        };
        assert_eq!(trace.counts(), (0, 0, 0, 0, 0), "fault events are a separate tally");
        assert_eq!(trace.fault_counts(), (1, 1, 1, 1, 1));
        let text = trace.render();
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("FAULT    charger 1 down"));
        assert!(text.contains("rescue   3 sensors"));
        assert_eq!(trace.events[0].time(), 5.0);
    }

    #[test]
    fn event_time_accessor() {
        assert_eq!(TraceEvent::Charge { time: 4.5, sensor: 1 }.time(), 4.5);
        assert_eq!(TraceEvent::SlotBoundary { time: 10.0, slot: 1 }.time(), 10.0);
    }
}
