//! The simulated world: network geometry plus per-sensor energy state.

use perpetuum_core::network::Network;
use perpetuum_energy::consumption::ConsumptionProcess;
use perpetuum_energy::{
    Battery, CycleDistribution, EwmaPredictor, FixedRate, MarkovBurst, SlottedResample,
};
use rand::rngs::StdRng;

/// A per-sensor consumption-rate process (enum dispatch over the
/// [`ConsumptionProcess`] implementations the experiments use).
#[derive(Debug, Clone)]
pub enum RateProcess {
    /// Constant rate — the fixed-cycle setting of Section V.
    Fixed(FixedRate),
    /// Cycle redrawn every slot — the variable setting of Section VI.
    Slotted(SlottedResample),
    /// Two-state bursty load (extension) — event-detection workloads.
    Markov(MarkovBurst),
}

impl RateProcess {
    /// Rate for slot `slot`.
    pub fn rate_for_slot(&mut self, slot: u64, rng: &mut StdRng) -> f64 {
        match self {
            RateProcess::Fixed(p) => p.rate_for_slot(slot, rng),
            RateProcess::Slotted(p) => p.rate_for_slot(slot, rng),
            RateProcess::Markov(p) => p.rate_for_slot(slot, rng),
        }
    }

    /// True when the rate can change between slots.
    pub fn is_variable(&self) -> bool {
        match self {
            RateProcess::Fixed(p) => p.is_variable(),
            RateProcess::Slotted(p) => p.is_variable(),
            RateProcess::Markov(p) => p.is_variable(),
        }
    }
}

/// Why a world (or the scenario describing it) is malformed.
///
/// [`World::try_new`] and the experiment crate's scenario loader return
/// these instead of panicking, so a bad JSON scenario surfaces as a
/// readable diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub enum WorldError {
    /// The depot set is empty — no charger can ever be dispatched.
    EmptyDepots,
    /// The sensor set is empty.
    NoSensors,
    /// A coordinate is NaN, infinite or negative. `kind` is `"sensor"` or
    /// `"depot"`.
    BadCoordinate {
        /// `"sensor"` or `"depot"`.
        kind: &'static str,
        /// Index within its position list.
        index: usize,
        /// The offending x coordinate.
        x: f64,
        /// The offending y coordinate.
        y: f64,
    },
    /// A sensor's charging cycle (and therefore its rate) is non-positive
    /// or non-finite.
    BadCycle {
        /// The offending sensor.
        sensor: usize,
        /// The cycle value.
        cycle: f64,
    },
    /// A battery capacity is non-positive or non-finite.
    BadCapacity {
        /// The offending sensor.
        sensor: usize,
        /// The capacity value.
        capacity: f64,
    },
    /// Not exactly one rate process per sensor.
    ProcessCountMismatch {
        /// Supplied processes.
        processes: usize,
        /// Sensors in the network.
        sensors: usize,
    },
    /// The EWMA weight is outside `(0, 1]`.
    BadGamma {
        /// The offending value.
        gamma: f64,
    },
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldError::EmptyDepots => write!(f, "the depot set is empty"),
            WorldError::NoSensors => write!(f, "the sensor set is empty"),
            WorldError::BadCoordinate { kind, index, x, y } => {
                write!(f, "{kind} {index} has invalid coordinates ({x}, {y})")
            }
            WorldError::BadCycle { sensor, cycle } => {
                write!(f, "sensor {sensor} has non-positive cycle {cycle}")
            }
            WorldError::BadCapacity { sensor, capacity } => {
                write!(f, "sensor {sensor} has non-positive capacity {capacity}")
            }
            WorldError::ProcessCountMismatch { processes, sensors } => {
                write!(f, "{processes} rate processes for {sensors} sensors")
            }
            WorldError::BadGamma { gamma } => {
                write!(f, "EWMA weight {gamma} outside (0, 1]")
            }
        }
    }
}

impl std::error::Error for WorldError {}

/// The simulated WSN: geometry, batteries, rate processes and the
/// predictors the base station sees.
#[derive(Debug, Clone)]
pub struct World {
    /// Network geometry (sensors, depots, metric).
    pub network: Network,
    /// Battery per sensor, all full at `t = 0`.
    pub batteries: Vec<Battery>,
    /// Rate process per sensor.
    pub processes: Vec<RateProcess>,
    /// EWMA weight `γ` for the predictors.
    pub gamma: f64,
    /// Relative measurement noise: the rate a sensor *reports* each slot is
    /// `ρ_true · (1 + u)` with `u ~ U[−noise, +noise]`. Zero (default)
    /// models the paper's perfect monitoring; positive values stress the
    /// estimators. Energy always drains at the true rate.
    pub measurement_noise: f64,
}

impl World {
    /// A world with normalised (capacity 1) batteries and explicit
    /// processes.
    pub fn new(network: Network, processes: Vec<RateProcess>, gamma: f64) -> Self {
        assert_eq!(processes.len(), network.n(), "one rate process per sensor");
        let batteries = vec![Battery::full(1.0); network.n()];
        Self { network, batteries, processes, gamma, measurement_noise: 0.0 }
    }

    /// Gives every battery a per-charge capacity fade (aging extension)
    /// with the standard 50% end-of-life floor. Builder-style. The
    /// estimated cycles the policies see shrink along with the capacity,
    /// so adaptive policies re-tighten their schedules as batteries age.
    pub fn with_battery_fade(mut self, fade: f64) -> Self {
        self.batteries = self
            .batteries
            .iter()
            .map(|b| Battery::full_with_fade(b.capacity(), fade, 0.5))
            .collect();
        self
    }

    /// Sets the relative measurement noise (see
    /// [`World::measurement_noise`]). Builder-style.
    ///
    /// # Panics
    /// Panics unless `0 ≤ noise < 1`.
    pub fn with_measurement_noise(mut self, noise: f64) -> Self {
        assert!((0.0..1.0).contains(&noise), "noise must be in [0, 1)");
        self.measurement_noise = noise;
        self
    }

    /// Validating constructor: like [`World::new`] but every structural
    /// defect — empty depot set, NaN/negative coordinates, process-count
    /// mismatch, bad `γ` — comes back as a typed [`WorldError`] instead of
    /// a panic. The batteries it creates are additionally checked by
    /// construction (unit capacity).
    pub fn try_new(
        network: Network,
        processes: Vec<RateProcess>,
        gamma: f64,
    ) -> Result<Self, WorldError> {
        validate_network(&network)?;
        if processes.len() != network.n() {
            return Err(WorldError::ProcessCountMismatch {
                processes: processes.len(),
                sensors: network.n(),
            });
        }
        if !(gamma.is_finite() && gamma > 0.0 && gamma <= 1.0) {
            return Err(WorldError::BadGamma { gamma });
        }
        Ok(Self::new(network, processes, gamma))
    }

    /// Validating fixed-cycle constructor: [`World::fixed`] returning a
    /// typed [`WorldError`] for malformed geometry or non-positive cycles.
    pub fn try_fixed(network: Network, cycles: &[f64]) -> Result<Self, WorldError> {
        validate_network(&network)?;
        if cycles.len() != network.n() {
            return Err(WorldError::ProcessCountMismatch {
                processes: cycles.len(),
                sensors: network.n(),
            });
        }
        for (i, &tau) in cycles.iter().enumerate() {
            if !(tau.is_finite() && tau > 0.0) {
                return Err(WorldError::BadCycle { sensor: i, cycle: tau });
            }
        }
        Ok(Self::fixed(network, cycles))
    }

    /// Fixed-cycle world: sensor `i` drains its unit battery in exactly
    /// `cycles[i]` time units, forever.
    pub fn fixed(network: Network, cycles: &[f64]) -> Self {
        let processes =
            cycles.iter().map(|&tau| RateProcess::Fixed(FixedRate::from_cycle(1.0, tau))).collect();
        Self::new(network, processes, EwmaPredictor::DEFAULT_GAMMA)
    }

    /// Variable-cycle world: sensor `i`'s cycle is redrawn each slot from
    /// `dist` around `mean_cycles[i]`, clamped into `[tau_min, tau_max]`.
    pub fn variable(
        network: Network,
        mean_cycles: &[f64],
        dist: CycleDistribution,
        tau_min: f64,
        tau_max: f64,
    ) -> Self {
        let processes = mean_cycles
            .iter()
            .map(|&mean| {
                RateProcess::Slotted(SlottedResample::new(1.0, mean, dist, tau_min, tau_max))
            })
            .collect();
        Self::new(network, processes, EwmaPredictor::DEFAULT_GAMMA)
    }

    /// Bursty world (extension): sensor `i` is calm at `mean_cycles[i]`
    /// but collapses to `mean_cycles[i] / burst_factor` while a per-slot
    /// Markov chain is in its burst state.
    #[allow(clippy::too_many_arguments)]
    pub fn bursty(
        network: Network,
        mean_cycles: &[f64],
        burst_factor: f64,
        p_enter: f64,
        p_exit: f64,
        tau_min: f64,
        tau_max: f64,
    ) -> Self {
        let processes = mean_cycles
            .iter()
            .map(|&mean| {
                RateProcess::Markov(MarkovBurst::new(
                    1.0,
                    mean,
                    burst_factor,
                    p_enter,
                    p_exit,
                    tau_min,
                    tau_max,
                ))
            })
            .collect();
        Self::new(network, processes, EwmaPredictor::DEFAULT_GAMMA)
    }

    /// Number of sensors.
    pub fn n(&self) -> usize {
        self.network.n()
    }

    /// Number of chargers.
    pub fn q(&self) -> usize {
        self.network.q()
    }

    /// Battery capacities (the `B_i`).
    pub fn capacities(&self) -> Vec<f64> {
        self.batteries.iter().map(|b| b.capacity()).collect()
    }

    /// True when any sensor's rate varies across slots.
    pub fn is_variable(&self) -> bool {
        self.processes.iter().any(|p| p.is_variable())
    }
}

/// Shared geometry validation for the `try_*` constructors: non-empty
/// sensor and depot sets, all coordinates finite and non-negative.
fn validate_network(network: &Network) -> Result<(), WorldError> {
    if network.q() == 0 {
        return Err(WorldError::EmptyDepots);
    }
    if network.n() == 0 {
        return Err(WorldError::NoSensors);
    }
    let bad = |p: perpetuum_geom::Point2| {
        !(p.x.is_finite() && p.y.is_finite() && p.x >= 0.0 && p.y >= 0.0)
    };
    for (i, &p) in network.sensor_positions().iter().enumerate() {
        if bad(p) {
            return Err(WorldError::BadCoordinate { kind: "sensor", index: i, x: p.x, y: p.y });
        }
    }
    for l in 0..network.q() {
        let p = network.depot_pos(l);
        if bad(p) {
            return Err(WorldError::BadCoordinate { kind: "depot", index: l, x: p.x, y: p.y });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_geom::Point2;
    use rand::SeedableRng;

    fn net() -> Network {
        Network::new(vec![Point2::new(1.0, 0.0), Point2::new(2.0, 0.0)], vec![Point2::ORIGIN])
    }

    #[test]
    fn fixed_world_setup() {
        let w = World::fixed(net(), &[2.0, 5.0]);
        assert_eq!(w.n(), 2);
        assert_eq!(w.q(), 1);
        assert!(!w.is_variable());
        assert!(w.batteries.iter().all(|b| b.fraction() == 1.0));
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = w.processes.clone();
        assert_eq!(p[0].rate_for_slot(0, &mut rng), 0.5);
        assert_eq!(p[1].rate_for_slot(3, &mut rng), 0.2);
    }

    #[test]
    fn variable_world_setup() {
        let w = World::variable(
            net(),
            &[10.0, 25.0],
            CycleDistribution::Linear { sigma: 2.0 },
            1.0,
            50.0,
        );
        assert!(w.is_variable());
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = w.processes.clone();
        let r = p[0].rate_for_slot(0, &mut rng);
        assert!((1.0 / 12.0 - 1e-12..=1.0 / 8.0 + 1e-12).contains(&r));
    }

    #[test]
    #[should_panic(expected = "one rate process per sensor")]
    fn process_count_checked() {
        World::new(net(), vec![], 0.5);
    }

    #[test]
    fn noise_builder() {
        let w = World::fixed(net(), &[1.0, 2.0]).with_measurement_noise(0.1);
        assert_eq!(w.measurement_noise, 0.1);
        assert_eq!(World::fixed(net(), &[1.0, 2.0]).measurement_noise, 0.0);
    }

    #[test]
    #[should_panic(expected = "noise must be in")]
    fn noise_bounds_checked() {
        World::fixed(net(), &[1.0, 2.0]).with_measurement_noise(1.0);
    }

    #[test]
    fn try_constructors_accept_valid_input() {
        let w = World::try_fixed(net(), &[2.0, 5.0]).unwrap();
        assert_eq!(w.n(), 2);
        let procs = vec![RateProcess::Fixed(FixedRate::from_cycle(1.0, 2.0)); 2];
        assert!(World::try_new(net(), procs, 0.5).is_ok());
    }

    #[test]
    fn try_constructors_reject_malformed_input() {
        // Non-positive and non-finite cycles.
        assert_eq!(
            World::try_fixed(net(), &[2.0, 0.0]).unwrap_err(),
            WorldError::BadCycle { sensor: 1, cycle: 0.0 }
        );
        assert!(matches!(
            World::try_fixed(net(), &[f64::NAN, 1.0]),
            Err(WorldError::BadCycle { sensor: 0, .. })
        ));
        // Count mismatch instead of a panic.
        assert_eq!(
            World::try_fixed(net(), &[2.0]).unwrap_err(),
            WorldError::ProcessCountMismatch { processes: 1, sensors: 2 }
        );
        assert!(matches!(
            World::try_new(net(), vec![], 0.5),
            Err(WorldError::ProcessCountMismatch { .. })
        ));
        // Negative coordinates (finite, so Network::new accepts them).
        let neg = Network::new(vec![Point2::new(-1.0, 0.0)], vec![Point2::ORIGIN]);
        assert!(matches!(
            World::try_fixed(neg, &[1.0]),
            Err(WorldError::BadCoordinate { kind: "sensor", index: 0, .. })
        ));
        // Empty sensor set.
        let empty = Network::new(vec![], vec![Point2::ORIGIN]);
        assert_eq!(World::try_fixed(empty, &[]).unwrap_err(), WorldError::NoSensors);
        // Bad EWMA weight.
        let procs = vec![RateProcess::Fixed(FixedRate::from_cycle(1.0, 2.0)); 2];
        assert_eq!(
            World::try_new(net(), procs, 0.0).unwrap_err(),
            WorldError::BadGamma { gamma: 0.0 }
        );
        // Errors render readable diagnostics.
        let msg = WorldError::BadCycle { sensor: 3, cycle: -1.0 }.to_string();
        assert!(msg.contains("sensor 3"), "{msg}");
        assert!(msg.contains("-1"), "{msg}");
    }
}
