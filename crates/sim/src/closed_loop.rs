//! Closed-loop harness: the telemetry-driven [`OnlineController`] run
//! against the event-driven simulator, bracketed by the two references
//! that bound it from below and above:
//!
//! * **static** — plain Algorithm 3 from the initial estimates, never
//!   updated ([`MtdPolicy`]). Under rate drift this is the open-loop
//!   baseline the controller must beat.
//! * **oracle** — a full `V^a` replan from the *currently measured* rates
//!   at every slot boundary ([`OraclePolicy`]). Replanning cannot be done
//!   better with the information available, so its death count lower-bounds
//!   what any telemetry-driven scheme can reach (at an absurd planning
//!   cost: one full replan per slot).
//!
//! [`compare_under_drift`] runs all three arms over the same world, seed
//! and compounding rate drift and returns the per-arm outcomes — the data
//! behind `BENCH_online.json` and the `ext_drift` experiment.

use crate::engine::{run_with_faults, SimConfig};
use crate::faults::{FaultModel, RateShock};
use crate::policy::{ChargingPolicy, MtdPolicy, Observation, PlanUpdate};
use crate::world::World;
use perpetuum_client::{EwmaPredictor, SensorClient};
use perpetuum_core::network::Network;
use perpetuum_core::var::{replan_variable_with, RepairStrategy, VarInput};
use perpetuum_online::{
    ClassEvent, EventBatch, OnlineConfig, OnlineController, OnlineError, TelemetryBatch,
    TelemetryRecord,
};
use std::collections::HashSet;

/// Float slack for charge-time comparisons (matches the engine's).
const EPS: f64 = 1e-9;

/// The online controller as a [`ChargingPolicy`]: every slot boundary is
/// turned into one telemetry batch (measured rate + reported level per
/// sensor) and fed to [`OnlineController::ingest`]; the engine's plan is
/// replaced only when the controller actually mutated its plan (revision
/// bump), so class-stable slots cost zero planner invocations.
#[derive(Debug)]
pub struct OnlinePolicy {
    network: Network,
    /// Planning safety margin, forwarded to [`OnlineConfig`].
    pub margin: f64,
    /// Emergency head-start slack, forwarded to [`OnlineConfig`].
    pub emergency_slack: f64,
    /// Anytime-refinement budget for every full replan, forwarded to
    /// [`OnlineConfig::refine_steps`] (0 = constructive plans only).
    pub refine_steps: u64,
    controller: Option<OnlineController>,
    last_revision: u64,
}

impl OnlinePolicy {
    /// Default planning margin. Doubles as replan hysteresis (see
    /// [`OnlineConfig::margin`]): at 10%, a steady 1.5%/slot drift costs
    /// one full replan every ~7 slots instead of every slot.
    pub const DEFAULT_MARGIN: f64 = 0.1;

    /// Closed-loop policy with the default margin.
    pub fn new(network: &Network) -> Self {
        Self {
            network: network.clone(),
            margin: Self::DEFAULT_MARGIN,
            emergency_slack: 0.0,
            refine_steps: 0,
            controller: None,
            last_revision: 0,
        }
    }

    /// Closed-loop policy planning against `(1 − margin)`-shrunken cycles.
    pub fn with_margin(network: &Network, margin: f64) -> Self {
        assert!((0.0..1.0).contains(&margin), "margin must be in [0, 1)");
        Self { margin, ..Self::new(network) }
    }

    /// The wrapped controller (after initialization).
    pub fn controller(&self) -> Option<&OnlineController> {
        self.controller.as_ref()
    }

    /// Cumulative planner invocations (0 until initialized).
    pub fn planner_calls(&self) -> usize {
        self.controller.as_ref().map_or(0, |c| c.planner_calls())
    }

    /// Incremental (forest-splice) replans after initialization.
    pub fn incremental_replans(&self) -> usize {
        self.controller.as_ref().map_or(0, |c| c.incremental_replans())
    }

    /// Full replans after initialization (the seed plan is excluded).
    pub fn full_replans(&self) -> usize {
        self.controller.as_ref().map_or(0, |c| c.full_replans().saturating_sub(1))
    }

    /// Emergency rescue dispatches issued after initialization.
    pub fn emergency_dispatches(&self) -> usize {
        self.controller.as_ref().map_or(0, |c| c.emergency_dispatches())
    }

    /// Plan mutations after initialization: incremental + full replans +
    /// emergency dispatches.
    pub fn replans(&self) -> usize {
        self.incremental_replans() + self.emergency_dispatches() + self.full_replans()
    }

    fn batch_from(obs: &Observation) -> TelemetryBatch {
        let records = (0..obs.levels.len())
            .map(|i| TelemetryRecord::full(i, obs.rho_now[i], obs.levels[i]))
            .collect();
        TelemetryBatch { time: obs.time, records }
    }
}

impl ChargingPolicy for OnlinePolicy {
    fn name(&self) -> &'static str {
        "MinTotalDistance-online"
    }

    fn initialize(&mut self, obs: &Observation) -> PlanUpdate {
        if obs.levels.is_empty() {
            return PlanUpdate::Keep;
        }
        let rates: Vec<f64> = (0..obs.levels.len()).map(|i| obs.rate_safe(i)).collect();
        let cfg = OnlineConfig::new(obs.horizon)
            .with_margin(self.margin)
            .with_emergency_slack(self.emergency_slack)
            .with_refine_steps(self.refine_steps);
        match OnlineController::new(self.network.clone(), obs.capacities.to_vec(), rates, cfg) {
            Ok(ctl) => {
                let series = ctl.pending_series(obs.time);
                self.last_revision = ctl.revision();
                self.controller = Some(ctl);
                PlanUpdate::Replace(series)
            }
            Err(_) => PlanUpdate::Keep,
        }
    }

    fn on_slot_boundary(&mut self, obs: &Observation) -> PlanUpdate {
        let Some(ctl) = self.controller.as_mut() else {
            return PlanUpdate::Keep;
        };
        let batch = Self::batch_from(obs);
        if ctl.ingest(&batch).is_err() {
            return PlanUpdate::Keep;
        }
        if ctl.revision() == self.last_revision {
            return PlanUpdate::Keep;
        }
        self.last_revision = ctl.revision();
        PlanUpdate::Replace(ctl.pending_series(obs.time))
    }
}

// ---------------------------------------------------------------------------

/// Wire cost of one full telemetry record on the PBT1 binary wire
/// (`perpetuum-serve::wire`): flags byte, sensor id, rate, level.
pub const RECORD_WIRE_BYTES: u64 = 1 + 4 + 8 + 8;

/// Wire cost of one suppressed-stream event on the PBT1 binary wire:
/// sensor id, `ρ̂`, last observed rate, settled level.
pub const EVENT_WIRE_BYTES: u64 = 4 + 8 + 8 + 8;

/// Uplink traffic ledger of one edge-suppressed closed-loop run: what the
/// sensor fleet observed versus what actually went on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuppressionTraffic {
    /// Per-sensor slot observations — exactly the records a per-slot
    /// streaming fleet would have uplinked.
    pub frames_observed: u64,
    /// Per-sensor records actually uplinked: drift events plus the sync
    /// records a [`perpetuum_online::OnlineError::SyncRequired`] retry
    /// forces out of otherwise-quiet sensors.
    pub frames_sent: u64,
    /// Fleet-wide sync batches triggered by `SyncRequired` refusals.
    pub sync_batches: usize,
}

impl SuppressionTraffic {
    /// Frames-on-wire reduction factor versus per-slot streaming
    /// (`observed / sent`; equals `observed` when nothing was sent).
    pub fn reduction(&self) -> f64 {
        self.frames_observed as f64 / self.frames_sent.max(1) as f64
    }

    /// Uplink payload bytes a streaming fleet would have put on the wire.
    pub fn bytes_streaming(&self) -> u64 {
        self.frames_observed * RECORD_WIRE_BYTES
    }

    /// Uplink payload bytes the suppressed fleet actually put on the wire.
    /// Events are 7 bytes heavier than records (they carry the estimator
    /// state), so the byte reduction is slightly below the frame reduction.
    pub fn bytes_suppressed(&self) -> u64 {
        self.frames_sent * EVENT_WIRE_BYTES
    }
}

/// The edge-suppressed closed loop as a [`ChargingPolicy`]: every sensor
/// runs a [`SensorClient`] mirroring its slice of the controller state, and
/// only class-crossing slots reach [`OnlineController::ingest_events`] — an
/// empty event batch stands in as the clock tick. `SyncRequired` refusals
/// are answered with a fleet-wide sync snapshot, charge completions and
/// plan revisions are mirrored back down, and every uplink record is
/// counted in [`SuppressionTraffic`].
///
/// This is the sim-harness twin of the byte-identity proofs in
/// `perpetuum-online`'s and `perpetuum-serve`'s suppression tests: same
/// protocol, but driven by the event-driven engine's drifting worlds and
/// scored on deaths/cost/traffic instead of plan bytes.
#[derive(Debug)]
pub struct SuppressedPolicy {
    network: Network,
    /// Planning safety margin, forwarded to [`OnlineConfig`] and mirrored
    /// into every [`SensorClient`].
    pub margin: f64,
    /// Emergency head-start slack, forwarded to [`OnlineConfig`].
    pub emergency_slack: f64,
    /// EWMA smoothing factor shared by the controller and the clients.
    pub gamma: f64,
    controller: Option<OnlineController>,
    clients: Vec<SensorClient>,
    /// Every `(time, sensor)` charge the current schedule implies.
    charges: Vec<(f64, usize)>,
    /// Charges already mirrored into the clients, keyed by
    /// `(time.to_bits(), sensor)`.
    applied: HashSet<(u64, usize)>,
    last_revision: u64,
    syncs: usize,
}

impl SuppressedPolicy {
    /// Edge-suppressed policy with [`OnlinePolicy::DEFAULT_MARGIN`].
    pub fn new(network: &Network) -> Self {
        Self {
            network: network.clone(),
            margin: OnlinePolicy::DEFAULT_MARGIN,
            emergency_slack: 0.0,
            gamma: EwmaPredictor::DEFAULT_GAMMA,
            controller: None,
            clients: Vec::new(),
            charges: Vec::new(),
            applied: HashSet::new(),
            last_revision: 0,
            syncs: 0,
        }
    }

    /// Edge-suppressed policy planning against `(1 − margin)`-shrunken
    /// cycles (clients inherit the same margin for their drift test).
    pub fn with_margin(network: &Network, margin: f64) -> Self {
        assert!((0.0..1.0).contains(&margin), "margin must be in [0, 1)");
        Self { margin, ..Self::new(network) }
    }

    /// The wrapped controller (after initialization).
    pub fn controller(&self) -> Option<&OnlineController> {
        self.controller.as_ref()
    }

    /// Cumulative planner invocations (0 until initialized).
    pub fn planner_calls(&self) -> usize {
        self.controller.as_ref().map_or(0, |c| c.planner_calls())
    }

    /// Incremental (forest-splice) replans after initialization.
    pub fn incremental_replans(&self) -> usize {
        self.controller.as_ref().map_or(0, |c| c.incremental_replans())
    }

    /// Full replans after initialization (the seed plan is excluded).
    pub fn full_replans(&self) -> usize {
        self.controller.as_ref().map_or(0, |c| c.full_replans().saturating_sub(1))
    }

    /// Emergency rescue dispatches issued after initialization.
    pub fn emergency_dispatches(&self) -> usize {
        self.controller.as_ref().map_or(0, |c| c.emergency_dispatches())
    }

    /// Plan mutations after initialization.
    pub fn replans(&self) -> usize {
        self.incremental_replans() + self.emergency_dispatches() + self.full_replans()
    }

    /// Fleet-wide sync batches forced by `SyncRequired` refusals.
    pub fn syncs(&self) -> usize {
        self.syncs
    }

    /// The uplink traffic ledger so far.
    pub fn traffic(&self) -> SuppressionTraffic {
        SuppressionTraffic {
            frames_observed: self.clients.iter().map(|c| c.observed()).sum(),
            frames_sent: self.clients.iter().map(|c| c.sent()).sum(),
            sync_batches: self.syncs,
        }
    }
}

/// Every `(time, sensor)` charge `ctl`'s current schedule implies — the
/// physical charger arrivals an edge sensor would witness.
fn schedule_charges(ctl: &OnlineController) -> Vec<(f64, usize)> {
    let mut out = Vec::new();
    for d in ctl.series().dispatches() {
        for &i in ctl.series().sets()[d.set].sensors() {
            out.push((d.time, i));
        }
    }
    out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    out
}

/// Mirror all not-yet-applied charges with time ≤ `limit` into the clients.
fn apply_charges(
    charges: &[(f64, usize)],
    applied: &mut HashSet<(u64, usize)>,
    clients: &mut [SensorClient],
    limit: f64,
) {
    for &(time, i) in charges {
        if time <= limit && applied.insert((time.to_bits(), i)) {
            clients[i].recharged(time);
        }
    }
}

/// Downlink: push the current `(τ₁, assigned)` to every client.
fn refresh_plans(ctl: &OnlineController, clients: &mut [SensorClient]) {
    let tau1 = ctl.tau1();
    for (i, c) in clients.iter_mut().enumerate() {
        c.plan_update(tau1, ctl.assigned_cycles()[i]);
    }
}

impl ChargingPolicy for SuppressedPolicy {
    fn name(&self) -> &'static str {
        "MinTotalDistance-suppressed"
    }

    fn initialize(&mut self, obs: &Observation) -> PlanUpdate {
        if obs.levels.is_empty() {
            return PlanUpdate::Keep;
        }
        let rates: Vec<f64> = (0..obs.levels.len()).map(|i| obs.rate_safe(i)).collect();
        let cfg = OnlineConfig::new(obs.horizon)
            .with_gamma(self.gamma)
            .with_margin(self.margin)
            .with_emergency_slack(self.emergency_slack);
        match OnlineController::new(
            self.network.clone(),
            obs.capacities.to_vec(),
            rates.clone(),
            cfg,
        ) {
            Ok(ctl) => {
                self.clients = rates
                    .iter()
                    .zip(obs.capacities)
                    .map(|(&r, &cap)| {
                        SensorClient::new(self.gamma, self.margin, obs.horizon, cap, r)
                    })
                    .collect();
                refresh_plans(&ctl, &mut self.clients);
                self.charges = schedule_charges(&ctl);
                // Construction may already have executed a repair dispatch
                // at t = 0.
                apply_charges(&self.charges, &mut self.applied, &mut self.clients, obs.time + EPS);
                let series = ctl.pending_series(obs.time);
                self.last_revision = ctl.revision();
                self.controller = Some(ctl);
                PlanUpdate::Replace(series)
            }
            Err(_) => PlanUpdate::Keep,
        }
    }

    fn on_slot_boundary(&mut self, obs: &Observation) -> PlanUpdate {
        let Some(ctl) = self.controller.as_mut() else {
            return PlanUpdate::Keep;
        };
        let t = obs.time;
        apply_charges(&self.charges, &mut self.applied, &mut self.clients, t - EPS);

        // Sensors observe the slot's measured rate; most slots are
        // suppressed client-side and cost nothing on the wire.
        let mut events = Vec::new();
        for (i, c) in self.clients.iter_mut().enumerate() {
            if let Some(s) = c.observe(t, obs.rho_now[i]) {
                events.push(ClassEvent::new(i, s.rho_hat, s.last_rate, s.level));
            }
        }
        let batch = EventBatch::new(t, events);
        match ctl.ingest_events(&batch) {
            Ok(_) => {}
            Err(OnlineError::SyncRequired) => {
                self.syncs += 1;
                // Retry with the fleet-wide state snapshot; sensors whose
                // slot was suppressed pay for their sync record now.
                let all: Vec<ClassEvent> = self
                    .clients
                    .iter_mut()
                    .enumerate()
                    .map(|(i, c)| {
                        let s = c.state();
                        if !batch.events.iter().any(|e| e.sensor == i) {
                            c.record_sync();
                        }
                        ClassEvent::new(i, s.rho_hat, s.last_rate, s.level)
                    })
                    .collect();
                let sync = EventBatch { time: t, sync: true, events: all, observed: 0, sent: 0 };
                if ctl.ingest_events(&sync).is_err() {
                    return PlanUpdate::Keep;
                }
            }
            Err(_) => return PlanUpdate::Keep,
        }

        // Downlink: fresh plan + the (possibly revised) charge schedule.
        refresh_plans(ctl, &mut self.clients);
        self.charges = schedule_charges(ctl);
        apply_charges(&self.charges, &mut self.applied, &mut self.clients, t + EPS);

        if ctl.revision() == self.last_revision {
            return PlanUpdate::Keep;
        }
        self.last_revision = ctl.revision();
        PlanUpdate::Replace(ctl.pending_series(t))
    }
}

// ---------------------------------------------------------------------------

/// Clairvoyant-replanning reference: a full Algorithm 3 + `V^a` repair from
/// the currently measured rates at **every** slot boundary. Its planning
/// cost (one full replan per slot) is the price of its death-count floor.
#[derive(Debug)]
pub struct OraclePolicy<'a> {
    network: &'a Network,
    replans: usize,
}

impl<'a> OraclePolicy<'a> {
    /// Oracle over `network`.
    pub fn new(network: &'a Network) -> Self {
        Self { network, replans: 0 }
    }

    /// Full replans performed after initialization.
    pub fn replans(&self) -> usize {
        self.replans
    }

    fn replan(&self, obs: &Observation) -> PlanUpdate {
        // Plan from the *measured* current rate alone — the oracle trusts
        // its instruments completely and re-checks every slot anyway.
        let n = obs.levels.len();
        let max_cycles: Vec<f64> = (0..n).map(|i| obs.capacities[i] / obs.rho_now[i]).collect();
        let residuals: Vec<f64> =
            (0..n).map(|i| (obs.levels[i] / obs.rho_now[i]).min(max_cycles[i])).collect();
        let input = VarInput {
            network: self.network,
            max_cycles: &max_cycles,
            residuals: &residuals,
            now: obs.time,
            horizon: obs.horizon,
            polish_rounds: 0,
        };
        PlanUpdate::Replace(replan_variable_with(&input, RepairStrategy::NearestScheduling).series)
    }
}

impl ChargingPolicy for OraclePolicy<'_> {
    fn name(&self) -> &'static str {
        "Oracle-var"
    }

    fn initialize(&mut self, obs: &Observation) -> PlanUpdate {
        if obs.levels.is_empty() {
            return PlanUpdate::Keep;
        }
        self.replan(obs)
    }

    fn on_slot_boundary(&mut self, obs: &Observation) -> PlanUpdate {
        if obs.levels.is_empty() || obs.time >= obs.horizon {
            return PlanUpdate::Keep;
        }
        self.replans += 1;
        self.replan(obs)
    }
}

// ---------------------------------------------------------------------------

/// One arm of the closed-loop comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmOutcome {
    /// Policy name.
    pub name: &'static str,
    /// Sensor deaths over the run.
    pub deaths: usize,
    /// Total charger travel (the paper's objective).
    pub service_cost: f64,
    /// Plan mutations after initialization; always equals
    /// `incremental_replans + full_replans + emergency_dispatches`.
    pub replans: usize,
    /// Incremental (forest-splice) replans after initialization. Always 0
    /// for the static and oracle arms.
    pub incremental_replans: usize,
    /// Full replans after initialization (seed plan excluded). The oracle
    /// pays one per slot by construction.
    pub full_replans: usize,
    /// Emergency rescue dispatches after initialization.
    pub emergency_dispatches: usize,
    /// Planner invocations (tour constructions / full replans); the static
    /// arm pays 1 (its initial plan), the oracle pays one per slot.
    pub planner_calls: usize,
}

/// Outcome of [`compare_under_drift`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopComparison {
    /// Per-slot compounding drift factor applied to every true rate.
    pub drift: f64,
    /// Open-loop Algorithm 3 (never replans).
    pub static_arm: ArmOutcome,
    /// Telemetry-driven [`OnlinePolicy`].
    pub online_arm: ArmOutcome,
    /// Every-slot full-replanning [`OraclePolicy`].
    pub oracle_arm: ArmOutcome,
}

/// Run the static, online and oracle arms over identical worlds, seeds and
/// drift realizations and report the three outcomes. With `drift = 0` the
/// fault path is skipped entirely ([`FaultModel::none`] bit-identity).
pub fn compare_under_drift(world: &World, cfg: &SimConfig, drift: f64) -> ClosedLoopComparison {
    let faults = if drift == 0.0 {
        FaultModel::none()
    } else {
        FaultModel::none().with_rate_shocks(RateShock::drift(drift)).with_seed(cfg.seed)
    };
    let network = world.network.clone();

    let mut static_policy = MtdPolicy::new(&network);
    let static_result = run_with_faults(world.clone(), cfg, &mut static_policy, &faults);

    let mut online_policy = OnlinePolicy::new(&network);
    let online_result = run_with_faults(world.clone(), cfg, &mut online_policy, &faults);

    let mut oracle_policy = OraclePolicy::new(&network);
    let oracle_result = run_with_faults(world.clone(), cfg, &mut oracle_policy, &faults);

    ClosedLoopComparison {
        drift,
        static_arm: ArmOutcome {
            name: "static",
            deaths: static_result.deaths.len(),
            service_cost: static_result.service_cost,
            replans: 0,
            incremental_replans: 0,
            full_replans: 0,
            emergency_dispatches: 0,
            planner_calls: 1,
        },
        online_arm: ArmOutcome {
            name: "online",
            deaths: online_result.deaths.len(),
            service_cost: online_result.service_cost,
            replans: online_policy.replans(),
            incremental_replans: online_policy.incremental_replans(),
            full_replans: online_policy.full_replans(),
            emergency_dispatches: online_policy.emergency_dispatches(),
            planner_calls: online_policy.planner_calls(),
        },
        oracle_arm: ArmOutcome {
            name: "oracle",
            deaths: oracle_result.deaths.len(),
            service_cost: oracle_result.service_cost,
            replans: oracle_policy.replans(),
            incremental_replans: 0,
            full_replans: oracle_policy.replans(),
            emergency_dispatches: 0,
            planner_calls: 1 + oracle_policy.replans(),
        },
    }
}

/// Outcome of [`compare_refined`].
#[derive(Debug, Clone, PartialEq)]
pub struct RefinedComparison {
    /// Per-slot compounding drift factor applied to every true rate.
    pub drift: f64,
    /// Refinement budget of the refined arm.
    pub refine_steps: u64,
    /// Telemetry-driven [`OnlinePolicy`] with constructive full replans.
    pub constructive_arm: ArmOutcome,
    /// The same policy with every full replan refined under the budget.
    pub refined_arm: ArmOutcome,
}

/// Race the constructive and refined online arms over identical worlds,
/// seeds and drift realizations. Both arms ingest the same telemetry and
/// make identical replan *decisions* (refinement changes tour geometry,
/// never the controller's estimator or class state), so the comparison
/// isolates what the anytime optimizer buys in executed travel. With
/// `drift = 0` neither arm replans and the refined arm's service cost is
/// provably ≤ the constructive arm's; under drift, travel-resolved
/// arrival times may shift emergency timing slightly, so treat the
/// outcome as a measurement, not an invariant.
pub fn compare_refined(
    world: &World,
    cfg: &SimConfig,
    drift: f64,
    refine_steps: u64,
) -> RefinedComparison {
    let faults = if drift == 0.0 {
        FaultModel::none()
    } else {
        FaultModel::none().with_rate_shocks(RateShock::drift(drift)).with_seed(cfg.seed)
    };
    let network = world.network.clone();

    let mut constructive_policy = OnlinePolicy::new(&network);
    let constructive_result =
        run_with_faults(world.clone(), cfg, &mut constructive_policy, &faults);

    let mut refined_policy = OnlinePolicy::new(&network);
    refined_policy.refine_steps = refine_steps;
    let refined_result = run_with_faults(world.clone(), cfg, &mut refined_policy, &faults);

    let arm = |name: &'static str, result: &crate::metrics::SimResult, policy: &OnlinePolicy| {
        ArmOutcome {
            name,
            deaths: result.deaths.len(),
            service_cost: result.service_cost,
            replans: policy.replans(),
            incremental_replans: policy.incremental_replans(),
            full_replans: policy.full_replans(),
            emergency_dispatches: policy.emergency_dispatches(),
            planner_calls: policy.planner_calls(),
        }
    };
    RefinedComparison {
        drift,
        refine_steps,
        constructive_arm: arm("online", &constructive_result, &constructive_policy),
        refined_arm: arm("online-refined", &refined_result, &refined_policy),
    }
}

/// Outcome of [`compare_suppressed`].
#[derive(Debug, Clone, PartialEq)]
pub struct SuppressionComparison {
    /// Per-slot compounding drift factor applied to every true rate.
    pub drift: f64,
    /// Per-slot streaming [`OnlinePolicy`] (one record per sensor per slot).
    pub streaming_arm: ArmOutcome,
    /// Edge-suppressed [`SuppressedPolicy`] (events only).
    pub suppressed_arm: ArmOutcome,
    /// What the suppressed fleet put on the wire versus what it observed.
    pub traffic: SuppressionTraffic,
}

/// Run the per-slot streaming and edge-suppressed closed loops over
/// identical worlds, seeds and drift realizations: the data behind the
/// `BENCH_client.json` traffic-reduction table. The suppressed arm must
/// match the streaming arm's control quality while uplinking a small
/// fraction of the frames.
pub fn compare_suppressed(world: &World, cfg: &SimConfig, drift: f64) -> SuppressionComparison {
    let faults = if drift == 0.0 {
        FaultModel::none()
    } else {
        FaultModel::none().with_rate_shocks(RateShock::drift(drift)).with_seed(cfg.seed)
    };
    let network = world.network.clone();

    let mut streaming_policy = OnlinePolicy::new(&network);
    let streaming_result = run_with_faults(world.clone(), cfg, &mut streaming_policy, &faults);

    let mut suppressed_policy = SuppressedPolicy::new(&network);
    let suppressed_result = run_with_faults(world.clone(), cfg, &mut suppressed_policy, &faults);

    SuppressionComparison {
        drift,
        streaming_arm: ArmOutcome {
            name: "streaming",
            deaths: streaming_result.deaths.len(),
            service_cost: streaming_result.service_cost,
            replans: streaming_policy.replans(),
            incremental_replans: streaming_policy.incremental_replans(),
            full_replans: streaming_policy.full_replans(),
            emergency_dispatches: streaming_policy.emergency_dispatches(),
            planner_calls: streaming_policy.planner_calls(),
        },
        suppressed_arm: ArmOutcome {
            name: "suppressed",
            deaths: suppressed_result.deaths.len(),
            service_cost: suppressed_result.service_cost,
            replans: suppressed_policy.replans(),
            incremental_replans: suppressed_policy.incremental_replans(),
            full_replans: suppressed_policy.full_replans(),
            emergency_dispatches: suppressed_policy.emergency_dispatches(),
            planner_calls: suppressed_policy.planner_calls(),
        },
        traffic: suppressed_policy.traffic(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_geom::Point2;

    fn world() -> World {
        let sensors: Vec<Point2> = (0..12)
            .map(|i| {
                let row = (i / 4) as f64;
                let col = (i % 4) as f64;
                Point2::new(80.0 * col, 60.0 * row)
            })
            .collect();
        let depots = vec![Point2::new(120.0, 150.0), Point2::new(240.0, -30.0)];
        let network = Network::new(sensors, depots);
        let cycles: Vec<f64> = (0..12).map(|i| 20.0 + 7.0 * (i % 5) as f64).collect();
        World::fixed(network, &cycles)
    }

    fn cfg() -> SimConfig {
        SimConfig { horizon: 400.0, slot: 10.0, seed: 7, charger_speed: None }
    }

    #[test]
    fn online_policy_tracks_a_drift_free_world_without_replanning() {
        let outcome = compare_under_drift(&world(), &cfg(), 0.0);
        assert_eq!(outcome.online_arm.deaths, 0, "no drift, no deaths");
        assert_eq!(
            outcome.online_arm.replans, 0,
            "constant rates stay in-band: zero plan mutations"
        );
        assert_eq!(outcome.online_arm.planner_calls, 1, "only the initial plan is ever computed");
        assert_eq!(outcome.static_arm.deaths, 0);
    }

    /// Drift-free race: neither arm ever replans, so both execute their
    /// initial plan verbatim and the refined arm's bill is the refined
    /// plan's cost — provably ≤ the constructive one, with identical
    /// control quality.
    #[test]
    fn refined_arm_never_travels_farther_without_drift() {
        let outcome = compare_refined(&world(), &cfg(), 0.0, 300_000);
        assert_eq!(outcome.refined_arm.deaths, outcome.constructive_arm.deaths);
        assert_eq!(outcome.refined_arm.replans, 0);
        assert_eq!(outcome.constructive_arm.replans, 0);
        assert!(
            outcome.refined_arm.service_cost <= outcome.constructive_arm.service_cost + 1e-9,
            "refined {} vs constructive {}",
            outcome.refined_arm.service_cost,
            outcome.constructive_arm.service_cost
        );
    }

    /// Under drift both arms make the same replan decisions (refinement
    /// never touches the estimator or class state), so the planning
    /// cadence is identical even though tour geometry differs.
    #[test]
    fn refined_arm_keeps_the_constructive_replan_cadence_under_drift() {
        let outcome = compare_refined(&world(), &cfg(), 0.015, 100_000);
        assert_eq!(outcome.refined_arm.full_replans, outcome.constructive_arm.full_replans);
        assert_eq!(
            outcome.refined_arm.incremental_replans,
            outcome.constructive_arm.incremental_replans
        );
    }

    #[test]
    fn closed_loop_beats_static_under_compounding_drift() {
        // 1.5%/slot compounding drift over 40 slots → rates end ~1.8×
        // their planning-time values; the open-loop plan starves sensors.
        let outcome = compare_under_drift(&world(), &cfg(), 0.015);
        assert!(
            outcome.static_arm.deaths > 0,
            "drift must actually break the open-loop plan (got 0 deaths)"
        );
        assert!(
            outcome.online_arm.deaths < outcome.static_arm.deaths,
            "online ({}) must beat static ({})",
            outcome.online_arm.deaths,
            outcome.static_arm.deaths
        );
        assert!(outcome.online_arm.replans > 0, "drift must trigger replanning");
        assert!(
            outcome.online_arm.planner_calls < outcome.oracle_arm.planner_calls,
            "online must plan less than the every-slot oracle"
        );
    }

    #[test]
    fn replan_kind_split_sums_to_the_lump() {
        let outcome = compare_under_drift(&world(), &cfg(), 0.015);
        for arm in [&outcome.static_arm, &outcome.online_arm, &outcome.oracle_arm] {
            assert_eq!(
                arm.replans,
                arm.incremental_replans + arm.full_replans + arm.emergency_dispatches,
                "{}: split counters must sum to the lumped count",
                arm.name
            );
        }
        assert_eq!(outcome.static_arm.replans, 0);
        assert_eq!(
            outcome.oracle_arm.full_replans, outcome.oracle_arm.replans,
            "every oracle replan is full by construction"
        );
    }

    #[test]
    fn oracle_bounds_online_death_count() {
        let outcome = compare_under_drift(&world(), &cfg(), 0.015);
        assert!(outcome.oracle_arm.deaths <= outcome.online_arm.deaths);
    }

    #[test]
    fn suppressed_arm_is_silent_in_a_drift_free_world() {
        let outcome = compare_suppressed(&world(), &cfg(), 0.0);
        assert_eq!(outcome.suppressed_arm.deaths, 0, "no drift, no deaths");
        assert_eq!(outcome.suppressed_arm.replans, 0, "constant rates stay in-band");
        assert!(outcome.traffic.frames_observed > 0, "slots were observed");
        assert_eq!(
            outcome.traffic.frames_sent, 0,
            "every in-band slot must be suppressed at the edge"
        );
        assert_eq!(outcome.traffic.sync_batches, 0);
        assert_eq!(outcome.traffic.bytes_suppressed(), 0);
        assert!(outcome.traffic.bytes_streaming() > 0);
    }

    #[test]
    fn suppressed_arm_tracks_drift_with_a_fraction_of_the_frames() {
        // Same drift realization as `closed_loop_beats_static_under_drift`:
        // rates end ~1.8× their planning-time values.
        let outcome = compare_suppressed(&world(), &cfg(), 0.015);
        assert!(outcome.suppressed_arm.replans > 0, "drift must trigger replanning");
        assert!(
            outcome.traffic.sync_batches >= 1,
            "compounding drift must eventually force a fleet-wide sync"
        );
        assert!(
            outcome.suppressed_arm.deaths <= outcome.streaming_arm.deaths,
            "suppression must not cost control quality: {} deaths vs {} streaming",
            outcome.suppressed_arm.deaths,
            outcome.streaming_arm.deaths
        );
        let reduction = outcome.traffic.reduction();
        assert!(
            reduction >= 5.0,
            "frames-on-wire reduction too weak: {reduction:.1}x ({} of {} sent)",
            outcome.traffic.frames_sent,
            outcome.traffic.frames_observed
        );
        assert!(outcome.traffic.bytes_suppressed() * 3 < outcome.traffic.bytes_streaming());
    }

    #[test]
    fn online_service_cost_sits_between_static_and_oracle() {
        // More planning buys fewer deaths at more travel: the closed loop
        // should pay more than the (dying) static plan but stay well under
        // the every-slot oracle's bill.
        let outcome = compare_under_drift(&world(), &cfg(), 0.015);
        assert!(outcome.online_arm.service_cost > outcome.static_arm.service_cost);
        assert!(outcome.online_arm.service_cost < outcome.oracle_arm.service_cost);
    }
}
