//! Deterministic, seeded fault injection.
//!
//! A [`FaultModel`] describes the adverse conditions a run is subjected
//! to, all driven from one dedicated RNG stream (separate from the rate
//! and noise streams, so enabling faults never perturbs the nominal
//! draws — and [`FaultModel::none`] makes *zero* extra draws, keeping
//! fault-free runs bit-identical to [`crate::engine::run`]):
//!
//! * **charger breakdowns** — each charger alternates up/down phases with
//!   exponentially distributed durations (seeded MTBF/MTTR draws). A
//!   breakdown aborts the charger's in-transit stops (travel-time mode)
//!   and every later dispatch skips its tour, orphaning the covered
//!   sensors;
//! * **rate shocks/drift** — [`perpetuum_energy::shock::RateShock`]
//!   transforms every freshly resampled consumption rate at slot
//!   boundaries;
//! * **travel-speed perturbation** — in travel-time mode each dispatch
//!   draws a speed factor from `U[1 − jitter, 1 + jitter]`.
//!
//! Orphaned sensors enter a recovery pool. When one becomes *urgent*
//! (estimated residual lifetime within [`RecoveryConfig::urgency_window`])
//! the engine plans an emergency scheduling over the surviving depots via
//! [`perpetuum_core::recovery::degraded_tour_set`]; while no charger is
//! up, recovery retries under bounded exponential backoff
//! ([`RecoveryConfig::max_retries`], [`RecoveryConfig::backoff`]) before
//! giving the orphans up. See DESIGN.md "Fault model and recovery".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

pub use perpetuum_energy::shock::RateShock;
use perpetuum_energy::shock::ShockState;

/// Stream separator for the fault RNG: guarantees the fault stream never
/// collides with the rate stream (`seed`) or the measurement-noise stream
/// (`seed ^ 0x9E37…`) for any seed pair.
const FAULT_STREAM_SALT: u64 = 0xD6E8_FEB8_6659_FD93;

/// Charger breakdown/repair process: alternating up and down phases with
/// exponentially distributed durations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargerFaults {
    /// Mean time between failures (mean up-phase duration).
    pub mtbf: f64,
    /// Mean time to repair (mean down-phase duration).
    pub mttr: f64,
}

/// Travel-speed perturbation (travel-time mode only): each dispatch's
/// effective speed is `nominal · u`, `u ~ U[1 − jitter, 1 + jitter]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedFaults {
    /// Relative jitter, in `[0, 1)`.
    pub jitter: f64,
}

/// Degraded-mode recovery parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// An orphan whose estimated residual lifetime drops to this window
    /// triggers an emergency dispatch (same residual estimate as the
    /// greedy policy's urgency test).
    pub urgency_window: f64,
    /// Bounded retry while no charger is up: after this many consecutive
    /// failed attempts the currently urgent orphans are given up.
    pub max_retries: u32,
    /// Base backoff delay; attempt `k` (1-based) waits `backoff · 2^(k−1)`.
    pub backoff: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self { urgency_window: 1.0, max_retries: 5, backoff: 0.5 }
    }
}

/// The full fault-injection configuration of a run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultModel {
    /// Charger breakdown/repair process (`None` disables).
    #[serde(default)]
    pub chargers: Option<ChargerFaults>,
    /// Consumption-rate shocks and drift (`None` disables).
    #[serde(default)]
    pub rates: Option<RateShock>,
    /// Travel-speed perturbation (`None` disables; ignored without a
    /// charger speed).
    #[serde(default)]
    pub speed: Option<SpeedFaults>,
    /// Degraded-mode recovery parameters.
    #[serde(default)]
    pub recovery: RecoveryConfig,
    /// Fault-stream seed, combined with the engine seed — two runs with
    /// the same engine seed can still draw different fault histories.
    #[serde(default)]
    pub seed: u64,
}

impl FaultModel {
    /// No faults at all: the engine takes the exact pre-fault code path
    /// and produces bit-identical results to [`crate::engine::run`].
    pub fn none() -> Self {
        Self::default()
    }

    /// True when every fault source is disabled.
    pub fn is_none(&self) -> bool {
        self.chargers.is_none() && self.rates.is_none() && self.speed.is_none()
    }

    /// Enables charger breakdowns. Builder-style.
    pub fn with_breakdowns(mut self, mtbf: f64, mttr: f64) -> Self {
        self.chargers = Some(ChargerFaults { mtbf, mttr });
        self
    }

    /// Enables rate shocks/drift. Builder-style.
    pub fn with_rate_shocks(mut self, shock: RateShock) -> Self {
        self.rates = Some(shock);
        self
    }

    /// Enables travel-speed jitter. Builder-style.
    pub fn with_speed_jitter(mut self, jitter: f64) -> Self {
        self.speed = Some(SpeedFaults { jitter });
        self
    }

    /// Sets the recovery parameters. Builder-style.
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the fault-stream seed. Builder-style.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks every enabled fault source's parameters; returns a
    /// description of the first offending field otherwise.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(c) = &self.chargers {
            if !(c.mtbf.is_finite() && c.mtbf > 0.0) {
                return Err(format!("mtbf {} must be positive and finite", c.mtbf));
            }
            if !(c.mttr.is_finite() && c.mttr > 0.0) {
                return Err(format!("mttr {} must be positive and finite", c.mttr));
            }
        }
        if let Some(r) = &self.rates {
            r.validate()?;
        }
        if let Some(s) = &self.speed {
            if !(0.0..1.0).contains(&s.jitter) {
                return Err(format!("speed jitter {} outside [0, 1)", s.jitter));
            }
        }
        let rc = &self.recovery;
        if !(rc.urgency_window.is_finite() && rc.urgency_window > 0.0) {
            return Err(format!(
                "urgency_window {} must be positive and finite",
                rc.urgency_window
            ));
        }
        if !(rc.backoff.is_finite() && rc.backoff > 0.0) {
            return Err(format!("backoff {} must be positive and finite", rc.backoff));
        }
        Ok(())
    }
}

/// An orphaned sensor awaiting recovery: its aborted stop was detected at
/// `since`; `stamp` is the sensor's charge stamp at that instant — a later
/// charge (by any path) bumps the stamp, healing the orphan.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Orphan {
    pub(crate) sensor: usize,
    pub(crate) since: f64,
    pub(crate) stamp: u64,
}

/// Engine-internal mutable fault state: the fault RNG, per-charger phase
/// machine, per-sensor shock machines and the orphan recovery pool.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) model: FaultModel,
    rng: StdRng,
    /// `up[l]` — charger `l` is operational.
    pub(crate) up: Vec<bool>,
    /// Absolute time of charger `l`'s next phase transition (`∞` when
    /// breakdowns are disabled).
    next_transition: Vec<f64>,
    /// Start of the current down phase (valid while `!up[l]`).
    down_since: Vec<f64>,
    /// Accumulated completed downtime per charger.
    pub(crate) downtime: Vec<f64>,
    /// Per-sensor shock machines (empty when rate faults are disabled).
    shocks: Vec<ShockState>,
    orphans: Vec<Orphan>,
    /// Next recovery-evaluation time (`∞` when the pool is empty and no
    /// retry is pending).
    next_recovery: f64,
    /// Consecutive failed recovery attempts while no charger is up.
    pub(crate) attempt: u32,
}

impl FaultState {
    /// Builds the state, or `None` when the model disables everything —
    /// the disabled path must construct no RNG and draw nothing.
    ///
    /// # Panics
    /// Panics when the model's parameters fail [`FaultModel::validate`].
    pub(crate) fn new(model: &FaultModel, q: usize, n: usize, engine_seed: u64) -> Option<Self> {
        if model.is_none() {
            return None;
        }
        if let Err(e) = model.validate() {
            panic!("invalid fault model: {e}");
        }
        let mut rng = StdRng::seed_from_u64(engine_seed ^ model.seed ^ FAULT_STREAM_SALT);
        let next_transition = if let Some(c) = &model.chargers {
            (0..q).map(|_| exp_draw(&mut rng, c.mtbf)).collect()
        } else {
            vec![f64::INFINITY; q]
        };
        let shocks = if model.rates.is_some() { vec![ShockState::new(); n] } else { Vec::new() };
        Some(Self {
            model: *model,
            rng,
            up: vec![true; q],
            next_transition,
            down_since: vec![0.0; q],
            downtime: vec![0.0; q],
            shocks,
            orphans: Vec::new(),
            next_recovery: f64::INFINITY,
            attempt: 0,
        })
    }

    /// Earliest pending fault event (phase transition or recovery
    /// evaluation).
    pub(crate) fn next_event(&self) -> f64 {
        let t = self.next_transition.iter().copied().fold(f64::INFINITY, f64::min);
        t.min(self.next_recovery)
    }

    /// The charger with the earliest transition due at or before `t`
    /// (ties broken by index), if any.
    pub(crate) fn pop_due_transition(&mut self, t: f64) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (l, &tt) in self.next_transition.iter().enumerate() {
            if tt <= t && best.is_none_or(|b| tt < self.next_transition[b]) {
                best = Some(l);
            }
        }
        best
    }

    /// Transitions charger `l` down at `t` and draws its repair time.
    pub(crate) fn breakdown(&mut self, l: usize, t: f64) {
        debug_assert!(self.up[l]);
        let mttr = self.model.chargers.expect("transition without charger faults").mttr;
        self.up[l] = false;
        self.down_since[l] = t;
        self.next_transition[l] = t + exp_draw(&mut self.rng, mttr);
    }

    /// Transitions charger `l` up at `t` and draws its next failure time.
    pub(crate) fn repair(&mut self, l: usize, t: f64) -> f64 {
        debug_assert!(!self.up[l]);
        let mtbf = self.model.chargers.expect("transition without charger faults").mtbf;
        self.up[l] = true;
        let down_for = t - self.down_since[l];
        self.downtime[l] += down_for;
        self.next_transition[l] = t + exp_draw(&mut self.rng, mtbf);
        down_for
    }

    /// True when at least one charger is operational.
    pub(crate) fn any_up(&self) -> bool {
        self.up.iter().any(|&u| u)
    }

    /// Finishes the downtime accounting at the horizon and returns the
    /// per-charger totals.
    pub(crate) fn downtime_at(&self, horizon: f64) -> Vec<f64> {
        self.up
            .iter()
            .zip(&self.downtime)
            .zip(&self.down_since)
            .map(|((&up, &d), &since)| if up { d } else { d + (horizon - since).max(0.0) })
            .collect()
    }

    /// Applies the rate-shock layer to a freshly resampled rate.
    pub(crate) fn transform_rate(&mut self, i: usize, rate: f64) -> f64 {
        match &self.model.rates {
            Some(cfg) => self.shocks[i].apply(cfg, rate, &mut self.rng),
            None => rate,
        }
    }

    /// Per-dispatch speed multiplier (1 when speed faults are disabled).
    pub(crate) fn speed_factor(&mut self) -> f64 {
        match &self.model.speed {
            Some(s) => self.rng.gen_range(1.0 - s.jitter..=1.0 + s.jitter),
            None => 1.0,
        }
    }

    /// Adds `sensor` to the recovery pool (no-op when already pooled) and
    /// requests an evaluation at `t`.
    pub(crate) fn add_orphan(&mut self, sensor: usize, t: f64, stamp: u64) {
        if self.orphans.iter().all(|o| o.sensor != sensor) {
            self.orphans.push(Orphan { sensor, since: t, stamp });
        }
        self.next_recovery = self.next_recovery.min(t);
    }

    pub(crate) fn orphans(&self) -> &[Orphan] {
        &self.orphans
    }

    pub(crate) fn has_orphans(&self) -> bool {
        !self.orphans.is_empty()
    }

    pub(crate) fn retain_orphans(&mut self, keep: impl FnMut(&Orphan) -> bool) {
        let mut keep = keep;
        self.orphans.retain(|o| keep(o));
    }

    /// Removes the orphans at the given pool indices (ascending).
    pub(crate) fn remove_orphans(&mut self, indices: &[usize]) {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        for &i in indices.iter().rev() {
            self.orphans.swap_remove(i);
        }
    }

    pub(crate) fn next_recovery(&self) -> f64 {
        self.next_recovery
    }

    pub(crate) fn set_next_recovery(&mut self, t: f64) {
        self.next_recovery = t;
    }

    /// Requests a recovery evaluation at `t` if any orphans are pooled
    /// (used at slot boundaries and repairs, where predictions go stale).
    pub(crate) fn request_recovery(&mut self, t: f64) {
        if self.has_orphans() {
            self.next_recovery = self.next_recovery.min(t);
        }
    }
}

/// An `Exp(mean)` draw: inverse-CDF over a uniform in `[0, 1)`.
fn exp_draw(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none_and_valid() {
        let m = FaultModel::none();
        assert!(m.is_none());
        assert!(m.validate().is_ok());
        assert!(FaultState::new(&m, 2, 4, 1).is_none());
    }

    #[test]
    fn builders_enable_sources() {
        let m = FaultModel::none()
            .with_breakdowns(100.0, 10.0)
            .with_rate_shocks(RateShock::shocks(0.1, 2.0, 3))
            .with_speed_jitter(0.2)
            .with_seed(7);
        assert!(!m.is_none());
        assert!(m.validate().is_ok());
        let fs = FaultState::new(&m, 3, 5, 1).unwrap();
        assert_eq!(fs.up, vec![true; 3]);
        assert!(fs.next_event().is_finite());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(FaultModel::none().with_breakdowns(0.0, 1.0).validate().is_err());
        assert!(FaultModel::none().with_breakdowns(1.0, f64::NAN).validate().is_err());
        assert!(FaultModel::none().with_speed_jitter(1.0).validate().is_err());
        assert!(FaultModel::none()
            .with_rate_shocks(RateShock::shocks(2.0, 2.0, 1))
            .validate()
            .is_err());
        let mut m = FaultModel::none().with_breakdowns(1.0, 1.0);
        m.recovery.backoff = 0.0;
        assert!(m.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid fault model")]
    fn state_construction_panics_on_invalid() {
        let m = FaultModel::none().with_breakdowns(-1.0, 1.0);
        FaultState::new(&m, 1, 1, 0);
    }

    #[test]
    fn phase_machine_alternates_and_accounts_downtime() {
        let m = FaultModel::none().with_breakdowns(50.0, 5.0);
        let mut fs = FaultState::new(&m, 2, 0, 42).unwrap();
        let t0 = fs.next_event();
        let l = fs.pop_due_transition(t0).unwrap();
        assert!(fs.up[l]);
        fs.breakdown(l, t0);
        assert!(!fs.up[l]);
        assert!(!fs.any_up() || fs.up[1 - l]);
        let t1 = fs.next_transition[l];
        assert!(t1 > t0);
        let down_for = fs.repair(l, t1);
        assert!((down_for - (t1 - t0)).abs() < 1e-12);
        assert!(fs.up[l]);
        assert!((fs.downtime_at(1e9)[l] - down_for).abs() < 1e-12);
    }

    #[test]
    fn downtime_at_horizon_includes_open_phase() {
        let m = FaultModel::none().with_breakdowns(50.0, 5.0);
        let mut fs = FaultState::new(&m, 1, 0, 3).unwrap();
        fs.breakdown(0, 10.0);
        let d = fs.downtime_at(25.0);
        assert!((d[0] - 15.0).abs() < 1e-12);
    }

    #[test]
    fn same_seed_same_fault_history() {
        let m = FaultModel::none().with_breakdowns(30.0, 3.0).with_seed(9);
        let a = FaultState::new(&m, 4, 0, 5).unwrap();
        let b = FaultState::new(&m, 4, 0, 5).unwrap();
        assert_eq!(a.next_transition, b.next_transition);
        let c = FaultState::new(&m.with_seed(10), 4, 0, 5).unwrap();
        assert_ne!(a.next_transition, c.next_transition);
    }

    #[test]
    fn orphan_pool_dedupes_and_requests_evaluation() {
        let m = FaultModel::none().with_breakdowns(30.0, 3.0);
        let mut fs = FaultState::new(&m, 1, 4, 0).unwrap();
        assert_eq!(fs.next_recovery(), f64::INFINITY);
        fs.add_orphan(2, 7.0, 1);
        fs.add_orphan(2, 8.0, 1);
        fs.add_orphan(3, 8.0, 0);
        assert_eq!(fs.orphans().len(), 2);
        assert_eq!(fs.next_recovery(), 7.0);
        fs.set_next_recovery(f64::INFINITY);
        fs.request_recovery(9.0);
        assert_eq!(fs.next_recovery(), 9.0);
        fs.retain_orphans(|_| false);
        fs.set_next_recovery(f64::INFINITY);
        fs.request_recovery(10.0);
        assert_eq!(fs.next_recovery(), f64::INFINITY);
    }

    #[test]
    fn exp_draws_are_positive_with_mean_scale() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean = 20.0;
        let draws: Vec<f64> = (0..2000).map(|_| exp_draw(&mut rng, mean)).collect();
        assert!(draws.iter().all(|&d| d >= 0.0 && d.is_finite()));
        let avg = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((avg - mean).abs() < mean * 0.2, "avg {avg}");
    }

    #[test]
    fn fault_model_round_trips_through_json() {
        let m = FaultModel::none()
            .with_breakdowns(40.0, 8.0)
            .with_speed_jitter(0.2)
            .with_recovery(RecoveryConfig { urgency_window: 2.0, max_retries: 3, backoff: 0.25 })
            .with_seed(9);
        let json = serde_json::to_string(&m).unwrap();
        let back: FaultModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        // A partial description fills the rest with the fault-free defaults.
        let partial: FaultModel =
            serde_json::from_str(r#"{"chargers": {"mtbf": 50.0, "mttr": 5.0}}"#).unwrap();
        assert_eq!(partial.chargers, Some(ChargerFaults { mtbf: 50.0, mttr: 5.0 }));
        assert_eq!(partial.rates, None);
        assert_eq!(partial.recovery, RecoveryConfig::default());
        // An empty object is exactly the fault-free model.
        let none: FaultModel = serde_json::from_str("{}").unwrap();
        assert!(none.is_none());
    }
}
