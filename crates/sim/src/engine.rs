//! The event-driven simulation engine.
//!
//! Time advances through a merged stream of three event kinds:
//!
//! 1. **slot boundaries** (`t = m·ΔT`) — every sensor's rate process is
//!    resampled, predictors observe the new rate (sensors monitor their
//!    energy far more often than `ΔT`, Section VI.A), and the policy may
//!    replace its pending plan;
//! 2. **policy checks** (`t = m·tick`, only for polling policies) — the
//!    policy may trigger an immediate dispatch;
//! 3. **dispatches** — the next pending scheduling of the active plan is
//!    executed: its tour costs are charged to the service-cost meter and
//!    every covered sensor is recharged to full, instantaneously (the
//!    paper ignores charging and travel time, Section III.A).
//!
//! Between events, batteries drain linearly at the current rates — but
//! the engine never sweeps them. Energy lives in a crate-private
//! `EnergyCore` that
//! keeps each battery at its last touch point and predicts zero crossings
//! into a binary heap, so a sensor whose level crosses zero inside a
//! segment still dies at the analytically interpolated instant (and stays
//! at zero until recharged) while inter-event processing costs O(log n)
//! instead of the O(n) sweep of the dense reference engine (preserved in
//! [`crate::reference`], which also serves as the equivalence oracle).
//! The O(n) work that remains — resampling rates, materialising a full
//! [`crate::policy::Observation`] — happens only at slot boundaries,
//! where it is unavoidable anyway.
//!
//! # Travel-time mode
//!
//! Setting [`SimConfig::charger_speed`] replaces the instant-charge model
//! with physical chargers: each sensor on a tour is charged when the
//! vehicle *reaches* it (dispatch time + prefix distance / speed, delayed
//! further if the charger is still out on a previous tour). The paper
//! argues its zero-duration model is valid because a charging task is
//! "several orders of magnitude" shorter than sensor lifetimes; this mode
//! lets the `speed` extension experiment measure exactly where that
//! argument breaks (deaths appear as speed drops).
//!
//! # Fault injection
//!
//! [`run_with_faults`] merges a fourth event source into the stream: the
//! seeded fault process of a [`FaultModel`] (charger phase transitions and
//! recovery evaluations — see [`crate::faults`]). A down charger's tours
//! are skipped at dispatch time and its in-transit stops are cancelled;
//! the orphaned sensors are pooled and, once urgent, re-planned onto the
//! surviving depots ([`perpetuum_core::recovery::degraded_tour_set`]) as
//! an emergency dispatch, with bounded exponential backoff while no
//! charger is up. With [`FaultModel::none`] the fault path is never
//! entered — no fault RNG is even constructed — so [`run`] and fault-free
//! [`run_with_faults`] runs are bit-identical.

use crate::energy_core::EnergyCore;
use crate::faults::{FaultModel, FaultState};
use crate::metrics::{DeathEvent, SimResult};
use crate::policy::{ChargingPolicy, CheckContext, PlanUpdate};
use crate::trace::{SimTrace, TraceEvent};
use crate::world::World;
use perpetuum_core::schedule::{ScheduleSeries, TourSet};
use perpetuum_energy::EwmaPredictor;
use perpetuum_graph::Metric;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending in-transit charge (travel-time mode): the charger reaches
/// `sensor` at `time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ChargeArrival {
    pub(crate) time: f64,
    pub(crate) sensor: usize,
    pub(crate) dispatched_at: f64,
    /// The charger (depot index) carrying this stop — a breakdown cancels
    /// its still-travelling arrivals.
    pub(crate) charger: usize,
}

impl Eq for ChargeArrival {}

impl PartialOrd for ChargeArrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ChargeArrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then(self.sensor.cmp(&other.sensor))
    }
}

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Monitoring period `T`.
    pub horizon: f64,
    /// Slot length `ΔT` (rates are constant within a slot).
    pub slot: f64,
    /// Seed for the rate-resampling stream.
    pub seed: u64,
    /// Charger travel speed in distance units per time unit. `None` (the
    /// paper's model) charges every toured sensor instantaneously at the
    /// dispatch time.
    pub charger_speed: Option<f64>,
}

impl SimConfig {
    /// The paper's defaults: `T = 1000`, `ΔT = 10`, instant charging.
    pub fn paper_default(seed: u64) -> Self {
        Self { horizon: 1000.0, slot: 10.0, seed, charger_speed: None }
    }
}

/// Runs `policy` against `world` and returns the measured results.
///
/// The world is consumed (batteries and rate processes are stateful).
pub fn run<P: ChargingPolicy>(world: World, cfg: &SimConfig, policy: &mut P) -> SimResult {
    run_inner(world, cfg, policy, None, &FaultModel::none())
}

/// Like [`run`], additionally recording every simulation event.
pub fn run_traced<P: ChargingPolicy>(
    world: World,
    cfg: &SimConfig,
    policy: &mut P,
) -> (SimResult, SimTrace) {
    let mut trace = SimTrace::default();
    let result = run_inner(world, cfg, policy, Some(&mut trace), &FaultModel::none());
    (result, trace)
}

/// Like [`run`], with the fault process of `faults` merged into the event
/// stream. With [`FaultModel::none`] this is bit-identical to [`run`].
///
/// # Panics
///
/// Panics when `faults` has invalid parameters ([`FaultModel::validate`]).
pub fn run_with_faults<P: ChargingPolicy>(
    world: World,
    cfg: &SimConfig,
    policy: &mut P,
    faults: &FaultModel,
) -> SimResult {
    run_inner(world, cfg, policy, None, faults)
}

/// Like [`run_with_faults`], additionally recording every simulation
/// event (fault events included).
pub fn run_with_faults_traced<P: ChargingPolicy>(
    world: World,
    cfg: &SimConfig,
    policy: &mut P,
    faults: &FaultModel,
) -> (SimResult, SimTrace) {
    let mut trace = SimTrace::default();
    let result = run_inner(world, cfg, policy, Some(&mut trace), faults);
    (result, trace)
}

fn run_inner<P: ChargingPolicy>(
    mut world: World,
    cfg: &SimConfig,
    policy: &mut P,
    mut trace: Option<&mut SimTrace>,
    faults: &FaultModel,
) -> SimResult {
    assert!(cfg.horizon > 0.0, "horizon must be positive");
    assert!(cfg.slot > 0.0, "slot must be positive");
    let n = world.n();
    let q = world.q();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut result = SimResult {
        per_charger_distance: vec![0.0; q],
        charge_log: vec![Vec::new(); n],
        ..Default::default()
    };

    // Slot 0: initial rates; predictors start at the observed (possibly
    // noisy) rate. Energy always drains at the true rate; what sensors
    // *report* — and therefore everything the policies see — carries the
    // world's measurement noise.
    let noise = world.measurement_noise;
    let mut measure = {
        let mut noise_rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
        move |true_rate: f64| -> f64 {
            if noise == 0.0 {
                true_rate
            } else {
                use rand::Rng;
                true_rate * (1.0 + noise_rng.gen_range(-noise..=noise))
            }
        }
    };
    // Fault process state — `None` (and therefore zero extra RNG draws,
    // preserving bit-identity with the fault-free engine) unless the model
    // enables at least one fault kind.
    let mut fstate: Option<FaultState> = FaultState::new(faults, q, n, cfg.seed);
    let rates: Vec<f64> = world
        .processes
        .iter_mut()
        .enumerate()
        .map(|(i, p)| {
            let r = p.rate_for_slot(0, &mut rng);
            match fstate.as_mut() {
                Some(fs) => fs.transform_rate(i, r),
                None => r,
            }
        })
        .collect();
    let reported: Vec<f64> = rates.iter().map(|&r| measure(r)).collect();
    let mut predictors: Vec<EwmaPredictor> =
        reported.iter().map(|&r| EwmaPredictor::new(world.gamma, r)).collect();
    let rho_hat: Vec<f64> = predictors.iter().map(|p| p.predicted_rate()).collect();
    let capacities = world.capacities();
    // Batteries move into the lazy accounting core; the rest of the world
    // (network, rate processes) stays put.
    let batteries = std::mem::take(&mut world.batteries);
    let mut core = EnergyCore::new(batteries, rates, reported, rho_hat, capacities);
    core.begin_slot(cfg.slot);

    let mut plan = ScheduleSeries::new();
    let mut dptr = 0usize; // next pending dispatch in `plan`
                           // Travel-time mode state: in-transit charges and per-charger return
                           // times.
    let mut arrivals: BinaryHeap<Reverse<ChargeArrival>> = BinaryHeap::new();
    let mut busy_until = vec![0.0f64; q];
    if let Some(speed) = cfg.charger_speed {
        assert!(speed > 0.0, "charger speed must be positive");
    }

    macro_rules! apply_update {
        ($upd:expr, $t:expr) => {
            match $upd {
                PlanUpdate::Keep => {}
                PlanUpdate::Replace(series) => {
                    debug_assert!(series.dispatches().iter().all(|d| d.time >= $t - 1e-9));
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.events.push(TraceEvent::PlanReplaced {
                            time: $t,
                            pending: series.dispatch_count(),
                        });
                    }
                    plan = series;
                    dptr = 0;
                }
            }
        };
    }

    macro_rules! check {
        ($t:expr) => {{
            let mut ctx = CheckContext::lazy($t, cfg.horizon, &mut core);
            policy.on_check(&mut ctx)
        }};
    }

    macro_rules! execute {
        ($set:expr, $t:expr) => {
            execute(
                &$set,
                $t,
                &world,
                &mut core,
                &mut result,
                cfg.charger_speed,
                &mut arrivals,
                &mut busy_until,
                trace.as_deref_mut(),
                fstate.as_mut(),
            )
        };
    }

    // t = 0: initial plan.
    {
        let upd = {
            let obs = core.observation(0.0, cfg.horizon);
            policy.initialize(&obs)
        };
        apply_update!(upd, 0.0);
    }

    let tick = policy.check_interval();
    let mut next_check = tick;
    let mut slot_idx: u64 = 1;
    let mut next_slot = cfg.slot;

    // Immediate dispatches a polling policy can trigger at t = 0 are not a
    // thing in the paper's model (all sensors start full), so checks start
    // at the first tick.

    loop {
        // Next event time.
        let mut tn = cfg.horizon;
        if next_slot < tn {
            tn = next_slot;
        }
        if let Some(c) = next_check {
            if c < tn {
                tn = c;
            }
        }
        if let Some(d) = plan.dispatches().get(dptr) {
            if d.time < tn {
                tn = d.time;
            }
        }
        if let Some(Reverse(a)) = arrivals.peek() {
            if a.time < tn {
                tn = a.time;
            }
        }
        if let Some(fs) = fstate.as_ref() {
            let f = fs.next_event();
            if f < tn {
                tn = f;
            }
        }

        // Deaths strictly inside [t, tn): the heap's strict `key < tn`
        // pop mirrors the dense sweep's per-segment crossing test, so a
        // charge landing exactly at a depletion instant still rescues.
        core.pop_deaths(tn, |sensor, when| {
            if let Some(tr) = trace.as_deref_mut() {
                tr.events.push(TraceEvent::Death { time: when, sensor });
            }
            result.deaths.push(DeathEvent { sensor, time: when });
        });
        let t = tn;
        if t >= cfg.horizon {
            break;
        }

        // Events at time t: in-transit arrivals land first, then slot,
        // check and dispatch processing.
        while let Some(Reverse(a)) = arrivals.peek() {
            if a.time > t {
                break;
            }
            let a = arrivals.pop().expect("peeked").0;
            if let Some(dead_for) = core.charge(a.sensor, a.time) {
                result.faults.deadline_misses += 1;
                result.faults.dead_sensor_time += dead_for;
            }
            result.charges += 1;
            result.charge_log[a.sensor].push(a.time);
            if let Some(tr) = trace.as_deref_mut() {
                tr.events.push(TraceEvent::Charge { time: a.time, sensor: a.sensor });
            }
            let delay = a.time - a.dispatched_at;
            result.total_charge_delay += delay;
            result.max_charge_delay = result.max_charge_delay.max(delay);
        }

        // Charger breakdowns / repairs due at t. A breakdown aborts the
        // charger's in-transit stops (travel-time mode); the cancelled
        // sensors join the orphan pool. A repair wakes the recovery
        // planner so a waiting pool can be served immediately.
        if let Some(fs) = fstate.as_mut() {
            while let Some(l) = fs.pop_due_transition(t) {
                if fs.up[l] {
                    fs.breakdown(l, t);
                    result.faults.breakdowns += 1;
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.events.push(TraceEvent::ChargerDown { time: t, charger: l });
                    }
                    if cfg.charger_speed.is_some() {
                        let mut kept = Vec::with_capacity(arrivals.len());
                        let mut cancelled: Vec<usize> = Vec::new();
                        for Reverse(a) in arrivals.drain() {
                            if a.charger == l && a.time > t {
                                cancelled.push(a.sensor);
                            } else {
                                kept.push(Reverse(a));
                            }
                        }
                        arrivals.extend(kept);
                        busy_until[l] = t;
                        if !cancelled.is_empty() {
                            cancelled.sort_unstable();
                            result.faults.orphaned_charges += cancelled.len();
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.events.push(TraceEvent::TourAborted {
                                    time: t,
                                    charger: l,
                                    orphans: cancelled.len(),
                                });
                            }
                            for s in cancelled {
                                let stamp = core.stamp_of(s);
                                fs.add_orphan(s, t, stamp);
                            }
                        }
                    }
                } else {
                    let down_for = fs.repair(l, t);
                    result.faults.repairs += 1;
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.events.push(TraceEvent::ChargerRepaired {
                            time: t,
                            charger: l,
                            downtime: down_for,
                        });
                    }
                    fs.request_recovery(t);
                }
            }
        }

        if t == next_slot {
            // The old rates apply up to the boundary; settle before
            // resampling (this is the slot's one O(n) pass).
            core.settle_all(t);
            for (i, p) in world.processes.iter_mut().enumerate() {
                let mut r = p.rate_for_slot(slot_idx, &mut rng);
                if let Some(fs) = fstate.as_mut() {
                    r = fs.transform_rate(i, r);
                }
                let rep = measure(r);
                predictors[i].observe(rep);
                core.set_slot_rate(i, r, rep, predictors[i].predicted_rate());
            }
            // New rates can move orphan urgency crossings; re-evaluate.
            if let Some(fs) = fstate.as_mut() {
                fs.request_recovery(t);
            }
            if let Some(tr) = trace.as_deref_mut() {
                tr.events.push(TraceEvent::SlotBoundary { time: t, slot: slot_idx });
            }
            slot_idx += 1;
            next_slot = slot_idx as f64 * cfg.slot;
            core.begin_slot(next_slot);
            let upd = {
                let obs = core.observation(t, cfg.horizon);
                policy.on_slot_boundary(&obs)
            };
            apply_update!(upd, t);
            // Polling policies also get a check right after rates change,
            // so a slot boundary that falls between two ticks cannot hide
            // a rate spike for most of a tick.
            if tick.is_some() && Some(t) != next_check {
                if let Some(set) = check!(t) {
                    execute!(set, t);
                }
            }
        }

        if Some(t) == next_check {
            if let Some(set) = check!(t) {
                execute!(set, t);
            }
            next_check = tick.map(|k| t + k);
        }

        while let Some(d) = plan.dispatches().get(dptr) {
            if d.time > t {
                break;
            }
            let set = plan.set_of(d).clone();
            execute!(set, t);
            dptr += 1;
        }

        // Recovery evaluation runs last so orphans created earlier in this
        // very instant (breakdown aborts, skipped tours) are considered.
        if let Some(fs) = fstate.as_mut() {
            if fs.next_recovery() <= t {
                recover(
                    fs,
                    t,
                    &world,
                    &mut core,
                    &mut result,
                    cfg,
                    &mut arrivals,
                    &mut busy_until,
                    trace.as_deref_mut(),
                );
            }
        }
    }

    if let Some(fs) = &fstate {
        result.faults.per_charger_downtime = fs.downtime_at(cfg.horizon);
        // Sensors that never recovered keep bleeding dead time until the
        // horizon.
        result.faults.dead_sensor_time += core.dead_tail(cfg.horizon);
    }

    result
}

/// How far past `t` the recovery planner schedules its next look at a
/// non-urgent orphan pool, at minimum — keeps the event loop strictly
/// advancing even when an urgency crossing rounds to "now".
const RECOVERY_REEVAL_EPS: f64 = 1e-9;

/// One recovery evaluation at time `t`: drop orphans that an ordinary
/// charge already healed, serve the urgent remainder via an emergency
/// scheduling over the surviving depots, or — with every charger down —
/// back off exponentially until the retry budget runs out.
#[allow(clippy::too_many_arguments)]
fn recover(
    fs: &mut FaultState,
    t: f64,
    world: &World,
    core: &mut EnergyCore,
    result: &mut SimResult,
    cfg: &SimConfig,
    arrivals: &mut BinaryHeap<Reverse<ChargeArrival>>,
    busy_until: &mut [f64],
    mut trace: Option<&mut SimTrace>,
) {
    // An orphan whose energy stamp moved was recharged through a normal
    // dispatch since it was pooled — nothing left to rescue.
    fs.retain_orphans(|o| core.stamp_of(o.sensor) == o.stamp);
    if !fs.has_orphans() {
        fs.set_next_recovery(f64::INFINITY);
        fs.attempt = 0;
        return;
    }
    let window = fs.model.recovery.urgency_window;
    // `urgency_key <= t` catches crossings that float rounding keeps just
    // outside `is_urgent`'s slack — without it the planner could reschedule
    // itself in EPS-sized steps.
    let urgent_idx: Vec<usize> = (0..fs.orphans().len())
        .filter(|&k| {
            let s = fs.orphans()[k].sensor;
            core.is_urgent(s, t, window) || core.urgency_key(s, window) <= t
        })
        .collect();
    let reschedule = |fs: &mut FaultState, core: &EnergyCore| {
        if fs.has_orphans() {
            let next = fs
                .orphans()
                .iter()
                .map(|o| core.urgency_key(o.sensor, window))
                .fold(f64::INFINITY, f64::min);
            fs.set_next_recovery(next.max(t + RECOVERY_REEVAL_EPS));
        } else {
            fs.set_next_recovery(f64::INFINITY);
        }
    };
    if urgent_idx.is_empty() {
        fs.attempt = 0;
        reschedule(fs, core);
        return;
    }
    if !fs.any_up() {
        if fs.attempt >= fs.model.recovery.max_retries {
            // Retry budget exhausted: abandon the urgent orphans (they die
            // or survive on their own); the rest of the pool keeps its
            // schedule.
            result.faults.recovery_giveups += urgent_idx.len();
            fs.remove_orphans(&urgent_idx);
            fs.attempt = 0;
            reschedule(fs, core);
        } else {
            fs.attempt += 1;
            let wait = fs.model.recovery.backoff * f64::powi(2.0, (fs.attempt - 1) as i32);
            result.faults.recovery_retries += 1;
            if let Some(tr) = trace.as_deref_mut() {
                tr.events.push(TraceEvent::RecoveryRetry { time: t, attempt: fs.attempt, wait });
            }
            fs.set_next_recovery(t + wait);
        }
        return;
    }
    // Emergency dispatch: re-plan the urgent orphans onto the surviving
    // depot subset and execute the degraded scheduling right now.
    let mut sensors: Vec<usize> = urgent_idx.iter().map(|&k| fs.orphans()[k].sensor).collect();
    sensors.sort_unstable();
    let set = perpetuum_core::recovery::degraded_tour_set(&world.network, &sensors, &fs.up, 0)
        .expect("a surviving charger exists");
    if let Some(tr) = trace.as_deref_mut() {
        tr.events.push(TraceEvent::EmergencyDispatch {
            time: t,
            sensors: sensors.len(),
            cost: set.cost(),
        });
    }
    result.faults.emergency_dispatches += 1;
    result.faults.recovered_orphans += urgent_idx.len();
    for &k in &urgent_idx {
        let latency = t - fs.orphans()[k].since;
        result.faults.total_recovery_latency += latency;
        result.faults.max_recovery_latency = result.faults.max_recovery_latency.max(latency);
    }
    fs.remove_orphans(&urgent_idx);
    fs.attempt = 0;
    execute(&set, t, world, core, result, cfg.charger_speed, arrivals, busy_until, trace, Some(fs));
    reschedule(fs, core);
}

/// Executes one charging scheduling at time `t`. With a charger speed,
/// sensors are charged when the vehicle reaches them (and a charger still
/// out on a previous tour departs only after returning); without one, all
/// covered sensors are charged instantaneously (the paper's model). Tour
/// lengths come from the [`TourSet`] cache; the network's distance source
/// is only consulted for travel-time prefixes, so in-sim dispatching
/// never needs (or builds) a dense matrix on sparse networks.
/// With fault state present, tours of down chargers are skipped (their
/// sensors join the orphan pool) and only the executed tours' costs are
/// charged; with every charger up the per-tour accumulation reproduces
/// `set.cost()` bit for bit, so the fault-free path is unchanged.
#[allow(clippy::too_many_arguments)]
fn execute(
    set: &TourSet,
    t: f64,
    world: &World,
    core: &mut EnergyCore,
    result: &mut SimResult,
    charger_speed: Option<f64>,
    arrivals: &mut BinaryHeap<Reverse<ChargeArrival>>,
    busy_until: &mut [f64],
    mut trace: Option<&mut SimTrace>,
    mut faults: Option<&mut FaultState>,
) {
    if let Some(tr) = trace.as_deref_mut() {
        tr.events.push(TraceEvent::Dispatch {
            time: t,
            sensors: set.sensors().len(),
            cost: set.cost(),
        });
    }
    result.dispatches += 1;
    let n = world.n();
    let src = world.network.dist_source();
    // One travel-speed draw per executed dispatch (travel-time mode with
    // speed faults only).
    let speed = match (charger_speed, faults.as_deref_mut()) {
        (Some(s), Some(fs)) => Some(s * fs.speed_factor()),
        (s, _) => s,
    };
    let mut exec_cost = 0.0;
    let mut skipped: Vec<usize> = Vec::new();
    for (l, tour) in set.tours().iter().enumerate() {
        let len = set.tour_lengths()[l];
        if let Some(fs) = faults.as_deref_mut() {
            if !fs.up[l] && tour.len() >= 2 {
                result.faults.aborted_tours += 1;
                result.faults.orphaned_charges += tour.len() - 1;
                if let Some(tr) = trace.as_deref_mut() {
                    tr.events.push(TraceEvent::TourAborted {
                        time: t,
                        charger: l,
                        orphans: tour.len() - 1,
                    });
                }
                for &s in &tour.nodes()[1..] {
                    debug_assert!(s < n, "tours visit the depot only first");
                    let stamp = core.stamp_of(s);
                    fs.add_orphan(s, t, stamp);
                    skipped.push(s);
                }
                continue;
            }
        }
        exec_cost += len;
        result.per_charger_distance[l] += len;
        result.max_tour_length = result.max_tour_length.max(len);
        if let Some(speed) = speed {
            if tour.len() < 2 {
                continue;
            }
            let depart = t.max(busy_until[l]);
            let nodes = tour.nodes();
            let mut prefix = 0.0;
            for w in nodes.windows(2) {
                prefix += src.get(w[0], w[1]);
                let sensor = w[1];
                debug_assert!(sensor < n, "tours visit the depot only first");
                arrivals.push(Reverse(ChargeArrival {
                    time: depart + prefix / speed,
                    sensor,
                    dispatched_at: t,
                    charger: l,
                }));
            }
            busy_until[l] = depart + len / speed;
        }
    }
    result.service_cost += exec_cost;
    result.max_dispatch_cost = result.max_dispatch_cost.max(exec_cost);
    if charger_speed.is_none() {
        skipped.sort_unstable();
        for &node in set.sensors() {
            debug_assert!(node < n, "tour sets must only list sensor nodes");
            if skipped.binary_search(&node).is_ok() {
                continue;
            }
            if let Some(dead_for) = core.charge(node, t) {
                result.faults.deadline_misses += 1;
                result.faults.dead_sensor_time += dead_for;
            }
            result.charges += 1;
            result.charge_log[node].push(t);
            if let Some(tr) = trace.as_deref_mut() {
                tr.events.push(TraceEvent::Charge { time: t, sensor: node });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{GreedyPolicy, MtdPolicy, Observation};
    use perpetuum_core::network::Network;
    use perpetuum_geom::Point2;

    fn line_network(n: usize) -> Network {
        let sensors: Vec<Point2> =
            (0..n).map(|i| Point2::new((i + 1) as f64 * 10.0, 0.0)).collect();
        Network::new(sensors, vec![Point2::ORIGIN])
    }

    #[test]
    fn mtd_keeps_fixed_world_alive() {
        let network = line_network(4);
        let cycles = [1.0, 2.0, 3.5, 8.0];
        let world = World::fixed(network.clone(), &cycles);
        let mut policy = MtdPolicy::new(&network);
        let cfg = SimConfig { horizon: 50.0, slot: 10.0, seed: 1, charger_speed: None };
        let r = run(world, &cfg, &mut policy);
        assert!(r.is_perpetual(), "deaths: {:?}", r.deaths);
        assert!(r.service_cost > 0.0);
        assert!(r.dispatches > 0);
        // Executed charges replay as a feasible series.
        perpetuum_core::feasibility::check_with(&cycles, 50.0, |i| r.charge_log[i].clone())
            .unwrap();
    }

    #[test]
    fn greedy_keeps_fixed_world_alive() {
        let network = line_network(5);
        let cycles = [1.0, 2.0, 2.7, 6.0, 11.0];
        let world = World::fixed(network.clone(), &cycles);
        let mut policy = GreedyPolicy::new(&network, 1.0);
        let cfg = SimConfig { horizon: 60.0, slot: 10.0, seed: 2, charger_speed: None };
        let r = run(world, &cfg, &mut policy);
        assert!(r.is_perpetual(), "deaths: {:?}", r.deaths);
        perpetuum_core::feasibility::check_with(&cycles, 60.0, |i| r.charge_log[i].clone())
            .unwrap();
    }

    #[test]
    fn sim_greedy_matches_offline_greedy_plan() {
        // Under fixed rates the EWMA prediction is exact, so the online
        // greedy must reproduce the deterministic offline unrolling.
        let network = line_network(6);
        let cycles = [1.0, 2.0, 3.0, 5.0, 8.0, 13.0];
        let horizon = 40.0;
        let world = World::fixed(network.clone(), &cycles);
        let mut policy = GreedyPolicy::new(&network, 1.0);
        let cfg = SimConfig { horizon, slot: 10.0, seed: 3, charger_speed: None };
        let r = run(world, &cfg, &mut policy);

        let inst =
            perpetuum_core::network::Instance::new(network.clone(), cycles.to_vec(), horizon);
        let offline = perpetuum_core::greedy::plan_greedy_fixed(
            &inst,
            &perpetuum_core::greedy::GreedyConfig::paper_default(1.0),
        );
        assert!((r.service_cost - offline.service_cost()).abs() < 1e-6);
        for i in 0..6 {
            assert_eq!(r.charge_log[i], offline.charge_times(i), "sensor {i}");
        }
    }

    #[test]
    fn sim_mtd_matches_offline_plan_cost() {
        let network = line_network(5);
        let cycles = [1.0, 1.5, 4.0, 9.0, 30.0];
        let horizon = 64.0;
        let world = World::fixed(network.clone(), &cycles);
        let mut policy = MtdPolicy::new(&network);
        let cfg = SimConfig { horizon, slot: 10.0, seed: 4, charger_speed: None };
        let r = run(world, &cfg, &mut policy);

        let inst =
            perpetuum_core::network::Instance::new(network.clone(), cycles.to_vec(), horizon);
        let offline = perpetuum_core::mtd::plan_min_total_distance(
            &inst,
            &perpetuum_core::mtd::MtdConfig::default(),
        );
        assert!((r.service_cost - offline.service_cost()).abs() < 1e-6);
        assert_eq!(r.dispatches, offline.dispatch_count());
    }

    #[test]
    fn unattended_world_records_deaths() {
        struct DoNothing;
        impl ChargingPolicy for DoNothing {
            fn name(&self) -> &'static str {
                "DoNothing"
            }
            fn initialize(&mut self, _obs: &Observation) -> PlanUpdate {
                PlanUpdate::Keep
            }
        }
        let network = line_network(2);
        let world = World::fixed(network, &[3.0, 7.0]);
        let cfg = SimConfig { horizon: 20.0, slot: 10.0, seed: 5, charger_speed: None };
        let r = run(world, &cfg, &mut DoNothing);
        assert_eq!(r.deaths.len(), 2);
        // Death times are the exact depletion instants.
        assert!((r.deaths[0].time - 3.0).abs() < 1e-9);
        assert!((r.deaths[1].time - 7.0).abs() < 1e-9);
        assert_eq!(r.service_cost, 0.0);
    }

    #[test]
    fn per_charger_distances_sum_to_service_cost() {
        let network = line_network(4);
        let cycles = [1.0, 2.0, 4.0, 8.0];
        let world = World::fixed(network.clone(), &cycles);
        let mut policy = MtdPolicy::new(&network);
        let cfg = SimConfig { horizon: 32.0, slot: 10.0, seed: 6, charger_speed: None };
        let r = run(world, &cfg, &mut policy);
        let sum: f64 = r.per_charger_distance.iter().sum();
        assert!((sum - r.service_cost).abs() < 1e-6);
    }
}
