//! The dense-sweep reference engine.
//!
//! This is the simulator the event-driven core in [`crate::engine`]
//! replaced: between events it drains *every* battery across the segment
//! and checks each one for a zero crossing, so every slot boundary,
//! polling check, dispatch and travel-time arrival costs O(n). It is kept
//! for two jobs:
//!
//! - [`run_reference`] is the baseline the `sim` benchmark and the
//!   equivalence test suite compare the event-driven engine against — it
//!   produces the same discrete outputs (charges, dispatches, costs) and
//!   the same deaths up to float re-association;
//! - [`run_fixed_step`] caps every drain segment at `max_step`, turning
//!   the sweep into a naive small-step integrator whose only analytic
//!   ingredient is the in-segment death interpolation. With a step well
//!   below every event spacing it is an independent ground truth that
//!   shares almost no code path with the lazy accounting.
//!
//! Policies see exactly the interface the event-driven engine offers:
//! full [`Observation`]s at initialisation and slot boundaries, a
//! [`CheckContext`] (wrapping a dense observation) at polling checks.

use crate::engine::{ChargeArrival, SimConfig};
use crate::metrics::{DeathEvent, SimResult};
use crate::policy::{ChargingPolicy, CheckContext, Observation, PlanUpdate};
use crate::world::World;
use perpetuum_core::schedule::{ScheduleSeries, TourSet};
use perpetuum_energy::EwmaPredictor;
use perpetuum_graph::Metric;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Runs `policy` against `world` on the dense-sweep engine.
pub fn run_reference<P: ChargingPolicy>(
    world: World,
    cfg: &SimConfig,
    policy: &mut P,
) -> SimResult {
    run_dense(world, cfg, policy, None)
}

/// Like [`run_reference`], additionally capping every drain segment at
/// `max_step` (a naive fixed-small-step integrator for equivalence
/// testing).
///
/// # Panics
/// Panics unless `max_step` is strictly positive.
pub fn run_fixed_step<P: ChargingPolicy>(
    world: World,
    cfg: &SimConfig,
    policy: &mut P,
    max_step: f64,
) -> SimResult {
    assert!(max_step > 0.0, "max_step must be positive");
    run_dense(world, cfg, policy, Some(max_step))
}

fn run_dense<P: ChargingPolicy>(
    mut world: World,
    cfg: &SimConfig,
    policy: &mut P,
    max_step: Option<f64>,
) -> SimResult {
    assert!(cfg.horizon > 0.0, "horizon must be positive");
    assert!(cfg.slot > 0.0, "slot must be positive");
    let n = world.n();
    let q = world.q();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut result = SimResult {
        per_charger_distance: vec![0.0; q],
        charge_log: vec![Vec::new(); n],
        ..Default::default()
    };

    // Slot 0: initial rates; predictors start at the observed (possibly
    // noisy) rate. Energy always drains at the true rate; what sensors
    // *report* — and therefore everything the policies see — carries the
    // world's measurement noise.
    let noise = world.measurement_noise;
    let mut measure = {
        let mut noise_rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
        move |true_rate: f64| -> f64 {
            if noise == 0.0 {
                true_rate
            } else {
                use rand::Rng;
                true_rate * (1.0 + noise_rng.gen_range(-noise..=noise))
            }
        }
    };
    let mut rates: Vec<f64> =
        world.processes.iter_mut().map(|p| p.rate_for_slot(0, &mut rng)).collect();
    let mut reported: Vec<f64> = rates.iter().map(|&r| measure(r)).collect();
    let mut predictors: Vec<EwmaPredictor> =
        reported.iter().map(|&r| EwmaPredictor::new(world.gamma, r)).collect();
    let mut capacities = world.capacities();

    let mut plan = ScheduleSeries::new();
    let mut dptr = 0usize; // next pending dispatch in `plan`
                           // Death bookkeeping lives here, not in `Battery`: a battery at exactly
                           // zero at a charging instant is *alive* (the paper allows charge gaps
                           // equal to the cycle), so death means strictly crossing zero between
                           // charges.
    let mut dead = vec![false; n];
    // Travel-time mode state: in-transit charges and per-charger return
    // times.
    let mut arrivals: BinaryHeap<Reverse<ChargeArrival>> = BinaryHeap::new();
    let mut busy_until = vec![0.0f64; q];
    if let Some(speed) = cfg.charger_speed {
        assert!(speed > 0.0, "charger speed must be positive");
    }

    // Scratch buffers refreshed before each policy call.
    let mut levels: Vec<f64> = world.batteries.iter().map(|b| b.level()).collect();
    let mut rho_hat: Vec<f64> = predictors.iter().map(|p| p.predicted_rate()).collect();

    macro_rules! observation {
        ($t:expr) => {{
            for (i, b) in world.batteries.iter().enumerate() {
                levels[i] = b.level();
                capacities[i] = b.capacity(); // batteries may age
            }
            for (i, p) in predictors.iter().enumerate() {
                rho_hat[i] = p.predicted_rate();
            }
            Observation {
                time: $t,
                horizon: cfg.horizon,
                levels: &levels,
                rho_hat: &rho_hat,
                rho_now: &reported,
                capacities: &capacities,
            }
        }};
    }

    macro_rules! apply_update {
        ($upd:expr, $t:expr) => {
            match $upd {
                PlanUpdate::Keep => {}
                PlanUpdate::Replace(series) => {
                    debug_assert!(series.dispatches().iter().all(|d| d.time >= $t - 1e-9));
                    plan = series;
                    dptr = 0;
                }
            }
        };
    }

    macro_rules! check {
        ($t:expr) => {{
            let obs = observation!($t);
            let mut ctx = CheckContext::from_observation(obs);
            policy.on_check(&mut ctx)
        }};
    }

    // t = 0: initial plan.
    {
        let obs = observation!(0.0);
        let upd = policy.initialize(&obs);
        apply_update!(upd, 0.0);
    }

    let tick = policy.check_interval();
    let mut next_check = tick;
    let mut slot_idx: u64 = 1;
    let mut next_slot = cfg.slot;
    let mut t = 0.0f64;

    // Immediate dispatches a polling policy can trigger at t = 0 are not a
    // thing in the paper's model (all sensors start full), so checks start
    // at the first tick.

    loop {
        // Next event time.
        let mut tn = cfg.horizon;
        if next_slot < tn {
            tn = next_slot;
        }
        if let Some(c) = next_check {
            if c < tn {
                tn = c;
            }
        }
        if let Some(d) = plan.dispatches().get(dptr) {
            if d.time < tn {
                tn = d.time;
            }
        }
        if let Some(Reverse(a)) = arrivals.peek() {
            if a.time < tn {
                tn = a.time;
            }
        }
        if let Some(step) = max_step {
            // Synthetic segment boundary: nothing happens there, the
            // sweep just integrates in smaller pieces.
            let cap = t + step;
            if cap < tn {
                tn = cap;
            }
        }

        // Drain across [t, tn).
        let dt = tn - t;
        if dt > 0.0 {
            for (i, b) in world.batteries.iter_mut().enumerate() {
                if dead[i] {
                    continue;
                }
                // Strict crossing (with float slack): draining exactly to
                // zero at a boundary is survivable if a charge lands there.
                if rates[i] * dt > b.level() + 1e-9 {
                    dead[i] = true;
                    let when = t + b.lifetime_at(rates[i]);
                    result.deaths.push(DeathEvent { sensor: i, time: when });
                }
                b.drain(rates[i], dt);
            }
        }
        t = tn;
        if t >= cfg.horizon {
            break;
        }

        // Events at time t: in-transit arrivals land first, then slot,
        // check and dispatch processing.
        while let Some(Reverse(a)) = arrivals.peek() {
            if a.time > t {
                break;
            }
            let a = arrivals.pop().expect("peeked").0;
            world.batteries[a.sensor].charge_full();
            dead[a.sensor] = false;
            result.charges += 1;
            result.charge_log[a.sensor].push(a.time);
            let delay = a.time - a.dispatched_at;
            result.total_charge_delay += delay;
            result.max_charge_delay = result.max_charge_delay.max(delay);
        }

        if t == next_slot {
            for (i, p) in world.processes.iter_mut().enumerate() {
                let r = p.rate_for_slot(slot_idx, &mut rng);
                rates[i] = r;
                reported[i] = measure(r);
                predictors[i].observe(reported[i]);
            }
            slot_idx += 1;
            next_slot = slot_idx as f64 * cfg.slot;
            let obs = observation!(t);
            let upd = policy.on_slot_boundary(&obs);
            apply_update!(upd, t);
            // Polling policies also get a check right after rates change,
            // so a slot boundary that falls between two ticks cannot hide
            // a rate spike for most of a tick.
            if tick.is_some() && Some(t) != next_check {
                if let Some(set) = check!(t) {
                    execute(
                        &set,
                        t,
                        &mut world,
                        &mut result,
                        &mut dead,
                        n,
                        cfg.charger_speed,
                        &mut arrivals,
                        &mut busy_until,
                    );
                }
            }
        }

        if Some(t) == next_check {
            if let Some(set) = check!(t) {
                execute(
                    &set,
                    t,
                    &mut world,
                    &mut result,
                    &mut dead,
                    n,
                    cfg.charger_speed,
                    &mut arrivals,
                    &mut busy_until,
                );
            }
            next_check = tick.map(|k| t + k);
        }

        while let Some(d) = plan.dispatches().get(dptr) {
            if d.time > t {
                break;
            }
            let set = plan.set_of(d).clone();
            execute(
                &set,
                t,
                &mut world,
                &mut result,
                &mut dead,
                n,
                cfg.charger_speed,
                &mut arrivals,
                &mut busy_until,
            );
            dptr += 1;
        }
    }

    result
}

/// Executes one charging scheduling at time `t` (dense-sweep flavour:
/// charges mutate `world.batteries` directly).
#[allow(clippy::too_many_arguments)]
fn execute(
    set: &TourSet,
    t: f64,
    world: &mut World,
    result: &mut SimResult,
    dead: &mut [bool],
    n: usize,
    charger_speed: Option<f64>,
    arrivals: &mut BinaryHeap<Reverse<ChargeArrival>>,
    busy_until: &mut [f64],
) {
    result.service_cost += set.cost();
    result.dispatches += 1;
    result.max_dispatch_cost = result.max_dispatch_cost.max(set.cost());
    let src = world.network.dist_source();
    for (l, tour) in set.tours().iter().enumerate() {
        let len = set.tour_lengths()[l];
        result.per_charger_distance[l] += len;
        result.max_tour_length = result.max_tour_length.max(len);
        if let Some(speed) = charger_speed {
            if tour.len() < 2 {
                continue;
            }
            let depart = t.max(busy_until[l]);
            let nodes = tour.nodes();
            let mut prefix = 0.0;
            for w in nodes.windows(2) {
                prefix += src.get(w[0], w[1]);
                let sensor = w[1];
                debug_assert!(sensor < n, "tours visit the depot only first");
                arrivals.push(Reverse(ChargeArrival {
                    time: depart + prefix / speed,
                    sensor,
                    dispatched_at: t,
                    charger: l,
                }));
            }
            busy_until[l] = depart + len / speed;
        }
    }
    if charger_speed.is_none() {
        for &node in set.sensors() {
            debug_assert!(node < n, "tour sets must only list sensor nodes");
            world.batteries[node].charge_full();
            dead[node] = false;
            result.charges += 1;
            result.charge_log[node].push(t);
        }
    }
}
