//! Lazy per-sensor energy accounting with death and urgency prediction.
//!
//! The dense-sweep engine (preserved in [`crate::reference`]) drains every
//! battery across every event segment, so each slot boundary, polling
//! check, dispatch and travel-time arrival costs O(n). This core stores
//! each battery at its last *touch* — the pair `(level(touch), touch)` —
//! and materialises levels only when something actually needs them: slot
//! boundaries, charges, and full policy observations. Rates are constant
//! within a slot, so between touches a sensor's level is the closed form
//! `level(t) = max(level(touch) − ρ_i·(t − touch), 0)`, which makes the
//! two quantities the engine used to scan for *predictable*:
//!
//! - **deaths**: a min-heap of predicted zero-crossings, popped with
//!   `key < tn` before the clock advances to the next event `tn`;
//! - **urgency**: a min-heap of predicted threshold-crossings
//!   (`level/max(ρ̂, ρ_rep) ≤ Δl`), popped at polling checks.
//!
//! # Invariants (see DESIGN.md § Simulation performance)
//!
//! - `batteries[i].level()` is the level at `touch[i]`; [`Self::settle`]
//!   advances the pair, [`Self::peek`] reads without advancing. Both agree
//!   with the dense sweep up to float re-association (one multiply instead
//!   of a per-segment cascade).
//! - The dense sweep kills sensor `i` in segment `[t, tn)` iff
//!   `ρ·(tn − t) > level(t) + 1e-9`. Telescoped over consecutive segments
//!   this is `tn > d + 1e-9/ρ` with `d = touch + level(touch)/ρ`, so the
//!   death-heap key is exactly `d + 1e-9/ρ`: popping every entry with
//!   `key < tn` (strictly — a charge landing at the depletion instant
//!   still rescues) reproduces the sweep's deaths and their recorded
//!   times `d`.
//! - Heap entries are invalidated lazily: every charge bumps the sensor's
//!   stamp and pushes a fresh entry; a popped entry whose stamp is stale
//!   is discarded. Slot boundaries resample every rate, so both heaps are
//!   rebuilt wholesale there (the rebuild rides the O(n) resample) and the
//!   death heap only admits entries with `key < next_slot` — it never
//!   outgrows `n` plus the slot's charge count.

use crate::policy::Observation;
use perpetuum_energy::Battery;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Pop slack for the urgency heap: keys are algebraic crossing times and
/// the membership test is re-evaluated exactly, so the margin only has to
/// dominate float error in the key (≲1e-12 at the simulator's scales).
const URGENCY_MARGIN: f64 = 1e-6;

/// A predicted zero-crossing: sensor `sensor` dies at `time` unless the
/// entry goes stale; the engine owes it a death once an event lands past
/// `key = time + 1e-9/ρ`.
#[derive(Debug, Clone, Copy)]
struct DeathEntry {
    key: f64,
    time: f64,
    sensor: usize,
    stamp: u64,
}

impl PartialEq for DeathEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for DeathEntry {}

impl PartialOrd for DeathEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeathEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.total_cmp(&other.key).then(self.sensor.cmp(&other.sensor))
    }
}

/// A predicted urgency-threshold crossing for the current slot's rates
/// and the polling policy's threshold.
#[derive(Debug, Clone, Copy)]
struct UrgencyEntry {
    key: f64,
    sensor: usize,
    stamp: u64,
}

impl PartialEq for UrgencyEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for UrgencyEntry {}

impl PartialOrd for UrgencyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UrgencyEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.total_cmp(&other.key).then(self.sensor.cmp(&other.sensor))
    }
}

/// The engine's energy state: batteries, current/reported/predicted rates,
/// death and urgency prediction heaps.
pub(crate) struct EnergyCore {
    batteries: Vec<Battery>,
    /// Time each battery was last settled; its stored level is the level
    /// at this instant.
    touch: Vec<f64>,
    /// True drain rates for the current slot.
    rates: Vec<f64>,
    /// Rates the sensors report (truth plus measurement noise).
    reported: Vec<f64>,
    /// EWMA-predicted rates, refreshed at slot boundaries.
    rho_hat: Vec<f64>,
    /// Battery capacities, maintained incrementally (they only change on
    /// a charge, via aging).
    capacities: Vec<f64>,
    /// Death bookkeeping lives here, not in `Battery`: a battery at
    /// exactly zero at a charging instant is *alive* (the paper allows
    /// charge gaps equal to the cycle), so death means strictly crossing
    /// zero between charges.
    dead: Vec<bool>,
    /// Bumped on every charge; heap entries carrying an older stamp are
    /// stale and dropped on pop.
    stamp: Vec<u64>,
    /// Scratch for materialised observations.
    levels: Vec<f64>,
    deaths: BinaryHeap<Reverse<DeathEntry>>,
    /// End of the current slot: no death entry predicts past it (rates
    /// resample there and the heap is rebuilt).
    next_slot: f64,
    urgency: BinaryHeap<Reverse<UrgencyEntry>>,
    /// Threshold the urgency heap was built for, `None` when it must be
    /// rebuilt (cleared at every slot boundary).
    urgency_for: Option<f64>,
}

impl EnergyCore {
    pub(crate) fn new(
        batteries: Vec<Battery>,
        rates: Vec<f64>,
        reported: Vec<f64>,
        rho_hat: Vec<f64>,
        capacities: Vec<f64>,
    ) -> Self {
        let n = batteries.len();
        Self {
            batteries,
            touch: vec![0.0; n],
            rates,
            reported,
            rho_hat,
            capacities,
            dead: vec![false; n],
            stamp: vec![0; n],
            levels: vec![0.0; n],
            deaths: BinaryHeap::new(),
            next_slot: f64::INFINITY,
            urgency: BinaryHeap::new(),
            urgency_for: None,
        }
    }

    fn n(&self) -> usize {
        self.batteries.len()
    }

    /// Materialises sensor `i`'s level at `t` (one saturating drain over
    /// the whole untouched span) and advances its touch point.
    fn settle(&mut self, i: usize, t: f64) {
        let dt = t - self.touch[i];
        if dt > 0.0 {
            self.batteries[i].drain(self.rates[i], dt);
            self.touch[i] = t;
        }
    }

    /// Settles every battery at `t` (slot boundaries and full
    /// observations — the only places the engine pays O(n)).
    pub(crate) fn settle_all(&mut self, t: f64) {
        for i in 0..self.n() {
            self.settle(i, t);
        }
    }

    /// Sensor `i`'s level at `t ≥ touch[i]` without settling.
    fn peek(&self, i: usize, t: f64) -> f64 {
        self.batteries[i].level_after(self.rates[i], t - self.touch[i])
    }

    /// Installs sensor `i`'s rates for the new slot. The caller must have
    /// settled the battery at the boundary first (the old rate applies up
    /// to it) and must call [`Self::begin_slot`] once all rates are set.
    pub(crate) fn set_slot_rate(&mut self, i: usize, rate: f64, reported: f64, rho_hat: f64) {
        self.rates[i] = rate;
        self.reported[i] = reported;
        self.rho_hat[i] = rho_hat;
    }

    /// Starts the slot ending at `next_slot`: rebuilds the death heap
    /// against the freshly set rates and invalidates the urgency heap.
    pub(crate) fn begin_slot(&mut self, next_slot: f64) {
        self.next_slot = next_slot;
        self.urgency_for = None;
        self.urgency.clear();
        self.deaths.clear();
        for i in 0..self.n() {
            self.push_death(i);
        }
    }

    fn push_death(&mut self, i: usize) {
        if self.dead[i] {
            return;
        }
        let r = self.rates[i];
        if r <= 0.0 {
            return; // infinite lifetime this slot
        }
        let time = self.touch[i] + self.batteries[i].level() / r;
        let key = time + 1e-9 / r;
        if key < self.next_slot {
            self.deaths.push(Reverse(DeathEntry { key, time, sensor: i, stamp: self.stamp[i] }));
        }
    }

    /// Records every death strictly before the next event `tn`, calling
    /// `on_death(sensor, time)` in depletion-time order. Must run before
    /// the engine advances its clock to `tn` (including the final advance
    /// to the horizon).
    pub(crate) fn pop_deaths(&mut self, tn: f64, mut on_death: impl FnMut(usize, f64)) {
        while let Some(&Reverse(e)) = self.deaths.peek() {
            if e.key >= tn {
                break;
            }
            self.deaths.pop();
            if e.stamp != self.stamp[e.sensor] || self.dead[e.sensor] {
                continue; // stale prediction
            }
            self.dead[e.sensor] = true;
            self.batteries[e.sensor].deplete();
            self.touch[e.sensor] = e.time;
            on_death(e.sensor, e.time);
        }
    }

    /// Recharges sensor `i` to full at time `t`: bumps its stamp (stale
    /// predictions die) and pushes fresh death/urgency predictions.
    ///
    /// Returns how long the sensor had been dead when this charge revived
    /// it (`None` for a live sensor) — the engine's deadline-miss and
    /// dead-sensor-time accounting.
    pub(crate) fn charge(&mut self, i: usize, t: f64) -> Option<f64> {
        let dead_for = if self.dead[i] { Some(t - self.touch[i]) } else { None };
        self.batteries[i].charge_full();
        self.capacities[i] = self.batteries[i].capacity();
        self.touch[i] = t;
        self.dead[i] = false;
        self.stamp[i] += 1;
        self.push_death(i);
        if let Some(dt) = self.urgency_for {
            self.push_urgency(i, dt);
        }
        dead_for
    }

    /// Charge stamp of sensor `i` — bumped by every charge; the recovery
    /// pool uses it to detect orphans healed by an ordinary dispatch.
    pub(crate) fn stamp_of(&self, i: usize) -> u64 {
        self.stamp[i]
    }

    /// Summed remaining dead time at the horizon: for every sensor still
    /// dead, the span from its depletion instant (its touch point — set by
    /// [`Self::pop_deaths`]) to the horizon.
    pub(crate) fn dead_tail(&self, horizon: f64) -> f64 {
        (0..self.n()).filter(|&i| self.dead[i]).map(|i| (horizon - self.touch[i]).max(0.0)).sum()
    }

    /// The polling predicate of the dense engine, verbatim: estimated
    /// residual lifetime `level(t)/max(ρ̂, ρ_rep) ≤ dt + 1e-9`. (A zero
    /// safe rate yields `∞` or `NaN` — both compare false, exactly as the
    /// full-observation path behaves.)
    pub(crate) fn is_urgent(&self, i: usize, t: f64, dt: f64) -> bool {
        let rate_safe = self.rho_hat[i].max(self.reported[i]);
        self.peek(i, t) / rate_safe <= dt + 1e-9
    }

    /// Time at which sensor `i` first satisfies [`Self::is_urgent`],
    /// assuming the current slot's rates persist. Also the recovery
    /// pool's prediction of when a pooled orphan turns urgent.
    pub(crate) fn urgency_key(&self, i: usize, dt: f64) -> f64 {
        let rate_safe = self.rho_hat[i].max(self.reported[i]);
        let slack = (dt + 1e-9) * rate_safe;
        let r = self.rates[i];
        let level = self.batteries[i].level();
        if r <= 0.0 {
            if level <= slack {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }
        } else {
            self.touch[i] + (level - slack) / r
        }
    }

    fn push_urgency(&mut self, i: usize, dt: f64) {
        let key = self.urgency_key(i, dt);
        if key < f64::INFINITY {
            self.urgency.push(Reverse(UrgencyEntry { key, sensor: i, stamp: self.stamp[i] }));
        }
    }

    /// Ascending indices of the sensors urgent at `t` for threshold `dt`
    /// — bit-for-bit the set the dense engine's O(n) scan would return,
    /// but in O(log n) per popped entry. Entries are popped with a small
    /// slack on the predicted crossing, re-checked with the exact
    /// predicate, and re-pushed (an urgent sensor the policy declines to
    /// charge stays queued; a charged one is invalidated by its stamp).
    pub(crate) fn urgent_within(&mut self, t: f64, dt: f64) -> Vec<usize> {
        if self.urgency_for != Some(dt) {
            self.urgency.clear();
            self.urgency_for = Some(dt);
            for i in 0..self.n() {
                self.push_urgency(i, dt);
            }
        }
        let mut urgent = Vec::new();
        let mut popped = Vec::new();
        while let Some(&Reverse(e)) = self.urgency.peek() {
            if e.key > t + URGENCY_MARGIN {
                break;
            }
            self.urgency.pop();
            if e.stamp != self.stamp[e.sensor] {
                continue; // stale; the live entry is elsewhere in the heap
            }
            if self.is_urgent(e.sensor, t, dt) {
                urgent.push(e.sensor);
            }
            popped.push(e);
        }
        for e in popped {
            self.urgency.push(Reverse(e));
        }
        urgent.sort_unstable();
        urgent
    }

    /// Full observation at `t` (settles every battery — O(n), reserved
    /// for slot boundaries and policies that ask for it).
    pub(crate) fn observation(&mut self, time: f64, horizon: f64) -> Observation<'_> {
        self.settle_all(time);
        for (i, b) in self.batteries.iter().enumerate() {
            self.levels[i] = b.level();
        }
        Observation {
            time,
            horizon,
            levels: &self.levels,
            rho_hat: &self.rho_hat,
            rho_now: &self.reported,
            capacities: &self.capacities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(rates: &[f64]) -> EnergyCore {
        let n = rates.len();
        EnergyCore::new(
            vec![Battery::full(1.0); n],
            rates.to_vec(),
            rates.to_vec(),
            rates.to_vec(),
            vec![1.0; n],
        )
    }

    #[test]
    fn peek_agrees_with_settle() {
        let mut c = core(&[0.1, 0.5]);
        c.begin_slot(10.0);
        assert!((c.peek(0, 4.0) - 0.6).abs() < 1e-12);
        c.settle_all(4.0);
        assert!((c.batteries[0].level() - 0.6).abs() < 1e-12);
        assert_eq!(c.peek(0, 4.0), c.batteries[0].level(), "settle is a touch-point move");
        // Sensor 1 saturates at zero.
        assert_eq!(c.peek(1, 9.0), 0.0);
    }

    #[test]
    fn deaths_pop_in_time_order_with_exact_times() {
        let mut c = core(&[1.0 / 3.0, 0.125, 1.0 / 7.0]);
        c.begin_slot(10.0);
        let mut seen = Vec::new();
        c.pop_deaths(10.0, |s, t| seen.push((s, t)));
        assert_eq!(seen.len(), 3);
        // Sorted by depletion time (3, 7, 8), not by sensor index.
        assert_eq!(seen.iter().map(|&(s, _)| s).collect::<Vec<_>>(), vec![0, 2, 1]);
        assert!((seen[0].1 - 3.0).abs() < 1e-9);
        assert!((seen[1].1 - 7.0).abs() < 1e-9);
        assert!((seen[2].1 - 8.0).abs() < 1e-9);
        // Dead sensors report a zero level and never die twice.
        assert_eq!(c.peek(0, 9.0), 0.0);
        c.begin_slot(20.0);
        let mut again = Vec::new();
        c.pop_deaths(20.0, |s, t| again.push((s, t)));
        assert!(again.is_empty());
    }

    #[test]
    fn charge_at_depletion_instant_rescues() {
        // The dense sweep only kills when the drain strictly overshoots
        // `level + 1e-9`; an event landing exactly at the crossing keeps
        // the sensor alive, so `pop_deaths` up to that instant is empty.
        let mut c = core(&[0.25]);
        c.begin_slot(10.0);
        c.pop_deaths(4.0, |_, _| panic!("death at the boundary it can be rescued at"));
        c.charge(0, 4.0);
        let mut seen = Vec::new();
        c.pop_deaths(10.0, |s, t| seen.push((s, t)));
        assert_eq!(seen.len(), 1, "recharged battery dies again 4 units later");
        assert!((seen[0].1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn charge_invalidates_pending_death() {
        let mut c = core(&[0.5]);
        c.begin_slot(10.0);
        c.charge(0, 1.0); // stale entry (crossing at 2) must be dropped
        let mut seen = Vec::new();
        c.pop_deaths(10.0, |s, t| seen.push((s, t)));
        assert_eq!(seen.len(), 1);
        assert!((seen[0].1 - 3.0).abs() < 1e-9, "death re-predicted from the charge");
    }

    #[test]
    fn charge_reports_dead_duration_and_dead_tail_sums() {
        let mut c = core(&[0.5, 0.1]);
        c.begin_slot(100.0);
        c.pop_deaths(7.0, |_, _| {}); // sensor 0 dies at t = 2
        assert_eq!(c.stamp_of(0), 0);
        assert!((c.dead_tail(10.0) - 8.0).abs() < 1e-9);
        let revived = c.charge(0, 5.0).expect("was dead");
        assert!((revived - 3.0).abs() < 1e-9);
        assert_eq!(c.stamp_of(0), 1);
        assert_eq!(c.dead_tail(10.0), 0.0);
        assert_eq!(c.charge(1, 5.0), None, "live sensor charges report no dead time");
    }

    #[test]
    fn urgent_within_matches_dense_scan() {
        let rates = [0.5, 0.05, 0.25, 0.125];
        let mut c = core(&rates);
        c.begin_slot(100.0);
        for step in 1..=16 {
            let t = step as f64 * 0.5;
            let fast = c.urgent_within(t, 1.0);
            let slow: Vec<usize> =
                (0..rates.len()).filter(|&i| c.peek(i, t) / rates[i] <= 1.0 + 1e-9).collect();
            assert_eq!(fast, slow, "t = {t}");
            // Charge whatever came up, as the greedy policy would.
            for &i in &fast {
                c.charge(i, t);
            }
        }
    }

    #[test]
    fn dead_sensor_stays_urgent_until_charged() {
        let mut c = core(&[1.0]);
        c.begin_slot(100.0);
        c.pop_deaths(50.0, |_, _| {});
        assert_eq!(c.urgent_within(50.0, 0.5), vec![0], "a dead sensor is maximally urgent");
        c.charge(0, 50.0);
        assert!(c.urgent_within(50.0, 0.5).is_empty());
    }

    #[test]
    fn threshold_change_rebuilds_urgency() {
        let mut c = core(&[0.1]);
        c.begin_slot(100.0);
        assert!(c.urgent_within(2.0, 1.0).is_empty());
        // Residual at t = 2 is 8; a threshold of 9 flips it urgent.
        assert_eq!(c.urgent_within(2.0, 9.0), vec![0]);
    }
}
