//! Time-slotted discrete-event simulator for WSN charging.
//!
//! The paper evaluates its algorithms purely in simulation (Section VII):
//! sensors drain at (possibly slot-varying) rates, the base station runs a
//! charging policy, and mobile chargers execute closed tours whose summed
//! length is the *service cost*. Charging and travel times are ignored
//! relative to sensor lifetimes (Section III.A), so a dispatch recharges
//! its sensors instantaneously at the dispatch time — exactly the model
//! under which the paper's guarantees are stated.
//!
//! The crate provides:
//!
//! * [`world`] — the simulated network: batteries, per-slot rate processes,
//!   EWMA predictors,
//! * [`policy`] — the [`policy::ChargingPolicy`] trait and the paper's
//!   three policies (`MinTotalDistance`, `MinTotalDistance-var`, Greedy),
//! * [`engine`] — the event-driven loop: lazy per-sensor energy
//!   accounting, a death-prediction heap, O(log n) inter-event
//!   processing; it resamples rates at slot boundaries, executes
//!   dispatches and detects sensor deaths at their analytic instants,
//! * [`mod@reference`] — the dense-sweep engine the event-driven core
//!   replaced, kept as the benchmark baseline and (with a capped step)
//!   as a naive fixed-step integrator for equivalence tests,
//! * [`metrics`] — per-run results: service cost, dispatch/charge counts,
//!   deaths, per-charger distances, replans, degraded-mode fault stats,
//! * [`faults`] — deterministic seeded fault injection: charger
//!   breakdown/repair processes, consumption-rate shocks, travel-speed
//!   jitter, and the degraded-mode recovery planner's policy knobs.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod closed_loop;
mod energy_core;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod policy;
pub mod reference;
pub mod trace;
pub mod world;

pub use closed_loop::{
    compare_refined, compare_suppressed, compare_under_drift, ArmOutcome, ClosedLoopComparison,
    OnlinePolicy, OraclePolicy, RefinedComparison, SuppressedPolicy, SuppressionComparison,
    SuppressionTraffic,
};
pub use engine::{run, run_traced, run_with_faults, run_with_faults_traced, SimConfig};
pub use faults::{ChargerFaults, FaultModel, RateShock, RecoveryConfig, SpeedFaults};
pub use metrics::{DeathEvent, FaultStats, SimResult};
pub use policy::{
    ChargingPolicy, CheckContext, GreedyPolicy, MtdPolicy, Observation, PeriodicPolicy, PlanUpdate,
    VarPolicy,
};
pub use reference::{run_fixed_step, run_reference};
pub use trace::{SimTrace, TraceEvent};
pub use world::{RateProcess, World, WorldError};
