//! Fault-free equivalence: with [`FaultModel::none`] the fault-aware
//! engine must be **bit-identical** to the pre-fault engine — same
//! `SimResult` (including every f64, compared exactly via `PartialEq`)
//! and same trace — on random worlds, in both charging modes.

use perpetuum_core::network::Network;
use perpetuum_energy::CycleDistribution;
use perpetuum_geom::Point2;
use perpetuum_sim::engine::{run, run_traced, run_with_faults, run_with_faults_traced};
use perpetuum_sim::{FaultModel, GreedyPolicy, MtdPolicy, SimConfig, World};
use proptest::prelude::*;

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point2::new(x, y)).collect())
}

prop_compose! {
    fn world_setup()(
        sensors in points(1..12),
        depots in points(1..4),
        seed in 0u64..1000,
        horizon in 20.0..90.0f64,
        travel in 0u8..2,
        variable in 0u8..2,
    )(
        cycles in prop::collection::vec(1.5..30.0f64, sensors.len()),
        sensors in Just(sensors),
        depots in Just(depots),
        seed in Just(seed),
        horizon in Just(horizon),
        travel in Just(travel),
        variable in Just(variable),
    ) -> (Network, Vec<f64>, u64, f64, bool, bool) {
        (Network::new(sensors, depots), cycles, seed, horizon, travel == 1, variable == 1)
    }
}

fn make_world(network: &Network, cycles: &[f64], variable: bool) -> World {
    if variable {
        World::variable(
            network.clone(),
            cycles,
            CycleDistribution::Linear { sigma: 2.0 },
            1.0,
            30.0,
        )
    } else {
        World::fixed(network.clone(), cycles)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn none_model_is_bit_identical_to_plain_run(
        (network, cycles, seed, horizon, travel, variable) in world_setup()
    ) {
        let cfg = SimConfig {
            horizon,
            slot: 10.0,
            seed,
            charger_speed: if travel { Some(150.0) } else { None },
        };
        let none = FaultModel::none();

        // MTD policy, plain vs fault-free-faulted.
        let mut p1 = MtdPolicy::new(&network);
        let plain = run(make_world(&network, &cycles, variable), &cfg, &mut p1);
        let mut p2 = MtdPolicy::new(&network);
        let faulted =
            run_with_faults(make_world(&network, &cycles, variable), &cfg, &mut p2, &none);
        prop_assert_eq!(&plain, &faulted, "MTD results diverged");
        prop_assert_eq!(plain.service_cost.to_bits(), faulted.service_cost.to_bits());
        // No fault machinery ran: no breakdowns, aborts or rescues (revival
        // accounting like deadline misses may still be nonzero — a variable
        // world can kill a sensor that a later planned charge revives).
        prop_assert_eq!(plain.faults.breakdowns, 0);
        prop_assert_eq!(plain.faults.aborted_tours, 0);
        prop_assert_eq!(plain.faults.emergency_dispatches, 0);
        prop_assert!(plain.faults.per_charger_downtime.is_empty());

        // Greedy (polling) policy, traced: the event streams must match
        // exactly too.
        let tau_min = cycles.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut g1 = GreedyPolicy::new(&network, tau_min);
        let (rp, tp) = run_traced(make_world(&network, &cycles, variable), &cfg, &mut g1);
        let mut g2 = GreedyPolicy::new(&network, tau_min);
        let (rf, tf) = run_with_faults_traced(
            make_world(&network, &cycles, variable), &cfg, &mut g2, &none,
        );
        prop_assert_eq!(&rp, &rf, "greedy results diverged");
        prop_assert_eq!(&tp, &tf, "greedy traces diverged");
    }

    #[test]
    fn faulted_runs_reproduce_under_same_seed(
        (network, cycles, seed, horizon, travel, variable) in world_setup(),
        fault_seed in 0u64..100,
    ) {
        let cfg = SimConfig {
            horizon,
            slot: 10.0,
            seed,
            charger_speed: if travel { Some(150.0) } else { None },
        };
        let faults = FaultModel::none()
            .with_breakdowns(horizon / 3.0, horizon / 4.0)
            .with_speed_jitter(0.2)
            .with_seed(fault_seed);
        let mut p1 = MtdPolicy::new(&network);
        let (r1, t1) = run_with_faults_traced(
            make_world(&network, &cycles, variable), &cfg, &mut p1, &faults,
        );
        let mut p2 = MtdPolicy::new(&network);
        let (r2, t2) = run_with_faults_traced(
            make_world(&network, &cycles, variable), &cfg, &mut p2, &faults,
        );
        prop_assert_eq!(r1, r2, "fault determinism broke");
        prop_assert_eq!(t1, t2, "fault trace determinism broke");
    }
}
