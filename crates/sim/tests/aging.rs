//! Battery-aging tests: capacities fade with every recharge and the
//! adaptive policy re-tightens its schedule to match.

use perpetuum_core::network::Network;
use perpetuum_geom::Point2;
use perpetuum_sim::{run, MtdPolicy, SimConfig, VarPolicy, World};

fn line_network(n: usize) -> Network {
    let sensors: Vec<Point2> = (0..n).map(|i| Point2::new((i + 1) as f64 * 10.0, 0.0)).collect();
    Network::new(sensors, vec![Point2::ORIGIN])
}

#[test]
fn zero_fade_is_the_ideal_world() {
    let network = line_network(3);
    let cycles = [2.0, 4.0, 8.0];
    let cfg = SimConfig { horizon: 60.0, slot: 10.0, seed: 1, charger_speed: None };
    let base = {
        let mut p = VarPolicy::new(&network);
        run(World::fixed(network.clone(), &cycles), &cfg, &mut p)
    };
    let faded = {
        let mut p = VarPolicy::new(&network);
        run(World::fixed(network.clone(), &cycles).with_battery_fade(0.0), &cfg, &mut p)
    };
    assert_eq!(base.service_cost, faded.service_cost);
    assert_eq!(base.charge_log, faded.charge_log);
}

#[test]
fn var_policy_adapts_to_aging_batteries() {
    // 2% capacity fade per charge. Replans only happen at slot boundaries
    // (every 10), and a cycle-4 sensor recharges ~3 times per slot — so
    // the plan must carry a margin covering the intra-slot fade drift
    // (0.98³ ≈ 6%); 8% does it. The applicability-band test then triggers
    // replans as capacities sag, and — crucially — nobody dies.
    let network = line_network(4);
    let cycles = [4.0, 6.0, 8.0, 12.0];
    let cfg = SimConfig { horizon: 400.0, slot: 10.0, seed: 2, charger_speed: None };
    let mut policy = VarPolicy::with_margin(&network, 0.08);
    let r = run(World::fixed(network.clone(), &cycles).with_battery_fade(0.02), &cfg, &mut policy);
    assert!(r.is_perpetual(), "deaths: {:?}", r.deaths);
    assert!(policy.replans() > 0, "fading cycles must eventually leave the applicability band");
    // Charge gaps must shrink over the run for the fastest-aging sensor.
    let log = &r.charge_log[0];
    assert!(log.len() >= 6);
    let early_gap = log[1] - log[0];
    let late_gap = log[log.len() - 1] - log[log.len() - 2];
    assert!(
        late_gap < early_gap,
        "gaps should tighten as capacity fades: early {early_gap}, late {late_gap}"
    );
}

#[test]
fn oblivious_policy_loses_sensors_to_aging() {
    // MinTotalDistance plans once from the fresh capacities; with fade the
    // true cycles shrink below the planned cadence and sensors die — the
    // negative control for the test above.
    let network = line_network(4);
    let cycles = [4.0, 6.0, 8.0, 12.0];
    let cfg = SimConfig { horizon: 400.0, slot: 10.0, seed: 3, charger_speed: None };
    let mut policy = MtdPolicy::new(&network);
    let r = run(World::fixed(network.clone(), &cycles).with_battery_fade(0.02), &cfg, &mut policy);
    assert!(!r.deaths.is_empty(), "an aging-oblivious plan must eventually miss");
}
