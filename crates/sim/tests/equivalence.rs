//! Equivalence of the event-driven engine against the dense-sweep
//! reference and the naive fixed-small-step integrator.
//!
//! The two engines share the policy interface but almost nothing else:
//! the reference drains every battery across every event segment, the
//! event-driven core settles lazily and predicts deaths into a heap. On
//! any world their discrete outputs must coincide — same dispatches, same
//! charges at the same instants, same service cost — and their deaths may
//! differ only by float re-association (the sweep drains in per-segment
//! cascades, the lazy core in one multiply, so depletion instants agree
//! to ~1e-9, not bit-for-bit).

use perpetuum_core::network::Network;
use perpetuum_energy::CycleDistribution;
use perpetuum_geom::Point2;
use perpetuum_sim::{
    run, run_fixed_step, run_reference, GreedyPolicy, MtdPolicy, SimConfig, SimResult, VarPolicy,
    World,
};
use proptest::prelude::*;

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point2::new(x, y)).collect())
}

prop_compose! {
    fn world_setup()(
        sensors in points(2..18),
        depots in points(1..4),
        seed in 0u64..10_000,
        horizon in 25.0..130.0f64,
    )(
        cycles in prop::collection::vec(1.0..30.0f64, sensors.len()),
        sensors in Just(sensors),
        depots in Just(depots),
        seed in Just(seed),
        horizon in Just(horizon),
    ) -> (Network, Vec<f64>, u64, f64) {
        (Network::new(sensors, depots), cycles, seed, horizon)
    }
}

/// Discrete outputs must match exactly; deaths and costs to float slack.
fn assert_equivalent(fast: &SimResult, slow: &SimResult, label: &str) {
    assert_eq!(fast.dispatches, slow.dispatches, "{label}: dispatches");
    assert_eq!(fast.charges, slow.charges, "{label}: charges");
    assert_eq!(fast.charge_log, slow.charge_log, "{label}: charge log");
    assert_eq!(fast.replans, slow.replans, "{label}: replans");
    assert!(
        (fast.service_cost - slow.service_cost).abs() <= 1e-9 * (1.0 + slow.service_cost),
        "{label}: service cost {} vs {}",
        fast.service_cost,
        slow.service_cost
    );
    assert!(
        (fast.total_charge_delay - slow.total_charge_delay).abs() <= 1e-6,
        "{label}: charge delay"
    );
    // Deaths: same sensors, same instants up to re-association slack.
    // Ordering may legitimately differ (the sweep records a segment's
    // deaths in index order, the heap in time order), so compare sorted.
    let mut fd: Vec<(usize, f64)> = fast.deaths.iter().map(|d| (d.sensor, d.time)).collect();
    let mut sd: Vec<(usize, f64)> = slow.deaths.iter().map(|d| (d.sensor, d.time)).collect();
    fd.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    sd.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    assert_eq!(fd.len(), sd.len(), "{label}: death count {fd:?} vs {sd:?}");
    for (f, s) in fd.iter().zip(&sd) {
        assert_eq!(f.0, s.0, "{label}: dead sensors {fd:?} vs {sd:?}");
        assert!((f.1 - s.1).abs() <= 1e-6, "{label}: death times {f:?} vs {s:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Polling policy, fixed rates, both charging modes. The paper-style
    /// threshold keeps everyone alive; the starved threshold forces the
    /// death machinery through the same comparison.
    #[test]
    fn greedy_matches_reference_on_random_worlds(
        (network, cycles, seed, horizon) in world_setup(),
        travel_sel in 0u8..2,
        starved_sel in 0u8..2,
    ) {
        let tau_min = cycles.iter().cloned().fold(f64::INFINITY, f64::min);
        // A slow charger makes travel delays visible without being so
        // slow that float-marginal deaths dominate the comparison.
        let travel = travel_sel == 1;
        let speed = if travel { Some(50.0) } else { None };
        let starved = starved_sel == 1;
        let threshold = if starved { tau_min * 0.3 } else { tau_min };
        let cfg = SimConfig { horizon, slot: 10.0, seed, charger_speed: speed };
        let fast = {
            let mut p = GreedyPolicy::new(&network, threshold);
            run(World::fixed(network.clone(), &cycles), &cfg, &mut p)
        };
        let slow = {
            let mut p = GreedyPolicy::new(&network, threshold);
            run_reference(World::fixed(network.clone(), &cycles), &cfg, &mut p)
        };
        assert_equivalent(&fast, &slow, "greedy/fixed");
    }

    /// Adaptive policy on slot-resampled variable worlds: exercises
    /// replans, the applicability band and measurement noise through both
    /// engines' identical RNG streams.
    #[test]
    fn var_policy_matches_reference_on_variable_worlds(
        (network, _cycles, seed, horizon) in world_setup(),
        sigma in 0.0..8.0f64,
        noisy_sel in 0u8..2,
    ) {
        let dist = CycleDistribution::Linear { sigma };
        let bs = Point2::new(500.0, 500.0);
        let means = dist.mean_all(network.sensor_positions(), bs, 1.0, 30.0);
        let make = || {
            let w = World::variable(network.clone(), &means, dist, 1.0, 30.0);
            if noisy_sel == 1 { w.with_measurement_noise(0.05) } else { w }
        };
        let cfg = SimConfig { horizon, slot: 10.0, seed, charger_speed: None };
        let fast = {
            let mut p = VarPolicy::new(&network);
            run(make(), &cfg, &mut p)
        };
        let slow = {
            let mut p = VarPolicy::new(&network);
            run_reference(make(), &cfg, &mut p)
        };
        assert_equivalent(&fast, &slow, "var/variable");
    }

    /// One-shot planner with deliberately starved cycles (the plan is
    /// built against inflated cycle estimates, so sensors die): deaths
    /// found by the prediction heap must match a naive integrator that
    /// steps far below every event spacing.
    #[test]
    fn deaths_match_fixed_step_integrator(
        (network, cycles, seed, horizon) in world_setup(),
        travel_sel in 0u8..2,
    ) {
        let travel = travel_sel == 1;
        let speed = if travel { Some(20.0) } else { None };
        let cfg = SimConfig { horizon, slot: 10.0, seed, charger_speed: speed };
        // Lie to the planner: true cycles are 40% of what it plans for.
        let true_cycles: Vec<f64> = cycles.iter().map(|c| c * 0.4).collect();
        let fast = {
            let mut p = MtdPolicy::new(&network);
            run(World::fixed(network.clone(), &true_cycles), &cfg, &mut p)
        };
        let naive = {
            let mut p = MtdPolicy::new(&network);
            run_fixed_step(World::fixed(network.clone(), &true_cycles), &cfg, &mut p, 0.05)
        };
        assert_equivalent(&fast, &naive, "mtd/starved/fixed-step");
    }
}

/// The fixed-step integrator is itself sanity-checked against the plain
/// reference: capping segment length must not change anything.
#[test]
fn fixed_step_agrees_with_reference() {
    let sensors: Vec<Point2> = (0..8).map(|i| Point2::new((i + 1) as f64 * 40.0, 25.0)).collect();
    let network = Network::new(sensors, vec![Point2::ORIGIN]);
    let cycles = [2.0, 3.0, 4.5, 6.0, 7.0, 9.0, 12.0, 20.0];
    let cfg = SimConfig { horizon: 80.0, slot: 10.0, seed: 11, charger_speed: None };
    let a = {
        let mut p = GreedyPolicy::new(&network, 2.0);
        run_reference(World::fixed(network.clone(), &cycles), &cfg, &mut p)
    };
    let b = {
        let mut p = GreedyPolicy::new(&network, 2.0);
        run_fixed_step(World::fixed(network.clone(), &cycles), &cfg, &mut p, 0.25)
    };
    assert_eq!(a.charge_log, b.charge_log);
    assert_eq!(a.service_cost, b.service_cost);
    assert_eq!(a.deaths.len(), b.deaths.len());
}
