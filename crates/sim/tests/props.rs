//! Property-based tests of simulator invariants on randomly generated
//! worlds.

use perpetuum_core::network::Network;
use perpetuum_energy::CycleDistribution;
use perpetuum_geom::Point2;
use perpetuum_sim::{run, GreedyPolicy, MtdPolicy, SimConfig, VarPolicy, World};
use proptest::prelude::*;

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point2::new(x, y)).collect())
}

prop_compose! {
    fn world_setup()(
        sensors in points(1..16),
        depots in points(1..4),
        seed in 0u64..1000,
        horizon in 20.0..120.0f64,
    )(
        cycles in prop::collection::vec(1.0..30.0f64, sensors.len()),
        sensors in Just(sensors),
        depots in Just(depots),
        seed in Just(seed),
        horizon in Just(horizon),
    ) -> (Network, Vec<f64>, u64, f64) {
        (Network::new(sensors, depots), cycles, seed, horizon)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fixed_world_invariants_hold_for_every_policy(
        (network, cycles, seed, horizon) in world_setup()
    ) {
        let tau_min = cycles.iter().cloned().fold(f64::INFINITY, f64::min);
        let cfg = SimConfig { horizon, slot: 10.0, seed, charger_speed: None };

        let run_one = |which: usize| {
            let world = World::fixed(network.clone(), &cycles);
            match which {
                0 => {
                    let mut p = MtdPolicy::new(&network);
                    run(world, &cfg, &mut p)
                }
                1 => {
                    let mut p = GreedyPolicy::new(&network, tau_min);
                    run(world, &cfg, &mut p)
                }
                _ => {
                    let mut p = VarPolicy::new(&network);
                    run(world, &cfg, &mut p)
                }
            }
        };

        for which in 0..3 {
            let r = run_one(which);
            // Perpetual operation under the paper's fixed-cycle model.
            prop_assert!(r.deaths.is_empty(), "policy {which}: {:?}", r.deaths);
            // Per-charger distances decompose the service cost.
            let sum: f64 = r.per_charger_distance.iter().sum();
            prop_assert!((sum - r.service_cost).abs() < 1e-6, "policy {which}");
            // Charge logs are sorted, in (0, horizon), and count correctly.
            let mut total = 0usize;
            for log in &r.charge_log {
                total += log.len();
                for w in log.windows(2) {
                    prop_assert!(w[0] <= w[1] + 1e-12);
                }
                for &t in log {
                    prop_assert!(t > 0.0 && t < horizon);
                }
            }
            prop_assert_eq!(total, r.charges, "policy {}", which);
            // Ground-truth feasibility from executed charges.
            prop_assert!(perpetuum_core::feasibility::check_with(
                &cycles, horizon, |i| r.charge_log[i].clone()
            ).is_ok(), "policy {}", which);
            // Metrics are self-consistent.
            prop_assert!(r.max_dispatch_cost <= r.service_cost + 1e-9);
            prop_assert!(r.max_tour_length <= r.max_dispatch_cost + 1e-9);
        }
    }

    #[test]
    fn variable_world_var_policy_survives(
        (network, _cycles, seed, horizon) in world_setup(),
        sigma in 0.0..8.0f64,
    ) {
        let dist = CycleDistribution::Linear { sigma };
        let bs = Point2::new(500.0, 500.0);
        let means = dist.mean_all(network.sensor_positions(), bs, 1.0, 30.0);
        let world = World::variable(network.clone(), &means, dist, 1.0, 30.0);
        let cfg = SimConfig { horizon, slot: 10.0, seed, charger_speed: None };
        let mut p = VarPolicy::new(&network);
        let r = run(world, &cfg, &mut p);
        prop_assert!(r.deaths.is_empty(), "σ {sigma}: {:?}", r.deaths);
        prop_assert!(r.service_cost >= 0.0);
    }
}
