//! Traced-run tests: the trace agrees with the result metrics and with the
//! untraced run.

use perpetuum_core::network::Network;
use perpetuum_energy::CycleDistribution;
use perpetuum_geom::Point2;
use perpetuum_sim::{run, run_traced, MtdPolicy, SimConfig, TraceEvent, VarPolicy, World};

fn line_network(n: usize) -> Network {
    let sensors: Vec<Point2> = (0..n).map(|i| Point2::new((i + 1) as f64 * 10.0, 0.0)).collect();
    Network::new(sensors, vec![Point2::ORIGIN])
}

#[test]
fn trace_counts_match_result_metrics() {
    let network = line_network(4);
    let cycles = [1.0, 2.0, 3.5, 8.0];
    let cfg = SimConfig { horizon: 40.0, slot: 10.0, seed: 1, charger_speed: None };
    let mut policy = MtdPolicy::new(&network);
    let (r, trace) = run_traced(World::fixed(network.clone(), &cycles), &cfg, &mut policy);

    let (slots, replans, dispatches, charges, deaths) = trace.counts();
    assert_eq!(dispatches, r.dispatches);
    assert_eq!(charges, r.charges);
    assert_eq!(deaths, r.deaths.len());
    assert_eq!(slots, 3, "boundaries at 10, 20, 30");
    assert_eq!(replans, 1, "only the initial plan install");
}

#[test]
fn traced_and_untraced_results_agree() {
    let network = line_network(5);
    let cycles = [1.0, 2.0, 3.0, 5.0, 8.0];
    let cfg = SimConfig { horizon: 50.0, slot: 10.0, seed: 2, charger_speed: None };
    let r1 = {
        let mut p = MtdPolicy::new(&network);
        run(World::fixed(network.clone(), &cycles), &cfg, &mut p)
    };
    let (r2, _) = {
        let mut p = MtdPolicy::new(&network);
        run_traced(World::fixed(network.clone(), &cycles), &cfg, &mut p)
    };
    assert_eq!(r1.service_cost, r2.service_cost);
    assert_eq!(r1.charge_log, r2.charge_log);
}

#[test]
fn sensor_timeline_matches_charge_log() {
    let network = line_network(3);
    let cycles = [2.0, 4.0, 8.0];
    let cfg = SimConfig { horizon: 32.0, slot: 8.0, seed: 3, charger_speed: None };
    let mut policy = MtdPolicy::new(&network);
    let (r, trace) = run_traced(World::fixed(network.clone(), &cycles), &cfg, &mut policy);
    for sensor in 0..3 {
        let charges: Vec<f64> = trace
            .sensor_events(sensor)
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Charge { time, .. } => Some(*time),
                _ => None,
            })
            .collect();
        assert_eq!(charges, r.charge_log[sensor], "sensor {sensor}");
    }
}

#[test]
fn var_policy_replans_visible_in_trace() {
    let network = line_network(6);
    let means = [5.0, 10.0, 15.0, 20.0, 30.0, 45.0];
    let world = World::variable(
        network.clone(),
        &means,
        CycleDistribution::Linear { sigma: 4.0 },
        1.0,
        50.0,
    );
    let cfg = SimConfig { horizon: 150.0, slot: 10.0, seed: 4, charger_speed: None };
    let mut policy = VarPolicy::new(&network);
    let (_, trace) = run_traced(world, &cfg, &mut policy);
    let (_, replans, ..) = trace.counts();
    // Initial install + the policy's replans.
    assert_eq!(replans, 1 + policy.replans());
    // Render never panics and has one line per event.
    assert_eq!(trace.render().lines().count(), trace.events.len());
}

#[test]
fn event_times_are_monotone_except_death_interpolation() {
    let network = line_network(4);
    let cycles = [1.5, 2.5, 4.5, 7.5];
    let cfg = SimConfig { horizon: 60.0, slot: 7.0, seed: 5, charger_speed: None };
    let mut policy = MtdPolicy::new(&network);
    let (_, trace) = run_traced(World::fixed(network.clone(), &cycles), &cfg, &mut policy);
    let mut prev = 0.0f64;
    for e in &trace.events {
        if !matches!(e, TraceEvent::Death { .. }) {
            assert!(e.time() + 1e-9 >= prev, "{e:?} before {prev}");
            prev = e.time();
        }
    }
}
