//! Adaptive-replan smoke: a small drifting scenario whose rate drift
//! forces rounding-class migrations, pinned so the cheap incremental
//! (forest-splice) path actually carries them.
//!
//! The cycle clamp range `[20, 60]` keeps the slowest sensor glued to the
//! clamp floor, so `τ̂₁` never undercuts the cached grid and drift can only
//! move sensors *between* classes — exactly the regime the incremental
//! planner exists for. The run must stay feasible (zero deaths) end to
//! end, and the split replan counters must show the incremental path was
//! taken.

use perpetuum_core::network::Network;
use perpetuum_energy::CycleDistribution;
use perpetuum_geom::{deploy, rng::derived_rng, Field};
use perpetuum_sim::{run, SimConfig, VarPolicy, World};

const TAU_MIN: f64 = 20.0;
const TAU_MAX: f64 = 60.0;

fn drifting_world(n: usize, seed: u64) -> (Network, World) {
    let field = Field::paper_default();
    let mut rng = derived_rng(seed, 0);
    let sensors = deploy::uniform_deployment(field, n, &mut rng);
    let depots = deploy::place_depots(
        field,
        field.center(),
        3,
        deploy::DepotPlacement::OneAtBaseStation,
        &mut rng,
    );
    let network = Network::new(sensors, depots);
    let dist = CycleDistribution::Linear { sigma: 2.0 };
    let means = dist.mean_all(network.sensor_positions(), field.center(), TAU_MIN, TAU_MAX);
    let world = World::variable(network.clone(), &means, dist, TAU_MIN, TAU_MAX);
    (network, world)
}

fn cfg(seed: u64) -> SimConfig {
    SimConfig { horizon: 300.0, slot: 10.0, seed, charger_speed: None }
}

#[test]
fn forced_class_migrations_ride_the_incremental_path() {
    let (network, world) = drifting_world(40, 5);
    let mut policy = VarPolicy::new(&network);
    let r = run(world, &cfg(5), &mut policy);

    // Plan feasibility, end to end: every replanned schedule kept every
    // sensor alive for the whole horizon.
    assert!(r.deaths.is_empty(), "incremental plans must stay feasible: {:?}", r.deaths);
    assert!(r.service_cost > 0.0);

    // Drift must have migrated classes, and the clamp-pinned τ̂₁ means the
    // incremental tier — not the full fallback — absorbed them.
    assert!(policy.replans() > 0, "σ = 2 drift must leave the applicability band");
    assert!(
        policy.incremental_replans() > 0,
        "clamp-pinned τ̂₁ drift must be absorbed by forest splicing \
         (incremental {}, full {})",
        policy.incremental_replans(),
        policy.full_replans()
    );
    assert!(policy.planner_seconds_incremental() > 0.0, "the incremental stopwatch must have run");
    // The split counters cover every replan: seed + in-band migrations.
    assert_eq!(
        policy.incremental_replans() + policy.full_replans(),
        policy.replans() + 1,
        "split counters must sum to replans + the seed plan"
    );
}

#[test]
fn incremental_and_full_tiers_agree_on_survival() {
    let (network, world) = drifting_world(40, 6);

    let mut inc = VarPolicy::new(&network);
    let ri = run(world.clone(), &cfg(6), &mut inc);
    assert!(ri.deaths.is_empty(), "incremental deaths: {:?}", ri.deaths);
    assert!(inc.incremental_replans() > 0, "drift must exercise the splice path");

    let mut full = VarPolicy::full_replanning(&network);
    let rf = run(world, &cfg(6), &mut full);
    assert!(rf.deaths.is_empty(), "full-replanning deaths: {:?}", rf.deaths);
    assert_eq!(full.incremental_replans(), 0, "ablation must never splice");

    // Warm-started tours are cost-bounded by fresh construction, so the
    // incremental run's bill stays in the same regime as the ablation's.
    assert!(
        ri.service_cost <= 2.0 * rf.service_cost,
        "incremental cost {} vs full {}",
        ri.service_cost,
        rf.service_cost
    );
}
