//! End-to-end fault injection: seeded charger breakdowns, degraded-mode
//! recovery onto the surviving depots, retry/backoff exhaustion, rate
//! shocks and travel-speed jitter — the robustness tentpole exercised
//! through the public API.

use perpetuum_core::network::Network;
use perpetuum_energy::CycleDistribution;
use perpetuum_geom::Point2;
use perpetuum_sim::engine::{run, run_with_faults, run_with_faults_traced};
use perpetuum_sim::{FaultModel, MtdPolicy, RateShock, RecoveryConfig, SimConfig, World};

/// Two depots with a sensor cluster each — a breakdown of either charger
/// leaves a survivor that can reach every sensor.
fn two_depot_network() -> Network {
    let sensors = vec![
        Point2::new(10.0, 0.0),
        Point2::new(20.0, 10.0),
        Point2::new(15.0, -10.0),
        Point2::new(110.0, 0.0),
        Point2::new(120.0, 10.0),
        Point2::new(115.0, -10.0),
    ];
    let depots = vec![Point2::ORIGIN, Point2::new(100.0, 0.0)];
    Network::new(sensors, depots)
}

#[test]
fn breakdown_scenario_recovers_on_surviving_depot() {
    let network = two_depot_network();
    let cycles = [2.0, 2.5, 3.0, 2.0, 2.5, 3.0];
    let cfg = SimConfig { horizon: 100.0, slot: 10.0, seed: 42, charger_speed: None };
    let faults = FaultModel::none().with_breakdowns(15.0, 40.0).with_seed(7);

    let world = World::fixed(network.clone(), &cycles);
    let mut policy = MtdPolicy::new(&network);
    let (r, trace) = run_with_faults_traced(world, &cfg, &mut policy, &faults);

    // The seeded fault history must actually break something inside the
    // horizon and the recovery planner must put the orphans back on the
    // surviving charger.
    assert!(r.faults.breakdowns >= 1, "no breakdowns: {:?}", r.faults);
    assert!(r.faults.aborted_tours >= 1, "no aborted tours: {:?}", r.faults);
    assert!(r.faults.orphaned_charges >= 1);
    assert!(r.faults.emergency_dispatches >= 1, "no rescues: {:?}", r.faults);
    assert!(r.faults.recovered_orphans >= 1);
    assert!(r.faults.max_recovery_latency >= 0.0);
    assert!(r.faults.total_recovery_latency >= r.faults.max_recovery_latency, "sum below max");

    // Downtime accounting is per depot and clipped to the horizon.
    assert_eq!(r.faults.per_charger_downtime.len(), 2);
    assert!(r.faults.total_downtime() > 0.0);
    assert!(r.faults.per_charger_downtime.iter().all(|&d| (0.0..=100.0).contains(&d)));

    // The trace agrees with the result tallies.
    let (breakdowns, repairs, aborted, rescues, _retries) = trace.fault_counts();
    assert_eq!(breakdowns, r.faults.breakdowns);
    assert_eq!(repairs, r.faults.repairs);
    assert!(aborted >= r.faults.aborted_tours, "abort events include mid-tour cancels");
    assert_eq!(rescues, r.faults.emergency_dispatches);

    // Emergency dispatches are real dispatches with real travel cost.
    assert!(r.dispatches > 0);
    assert!(r.service_cost > 0.0);
}

#[test]
fn same_seed_same_fault_model_is_deterministic() {
    let network = two_depot_network();
    let mean_cycles = [2.0, 3.0, 2.5, 2.0, 3.0, 2.5];
    let cfg = SimConfig { horizon: 80.0, slot: 10.0, seed: 9, charger_speed: None };
    let faults = FaultModel::none()
        .with_breakdowns(20.0, 25.0)
        .with_rate_shocks(RateShock::shocks(0.1, 1.5, 2))
        .with_seed(3);

    let make_world =
        || World::variable(network.clone(), &mean_cycles, CycleDistribution::Random, 1.0, 6.0);
    let mut p1 = MtdPolicy::new(&network);
    let (r1, t1) = run_with_faults_traced(make_world(), &cfg, &mut p1, &faults);
    let mut p2 = MtdPolicy::new(&network);
    let (r2, t2) = run_with_faults_traced(make_world(), &cfg, &mut p2, &faults);

    assert_eq!(r1, r2, "same seed + same fault model must reproduce the run");
    assert_eq!(t1, t2, "trace must reproduce too");

    // A different fault seed draws a different fault history.
    let mut p3 = MtdPolicy::new(&network);
    let r3 = run_with_faults(make_world(), &cfg, &mut p3, &faults.with_seed(4));
    assert_ne!(
        (r1.faults.breakdowns, r1.service_cost.to_bits()),
        (r3.faults.breakdowns, r3.service_cost.to_bits()),
        "fault seed must matter"
    );
}

#[test]
fn sole_charger_down_exhausts_retries_and_gives_up() {
    let sensors = vec![Point2::new(10.0, 0.0), Point2::new(20.0, 0.0)];
    let network = Network::new(sensors, vec![Point2::ORIGIN]);
    let cycles = [2.0, 3.0];
    let cfg = SimConfig { horizon: 60.0, slot: 10.0, seed: 5, charger_speed: None };
    // The only charger fails early and the repair draw is astronomically
    // long, so recovery can only back off until the budget runs out.
    let faults = FaultModel::none()
        .with_breakdowns(5.0, 1e7)
        .with_recovery(RecoveryConfig { urgency_window: 1.0, max_retries: 3, backoff: 0.25 })
        .with_seed(1);

    let world = World::fixed(network.clone(), &cycles);
    let mut policy = MtdPolicy::new(&network);
    let (r, trace) = run_with_faults_traced(world, &cfg, &mut policy, &faults);

    assert!(r.faults.breakdowns >= 1);
    assert_eq!(r.faults.emergency_dispatches, 0, "no survivor to dispatch");
    assert!(r.faults.recovery_retries >= 1, "retries expected: {:?}", r.faults);
    assert!(r.faults.recovery_giveups >= 1, "giveups expected: {:?}", r.faults);
    // Abandoned sensors eventually die, and their dead time accrues to the
    // horizon.
    assert!(!r.deaths.is_empty());
    assert!(r.faults.dead_sensor_time > 0.0);
    let (_, _, _, rescues, retries) = trace.fault_counts();
    assert_eq!(rescues, 0);
    assert_eq!(retries, r.faults.recovery_retries);
}

#[test]
fn rate_shocks_inflate_consumption() {
    let network = two_depot_network();
    let cycles = [2.0, 2.5, 3.0, 2.0, 2.5, 3.0];
    let cfg = SimConfig { horizon: 80.0, slot: 10.0, seed: 13, charger_speed: None };

    let mut p1 = MtdPolicy::new(&network);
    let baseline = run(World::fixed(network.clone(), &cycles), &cfg, &mut p1);

    // Permanent 2x shock from slot 0 onwards.
    let faults = FaultModel::none().with_rate_shocks(RateShock::shocks(1.0, 2.0, u32::MAX));
    let mut p2 = MtdPolicy::new(&network);
    let shocked = run_with_faults(World::fixed(network.clone(), &cycles), &cfg, &mut p2, &faults);

    // Doubled drain halves the cycles the policy observes, so it must
    // charge (and travel) strictly more.
    assert!(
        shocked.charges > baseline.charges,
        "shocked {} <= baseline {}",
        shocked.charges,
        baseline.charges
    );
    assert!(shocked.service_cost > baseline.service_cost);
    assert_eq!(shocked.faults.breakdowns, 0);
}

#[test]
fn travel_mode_breakdowns_and_speed_jitter() {
    let network = two_depot_network();
    let cycles = [4.0, 5.0, 6.0, 4.0, 5.0, 6.0];
    let cfg = SimConfig { horizon: 120.0, slot: 10.0, seed: 21, charger_speed: Some(200.0) };

    let mut p0 = MtdPolicy::new(&network);
    let plain = run(World::fixed(network.clone(), &cycles), &cfg, &mut p0);
    assert!(plain.total_charge_delay > 0.0, "travel mode must produce delays");

    let faults = FaultModel::none().with_breakdowns(25.0, 30.0).with_speed_jitter(0.3).with_seed(2);
    let mut p1 = MtdPolicy::new(&network);
    let (r, trace) =
        run_with_faults_traced(World::fixed(network.clone(), &cycles), &cfg, &mut p1, &faults);

    assert!(r.faults.breakdowns >= 1, "no breakdowns: {:?}", r.faults);
    assert!(r.total_charge_delay > 0.0);
    // Speed jitter perturbs arrival times, so the delay totals cannot
    // coincide bit for bit with the nominal run.
    assert_ne!(r.total_charge_delay.to_bits(), plain.total_charge_delay.to_bits());
    // The merged event stream stays time-ordered for fault events too.
    let times: Vec<f64> = trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e,
                perpetuum_sim::TraceEvent::ChargerDown { .. }
                    | perpetuum_sim::TraceEvent::ChargerRepaired { .. }
            )
        })
        .map(|e| e.time())
        .collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}
