//! End-to-end tests of the variable-cycle pipeline: slot-resampled rates,
//! EWMA prediction, applicability-band replanning and `V^a` repair.

use perpetuum_core::network::Network;
use perpetuum_energy::CycleDistribution;
use perpetuum_geom::{deploy, rng::derived_rng, Field};
use perpetuum_sim::{run, GreedyPolicy, MtdPolicy, SimConfig, VarPolicy, World};

fn paper_like_world(n: usize, seed: u64, sigma: f64) -> (Network, World) {
    let field = Field::paper_default();
    let mut rng = derived_rng(seed, 0);
    let sensors = deploy::uniform_deployment(field, n, &mut rng);
    let depots = deploy::place_depots(
        field,
        field.center(),
        3,
        deploy::DepotPlacement::OneAtBaseStation,
        &mut rng,
    );
    let network = Network::new(sensors, depots);
    let dist = CycleDistribution::Linear { sigma };
    let means = dist.mean_all(network.sensor_positions(), field.center(), 1.0, 50.0);
    let world = World::variable(network.clone(), &means, dist, 1.0, 50.0);
    (network, world)
}

#[test]
fn var_policy_keeps_network_alive_and_replans() {
    let (network, world) = paper_like_world(30, 7, 2.0);
    let mut policy = VarPolicy::new(&network);
    let cfg = SimConfig { horizon: 200.0, slot: 10.0, seed: 7, charger_speed: None };
    let r = run(world, &cfg, &mut policy);
    assert!(
        r.deaths.is_empty(),
        "unexpected deaths: {:?} (replans: {})",
        r.deaths,
        policy.replans()
    );
    assert!(r.service_cost > 0.0);
    assert!(policy.replans() > 0, "σ = 2 over 20 slots should trigger at least one replan");
}

#[test]
fn greedy_keeps_variable_network_alive() {
    let (network, world) = paper_like_world(30, 8, 2.0);
    let mut policy = GreedyPolicy::new(&network, 1.0);
    let cfg = SimConfig { horizon: 200.0, slot: 10.0, seed: 8, charger_speed: None };
    let r = run(world, &cfg, &mut policy);
    assert!(r.deaths.is_empty(), "unexpected deaths: {:?}", r.deaths);
    assert!(r.service_cost > 0.0);
}

#[test]
fn var_beats_greedy_on_linear_distribution() {
    // The paper's headline: MinTotalDistance-var undercuts Greedy under the
    // linear distribution. Average over a few topologies to wash out noise.
    let mut var_total = 0.0;
    let mut greedy_total = 0.0;
    for seed in 0..5u64 {
        let (network, world) = paper_like_world(40, 100 + seed, 2.0);
        let cfg = SimConfig { horizon: 300.0, slot: 10.0, seed: 100 + seed, charger_speed: None };

        let mut var_policy = VarPolicy::new(&network);
        let rv = run(world.clone(), &cfg, &mut var_policy);
        assert!(rv.deaths.is_empty(), "var deaths: {:?}", rv.deaths);
        var_total += rv.service_cost;

        let mut greedy_policy = GreedyPolicy::new(&network, 1.0);
        let rg = run(world, &cfg, &mut greedy_policy);
        assert!(rg.deaths.is_empty(), "greedy deaths: {:?}", rg.deaths);
        greedy_total += rg.service_cost;
    }
    assert!(var_total < greedy_total, "var {var_total} should undercut greedy {greedy_total}");
}

#[test]
fn sigma_zero_variable_world_matches_fixed_mtd() {
    // With σ = 0, cycles never change, no replans trigger, and the var
    // policy degenerates to Algorithm 3.
    let (network, world) = paper_like_world(25, 9, 0.0);
    let cfg = SimConfig { horizon: 150.0, slot: 10.0, seed: 9, charger_speed: None };

    let mut var_policy = VarPolicy::new(&network);
    let rv = run(world.clone(), &cfg, &mut var_policy);
    assert_eq!(var_policy.replans(), 0);

    let mut mtd_policy = MtdPolicy::new(&network);
    let rm = run(world, &cfg, &mut mtd_policy);
    assert!((rv.service_cost - rm.service_cost).abs() < 1e-6);
    assert_eq!(rv.dispatches, rm.dispatches);
}

#[test]
fn deterministic_given_seed() {
    let (network, world) = paper_like_world(20, 11, 2.0);
    let cfg = SimConfig { horizon: 100.0, slot: 10.0, seed: 11, charger_speed: None };
    let mut p1 = VarPolicy::new(&network);
    let r1 = run(world.clone(), &cfg, &mut p1);
    let mut p2 = VarPolicy::new(&network);
    let r2 = run(world, &cfg, &mut p2);
    assert_eq!(r1.service_cost, r2.service_cost);
    assert_eq!(r1.dispatches, r2.dispatches);
    assert_eq!(r1.charge_log, r2.charge_log);
}

#[test]
fn random_distribution_also_survives() {
    let field = Field::paper_default();
    let mut rng = derived_rng(21, 0);
    let sensors = deploy::uniform_deployment(field, 30, &mut rng);
    let depots = deploy::place_depots(
        field,
        field.center(),
        5,
        deploy::DepotPlacement::OneAtBaseStation,
        &mut rng,
    );
    let network = Network::new(sensors, depots);
    let dist = CycleDistribution::Random;
    let means = dist.mean_all(network.sensor_positions(), field.center(), 1.0, 50.0);
    let world = World::variable(network.clone(), &means, dist, 1.0, 50.0);
    let cfg = SimConfig { horizon: 200.0, slot: 10.0, seed: 21, charger_speed: None };
    let mut policy = VarPolicy::new(&network);
    let r = run(world, &cfg, &mut policy);
    assert!(r.deaths.is_empty(), "deaths: {:?}", r.deaths);
}
