//! Measurement-noise robustness: policies plan against noisy reported
//! rates while energy drains at the truth.

use perpetuum_core::network::Network;
use perpetuum_energy::CycleDistribution;
use perpetuum_geom::{deploy, derived_rng, Field};
use perpetuum_sim::{run, GreedyPolicy, SimConfig, VarPolicy, World};

fn setup(n: usize, seed: u64) -> (Network, Vec<f64>) {
    let field = Field::paper_default();
    let mut rng = derived_rng(seed, 0);
    let sensors = deploy::uniform_deployment(field, n, &mut rng);
    let depots = deploy::place_depots(
        field,
        field.center(),
        3,
        deploy::DepotPlacement::OneAtBaseStation,
        &mut rng,
    );
    let network = Network::new(sensors, depots);
    let dist = CycleDistribution::Linear { sigma: 2.0 };
    let means = dist.mean_all(network.sensor_positions(), field.center(), 2.0, 50.0);
    (network, means)
}

#[test]
fn zero_noise_identical_to_baseline() {
    let (network, means) = setup(20, 31);
    let cfg = SimConfig { horizon: 100.0, slot: 10.0, seed: 31, charger_speed: None };
    let dist = CycleDistribution::Linear { sigma: 2.0 };
    let base = {
        let world = World::variable(network.clone(), &means, dist, 2.0, 50.0);
        let mut p = VarPolicy::new(&network);
        run(world, &cfg, &mut p)
    };
    let zero_noise = {
        let world =
            World::variable(network.clone(), &means, dist, 2.0, 50.0).with_measurement_noise(0.0);
        let mut p = VarPolicy::new(&network);
        run(world, &cfg, &mut p)
    };
    assert_eq!(base.service_cost, zero_noise.service_cost);
    assert_eq!(base.charge_log, zero_noise.charge_log);
}

#[test]
fn greedy_threshold_margin_absorbs_noise() {
    // With the paper's Δl = τ_min and 10% under-reported rates, sensors
    // die just before the next poll; widening the threshold to cover the
    // worst-case reporting error restores perpetual operation.
    let (network, means) = setup(25, 32);
    let dist = CycleDistribution::Linear { sigma: 2.0 };
    let make =
        || World::variable(network.clone(), &means, dist, 2.0, 50.0).with_measurement_noise(0.10);
    let cfg = SimConfig { horizon: 200.0, slot: 10.0, seed: 32, charger_speed: None };

    let mut plain = GreedyPolicy::new(&network, 1.0);
    let r_plain = run(make(), &cfg, &mut plain);
    // The un-margined baseline is *expected* to lose sensors here.
    assert!(!r_plain.deaths.is_empty(), "noise should bite the naive threshold");

    let mut widened = GreedyPolicy::new(&network, 1.0);
    widened.threshold = 1.3; // covers poll period + 10% mis-estimate slack
    widened.poll = Some(1.0); // …while still polling at the old cadence
    let r_wide = run(make(), &cfg, &mut widened);
    assert!(r_wide.is_perpetual(), "deaths: {:?}", r_wide.deaths);
}

#[test]
fn noise_changes_but_does_not_break_var_policy() {
    let (network, means) = setup(25, 33);
    let dist = CycleDistribution::Linear { sigma: 2.0 };
    let cfg = SimConfig { horizon: 200.0, slot: 10.0, seed: 33, charger_speed: None };

    let clean = {
        let world = World::variable(network.clone(), &means, dist, 2.0, 50.0);
        let mut p = VarPolicy::new(&network);
        run(world, &cfg, &mut p)
    };
    let noisy = {
        let world =
            World::variable(network.clone(), &means, dist, 2.0, 50.0).with_measurement_noise(0.10);
        // A 15% planning margin out-weighs the ≤ +11% cycle over-estimate
        // a −10% rate report can cause.
        let mut p = VarPolicy::with_margin(&network, 0.15);
        run(world, &cfg, &mut p)
    };
    // The noise stream must actually perturb behaviour…
    assert_ne!(clean.service_cost, noisy.service_cost);
    // …and the margin must keep everyone alive at bounded extra cost.
    assert!(noisy.is_perpetual(), "deaths: {:?}", noisy.deaths);
    assert!(noisy.service_cost < clean.service_cost * 2.0);
}

#[test]
fn noisy_runs_are_still_deterministic() {
    let (network, means) = setup(15, 34);
    let dist = CycleDistribution::Linear { sigma: 2.0 };
    let cfg = SimConfig { horizon: 100.0, slot: 10.0, seed: 34, charger_speed: None };
    let make =
        || World::variable(network.clone(), &means, dist, 2.0, 50.0).with_measurement_noise(0.2);
    let mut p1 = VarPolicy::new(&network);
    let r1 = run(make(), &cfg, &mut p1);
    let mut p2 = VarPolicy::new(&network);
    let r2 = run(make(), &cfg, &mut p2);
    assert_eq!(r1.service_cost, r2.service_cost);
    assert_eq!(r1.charge_log, r2.charge_log);
}
