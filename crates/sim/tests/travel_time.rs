//! Travel-time mode: charges land when the vehicle arrives, not at
//! dispatch time — probing the paper's zero-task-duration assumption.

use perpetuum_core::network::Network;
use perpetuum_geom::Point2;
use perpetuum_sim::{run, MtdPolicy, SimConfig, World};

fn line_network(n: usize) -> Network {
    let sensors: Vec<Point2> = (0..n).map(|i| Point2::new((i + 1) as f64 * 10.0, 0.0)).collect();
    Network::new(sensors, vec![Point2::ORIGIN])
}

#[test]
fn fast_chargers_match_instant_model() {
    let network = line_network(4);
    let cycles = [1.0, 2.0, 3.5, 8.0];
    let horizon = 50.0;

    // A 5% cycle margin: the slack a real deployment reserves for travel
    // time (without it, any sensor whose cycle equals its rounded cycle is
    // charged with zero slack and dies by an epsilon at ANY finite speed).
    let instant = {
        let mut p = MtdPolicy::with_margin(&network, 0.05);
        let cfg = SimConfig { horizon, slot: 10.0, seed: 1, charger_speed: None };
        run(World::fixed(network.clone(), &cycles), &cfg, &mut p)
    };
    let fast = {
        let mut p = MtdPolicy::with_margin(&network, 0.05);
        // 1e7 m per time unit: any tour completes in microseconds of model
        // time.
        let cfg = SimConfig { horizon, slot: 10.0, seed: 1, charger_speed: Some(1e7) };
        run(World::fixed(network.clone(), &cycles), &cfg, &mut p)
    };
    assert!(fast.is_perpetual(), "deaths: {:?}", fast.deaths);
    assert_eq!(fast.dispatches, instant.dispatches);
    assert!((fast.service_cost - instant.service_cost).abs() < 1e-9);
    assert_eq!(fast.charges, instant.charges);
    // Same charge times up to negligible travel offsets.
    for i in 0..4 {
        assert_eq!(fast.charge_log[i].len(), instant.charge_log[i].len());
        for (a, b) in fast.charge_log[i].iter().zip(instant.charge_log[i].iter()) {
            assert!((a - b).abs() < 1e-3, "sensor {i}: {a} vs {b}");
        }
    }
    assert!(fast.total_charge_delay > 0.0);
    assert!(fast.max_charge_delay < 1e-3);
}

#[test]
fn charges_arrive_in_tour_order() {
    // One depot, two sensors 10 m and 20 m out; speed 10 → arrivals at
    // dispatch + 1 and dispatch + 2.
    let network = line_network(2);
    let cycles = [8.0, 8.0];
    let mut p = MtdPolicy::new(&network);
    let cfg = SimConfig { horizon: 17.0, slot: 100.0, seed: 2, charger_speed: Some(10.0) };
    let r = run(World::fixed(network.clone(), &cycles), &cfg, &mut p);
    // Dispatch at t = 8: tour 0 → s0 (10 m) → s1 (20 m) → 0. The second
    // dispatch (t = 16) sends arrivals at 17 and 18, past the horizon, so
    // only the first tour's charges are delivered and accounted.
    assert_eq!(r.dispatches, 2); // t = 8 and t = 16
    assert_eq!(r.charge_log[0][0], 9.0);
    assert_eq!(r.charge_log[1][0], 10.0);
    assert!((r.total_charge_delay - (1.0 + 2.0)).abs() < 1e-9);
    assert_eq!(r.max_charge_delay, 2.0);
}

#[test]
fn slow_chargers_kill_sensors() {
    // Tour takes 4 time units but the sensors only last ~1–2 beyond their
    // schedule margin: deaths must appear and be recorded honestly.
    let network = line_network(3);
    let cycles = [1.0, 1.0, 1.0];
    let mut p = MtdPolicy::new(&network);
    // Tour 0→10→20→30→0 = 60 m at speed 15 → 4 time units per round.
    let cfg = SimConfig { horizon: 20.0, slot: 100.0, seed: 3, charger_speed: Some(15.0) };
    let r = run(World::fixed(network.clone(), &cycles), &cfg, &mut p);
    assert!(!r.deaths.is_empty(), "a 4-unit tour against 1-unit cycles must kill sensors");
    assert!(r.max_charge_delay >= 1.0);
}

#[test]
fn busy_charger_delays_next_departure() {
    // Cycle-1 sensors and a slow charger: the dispatch at t = 2 cannot
    // leave before the t = 1 tour returns, so delays accumulate.
    let network = line_network(2);
    let cycles = [1.0, 1.0];
    let mut p = MtdPolicy::new(&network);
    // Tour length 40 m, speed 20 → 2 time units per tour, dispatched every 1.
    let cfg = SimConfig { horizon: 10.0, slot: 100.0, seed: 4, charger_speed: Some(20.0) };
    let r = run(World::fixed(network.clone(), &cycles), &cfg, &mut p);
    // First tour departs at 1, returns at 3; second departs at 3, not 2.
    // Sensor 0 (10 m out) is reached at 1.5, then 3.5, then 5.5, ...
    let log = &r.charge_log[0];
    assert!((log[0] - 1.5).abs() < 1e-9, "{log:?}");
    assert!((log[1] - 3.5).abs() < 1e-9, "{log:?}");
    // Deaths inevitably pile up — the point is the accounting stays sane.
    let sum: f64 = r.per_charger_distance.iter().sum();
    assert!((sum - r.service_cost).abs() < 1e-9);
}
