//! Engine edge cases: event ordering, misaligned periods, plan
//! replacement, and zero-work scenarios.

use perpetuum_core::network::Network;
use perpetuum_core::schedule::{ScheduleSeries, TourSet};
use perpetuum_geom::Point2;
use perpetuum_graph::Tour;
use perpetuum_sim::policy::{ChargingPolicy, Observation, PlanUpdate};
use perpetuum_sim::{run, GreedyPolicy, MtdPolicy, SimConfig, World};

fn line_network(n: usize) -> Network {
    let sensors: Vec<Point2> = (0..n).map(|i| Point2::new((i + 1) as f64 * 10.0, 0.0)).collect();
    Network::new(sensors, vec![Point2::ORIGIN])
}

#[test]
fn greedy_with_fractional_tick_vs_integer_slots() {
    // tick = 0.7 never aligns with ΔT = 10 (except multiples of 7);
    // liveness must still hold thanks to the boundary checks.
    let network = line_network(5);
    let cycles = [1.0, 2.0, 3.0, 5.0, 8.0];
    let world = World::fixed(network.clone(), &cycles);
    let mut policy = GreedyPolicy::new(&network, 1.0);
    policy.threshold = 0.7; // also the polling period
    let cfg = SimConfig { horizon: 40.0, slot: 10.0, seed: 1, charger_speed: None };
    let r = run(world, &cfg, &mut policy);
    assert!(r.is_perpetual(), "deaths: {:?}", r.deaths);
}

#[test]
fn non_integer_slot_length() {
    let network = line_network(4);
    let cycles = [1.5, 2.5, 4.5, 7.5];
    let world = World::fixed(network.clone(), &cycles);
    let mut policy = MtdPolicy::new(&network);
    let cfg = SimConfig { horizon: 33.3, slot: 3.7, seed: 2, charger_speed: None };
    let r = run(world, &cfg, &mut policy);
    assert!(r.is_perpetual(), "deaths: {:?}", r.deaths);
    perpetuum_core::feasibility::check_with(&cycles, 33.3, |i| r.charge_log[i].clone()).unwrap();
}

/// A policy that replaces its plan at every slot boundary with a one-shot
/// dispatch of everything half a slot later — exercises plan replacement
/// with in-flight dispatches.
struct Replanner<'a> {
    network: &'a Network,
    slot: f64,
}

impl ChargingPolicy for Replanner<'_> {
    fn name(&self) -> &'static str {
        "Replanner"
    }

    fn initialize(&mut self, _obs: &Observation) -> PlanUpdate {
        PlanUpdate::Keep
    }

    fn on_slot_boundary(&mut self, obs: &Observation) -> PlanUpdate {
        let n = self.network.n();
        let depot = self.network.depot_node(0);
        let mut nodes = vec![depot];
        nodes.extend(0..n);
        let set = TourSet::new(vec![Tour::new(nodes)], self.network.dist(), |v| v >= n);
        let mut series = ScheduleSeries::new();
        let id = series.add_set(set);
        // Two dispatches; the second should be dropped by the next replace.
        series.push_dispatch(obs.time + self.slot * 0.5, id);
        series.push_dispatch(obs.time + self.slot * 1.5, id);
        PlanUpdate::Replace(series)
    }
}

#[test]
fn plan_replacement_drops_stale_dispatches() {
    let network = line_network(3);
    let cycles = [100.0, 100.0, 100.0]; // plenty of slack
    let world = World::fixed(network.clone(), &cycles);
    let slot = 5.0;
    let mut policy = Replanner { network: &network, slot };
    let cfg = SimConfig { horizon: 50.0, slot, seed: 3, charger_speed: None };
    let r = run(world, &cfg, &mut policy);
    // Boundaries at 5, 10, …, 45 → 9 replacements, each delivering exactly
    // one dispatch (at boundary + 2.5) before being superseded.
    assert_eq!(r.dispatches, 9);
    assert_eq!(r.charge_log[0].len(), 9);
    assert!((r.charge_log[0][0] - 7.5).abs() < 1e-9);
    assert!(r.is_perpetual());
}

#[test]
fn zero_sensor_world_runs_to_completion() {
    let network = Network::new(vec![], vec![Point2::ORIGIN]);
    let world = World::fixed(network.clone(), &[]);
    let mut policy = MtdPolicy::new(&network);
    let cfg = SimConfig { horizon: 10.0, slot: 1.0, seed: 4, charger_speed: None };
    let r = run(world, &cfg, &mut policy);
    assert_eq!(r.dispatches, 0);
    assert_eq!(r.service_cost, 0.0);
    assert!(r.is_perpetual());
}

#[test]
fn horizon_shorter_than_slot() {
    let network = line_network(2);
    let cycles = [1.0, 2.0];
    let world = World::fixed(network.clone(), &cycles);
    let mut policy = MtdPolicy::new(&network);
    let cfg = SimConfig { horizon: 3.0, slot: 10.0, seed: 5, charger_speed: None };
    let r = run(world, &cfg, &mut policy);
    assert!(r.is_perpetual(), "deaths: {:?}", r.deaths);
    // Dispatches at 1 and 2 for the cycle-1 sensor (and 2 covers sensor 1).
    assert_eq!(r.charge_log[0], vec![1.0, 2.0]);
}

#[test]
fn dispatch_exactly_at_horizon_is_not_executed() {
    struct AtHorizon<'a> {
        network: &'a Network,
    }
    impl ChargingPolicy for AtHorizon<'_> {
        fn name(&self) -> &'static str {
            "AtHorizon"
        }
        fn initialize(&mut self, obs: &Observation) -> PlanUpdate {
            let n = self.network.n();
            let set = TourSet::new(
                vec![Tour::new(vec![self.network.depot_node(0), 0])],
                self.network.dist(),
                |v| v >= n,
            );
            let mut series = ScheduleSeries::new();
            let id = series.add_set(set);
            series.push_dispatch(obs.horizon - 1.0, id); // executed
            series.push_dispatch(obs.horizon, id); // at T: not executed
            PlanUpdate::Replace(series)
        }
    }
    let network = line_network(1);
    let world = World::fixed(network.clone(), &[100.0]);
    let mut policy = AtHorizon { network: &network };
    let cfg = SimConfig { horizon: 10.0, slot: 100.0, seed: 6, charger_speed: None };
    let r = run(world, &cfg, &mut policy);
    assert_eq!(r.dispatches, 1);
    assert_eq!(r.charge_log[0], vec![9.0]);
}

#[test]
fn service_cost_is_deterministic_under_repeated_runs() {
    let network = line_network(6);
    let cycles = [1.0, 1.5, 2.5, 4.0, 6.5, 10.0];
    let cfg = SimConfig { horizon: 60.0, slot: 10.0, seed: 7, charger_speed: None };
    let mut costs = Vec::new();
    for _ in 0..3 {
        let mut policy = GreedyPolicy::new(&network, 1.0);
        let r = run(World::fixed(network.clone(), &cycles), &cfg, &mut policy);
        costs.push(r.service_cost);
    }
    assert_eq!(costs[0], costs[1]);
    assert_eq!(costs[1], costs[2]);
}
