//! The daemon proper: accept loop, bounded request queue, worker pool,
//! loopback admin listener, and the graceful-shutdown drain.
//!
//! Concurrency model (all `std`, no async runtime):
//!
//! * the **accept thread** pulls connections off the main listener and
//!   `try_send`s them into a bounded [`sync_channel`]; when the
//!   queue is full it sheds load right there — `503` with `Retry-After`
//!   written inline, never blocking the accept loop on a planner run;
//! * **workers** share the receiver behind a mutex, each popping one
//!   connection at a time: read → route → write, with per-request read
//!   timeouts so a stalled client cannot wedge a worker forever;
//! * the **admin thread** listens on a loopback-only socket for
//!   `POST /shutdown` (and `GET /healthz` for probes);
//! * **shutdown** latches the [`ShutdownSignal`], pokes both listeners so
//!   their `accept` calls return, drops the queue sender, and joins: the
//!   workers drain every already-queued connection before exiting, so no
//!   accepted request is ever reset.

use crate::handlers::AppState;
use crate::http::{error_response, read_request, Response};
use crate::journal::{FsyncPolicy, JournalSet, DEFAULT_COMPACT_EVERY};
use crate::router;
use crate::shutdown::ShutdownSignal;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Everything tunable about the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Main listener address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Admin listener address — must resolve to a loopback IP.
    pub admin_addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded queue capacity between accept and the workers; beyond it,
    /// connections are shed with `503`.
    pub queue_capacity: usize,
    /// Request body cap in bytes (`413` beyond it).
    pub max_body: usize,
    /// Plan-cache capacity in entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Live telemetry-session capacity (LRU eviction beyond it).
    pub session_capacity: usize,
    /// Session-store shard count (`0` = auto: one per worker, rounded up
    /// to a power of two).
    pub session_shards: usize,
    /// Max threads applying a `/telemetry/batch` request's shard groups
    /// in parallel (`0` = auto: the worker count).
    pub session_threads: usize,
    /// Per-connection socket read timeout: the longest one read syscall
    /// may wait for *any* byte to arrive. The deadline below bounds the
    /// whole request.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout — a slow-reading client cannot
    /// wedge a worker on the response.
    pub write_timeout: Duration,
    /// Whole-request deadline, enforced inside every read syscall: a
    /// client that trickles bytes (staying under the per-read timeout on
    /// each one) gets `408` once this much wall clock has passed since
    /// its connection was picked up. Zero disables.
    pub request_deadline: Duration,
    /// Background-refinement worker threads draining `/plan` upgrade
    /// jobs (`0` disables the pool; `refine=background` requests then
    /// stay constructive and count as dropped).
    pub refine_workers: usize,
    /// Write-ahead journal directory; `None` runs in-memory only.
    pub data_dir: Option<PathBuf>,
    /// When journaled appends reach stable storage.
    pub fsync_policy: FsyncPolicy,
    /// WAL records per shard before auto-compaction (`0` = only on
    /// drain).
    pub compact_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            admin_addr: "127.0.0.1:0".to_string(),
            workers: thread::available_parallelism().map_or(4, |n| n.get()).clamp(2, 16),
            queue_capacity: 64,
            max_body: 1 << 20,
            cache_capacity: 128,
            session_capacity: crate::handlers::DEFAULT_SESSION_CAPACITY,
            session_shards: 0,
            session_threads: 0,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(30),
            refine_workers: 1,
            data_dir: None,
            fsync_policy: FsyncPolicy::Batch,
            compact_every: DEFAULT_COMPACT_EVERY,
        }
    }
}

/// A running daemon: bound addresses plus the join handles needed to
/// drain it.
pub struct ServerHandle {
    /// The main listener's bound address.
    pub addr: SocketAddr,
    /// The admin listener's bound address (loopback).
    pub admin_addr: SocketAddr,
    shutdown: Arc<ShutdownSignal>,
    state: Arc<AppState>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The shared handler state (metrics + cache) — handy for tests and
    /// for the final stats printout.
    pub fn state(&self) -> &AppState {
        &self.state
    }

    /// An owning clone of the handler state, so metrics stay readable
    /// after [`ServerHandle::wait`] consumes the handle.
    pub fn state_arc(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// The shutdown signal, for wiring to signal handlers.
    pub fn shutdown_signal(&self) -> Arc<ShutdownSignal> {
        Arc::clone(&self.shutdown)
    }

    /// Requests shutdown without waiting for the drain.
    pub fn trigger_shutdown(&self) {
        self.shutdown.trigger();
    }

    /// Blocks until shutdown is requested (by signal, admin endpoint, or
    /// [`ServerHandle::trigger_shutdown`]), then drains and joins every
    /// thread. In-flight and queued requests complete first.
    pub fn wait(self) {
        self.shutdown.wait();
        // Wake the refinement pool: its workers block on the job queue,
        // not the listener, so the close is what lets them exit.
        self.state.refine_queue.close();
        for t in self.threads {
            let _ = t.join();
        }
        // Graceful drain: every in-flight request has been journaled by
        // now, so flush, fsync, and compact — a clean restart replays
        // zero WAL records.
        if let Some(journal) = &self.state.journal {
            if let Err(err) = journal.drain() {
                eprintln!("journal drain failed: {err}");
            }
        }
    }

    /// [`ServerHandle::trigger_shutdown`] + [`ServerHandle::wait`].
    pub fn shutdown(self) {
        self.shutdown.trigger();
        self.wait();
    }
}

fn bind_loopback_admin(addr: &str) -> io::Result<TcpListener> {
    let resolved: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    if resolved.is_empty() || !resolved.iter().all(|a| a.ip().is_loopback()) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("admin listener must bind a loopback address, got {addr}"),
        ));
    }
    TcpListener::bind(&resolved[..])
}

/// Binds both listeners, spawns the accept loop, workers, and admin
/// thread, and returns immediately.
pub fn start(cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let admin_listener = bind_loopback_admin(&cfg.admin_addr)?;
    let admin_addr = admin_listener.local_addr()?;

    let shutdown = Arc::new(ShutdownSignal::new());
    shutdown.register_waker(addr);
    shutdown.register_waker(admin_addr);

    let workers = cfg.workers.max(1);
    // Auto-tuning: by default the store gets one shard per worker (so
    // independent workers rarely collide on a shard) and a batch request
    // may fan its shard groups over as many threads as there are workers.
    let shards = if cfg.session_shards == 0 { workers } else { cfg.session_shards };
    let batch_threads = if cfg.session_threads == 0 { workers } else { cfg.session_threads };
    let mut state = AppState::new(cfg.cache_capacity)
        .with_sessions(cfg.session_capacity, shards)
        .with_batch_threads(batch_threads);
    if let Some(dir) = &cfg.data_dir {
        let journal = JournalSet::open(
            dir.clone(),
            state.sessions.shard_count(),
            cfg.fsync_policy,
            cfg.compact_every,
            Arc::clone(&state.metrics),
        )?;
        let stats = journal.recover(&state.sessions)?;
        if stats.sessions > 0 || stats.wal_records > 0 || stats.truncated_tail {
            eprintln!(
                "recovered {} session(s) from {} ({} snapshot + {} WAL records, {} skipped{})",
                stats.sessions,
                dir.display(),
                stats.snap_records,
                stats.wal_records,
                stats.skipped,
                if stats.truncated_tail { ", torn tail discarded" } else { "" },
            );
        }
        state = state.with_journal(journal);
    }
    let state = Arc::new(state);
    let (tx, rx) = sync_channel::<TcpStream>(cfg.queue_capacity.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let limits = ConnLimits {
        read_timeout: cfg.read_timeout,
        write_timeout: cfg.write_timeout,
        deadline: cfg.request_deadline,
        max_body: cfg.max_body,
    };
    let mut threads = Vec::with_capacity(cfg.workers + 2);
    for worker_id in 0..cfg.workers.max(1) {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        threads.push(
            thread::Builder::new()
                .name(format!("serve-worker-{worker_id}"))
                .spawn(move || worker_loop(&rx, &state, limits))?,
        );
    }

    for refine_id in 0..cfg.refine_workers {
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        threads.push(
            thread::Builder::new()
                .name(format!("serve-refine-{refine_id}"))
                .spawn(move || crate::refine::worker_loop(&state, &shutdown))?,
        );
    }

    {
        let shutdown = Arc::clone(&shutdown);
        let state = Arc::clone(&state);
        threads.push(thread::Builder::new().name("serve-accept".to_string()).spawn(move || {
            accept_loop(&listener, &tx, &state, &shutdown);
            // `tx` drops here: workers drain the queue, then exit.
        })?);
    }

    {
        let shutdown = Arc::clone(&shutdown);
        let read_timeout = cfg.read_timeout;
        threads.push(
            thread::Builder::new()
                .name("serve-admin".to_string())
                .spawn(move || admin_loop(&admin_listener, &shutdown, read_timeout))?,
        );
    }

    Ok(ServerHandle { addr, admin_addr, shutdown, state, threads })
}

fn accept_loop(
    listener: &TcpListener,
    tx: &std::sync::mpsc::SyncSender<TcpStream>,
    state: &AppState,
    shutdown: &ShutdownSignal,
) {
    for conn in listener.incoming() {
        if shutdown.is_triggered() {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Count the connection into the queue gauge *before* the send so
        // a worker's decrement can never race it below zero.
        state.metrics.queue_depth.fetch_add(1, Relaxed);
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                state.metrics.queue_depth.fetch_sub(1, Relaxed);
                state.metrics.queue_rejected.fetch_add(1, Relaxed);
                state.metrics.record_status(503);
                let resp =
                    Response::error(503, "overloaded", "request queue is full; retry shortly")
                        .with_header("retry-after", "1".to_string());
                let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                let _ = resp.write_to(&mut stream);
            }
            Err(TrySendError::Disconnected(_)) => {
                state.metrics.queue_depth.fetch_sub(1, Relaxed);
                break;
            }
        }
    }
}

/// Per-connection socket limits, copied into every worker.
#[derive(Debug, Clone, Copy)]
struct ConnLimits {
    read_timeout: Duration,
    write_timeout: Duration,
    deadline: Duration,
    max_body: usize,
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, state: &Arc<AppState>, limits: ConnLimits) {
    loop {
        // Hold the receiver lock only for the pop, never while serving.
        let stream = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        let Ok(stream) = stream else { break };
        state.metrics.queue_depth.fetch_sub(1, Relaxed);
        state.metrics.in_flight.fetch_add(1, Relaxed);
        serve_connection(state, stream, limits);
        state.metrics.in_flight.fetch_sub(1, Relaxed);
    }
}

fn serve_connection(state: &AppState, mut stream: TcpStream, limits: ConnLimits) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(limits.read_timeout));
    let _ = stream.set_write_timeout(Some(limits.write_timeout));
    // The deadline is enforced *inside* read_request — every read syscall
    // is clamped to the time remaining — so a client trickling one byte
    // per read-timeout interval cannot hold this worker past it.
    let deadline = (!limits.deadline.is_zero()).then(|| started + limits.deadline);
    let resp = match read_request(&stream, limits.max_body, deadline) {
        Ok(req) => {
            // Belt and braces for the post-read phase: a request that
            // arrived with no budget left is not worth routing.
            if deadline.is_some_and(|d| Instant::now() > d) {
                state.metrics.record_status(408);
                let _ = error_response(&crate::http::HttpError::Deadline { phase: "handling" })
                    .map(|resp| resp.write_to(&mut stream));
                return;
            }
            router::handle(state, &req)
        }
        Err(err) => match error_response(&err) {
            Some(resp) => resp,
            None => return, // socket died before a request arrived
        },
    };
    state.metrics.record_status(resp.status);
    let _ = resp.write_to(&mut stream);
}

fn admin_loop(listener: &TcpListener, shutdown: &Arc<ShutdownSignal>, read_timeout: Duration) {
    for conn in listener.incoming() {
        if shutdown.is_triggered() {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(read_timeout));
        let _ = stream.set_write_timeout(Some(read_timeout));
        // Loopback-only listener: the per-read socket timeout is enough,
        // no whole-request deadline.
        let resp = match read_request(&stream, 4096, None) {
            Ok(req) => match (req.method.as_str(), req.path.as_str()) {
                ("POST", "/shutdown") => {
                    // Answer first, then latch: the trigger's waker poke
                    // brings this loop (and the main accept loop) down.
                    let resp = Response::json(200, "{\"status\":\"shutting down\"}".to_string());
                    let _ = resp.write_to(&mut stream);
                    shutdown.trigger();
                    continue;
                }
                ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}".to_string()),
                (m, p) => Response::error(404, "not_found", &format!("no admin route for {m} {p}")),
            },
            Err(err) => match error_response(&err) {
                Some(resp) => resp,
                None => continue,
            },
        };
        let _ = resp.write_to(&mut stream);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn healthz_round_trip_and_graceful_shutdown() {
        let handle =
            start(ServerConfig { workers: 2, queue_capacity: 8, ..ServerConfig::default() })
                .expect("start");
        let addr = handle.addr;
        let resp = request(addr, "GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("\"status\":\"ok\""), "{resp}");
        handle.shutdown();
        // After the drain, new connections must be refused, not queued.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err());
    }

    #[test]
    fn admin_shutdown_endpoint_drains_the_daemon() {
        let handle = start(ServerConfig::default()).expect("start");
        let admin = handle.admin_addr;
        assert!(admin.ip().is_loopback());
        let resp = request(admin, "POST /shutdown HTTP/1.1\r\nhost: x\r\n\r\n");
        assert!(resp.contains("shutting down"), "{resp}");
        handle.wait(); // returns because the admin endpoint latched the signal
    }

    /// The request deadline must fire *inside* the read: with a 30s
    /// per-read socket timeout, only the deadline (100ms) can explain a
    /// prompt 408 on a stalled request head.
    #[test]
    fn request_deadline_interrupts_an_idle_read_before_the_socket_timeout() {
        let handle = start(ServerConfig {
            read_timeout: Duration::from_secs(30),
            request_deadline: Duration::from_millis(100),
            ..ServerConfig::default()
        })
        .expect("start");
        let mut stream = TcpStream::connect(handle.addr).expect("connect");
        stream.write_all(b"GET /healthz HT").expect("partial head");
        let started = Instant::now();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).expect("read response");
        assert!(resp.starts_with("HTTP/1.1 408"), "{resp}");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the deadline answered, not the 30s socket timeout"
        );
        handle.shutdown();
    }

    #[test]
    fn non_loopback_admin_addr_is_refused() {
        match start(ServerConfig { admin_addr: "0.0.0.0:0".to_string(), ..ServerConfig::default() })
        {
            Err(err) => assert_eq!(err.kind(), io::ErrorKind::InvalidInput),
            Ok(_) => panic!("0.0.0.0 must be rejected"),
        }
    }
}
