//! Minimal HTTP/1.1 over `std::net`: capped request parsing and response
//! writing.
//!
//! Deliberately tiny — the daemon speaks exactly the subset its JSON API
//! needs (`Content-Length`-framed bodies, `Connection: close` on every
//! response), with hard caps on header and body size so a malformed or
//! hostile request costs bounded memory and yields a clean `400`/`413`
//! instead of a panic or an OOM.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Most bytes of an oversized body the server drains before answering
/// `413`. Draining lets the client's in-flight writes complete so it
/// reads the response instead of a connection reset; the cap keeps a
/// hostile multi-gigabyte declaration from tying a worker up.
pub const MAX_DRAIN_BYTES: usize = 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or body framing — maps to `400`.
    Bad(String),
    /// Declared body exceeds the configured cap — maps to `413`.
    TooLarge {
        /// The configured body cap (bytes).
        limit: usize,
        /// The `Content-Length` the client declared.
        declared: usize,
    },
    /// The client fed bytes slower than the socket timeout / request
    /// deadline allows — maps to `408`.
    Deadline {
        /// Which phase timed out (`"head"`, `"body"`, `"handling"`).
        phase: &'static str,
    },
    /// Socket-level failure before a full request arrived; no response
    /// can usefully be written.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Bad(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge { limit, declared } => {
                write!(f, "payload of {declared} bytes exceeds {limit}-byte limit")
            }
            HttpError::Deadline { phase } => write!(f, "deadline exceeded while reading {phase}"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// A parsed request: method, path, negotiation headers, and the
/// (possibly empty) body.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string included verbatim.
    pub path: String,
    /// Lowercased `Content-Type` value, when the client sent one.
    pub content_type: Option<String>,
    /// Lowercased `Accept` value, when the client sent one.
    pub accept: Option<String>,
    /// The `Content-Length`-framed body.
    pub body: Vec<u8>,
}

impl Request {
    /// A request with no negotiation headers (test helper shape).
    pub fn new(method: impl Into<String>, path: impl Into<String>, body: Vec<u8>) -> Self {
        Self { method: method.into(), path: path.into(), content_type: None, accept: None, body }
    }

    /// True when the request body declares the given media type (matched
    /// against the `Content-Type` value up to any `;` parameter).
    pub fn body_is(&self, media_type: &str) -> bool {
        self.content_type
            .as_deref()
            .map(|v| v.split(';').next().unwrap_or(v).trim() == media_type)
            .unwrap_or(false)
    }

    /// True when the client's `Accept` header asks for the given media
    /// type (simple containment — the daemon only negotiates between
    /// JSON and one binary type, so q-values are not needed).
    pub fn accepts(&self, media_type: &str) -> bool {
        self.accept.as_deref().map(|v| v.contains(media_type)).unwrap_or(false)
    }
}

/// A [`TcpStream`] wrapper that re-arms the socket read timeout before
/// *every* read syscall to `min(per-read timeout, time left until the
/// whole-request deadline)`. This is what makes the request deadline
/// interrupt a trickling client mid-read: with only a per-read socket
/// timeout, a client feeding one byte per interval resets the clock on
/// every read and can hold a worker for hours.
struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    /// The per-read socket timeout configured on the connection.
    per_read: Option<Duration>,
    /// Absolute whole-request deadline, when one is enforced.
    deadline: Option<Instant>,
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(deadline) = self.deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "request deadline exhausted",
                ));
            }
            let timeout = match self.per_read {
                Some(per_read) => per_read.min(remaining),
                None => remaining,
            };
            // `set_read_timeout` rejects a zero duration; clamping up to
            // 1ms turns "almost out of budget" into one last short read.
            self.stream.set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        }
        (&mut self.stream).read(buf)
    }
}

/// Reads one line (up to CRLF) with a byte budget shared across the whole
/// head. Returns the line without its terminator.
fn read_line_capped<R: Read>(
    reader: &mut BufReader<R>,
    budget: &mut usize,
) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let mut limited = reader.by_ref().take(*budget as u64 + 1);
    limited
        .read_until(b'\n', &mut line)
        .map_err(|e| match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                HttpError::Deadline { phase: "head" }
            }
            _ => HttpError::Io(e),
        })
        .and_then(|_| {
            if line.len() > *budget {
                return Err(HttpError::Bad(format!("request head exceeds {MAX_HEAD_BYTES} bytes")));
            }
            *budget -= line.len();
            if !line.ends_with(b"\n") {
                return Err(HttpError::Bad("request head truncated".into()));
            }
            while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                line.pop();
            }
            String::from_utf8(line).map_err(|_| HttpError::Bad("non-UTF-8 request head".into()))
        })
}

/// Reads and parses one request from the stream, enforcing `max_body` on
/// the declared `Content-Length`. Every framing violation — a malformed
/// request line, a non-numeric or negative length, a body shorter than
/// declared — comes back as [`HttpError::Bad`]. When `deadline` is set,
/// every read syscall is clamped to the time remaining, so even a client
/// trickling one byte per socket-timeout interval gets its `408` at the
/// deadline instead of holding the worker indefinitely.
pub fn read_request(
    stream: &TcpStream,
    max_body: usize,
    deadline: Option<Instant>,
) -> Result<Request, HttpError> {
    let per_read = stream.read_timeout().ok().flatten();
    let mut reader = BufReader::new(DeadlineStream { stream, per_read, deadline });
    let mut budget = MAX_HEAD_BYTES;

    let request_line = read_line_capped(&mut reader, &mut budget)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(HttpError::Bad(format!("malformed request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!("unsupported protocol {version:?}")));
    }

    let mut content_length: usize = 0;
    let mut content_type: Option<String> = None;
    let mut accept: Option<String> = None;
    loop {
        let line = read_line_capped(&mut reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Bad(format!("malformed header {line:?}")));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let value = value.trim();
            content_length = value
                .parse::<usize>()
                .map_err(|_| HttpError::Bad(format!("bad Content-Length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("content-type") {
            content_type = Some(value.trim().to_ascii_lowercase());
        } else if name.eq_ignore_ascii_case("accept") {
            accept = Some(value.trim().to_ascii_lowercase());
        }
    }

    if content_length > max_body {
        // Drain (bounded) what the client is still sending: with unread
        // bytes in the receive buffer, closing the socket sends RST and
        // most clients never see the 413. Draining up to the cap lets a
        // well-behaved client finish writing and read the response.
        let drain = content_length.min(MAX_DRAIN_BYTES) as u64;
        let _ = std::io::copy(&mut reader.by_ref().take(drain), &mut std::io::sink());
        return Err(HttpError::TooLarge { limit: max_body, declared: content_length });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => HttpError::Bad(format!(
            "body truncated: Content-Length {content_length} but the connection closed early"
        )),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            HttpError::Deadline { phase: "body" }
        }
        _ => HttpError::Io(e),
    })?;
    Ok(Request { method: method.to_string(), path: path.to_string(), content_type, accept, body })
}

/// An outgoing response. Every response closes the connection.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A binary response with the given media type.
    pub fn binary(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Self { status, content_type, extra_headers: Vec::new(), body }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// The typed JSON error body every failure path returns:
    /// `{"error":{"kind":…,"message":…}}`.
    pub fn error(status: u16, kind: &str, message: &str) -> Self {
        let kind_json = serde_json::to_string(&kind.to_string()).unwrap_or_default();
        let msg_json = serde_json::to_string(&message.to_string()).unwrap_or_default();
        Self::json(status, format!("{{\"error\":{{\"kind\":{kind_json},\"message\":{msg_json}}}}}"))
    }

    /// Adds a header. Builder-style.
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// Serializes the response to the stream (status line, headers, body)
    /// and flushes it.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Converts a read failure into the response to send (when one can be
/// sent at all).
pub fn error_response(err: &HttpError) -> Option<Response> {
    match err {
        HttpError::Bad(m) => Some(Response::error(400, "bad_request", m)),
        HttpError::TooLarge { limit, declared } => Some(
            Response::error(
                413,
                "payload_too_large",
                &format!("request body of {declared} bytes exceeds the {limit}-byte limit"),
            )
            .with_header("retry-after", "1".to_string()),
        ),
        HttpError::Deadline { phase } => Some(Response::error(
            408,
            "request_timeout",
            &format!("deadline exceeded while reading request {phase}"),
        )),
        HttpError::Io(_) => None,
    }
}

/// Canonical reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Writes `raw` into a socket pair and parses it server-side.
    fn parse(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (server, _) = listener.accept().unwrap();
        read_request(&server, max_body, None)
    }

    #[test]
    fn parses_a_simple_post() {
        let req = parse(b"POST /plan HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd", 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/plan");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn negotiation_headers_are_captured_lowercased() {
        let req = parse(
            b"POST /telemetry/batch HTTP/1.1\r\nContent-Type: Application/X-Perpetuum; v=1\r\nAccept: application/JSON, application/x-perpetuum\r\ncontent-length: 0\r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(req.content_type.as_deref(), Some("application/x-perpetuum; v=1"));
        assert!(req.body_is("application/x-perpetuum"), "parameters are ignored");
        assert!(!req.body_is("application/json"));
        assert!(req.accepts("application/x-perpetuum"));
        assert!(req.accepts("application/json"));
        assert!(!req.accepts("text/html"));
        // Absent headers: JSON default (no body type, accepts nothing).
        let plain = parse(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n", 1024).unwrap();
        assert_eq!(plain.content_type, None);
        assert!(!plain.accepts("application/x-perpetuum"));
    }

    #[test]
    fn get_without_length_has_empty_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn bad_content_length_is_rejected() {
        for cl in ["abc", "-5", "1e3", ""] {
            let raw = format!("POST /plan HTTP/1.1\r\ncontent-length: {cl}\r\n\r\n");
            match parse(raw.as_bytes(), 1024) {
                Err(HttpError::Bad(m)) => assert!(m.contains("Content-Length"), "{m}"),
                other => panic!("expected Bad for {cl:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_body_is_rejected() {
        match parse(b"POST /plan HTTP/1.1\r\ncontent-length: 100\r\n\r\nshort", 1024) {
            Err(HttpError::Bad(m)) => assert!(m.contains("truncated"), "{m}"),
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_too_large() {
        match parse(b"POST /plan HTTP/1.1\r\ncontent-length: 999999\r\n\r\n", 1024) {
            Err(HttpError::TooLarge { limit: 1024, declared: 999_999 }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_drained_so_the_client_can_finish_writing() {
        // The full declared body is on the wire; the parser must consume
        // it (bounded) rather than leave it unread — unread bytes at close
        // turn the 413 into a connection reset client-side.
        // Small enough to fit loopback socket buffers (the test client
        // writes before the server reads), big enough to prove draining.
        let declared = 32 * 1024;
        let mut raw =
            format!("POST /plan HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n").into_bytes();
        raw.extend(vec![b'x'; declared]);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(&raw).unwrap();
        let (server, _) = listener.accept().unwrap();
        match read_request(&server, 1024, None) {
            Err(HttpError::TooLarge { limit: 1024, declared: d }) => assert_eq!(d, declared),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Every body byte was pulled off the socket: nothing pending.
        server.set_nonblocking(true).unwrap();
        let mut probe = [0u8; 1];
        use std::io::Read as _;
        match (&server).read(&mut probe) {
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            other => panic!("expected a fully drained socket, got {other:?}"),
        }
    }

    #[test]
    fn slow_clients_hit_the_deadline_not_a_parse_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        // Half a request, then silence.
        client.write_all(b"POST /plan HTTP/1.1\r\ncontent-le").unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_read_timeout(Some(std::time::Duration::from_millis(30))).unwrap();
        match read_request(&server, 1024, None) {
            Err(HttpError::Deadline { phase: "head" }) => {}
            other => panic!("expected Deadline, got {other:?}"),
        }
        // Same for a stalled body.
        let mut client2 = TcpStream::connect(addr).unwrap();
        client2.write_all(b"POST /plan HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc").unwrap();
        let (server2, _) = listener.accept().unwrap();
        server2.set_read_timeout(Some(std::time::Duration::from_millis(30))).unwrap();
        match read_request(&server2, 1024, None) {
            Err(HttpError::Deadline { phase: "body" }) => {}
            other => panic!("expected body Deadline, got {other:?}"),
        }
        let resp = error_response(&HttpError::Deadline { phase: "body" }).unwrap();
        assert_eq!(resp.status, 408);
        drop((client, client2));
    }

    /// The slow-loris case the per-read socket timeout cannot catch: a
    /// client trickling one byte per interval resets the socket timeout
    /// on every read. Only the whole-request deadline, enforced inside
    /// every read, can cut it off.
    #[test]
    fn trickling_client_cannot_outlive_the_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        // Per-read timeout generously above the trickle interval: every
        // individual read succeeds, so without the deadline this request
        // would be read to completion (or hang for `head bytes × 200ms`).
        server.set_read_timeout(Some(std::time::Duration::from_millis(200))).unwrap();
        let deadline = Instant::now() + Duration::from_millis(150);
        let writer = std::thread::spawn(move || {
            for &b in b"GET /healthz HTTP/1.1\r\nx-padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n\r\n" {
                if client.write_all(&[b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        let started = Instant::now();
        match read_request(&server, 1024, Some(deadline)) {
            Err(HttpError::Deadline { phase: "head" }) => {}
            other => panic!("expected head Deadline, got {other:?}"),
        }
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(2),
            "deadline must interrupt the trickle promptly, took {elapsed:?}"
        );
        drop(server);
        writer.join().unwrap();
    }

    #[test]
    fn malformed_request_line_is_rejected() {
        for raw in [
            &b"NONSENSE\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
        ] {
            assert!(matches!(parse(raw, 1024), Err(HttpError::Bad(_))), "{raw:?}");
        }
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(vec![b'a'; MAX_HEAD_BYTES + 10]);
        assert!(matches!(parse(&raw, 1024), Err(HttpError::Bad(_))));
    }

    #[test]
    fn error_bodies_are_typed_json() {
        let r = error_response(&HttpError::Bad("no \"quotes\"".into())).unwrap();
        assert_eq!(r.status, 400);
        let body = String::from_utf8(r.body).unwrap();
        let v = serde_json::parse_value(&body).unwrap();
        assert!(v.get("error").and_then(|e| e.get("kind")).is_some());
        let r = error_response(&HttpError::TooLarge { limit: 7, declared: 99 }).unwrap();
        assert_eq!(r.status, 413);
        assert!(r.extra_headers.iter().any(|(n, _)| *n == "retry-after"));
        assert!(error_response(&HttpError::Io(std::io::Error::other("x"))).is_none());
    }
}
