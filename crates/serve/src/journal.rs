//! Per-shard write-ahead journal: the daemon's durability layer.
//!
//! Sessions are event-sourced. The
//! [`OnlineController`](perpetuum_online::OnlineController) is a pure,
//! deterministic state machine (see `perpetuum_online::snapshot`), so a
//! session's complete state is its genesis — the [`ControllerSeed`]
//! captured at `POST /session` — plus every telemetry batch it has
//! *accepted* since. The journal appends exactly those events:
//!
//! * `Create` — session id + seed, written **before** the session becomes
//!   visible in the store, so no accepted frame can ever precede its
//!   genesis in the log;
//! * `Frames` — the accepted telemetry frames of one ingest, encoded with
//!   the existing PBT1 codec ([`wire::encode_frames`]), appended while
//!   the session's slot lock is still held so the journal order of one
//!   session equals its ingest order;
//! * `End` — the session was deleted, LRU-evicted, or quarantined after a
//!   panic; replay stops resurrecting it, and a later session at a new id
//!   can never inherit its state (ids are never reused).
//!
//! There is one `shard-<i>.wal` per session-store shard, selected by the
//! same multiplicative hash the store uses — all records of one session
//! live in one file in ingest order, and concurrent sessions on different
//! shards never contend on a journal lock. Each record is framed
//! `u32 len · u32 crc32 · u8 tag · body`; replay verifies the CRC and
//! stops at the first incomplete or corrupt record, so a crash mid-append
//! (or a `kill -9` mid-`write`) costs at most the unacknowledged tail —
//! every record whose `200` the client saw is intact, because the append
//! happens before the response is written.
//!
//! **Snapshots** are log compaction, not state dumps: when a shard's WAL
//! grows past `compact_every` records (and on graceful drain), the shard
//! rewrites `snap` + `wal` into a fresh `shard-<i>.snap` keeping only the
//! records of sessions that are still live, then truncates the WAL. The
//! snapshot replacement is atomic (tmp-file + rename), but the *pair* of
//! steps is not — a `kill -9` between the rename and the truncation
//! leaves a snapshot that already folds the WAL's records next to the
//! un-truncated WAL, and replaying both would double-ingest the tail.
//! `Epoch` records close that window: every WAL opens with the
//! generation it belongs to, every snapshot opens with the highest
//! generation it has folded in, and recovery (and a retried compaction)
//! skips any WAL whose generation is not strictly newer than its
//! snapshot's. A byte-identical recovery *must* replay the accepted
//! stream (a field dump of controller internals could not be proven
//! faithful); compaction merely drops the streams of dead sessions.
//! After a clean drain every WAL holds only its epoch marker and restart
//! replays zero WAL records.
//!
//! `--fsync-policy` trades durability for throughput: `always` fsyncs
//! every append inline (power-loss safe), `batch` hands fsync to a
//! background flusher thread — kicked once a shard accumulates
//! [`BATCH_FSYNC_RECORDS`] unsynced appends, sweeping at least every
//! `FLUSH_INTERVAL` while anything is dirty — so the request path never
//! waits on the disk; `never` only fsyncs on drain. Appends are *group
//! committed*: they stage encoded records in a per-shard buffer, and
//! handlers [`flush`](JournalSet::flush) — one `write()` per dirty shard
//! — before acknowledging the request, so every acknowledged record is
//! in the kernel and a daemon crash (`kill -9`) loses nothing under any
//! policy; the page cache survives the process, and the policy only
//! governs what an OS/power failure can take.

use crate::metrics::Metrics;
use crate::session::shard_index;
use crate::wire::{self, Frame, Reader, WireError, Writer};
use perpetuum_online::{ControllerSeed, OnlineConfig};
use std::fs::{self, File, OpenOptions};
use std::io::{Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Unsynced appends that make a shard kick the background flusher under
/// [`FsyncPolicy::Batch`].
pub const BATCH_FSYNC_RECORDS: u64 = 64;

/// How long the batch flusher sleeps between sweeps when nobody kicks it.
const FLUSH_INTERVAL: Duration = Duration::from_millis(50);

/// Minimum spacing between flusher sweeps, kicks included: under a hot
/// ingest load, shards cross [`BATCH_FSYNC_RECORDS`] constantly, and
/// fsync storms stall the appenders' `write()`s on the same inodes.
const FLUSH_MIN_SPACING: Duration = Duration::from_millis(10);

/// Default WAL records per shard before an automatic compaction.
pub const DEFAULT_COMPACT_EVERY: u64 = 4096;

/// Bytes of record framing before the body: length, CRC, tag.
const HEADER_BYTES: usize = 4 + 4 + 1;

const TAG_CREATE: u8 = 1;
const TAG_FRAMES: u8 = 2;
const TAG_END: u8 = 3;
const TAG_EPOCH: u8 = 4;

/// Encoded size of an `Epoch` record (header + `u64` body) — enough
/// bytes to sniff a file's leading generation marker without reading the
/// whole file.
/// On-disk size of an [`Record::Epoch`] marker — what a drained WAL
/// holds instead of being empty.
pub const EPOCH_RECORD_BYTES: usize = HEADER_BYTES + 8;

// --- fsync policy --------------------------------------------------------

/// When appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every append: an acknowledged frame survives power
    /// loss.
    Always,
    /// A background thread fsyncs dirty shards — kicked every
    /// [`BATCH_FSYNC_RECORDS`] appends, sweeping at least every
    /// `FLUSH_INTERVAL` — and drain fsyncs everything: an acknowledged
    /// frame survives any daemon crash; power loss can cost the unsynced
    /// tail (bounded by the kick threshold plus one sweep interval).
    #[default]
    Batch,
    /// No explicit `fsync` until drain: durability is whatever the OS
    /// page cache gives.
    Never,
}

impl FsyncPolicy {
    /// Parses the `--fsync-policy` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(Self::Always),
            "batch" => Some(Self::Batch),
            "never" => Some(Self::Never),
            _ => None,
        }
    }

    /// The flag spelling of this policy.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Always => "always",
            Self::Batch => "batch",
            Self::Never => "never",
        }
    }
}

// --- CRC32 (IEEE, reflected) --------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3) over `bytes` — guards every journal record against
/// torn writes and bit rot without any new dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// --- records -------------------------------------------------------------

/// Why a session's journal stream ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndReason {
    /// `DELETE /session/{id}`.
    Deleted,
    /// LRU eviction made room for a newer session.
    Evicted,
    /// A panic during ingest poisoned the session; it was quarantined.
    Quarantined,
}

impl EndReason {
    fn tag(self) -> u8 {
        match self {
            Self::Deleted => 0,
            Self::Evicted => 1,
            Self::Quarantined => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(Self::Deleted),
            1 => Ok(Self::Evicted),
            2 => Ok(Self::Quarantined),
            other => Err(WireError::BadTag { field: "end reason", value: other }),
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A session was created: its id and everything needed to rebuild its
    /// controller from scratch.
    Create {
        /// The session id the store assigned.
        id: u64,
        /// The controller's construction arguments.
        seed: ControllerSeed,
    },
    /// Accepted telemetry frames (PBT1 body), in ingest order.
    Frames(Vec<Frame>),
    /// A session's stream ended; replay must not resurrect it.
    End {
        /// The ended session.
        id: u64,
        /// Why it ended.
        reason: EndReason,
    },
    /// Generation marker, always the first record of a file. In a WAL it
    /// names the generation its records belong to; in a snapshot it names
    /// the highest WAL generation the snapshot has folded in. Recovery
    /// replays a WAL only when its generation is strictly newer than its
    /// snapshot's — the equal/older case is exactly what a crash between
    /// a compaction's snapshot rename and its WAL truncation leaves
    /// behind, and replaying it would duplicate the folded records.
    Epoch {
        /// The monotonically increasing compaction generation.
        generation: u64,
    },
}

fn encode_seed(w: &mut Writer, seed: &ControllerSeed) {
    w.put_u32(seed.sensors.len() as u32);
    for &(x, y) in &seed.sensors {
        w.put_f64(x);
        w.put_f64(y);
    }
    w.put_u32(seed.depots.len() as u32);
    for &(x, y) in &seed.depots {
        w.put_f64(x);
        w.put_f64(y);
    }
    for &c in &seed.capacities {
        w.put_f64(c);
    }
    for &r in &seed.initial_rates {
        w.put_f64(r);
    }
    let cfg = &seed.config;
    w.put_f64(cfg.horizon);
    w.put_f64(cfg.gamma);
    w.put_u64(cfg.polish_rounds as u64);
    w.put_f64(cfg.margin);
    w.put_f64(cfg.emergency_slack);
}

fn decode_seed(r: &mut Reader<'_>) -> Result<ControllerSeed, WireError> {
    let n = r.get_count("seed sensors", 16)?;
    let mut sensors = Vec::with_capacity(n);
    for _ in 0..n {
        sensors.push((r.get_f64()?, r.get_f64()?));
    }
    let q = r.get_count("seed depots", 16)?;
    let mut depots = Vec::with_capacity(q);
    for _ in 0..q {
        depots.push((r.get_f64()?, r.get_f64()?));
    }
    let mut capacities = Vec::with_capacity(n);
    for _ in 0..n {
        capacities.push(r.get_f64()?);
    }
    let mut initial_rates = Vec::with_capacity(n);
    for _ in 0..n {
        initial_rates.push(r.get_f64()?);
    }
    let mut config = OnlineConfig::new(r.get_f64()?);
    config.gamma = r.get_f64()?;
    config.polish_rounds = r.get_u64()? as usize;
    config.margin = r.get_f64()?;
    config.emergency_slack = r.get_f64()?;
    Ok(ControllerSeed { sensors, depots, capacities, initial_rates, config })
}

/// Frames the record as `u32 len · u32 crc · u8 tag · body`.
pub fn encode_record(record: &Record) -> Vec<u8> {
    let mut body = Writer::default();
    let tag = match record {
        Record::Create { id, seed } => {
            body.put_u64(*id);
            encode_seed(&mut body, seed);
            TAG_CREATE
        }
        Record::Frames(frames) => {
            body.put_bytes(&wire::encode_frames(frames));
            TAG_FRAMES
        }
        Record::End { id, reason } => {
            body.put_u64(*id);
            body.put_u8(reason.tag());
            TAG_END
        }
        Record::Epoch { generation } => {
            body.put_u64(*generation);
            TAG_EPOCH
        }
    };
    let body = body.into_bytes();
    let mut framed = Writer::with_capacity(HEADER_BYTES + body.len());
    framed.put_u32((1 + body.len()) as u32);
    let mut payload = Vec::with_capacity(1 + body.len());
    payload.push(tag);
    payload.extend_from_slice(&body);
    framed.put_u32(crc32(&payload));
    framed.put_bytes(&payload);
    framed.into_bytes()
}

fn decode_body(tag: u8, body: &[u8]) -> Result<Record, WireError> {
    match tag {
        TAG_CREATE => {
            let mut r = Reader::new(body);
            let id = r.get_u64()?;
            let seed = decode_seed(&mut r)?;
            r.finish()?;
            Ok(Record::Create { id, seed })
        }
        TAG_FRAMES => Ok(Record::Frames(wire::decode_frames(body)?)),
        TAG_END => {
            let mut r = Reader::new(body);
            let id = r.get_u64()?;
            let reason = EndReason::from_tag(r.get_u8()?)?;
            r.finish()?;
            Ok(Record::End { id, reason })
        }
        TAG_EPOCH => {
            let mut r = Reader::new(body);
            let generation = r.get_u64()?;
            r.finish()?;
            Ok(Record::Epoch { generation })
        }
        other => Err(WireError::BadTag { field: "record tag", value: other }),
    }
}

/// A decoded journal file: every record up to the first incomplete or
/// corrupt one.
#[derive(Debug, Default)]
pub struct DecodedLog {
    /// The intact records, in file order.
    pub records: Vec<Record>,
    /// Bytes consumed by the intact prefix.
    pub clean_bytes: usize,
    /// True when the file carried a torn/corrupt tail that was dropped.
    pub truncated: bool,
}

/// Decodes a journal file with crash-tolerant tail semantics: a record
/// whose header, body, or CRC is incomplete or wrong ends the scan. That
/// is exactly the state a `kill -9` mid-append leaves behind — everything
/// before the tear was acknowledged and is kept, the tear itself never
/// was and is dropped.
pub fn decode_log(bytes: &[u8]) -> DecodedLog {
    let mut out = DecodedLog::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < HEADER_BYTES {
            out.truncated = true;
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc =
            u32::from_le_bytes([bytes[pos + 4], bytes[pos + 5], bytes[pos + 6], bytes[pos + 7]]);
        let payload_start = pos + 8;
        if len == 0 || bytes.len() - payload_start < len {
            out.truncated = true;
            break;
        }
        let payload = &bytes[payload_start..payload_start + len];
        if crc32(payload) != crc {
            out.truncated = true;
            break;
        }
        match decode_body(payload[0], &payload[1..]) {
            Ok(record) => out.records.push(record),
            Err(_) => {
                // A CRC-valid but undecodable record: treat like any other
                // tail corruption — keep the clean prefix, stop here.
                out.truncated = true;
                break;
            }
        }
        pos = payload_start + len;
        out.clean_bytes = pos;
    }
    out
}

// --- the journal set -----------------------------------------------------

/// One shard's WAL file plus its flush/compaction bookkeeping.
struct ShardFile {
    wal: File,
    /// Encoded records staged since the last [`JournalSet::flush`] —
    /// group commit: appends memcpy here, flush issues one `write()`.
    staged: Vec<u8>,
    /// Records inside `staged`.
    staged_records: u64,
    /// Bytes known written at a record boundary — the rollback point if
    /// a flush `write()` fails partway.
    wal_len: u64,
    /// Flushed records since the last fsync (drives [`FsyncPolicy::Batch`]).
    unsynced: u64,
    /// Whether this shard has already kicked the flusher since its last
    /// sync (so a hot shard kicks once per batch, not once per append).
    flush_pending: bool,
    /// WAL records since the last compaction (drives auto-compaction).
    wal_records: u64,
    /// The generation the WAL currently belongs to — always strictly
    /// greater than the on-disk snapshot's, which is what lets recovery
    /// and compaction retries tell a live WAL from one whose records a
    /// crashed compaction already folded into the snapshot.
    epoch: u64,
}

/// Truncates a shard's WAL and writes `generation`'s epoch marker as its
/// first record, fsyncing so a power loss cannot persist later records
/// without the marker that scopes them. Called with the shard lock held
/// (or before the shard is shared).
fn stamp_wal(shard: &mut ShardFile, generation: u64, metrics: &Metrics) -> std::io::Result<()> {
    let header = encode_record(&Record::Epoch { generation });
    shard.wal.set_len(0)?;
    shard.wal.seek(std::io::SeekFrom::Start(0))?;
    shard.wal.write_all(&header)?;
    shard.wal.sync_data()?;
    metrics.journal_bytes_written.fetch_add(header.len() as u64, Relaxed);
    metrics.journal_fsyncs.fetch_add(1, Relaxed);
    shard.wal_len = header.len() as u64;
    shard.epoch = generation;
    shard.wal_records = 0;
    shard.unsynced = 0;
    shard.flush_pending = false;
    Ok(())
}

/// Wakes the batch flusher and tells it when to stop.
#[derive(Default)]
struct FlushSignal {
    state: Mutex<FlushState>,
    wake: Condvar,
}

#[derive(Default)]
struct FlushState {
    stop: bool,
    kicked: bool,
}

/// Background fsync for [`FsyncPolicy::Batch`]: the request path only
/// `write()`s; this thread clones each dirty shard's file handle under
/// the shard lock and fsyncs *outside* it, so appenders never wait on
/// the disk.
struct Flusher {
    signal: Arc<FlushSignal>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Flusher {
    fn spawn(shards: Arc<Vec<Mutex<ShardFile>>>, metrics: Arc<Metrics>) -> Self {
        let signal = Arc::new(FlushSignal::default());
        let sig = Arc::clone(&signal);
        let thread = std::thread::Builder::new()
            .name("journal-flush".into())
            .spawn(move || loop {
                let stop = {
                    let state = sig.state.lock().unwrap_or_else(|e| e.into_inner());
                    let (mut state, _) = sig
                        .wake
                        .wait_timeout_while(state, FLUSH_INTERVAL, |s| !s.stop && !s.kicked)
                        .unwrap_or_else(|e| e.into_inner());
                    state.kicked = false;
                    state.stop
                };
                for shard in shards.iter() {
                    let dirty = {
                        let mut shard = match shard.lock() {
                            Ok(guard) => guard,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        if shard.unsynced == 0 {
                            None
                        } else {
                            shard.unsynced = 0;
                            shard.flush_pending = false;
                            shard.wal.try_clone().ok()
                        }
                    };
                    if let Some(file) = dirty {
                        if file.sync_data().is_ok() {
                            metrics.journal_fsyncs.fetch_add(1, Relaxed);
                        }
                    }
                }
                if stop {
                    break;
                }
                std::thread::sleep(FLUSH_MIN_SPACING);
            })
            .expect("spawn journal-flush thread");
        Self { signal, thread: Some(thread) }
    }

    /// Asks for a sweep soon (a shard crossed the batch threshold).
    fn kick(&self) {
        let mut state = self.signal.state.lock().unwrap_or_else(|e| e.into_inner());
        state.kicked = true;
        self.signal.wake.notify_one();
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        {
            let mut state = self.signal.state.lock().unwrap_or_else(|e| e.into_inner());
            state.stop = true;
        }
        self.signal.wake.notify_one();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The daemon's journal: one WAL + snapshot pair per session-store shard
/// under `--data-dir`.
pub struct JournalSet {
    dir: PathBuf,
    shard_count: usize,
    policy: FsyncPolicy,
    compact_every: u64,
    shards: Arc<Vec<Mutex<ShardFile>>>,
    /// One flag per shard: set when records are staged, cleared by flush.
    /// Lets [`flush`](Self::flush) skip clean shards without locking them
    /// — a single-session request touches one shard, not all of them.
    dirty: Vec<std::sync::atomic::AtomicBool>,
    metrics: Arc<Metrics>,
    flusher: Option<Flusher>,
    /// Test hook: when set, [`flush`](Self::flush) fails without touching
    /// the files — exercises the handlers' fail-stop paths.
    #[cfg(test)]
    pub(crate) fail_flush: std::sync::atomic::AtomicBool,
}

/// What a recovery pass reconstructed.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Sessions restored into the store.
    pub sessions: usize,
    /// Records replayed from WAL files (0 after a clean drain).
    pub wal_records: u64,
    /// Records replayed from snapshot files.
    pub snap_records: u64,
    /// Seeds or frames dropped because they failed to rebuild/apply
    /// (corrupt-but-CRC-valid data; should stay 0).
    pub skipped: u64,
    /// True when any file carried a torn tail.
    pub truncated_tail: bool,
}

fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.wal"))
}

fn snap_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.snap"))
}

fn read_file_if_exists(path: &Path) -> std::io::Result<Vec<u8>> {
    match fs::read(path) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// Fsyncs the directory itself so renames/truncations survive power loss.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Splits a decoded file into its leading generation marker (if any) and
/// its data records. `Epoch` records are markers, not session events, so
/// they are removed wholesale — a marker anywhere past position 0 would
/// be a bug, but tolerating it beats corrupting replay.
fn strip_epoch(records: Vec<Record>) -> (Option<u64>, Vec<Record>) {
    let epoch = match records.first() {
        Some(Record::Epoch { generation }) => Some(*generation),
        _ => None,
    };
    let data = records.into_iter().filter(|r| !matches!(r, Record::Epoch { .. })).collect();
    (epoch, data)
}

/// Reads just enough of `path` to learn its length and leading `Epoch`
/// marker: `(len, Some(generation))` for a stamped file, `(len, None)`
/// for a pre-epoch legacy file, `(0, None)` when the file is missing.
fn leading_epoch(path: &Path) -> std::io::Result<(u64, Option<u64>)> {
    use std::io::Read as _;
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((0, None)),
        Err(e) => return Err(e),
    };
    let len = file.metadata()?.len();
    let mut head = [0u8; EPOCH_RECORD_BYTES];
    let mut read = 0;
    while read < head.len() {
        match file.read(&mut head[read..])? {
            0 => break,
            n => read += n,
        }
    }
    let log = decode_log(&head[..read]);
    match log.records.first() {
        Some(Record::Epoch { generation }) => Ok((len, Some(*generation))),
        _ => Ok((len, None)),
    }
}

impl JournalSet {
    /// Opens (creating if needed) the journal directory with one WAL per
    /// shard. `shard_count` must equal the session store's
    /// [`shard_count`](crate::session::SessionStore::shard_count) so both
    /// agree on which shard owns a session. `compact_every = 0` disables
    /// auto-compaction (drain still compacts).
    pub fn open(
        dir: impl Into<PathBuf>,
        shard_count: usize,
        policy: FsyncPolicy,
        compact_every: u64,
        metrics: Arc<Metrics>,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let wal = OpenOptions::new().create(true).append(true).open(wal_path(&dir, i))?;
            let existing = wal.metadata()?.len();
            let snap_epoch = leading_epoch(&snap_path(&dir, i))?.1.unwrap_or(0);
            let (_, wal_epoch) = leading_epoch(&wal_path(&dir, i))?;
            let mut shard = ShardFile {
                wal,
                staged: Vec::new(),
                staged_records: 0,
                wal_len: existing,
                unsynced: 0,
                flush_pending: false,
                wal_records: 0,
                epoch: 0,
            };
            match wal_epoch {
                Some(w) if w > snap_epoch => {
                    // Live WAL, strictly newer than the snapshot. Unknown
                    // record count: treat bytes as records so a fat WAL
                    // still compacts promptly.
                    shard.epoch = w;
                    shard.wal_records = existing.saturating_sub(EPOCH_RECORD_BYTES as u64) / 64;
                }
                Some(_) => {
                    // The WAL's generation is already folded into the
                    // snapshot — a compaction renamed its snapshot and
                    // crashed before truncating. Heal: truncate into a
                    // fresh generation.
                    stamp_wal(&mut shard, snap_epoch + 1, &metrics)?;
                }
                None if existing == 0 => {
                    // Fresh WAL: stamp it so even the very first
                    // compaction's crash window is detectable.
                    stamp_wal(&mut shard, snap_epoch + 1, &metrics)?;
                }
                None => {
                    // Pre-epoch legacy WAL, no marker to compare: treat
                    // its records as newer than the snapshot (legacy
                    // compaction truncated inline, so in the absence of a
                    // crash mid-upgrade the WAL tail really is newer).
                    shard.epoch = snap_epoch + 1;
                    shard.wal_records = existing / 64;
                }
            }
            shards.push(Mutex::new(shard));
        }
        let shards = Arc::new(shards);
        let dirty = (0..shard_count).map(|_| std::sync::atomic::AtomicBool::new(false)).collect();
        let flusher = (policy == FsyncPolicy::Batch)
            .then(|| Flusher::spawn(Arc::clone(&shards), Arc::clone(&metrics)));
        Ok(Self {
            dir,
            shard_count,
            policy,
            compact_every,
            shards,
            dirty,
            metrics,
            flusher,
            #[cfg(test)]
            fail_flush: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard whose files own session `id` (same hash as the store).
    pub fn shard_of(&self, id: u64) -> usize {
        shard_index(id, self.shard_count)
    }

    fn shard(&self, idx: usize) -> MutexGuard<'_, ShardFile> {
        match self.shards[idx].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Stages one encoded record in the shard's in-memory buffer. Nothing
    /// reaches the kernel until [`flush`](Self::flush) — callers MUST
    /// flush before acknowledging the request the record belongs to.
    fn append_to(&self, shard_idx: usize, record: &Record) {
        let bytes = encode_record(record);
        let mut shard = self.shard(shard_idx);
        shard.staged.extend_from_slice(&bytes);
        shard.staged_records += 1;
        self.metrics.journal_bytes_written.fetch_add(bytes.len() as u64, Relaxed);
        // Publish after staging (still under the lock): any flush() that
        // starts after this append returns is guaranteed to see the flag.
        self.dirty[shard_idx].store(true, std::sync::atomic::Ordering::Release);
    }

    /// Writes every staged record through to the kernel (one `write()`
    /// per dirty shard — group commit), making them `kill -9`-durable.
    /// Call after a request's appends and **before** its acknowledgement;
    /// a flush covers everything staged so far across all requests, and
    /// staging order per shard is append order, so the ack invariant
    /// holds no matter which thread's flush lands first. Under `always`
    /// the flush also fsyncs; under `batch` it kicks the background
    /// flusher once a shard crosses [`BATCH_FSYNC_RECORDS`].
    pub fn flush(&self) -> std::io::Result<()> {
        #[cfg(test)]
        if self.fail_flush.load(Relaxed) {
            return Err(std::io::Error::other("injected flush failure"));
        }
        let mut kick = false;
        for idx in 0..self.shard_count {
            // Claim-then-flush: if a racing append stages right after the
            // swap, it re-sets the flag and its own pre-ack flush covers
            // it — nothing acknowledged can be left behind.
            if !self.dirty[idx].swap(false, std::sync::atomic::Ordering::Acquire) {
                continue;
            }
            let mut shard = self.shard(idx);
            match self.flush_locked(idx, &mut shard) {
                Ok(k) => kick |= k,
                Err(e) => {
                    // The records were re-staged; re-flag the shard so a
                    // later flush retries them.
                    self.dirty[idx].store(true, std::sync::atomic::Ordering::Release);
                    return Err(e);
                }
            }
        }
        if kick {
            if let Some(flusher) = &self.flusher {
                flusher.kick();
            }
        }
        Ok(())
    }

    /// Writes one shard's staged bytes to its WAL file. Returns whether
    /// the caller should kick the background flusher.
    fn flush_locked(&self, idx: usize, shard: &mut ShardFile) -> std::io::Result<bool> {
        if shard.staged.is_empty() {
            return Ok(false);
        }
        let staged = std::mem::take(&mut shard.staged);
        if let Err(e) = shard.wal.write_all(&staged) {
            // A partial write would leave a torn record that the prefix
            // rule at recovery discards *along with everything after it*
            // — so roll the file back to the last record boundary and
            // re-stage the batch for the next flush to retry whole.
            let _ = shard.wal.set_len(shard.wal_len);
            shard.staged = staged;
            return Err(e);
        }
        shard.wal_len += staged.len() as u64;
        // Hand the allocation back so steady-state flushing never
        // re-allocates the staging buffer.
        let mut staged = staged;
        staged.clear();
        shard.staged = staged;
        shard.unsynced += shard.staged_records;
        shard.wal_records += shard.staged_records;
        shard.staged_records = 0;
        let mut kick = false;
        match self.policy {
            FsyncPolicy::Always => {
                shard.wal.sync_data()?;
                shard.unsynced = 0;
                self.metrics.journal_fsyncs.fetch_add(1, Relaxed);
            }
            FsyncPolicy::Batch => {
                if shard.unsynced >= BATCH_FSYNC_RECORDS && !shard.flush_pending {
                    shard.flush_pending = true;
                    kick = true;
                }
            }
            FsyncPolicy::Never => {}
        }
        if self.compact_every > 0 && shard.wal_records >= self.compact_every {
            self.compact_locked(idx, shard)?;
        }
        Ok(kick)
    }

    /// Stages a session's genesis. Call **before** the session becomes
    /// visible in the store, and [`flush`](Self::flush) before the ack.
    pub fn append_create(&self, id: u64, seed: &ControllerSeed) {
        self.append_to(self.shard_of(id), &Record::Create { id, seed: seed.clone() });
    }

    /// Stages accepted telemetry frames (all for one session — callers
    /// hold that session's slot lock, which makes the staging order equal
    /// the ingest order). [`flush`](Self::flush) before the ack.
    pub fn append_frames(&self, session: u64, frames: Vec<Frame>) {
        debug_assert!(frames.iter().all(|f| f.session == session));
        self.append_to(self.shard_of(session), &Record::Frames(frames));
    }

    /// Stages the end of a session's stream.
    pub fn append_end(&self, id: u64, reason: EndReason) {
        self.append_to(self.shard_of(id), &Record::End { id, reason });
    }

    /// Rewrites one shard's snapshot to only the records of live sessions
    /// and moves its WAL to the next generation. Called with the shard
    /// lock held. Crash-safe: the snapshot carries the generation it
    /// folded in, so if the rename lands but the WAL stamp does not, the
    /// next open/recovery (and a retry of this very call) sees
    /// `wal epoch <= snap epoch` and skips the already-folded records
    /// instead of replaying them twice.
    fn compact_locked(&self, idx: usize, shard: &mut ShardFile) -> std::io::Result<()> {
        let (snap_epoch, snap_records) =
            strip_epoch(decode_log(&read_file_if_exists(&snap_path(&self.dir, idx))?).records);
        let mut records = snap_records;
        // Fold the WAL only when the on-disk snapshot has not already
        // done so — a retry after a crashed/failed truncation must not
        // fold the same records twice.
        if snap_epoch.unwrap_or(0) < shard.epoch {
            let (_, wal_records) =
                strip_epoch(decode_log(&read_file_if_exists(&wal_path(&self.dir, idx))?).records);
            records.extend(wal_records);
        }
        self.write_snapshot(idx, shard.epoch, live_records(records))?;
        let next = shard.epoch + 1;
        stamp_wal(shard, next, &self.metrics)?;
        Ok(())
    }

    /// Atomically replaces shard `idx`'s snapshot with `records` under an
    /// `Epoch(epoch)` header (tmp-file + fsync + rename + dir fsync). An
    /// empty record set removes the snapshot — safe without a marker,
    /// because the WAL records a missing snapshot would "re-replay" are
    /// by construction all from dead sessions.
    fn write_snapshot(&self, idx: usize, epoch: u64, records: Vec<Record>) -> std::io::Result<()> {
        let path = snap_path(&self.dir, idx);
        if records.is_empty() {
            match fs::remove_file(&path) {
                Ok(()) => sync_dir(&self.dir)?,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            return Ok(());
        }
        let tmp = self.dir.join(format!("shard-{idx}.snap.tmp"));
        let mut file = File::create(&tmp)?;
        let mut written = 0u64;
        let header = encode_record(&Record::Epoch { generation: epoch });
        file.write_all(&header)?;
        written += header.len() as u64;
        for record in &records {
            let bytes = encode_record(record);
            file.write_all(&bytes)?;
            written += bytes.len() as u64;
        }
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, &path)?;
        sync_dir(&self.dir)?;
        self.metrics.journal_bytes_written.fetch_add(written, Relaxed);
        self.metrics.journal_fsyncs.fetch_add(2, Relaxed);
        Ok(())
    }

    /// Flushes and fsyncs every shard, then compacts: after `drain`,
    /// every WAL holds only its epoch marker and every live session sits
    /// in its snapshot — a clean restart replays zero WAL records.
    pub fn drain(&self) -> std::io::Result<()> {
        for idx in 0..self.shard_count {
            let mut shard = self.shard(idx);
            self.flush_locked(idx, &mut shard)?;
            shard.wal.sync_data()?;
            self.metrics.journal_fsyncs.fetch_add(1, Relaxed);
            shard.unsynced = 0;
            shard.flush_pending = false;
            self.compact_locked(idx, &mut shard)?;
        }
        Ok(())
    }

    /// Replays snapshots + WALs into `store`, restoring every live
    /// session byte-identically (same seed, same accepted stream, same
    /// ids — the id counter resumes past the highest ever assigned).
    /// Reads *every* `shard-*.{snap,wal}` present — including files from
    /// a run with a different `--shards` value — then rewrites the
    /// snapshots under the current shard mapping and truncates all WALs,
    /// so subsequent appends land in the right files.
    pub fn recover(&self, store: &crate::session::SessionStore) -> std::io::Result<RecoveryStats> {
        let started = std::time::Instant::now();
        let mut stats = RecoveryStats::default();

        // Gather each shard's snapshot + WAL as one record stream, in
        // file order. Per-session order holds within a stream; sessions
        // never span streams under a fixed shard count, and after a
        // shard-count change the ownership rule below plus the rebase
        // compaction restore the invariant before any new append.
        let mut streams: Vec<Vec<Record>> = Vec::new();
        let mut max_epoch = 0u64;
        for idx in self.shard_indices()? {
            let snap = decode_log(&read_file_if_exists(&snap_path(&self.dir, idx))?);
            let wal = decode_log(&read_file_if_exists(&wal_path(&self.dir, idx))?);
            stats.truncated_tail |= snap.truncated;
            let (snap_epoch, snap_records) = strip_epoch(snap.records);
            let (wal_epoch, wal_records) = strip_epoch(wal.records);
            let snap_epoch = snap_epoch.unwrap_or(0);
            max_epoch = max_epoch.max(snap_epoch).max(wal_epoch.unwrap_or(0));
            stats.snap_records += snap_records.len() as u64;
            let mut stream = snap_records;
            // Replay the WAL only when it is strictly newer than the
            // snapshot next to it: equal/older means a compaction renamed
            // a snapshot that already folds these records, then crashed
            // before truncating. A legacy WAL without a marker predates
            // epochs (whose compactions truncated inline) and is always
            // replayed.
            let fresh = match wal_epoch {
                Some(w) => w > snap_epoch,
                None => true,
            };
            if fresh {
                stats.truncated_tail |= wal.truncated;
                stats.wal_records += wal_records.len() as u64;
                stream.extend(wal_records);
            }
            streams.push(stream);
        }

        // Replay: rebuild each live session's controller from its seed
        // and re-ingest its accepted stream. The first stream carrying a
        // session's `Create` *owns* it — a crash mid-rebase (after a
        // shard-count change) can leave the same session duplicated
        // across old and new files, and a duplicate `Create` must not
        // reset the accumulated stream nor its frames be ingested twice.
        let mut order: Vec<u64> = Vec::new();
        let mut live: std::collections::HashMap<u64, (ControllerSeed, Vec<Frame>)> =
            std::collections::HashMap::new();
        let mut owner: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut max_id = 0u64;
        for (stream_idx, stream) in streams.into_iter().enumerate() {
            for record in stream {
                match record {
                    Record::Create { id, seed } => {
                        max_id = max_id.max(id);
                        if let std::collections::hash_map::Entry::Vacant(slot) = owner.entry(id) {
                            slot.insert(stream_idx);
                            live.insert(id, (seed, Vec::new()));
                            order.push(id);
                        }
                    }
                    Record::Frames(frames) => {
                        for frame in frames {
                            // Only the owning stream's frames count; a
                            // frame whose session already ended (raced an
                            // eviction) is dropped — its state is gone
                            // either way.
                            if owner.get(&frame.session) != Some(&stream_idx) {
                                continue;
                            }
                            if let Some((_, stream)) = live.get_mut(&frame.session) {
                                stream.push(frame);
                            }
                        }
                    }
                    Record::End { id, .. } => {
                        max_id = max_id.max(id);
                        if owner.get(&id) == Some(&stream_idx) {
                            live.remove(&id);
                        }
                    }
                    Record::Epoch { .. } => {}
                }
            }
        }
        order.retain(|id| live.contains_key(id));

        let mut restored: Vec<(u64, Vec<Record>)> = Vec::new();
        for id in order {
            let Some((seed, stream)) = live.remove(&id) else { continue };
            let mut controller = match seed.build() {
                Ok(c) => c,
                Err(_) => {
                    stats.skipped += 1;
                    continue;
                }
            };
            let mut kept: Vec<Frame> = Vec::new();
            for frame in stream {
                let outcome = match &frame.payload {
                    wire::FramePayload::Telemetry(batch) => controller.ingest(batch).map(|_| ()),
                    wire::FramePayload::Events(batch) => {
                        controller.ingest_events(batch).map(|_| ())
                    }
                };
                match outcome {
                    Ok(()) => kept.push(frame),
                    Err(_) => stats.skipped += 1,
                }
            }
            if let Some(evicted) = store.insert_with_id(id, controller) {
                // The store is smaller than the journaled fleet: the LRU
                // (oldest-restored) session goes, exactly as a live insert
                // would evict it.
                self.metrics.session_evictions.fetch_add(1, Relaxed);
                restored.retain(|(rid, _)| *rid != evicted);
            }
            let mut records = vec![Record::Create { id, seed }];
            if !kept.is_empty() {
                records.push(Record::Frames(kept));
            }
            restored.push((id, records));
        }
        store.bump_next_id(max_id);
        stats.sessions = restored.len();

        // Rebase: rewrite snapshots under the *current* shard mapping,
        // stamp every WAL into a fresh generation, and drop stray files
        // from a previous shard-count configuration. Every rebased
        // snapshot gets one generation past anything seen on disk, so a
        // crash part-way through leaves any not-yet-stamped WAL at an
        // equal-or-older generation — skipped on the next recovery, not
        // replayed on top of the snapshot that already folds it.
        let rebased_epoch = max_epoch + 1;
        let mut by_shard: Vec<Vec<Record>> = (0..self.shard_count).map(|_| Vec::new()).collect();
        for (id, records) in restored {
            by_shard[self.shard_of(id)].extend(records);
        }
        for (idx, records) in by_shard.into_iter().enumerate() {
            let mut shard = self.shard(idx);
            self.write_snapshot(idx, rebased_epoch, records)?;
            shard.epoch = rebased_epoch;
            stamp_wal(&mut shard, rebased_epoch + 1, &self.metrics)?;
        }
        for idx in self.shard_indices()? {
            if idx >= self.shard_count {
                let _ = fs::remove_file(snap_path(&self.dir, idx));
                let _ = fs::remove_file(wal_path(&self.dir, idx));
            }
        }

        self.metrics.sessions_recovered.fetch_add(stats.sessions as u64, Relaxed);
        self.metrics.journal_replayed_wal_records.fetch_add(stats.wal_records, Relaxed);
        self.metrics.recovery_seconds.observe(started.elapsed().as_secs_f64());
        Ok(stats)
    }

    /// Every shard index with a `shard-<i>.snap` or `shard-<i>.wal` file
    /// in the directory, sorted and deduplicated. Each index's snapshot
    /// holds the compacted past and its WAL the tail that follows it.
    fn shard_indices(&self) -> std::io::Result<Vec<usize>> {
        let mut indices: Vec<usize> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix("shard-") else { continue };
            if let Some(idx) = rest
                .strip_suffix(".snap")
                .or_else(|| rest.strip_suffix(".wal"))
                .and_then(|i| i.parse().ok())
            {
                indices.push(idx);
            }
        }
        indices.sort_unstable();
        indices.dedup();
        Ok(indices)
    }

    /// Current WAL size in bytes of every shard (test/ops visibility).
    pub fn wal_bytes(&self) -> std::io::Result<Vec<u64>> {
        self.flush()?;
        (0..self.shard_count)
            .map(|i| Ok(fs::metadata(wal_path(&self.dir, i)).map(|m| m.len()).unwrap_or(0)))
            .collect()
    }
}

impl Drop for JournalSet {
    /// Best-effort flush of staged records, mirroring `BufWriter`: acks
    /// never depend on this (handlers flush before every ack), but a
    /// journal dropped without `drain` — tests, benches, error paths —
    /// should not silently shed staged bytes.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Filters a record stream down to live sessions: a session with an
/// `End` record — or no `Create` — contributes nothing.
fn live_records(records: Vec<Record>) -> Vec<Record> {
    use std::collections::HashSet;
    let mut created: HashSet<u64> = HashSet::new();
    let mut ended: HashSet<u64> = HashSet::new();
    for record in &records {
        match record {
            Record::Create { id, .. } => {
                created.insert(*id);
            }
            Record::End { id, .. } => {
                ended.insert(*id);
            }
            Record::Frames(_) | Record::Epoch { .. } => {}
        }
    }
    let alive = |id: &u64| created.contains(id) && !ended.contains(id);
    records
        .into_iter()
        .filter_map(|record| match record {
            Record::Create { id, seed } if alive(&id) => Some(Record::Create { id, seed }),
            Record::Frames(frames) => {
                let kept: Vec<Frame> = frames.into_iter().filter(|f| alive(&f.session)).collect();
                (!kept.is_empty()).then_some(Record::Frames(kept))
            }
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionStore;
    use perpetuum_online::{ClassEvent, EventBatch, TelemetryBatch};

    fn seed() -> ControllerSeed {
        ControllerSeed {
            sensors: vec![(10.0, 20.0), (40.0, 20.0)],
            depots: vec![(25.0, 60.0)],
            capacities: vec![1.0, 1.0],
            initial_rates: vec![0.25, 0.125],
            config: OnlineConfig::new(100.0),
        }
    }

    fn frame(session: u64, time: f64) -> Frame {
        Frame::telemetry(session, TelemetryBatch::tick(time))
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("perpetuum-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path, shards: usize) -> JournalSet {
        JournalSet::open(dir, shards, FsyncPolicy::Batch, 0, Arc::new(Metrics::default()))
            .expect("open journal")
    }

    #[test]
    fn records_round_trip_through_the_framing() {
        for record in [
            Record::Create { id: 7, seed: seed() },
            Record::Frames(vec![frame(7, 1.0), frame(9, 2.0)]),
            Record::End { id: 7, reason: EndReason::Quarantined },
            Record::Epoch { generation: 42 },
        ] {
            let bytes = encode_record(&record);
            let log = decode_log(&bytes);
            assert!(!log.truncated);
            assert_eq!(log.records, vec![record]);
            assert_eq!(log.clean_bytes, bytes.len());
        }
    }

    #[test]
    fn every_cut_of_a_log_keeps_exactly_the_complete_prefix() {
        let records = [
            Record::Create { id: 1, seed: seed() },
            Record::Frames(vec![frame(1, 1.0)]),
            Record::End { id: 1, reason: EndReason::Deleted },
        ];
        let encoded: Vec<Vec<u8>> = records.iter().map(encode_record).collect();
        let bytes: Vec<u8> = encoded.concat();
        // Complete-record boundaries: cumulative lengths.
        let mut boundaries = vec![0usize];
        for e in &encoded {
            boundaries.push(boundaries.last().unwrap() + e.len());
        }
        for cut in 0..=bytes.len() {
            let log = decode_log(&bytes[..cut]);
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(log.records.len(), complete, "cut {cut}");
            assert_eq!(log.records[..], records[..complete], "cut {cut}");
            assert_eq!(log.truncated, cut != boundaries[complete], "cut {cut}");
        }
    }

    #[test]
    fn corrupt_bytes_stop_the_scan_without_panicking() {
        let records = [Record::Create { id: 1, seed: seed() }, Record::Frames(vec![frame(1, 1.0)])];
        let clean: Vec<u8> = records.iter().map(encode_record).collect::<Vec<_>>().concat();
        let first_len = encode_record(&records[0]).len();
        // Flip one byte in every position of the second record.
        for pos in first_len..clean.len() {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0xA5;
            let log = decode_log(&bytes);
            assert!(log.truncated, "pos {pos}");
            assert_eq!(log.records, records[..1], "pos {pos}");
        }
    }

    #[test]
    fn append_recover_restores_sessions_and_id_counter() {
        let dir = tmp_dir("roundtrip");
        let journal = open(&dir, 4);
        let store = SessionStore::new(16, 4);
        let s = seed();
        let ctl = s.build().expect("build");
        let id = store.allocate_id();
        journal.append_create(id, &s);
        assert!(store.insert_with_id(id, ctl).is_none());
        let slot = store.get(id).expect("slot");
        {
            let mut guard = slot.lock().expect("not poisoned");
            guard.ingest(&TelemetryBatch::tick(1.5)).expect("ingest");
            journal.append_frames(id, vec![frame(id, 1.5)]);
        }
        let expected_plan = slot.lock().expect("lock").plan_json();
        drop(journal);

        let journal = open(&dir, 4);
        let recovered = SessionStore::new(16, 4);
        let stats = journal.recover(&recovered).expect("recover");
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.wal_records, 2);
        assert!(!stats.truncated_tail);
        let slot = recovered.get(id).expect("recovered session");
        assert_eq!(slot.lock().expect("lock").plan_json(), expected_plan, "byte-identical plan");
        // Ids never reused: the next allocation is past the recovered id.
        assert!(recovered.allocate_id() > id);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn events_frames_replay_through_recovery() {
        let dir = tmp_dir("events");
        let journal = open(&dir, 2);
        let store = SessionStore::new(8, 2);
        let s = seed();
        let id = store.allocate_id();
        journal.append_create(id, &s);
        assert!(store.insert_with_id(id, s.build().expect("build")).is_none());
        let slot = store.get(id).expect("slot");
        {
            let mut guard = slot.lock().expect("not poisoned");
            guard.ingest(&TelemetryBatch::tick(1.0)).expect("tick");
            journal.append_frames(id, vec![frame(id, 1.0)]);
            // An in-band suppressed event (sensor 1: τ̂ = 10 inside the
            // [8, 16) band) — accepted, so journaled, so replayed.
            let batch = EventBatch::new(2.0, vec![ClassEvent::new(1, 0.1, 0.1, 0.9)]);
            guard.ingest_events(&batch).expect("in-band event");
            journal.append_frames(id, vec![Frame::events(id, batch)]);
        }
        let expected_plan = slot.lock().expect("lock").plan_json();
        let expected_level = slot.lock().expect("lock").level_estimate(1);
        drop(journal);

        let journal = open(&dir, 2);
        let recovered = SessionStore::new(8, 2);
        let stats = journal.recover(&recovered).expect("recover");
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.skipped, 0, "both frame kinds must replay");
        let slot = recovered.get(id).expect("recovered session");
        let guard = slot.lock().expect("lock");
        assert_eq!(guard.plan_json(), expected_plan, "byte-identical plan");
        assert!((guard.level_estimate(1) - expected_level).abs() < 1e-12, "event state replayed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ended_sessions_do_not_resurrect() {
        let dir = tmp_dir("ended");
        let journal = open(&dir, 2);
        let store = SessionStore::new(8, 2);
        let s = seed();
        let a = store.allocate_id();
        journal.append_create(a, &s);
        store.insert_with_id(a, s.build().expect("a"));
        journal.append_frames(a, vec![frame(a, 1.0)]);
        journal.append_end(a, EndReason::Evicted);
        let b = store.allocate_id();
        journal.append_create(b, &s);
        store.insert_with_id(b, s.build().expect("b"));
        drop(journal);

        let journal = open(&dir, 2);
        let recovered = SessionStore::new(8, 2);
        let stats = journal.recover(&recovered).expect("recover");
        assert_eq!(stats.sessions, 1, "only b survives");
        assert!(recovered.get(a).is_none(), "evicted session stays dead");
        assert!(recovered.get(b).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_compacts_so_restart_replays_zero_wal_records() {
        let dir = tmp_dir("drain");
        let journal = open(&dir, 2);
        let store = SessionStore::new(8, 2);
        let s = seed();
        let dead = store.allocate_id();
        journal.append_create(dead, &s);
        store.insert_with_id(dead, s.build().expect("dead"));
        journal.append_end(dead, EndReason::Deleted);
        let live = store.allocate_id();
        journal.append_create(live, &s);
        store.insert_with_id(live, s.build().expect("live"));
        journal.append_frames(live, vec![frame(live, 2.0)]);
        journal.drain().expect("drain");
        assert!(
            journal.wal_bytes().expect("sizes").iter().all(|&b| b == EPOCH_RECORD_BYTES as u64),
            "WALs truncated down to their epoch marker"
        );
        drop(journal);

        let journal = open(&dir, 2);
        let recovered = SessionStore::new(8, 2);
        let stats = journal.recover(&recovered).expect("recover");
        assert_eq!(stats.wal_records, 0, "clean shutdown needs no WAL replay");
        assert_eq!(stats.sessions, 1);
        assert!(stats.snap_records > 0, "state came from the snapshot");
        assert!(recovered.get(dead).is_none(), "compaction dropped the dead session");
        assert!(recovered.get(live).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_compaction_triggers_and_preserves_state() {
        let dir = tmp_dir("auto");
        let metrics = Arc::new(Metrics::default());
        let journal =
            JournalSet::open(&dir, 1, FsyncPolicy::Never, 8, Arc::clone(&metrics)).expect("open");
        let store = SessionStore::new(8, 1);
        let s = seed();
        let id = store.allocate_id();
        journal.append_create(id, &s);
        store.insert_with_id(id, s.build().expect("build"));
        let slot = store.get(id).expect("slot");
        for i in 0..20u32 {
            let t = f64::from(i) + 1.0;
            slot.lock().expect("lock").ingest(&TelemetryBatch::tick(t)).expect("ingest");
            journal.append_frames(id, vec![frame(id, t)]);
        }
        // 21 appends with compact_every=8: at least two compactions ran.
        assert!(journal.wal_bytes().expect("sizes")[0] < 21 * 20, "WAL was compacted");
        let expected = slot.lock().expect("lock").plan_json();
        drop(journal);

        let journal = open(&dir, 1);
        let recovered = SessionStore::new(8, 1);
        journal.recover(&recovered).expect("recover");
        let got = recovered.get(id).expect("session").lock().expect("lock").plan_json();
        assert_eq!(got, expected, "compaction preserved the byte-identical stream");
        let _ = fs::remove_dir_all(&dir);
    }

    /// The compaction crash window: a `kill -9` after the snapshot
    /// rename but before the WAL truncation leaves a snapshot that
    /// already folds the WAL's records next to the un-truncated WAL.
    /// The shared generation marker must keep the WAL from replaying on
    /// top of the snapshot.
    #[test]
    fn crashed_compaction_window_does_not_double_ingest() {
        let dir = tmp_dir("crashwin");
        fs::create_dir_all(&dir).expect("mkdir");
        let s = seed();
        let id = 1u64;
        let records =
            [Record::Create { id, seed: s.clone() }, Record::Frames(vec![frame(id, 1.0)])];
        let mut snap_bytes = encode_record(&Record::Epoch { generation: 3 });
        let mut wal_bytes = encode_record(&Record::Epoch { generation: 3 });
        for r in &records {
            snap_bytes.extend(encode_record(r));
            wal_bytes.extend(encode_record(r));
        }
        fs::write(snap_path(&dir, 0), &snap_bytes).expect("snap");
        fs::write(wal_path(&dir, 0), &wal_bytes).expect("wal");

        let journal = open(&dir, 1);
        let recovered = SessionStore::new(8, 1);
        let stats = journal.recover(&recovered).expect("recover");
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.wal_records, 0, "already-folded WAL must be skipped");
        let mut expected = s.build().expect("build");
        expected.ingest(&TelemetryBatch::tick(1.0)).expect("ingest");
        let got = recovered.get(id).expect("session").lock().expect("lock").plan_json();
        assert_eq!(got, expected.plan_json(), "frame ingested once, not twice");
        let _ = fs::remove_dir_all(&dir);
    }

    /// A duplicate `Create` (same id, same stream) must not reset the
    /// session's accumulated frame stream during replay.
    #[test]
    fn duplicate_create_does_not_reset_the_stream() {
        let dir = tmp_dir("dupcreate");
        fs::create_dir_all(&dir).expect("mkdir");
        let s = seed();
        let id = 1u64;
        let mut wal_bytes = encode_record(&Record::Epoch { generation: 1 });
        wal_bytes.extend(encode_record(&Record::Create { id, seed: s.clone() }));
        wal_bytes.extend(encode_record(&Record::Frames(vec![frame(id, 1.0)])));
        wal_bytes.extend(encode_record(&Record::Create { id, seed: s.clone() }));
        wal_bytes.extend(encode_record(&Record::Frames(vec![frame(id, 2.0)])));
        fs::write(wal_path(&dir, 0), &wal_bytes).expect("wal");

        let journal = open(&dir, 1);
        let recovered = SessionStore::new(8, 1);
        let stats = journal.recover(&recovered).expect("recover");
        assert_eq!(stats.sessions, 1);
        let mut expected = s.build().expect("build");
        expected.ingest(&TelemetryBatch::tick(1.0)).expect("ingest 1");
        expected.ingest(&TelemetryBatch::tick(2.0)).expect("ingest 2");
        let got = recovered.get(id).expect("session").lock().expect("lock").plan_json();
        assert_eq!(got, expected.plan_json(), "both frames kept despite the duplicate Create");
        let _ = fs::remove_dir_all(&dir);
    }

    /// A crash part-way through a shard-count rebase can leave the same
    /// session's stream in a new snapshot *and* a stray old-shard file.
    /// Only the owning (first) stream may contribute its records.
    #[test]
    fn crashed_rebase_duplicate_streams_ingest_once() {
        let dir = tmp_dir("duprebase");
        fs::create_dir_all(&dir).expect("mkdir");
        let s = seed();
        let id = 1u64;
        let records =
            [Record::Create { id, seed: s.clone() }, Record::Frames(vec![frame(id, 1.0)])];
        let mut snap_bytes = encode_record(&Record::Epoch { generation: 4 });
        let mut old_wal = encode_record(&Record::Epoch { generation: 1 });
        for r in &records {
            snap_bytes.extend(encode_record(r));
            old_wal.extend(encode_record(r));
        }
        fs::write(snap_path(&dir, 0), &snap_bytes).expect("snap");
        fs::write(wal_path(&dir, 5), &old_wal).expect("stray wal");

        let journal = open(&dir, 2);
        let recovered = SessionStore::new(8, 2);
        let stats = journal.recover(&recovered).expect("recover");
        assert_eq!(stats.sessions, 1, "one session despite two copies of its stream");
        let mut expected = s.build().expect("build");
        expected.ingest(&TelemetryBatch::tick(1.0)).expect("ingest");
        let got = recovered.get(id).expect("session").lock().expect("lock").plan_json();
        assert_eq!(got, expected.plan_json(), "frame ingested once, not twice");
        assert!(!wal_path(&dir, 5).exists(), "stray old-shard file removed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_rebases_across_a_shard_count_change() {
        let dir = tmp_dir("rebase");
        let journal = open(&dir, 8);
        let store = SessionStore::new(32, 8);
        let s = seed();
        let mut ids = Vec::new();
        for _ in 0..6 {
            let id = store.allocate_id();
            journal.append_create(id, &s);
            store.insert_with_id(id, s.build().expect("build"));
            journal.append_frames(id, vec![frame(id, 1.0)]);
            ids.push(id);
        }
        drop(journal);

        // Restart with 2 shards: every session must come back, and the
        // rebased files must survive another restart.
        for _ in 0..2 {
            let journal = open(&dir, 2);
            let recovered = SessionStore::new(32, 2);
            let stats = journal.recover(&recovered).expect("recover");
            assert_eq!(stats.sessions, ids.len());
            for &id in &ids {
                assert!(recovered.get(id).is_some(), "session {id} lost in rebase");
            }
        }
        assert!(
            !snap_path(&dir, 5).exists() && !wal_path(&dir, 5).exists(),
            "stray high-shard files removed"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Manual micro-benchmark of the raw append path (no HTTP): run with
    /// `cargo test --release -p perpetuum-serve journal_append_micro -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn journal_append_micro() {
        const APPENDS: u64 = 10_000;
        const THREADS: u64 = 8;
        for policy in [FsyncPolicy::Never, FsyncPolicy::Batch, FsyncPolicy::Always] {
            let dir = tmp_dir(&format!("micro-{}", policy.as_str()));
            let journal = Arc::new(
                JournalSet::open(&dir, 16, policy, 0, Arc::new(Metrics::default())).expect("open"),
            );
            let started = std::time::Instant::now();
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let journal = Arc::clone(&journal);
                    scope.spawn(move || {
                        // Flush per append: the worst case (one record
                        // per request, no batching to amortize).
                        for i in 0..APPENDS / THREADS {
                            let id = t * 10_000 + i % 2_000;
                            journal.append_frames(id, vec![frame(id, i as f64)]);
                            journal.flush().expect("flush");
                        }
                    });
                }
            });
            println!(
                "{:6}: {} appends / {} threads in {:?}",
                policy.as_str(),
                APPENDS,
                THREADS,
                started.elapsed()
            );
            drop(journal);
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn batch_policy_fsyncs_in_the_background_off_the_append_path() {
        let dir = tmp_dir("flusher");
        let metrics = Arc::new(Metrics::default());
        let journal =
            JournalSet::open(&dir, 1, FsyncPolicy::Batch, 0, Arc::clone(&metrics)).expect("open");
        // open() fsyncs once per shard stamping fresh WALs — measure the
        // flusher's work relative to that baseline.
        let baseline = metrics.journal_fsyncs.load(Relaxed);
        let id = 1;
        journal.append_create(id, &seed());
        for t in 0..(2 * BATCH_FSYNC_RECORDS) {
            journal.append_frames(id, vec![frame(id, t as f64 + 0.5)]);
        }
        journal.flush().expect("flush");
        // The flush crossed the threshold and kicked the flusher; the
        // fsync lands asynchronously, so poll rather than assert.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while metrics.journal_fsyncs.load(Relaxed) == baseline {
            assert!(std::time::Instant::now() < deadline, "flusher never fsynced");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(journal); // joins the flusher thread
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_parses_and_prints() {
        for policy in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Never] {
            assert_eq!(FsyncPolicy::parse(policy.as_str()), Some(policy));
        }
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
