//! Background plan refinement: a bounded job queue plus a worker pool
//! that upgrades cached `/plan` entries in place.
//!
//! `POST /plan` with `"refine": "background"` renders and caches the
//! constructive (Algorithm 2) plan immediately — the hot path never
//! waits on local search — and enqueues a [`RefineJob`]. A pool of
//! worker threads (spawned by [`crate::server`], `--refine-workers`)
//! drains the queue, runs `perpetuum_core::refine` under the request's
//! step budget, re-renders the result JSON with the improved schedule
//! and swaps it into the plan cache under the same canonical-hash key.
//! Clients that re-POST the identical request therefore always read the
//! best plan so far; `cache_hit` stays true and the bytes only ever get
//! cheaper.
//!
//! Interaction with eviction: if the constructive entry was LRU-evicted
//! while its job waited, the upgrade is *dropped* (counted in
//! `perpetuum_refine_jobs_dropped_total`) rather than re-inserted — a
//! refinement of an entry nobody kept is not worth displacing a live
//! one. The queue itself is bounded; a full queue also drops (and
//! counts) rather than blocking the request worker.

use crate::handlers::{render_plan_result, AppState, PlanMeta};
use crate::shutdown::ShutdownSignal;
use perpetuum_core::network::Instance;
use perpetuum_core::refine::{refine, Budget};
use perpetuum_core::ScheduleSeries;
use std::collections::VecDeque;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Most background jobs allowed to wait; beyond this, new jobs drop.
pub const QUEUE_CAPACITY: usize = 256;

/// One pending background refinement.
#[derive(Debug)]
pub struct RefineJob {
    /// Canonical-hash cache key of the `/plan` entry to upgrade.
    pub key: u64,
    /// The planning instance (already validated by the request path).
    pub instance: Instance,
    /// The constructive schedule to improve.
    pub schedule: ScheduleSeries,
    /// Step budget for the pass.
    pub steps: u64,
    /// Refinement seed (the request's master seed).
    pub seed: u64,
    /// Response fields to re-render around the upgraded schedule.
    pub meta: PlanMeta,
}

struct Inner {
    jobs: VecDeque<RefineJob>,
    closed: bool,
}

/// Bounded MPMC job queue for the refinement pool.
pub struct RefineQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl Default for RefineQueue {
    fn default() -> Self {
        Self {
            inner: Mutex::new(Inner { jobs: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }
}

impl RefineQueue {
    /// Enqueue a job; returns `false` (job dropped) when the queue is
    /// full or already closed.
    pub fn push(&self, job: RefineJob) -> bool {
        let Ok(mut inner) = self.inner.lock() else { return false };
        if inner.closed || inner.jobs.len() >= QUEUE_CAPACITY {
            return false;
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        true
    }

    /// Blocking pop: waits for a job; `None` as soon as the queue is
    /// closed — background refinement is best-effort, so shutdown never
    /// waits on a deep backlog.
    pub fn pop(&self) -> Option<RefineJob> {
        let Ok(mut inner) = self.inner.lock() else { return None };
        loop {
            if inner.closed {
                return None;
            }
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            inner = self.ready.wait(inner).ok()?;
        }
    }

    /// Non-blocking pop for synchronous draining (tests, shutdown).
    pub fn try_pop(&self) -> Option<RefineJob> {
        self.inner.lock().ok()?.jobs.pop_front()
    }

    /// Close the queue: wakes every waiting worker so the pool can exit.
    /// Jobs still queued are abandoned (the daemon is going down); the
    /// non-blocking [`RefineQueue::try_pop`] can still drain them.
    pub fn close(&self) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.closed = true;
        }
        self.ready.notify_all();
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().map(|i| i.jobs.len()).unwrap_or(0)
    }

    /// True when no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Run one job: refine, re-render, and swap the cached entry — unless
/// the entry was evicted meanwhile, in which case the upgrade is dropped
/// and counted. Returns `true` when the cache was upgraded.
pub fn process(state: &AppState, job: RefineJob) -> bool {
    let started = Instant::now();
    let (refined, report) =
        refine(job.instance.network(), &job.schedule, &Budget::steps(job.steps), job.seed);
    state.metrics.record_refine(
        report.constructive_cost,
        report.refined_cost,
        started.elapsed().as_secs_f64(),
    );
    if state.cache.get(job.key).is_none() {
        state.metrics.refine_jobs_dropped.fetch_add(1, Relaxed);
        return false;
    }
    let result = render_plan_result(&job.meta, &refined, Some(("background", true, Some(&report))));
    let rendered = match serde_json::to_string(&result) {
        Ok(s) => Arc::<str>::from(s),
        Err(_) => {
            state.metrics.refine_jobs_dropped.fetch_add(1, Relaxed);
            return false;
        }
    };
    state.cache.insert(job.key, rendered);
    state.metrics.refine_upgrades.fetch_add(1, Relaxed);
    true
}

/// Synchronously drain every queued job — for tests and embedders that
/// want refinement to finish before reading the cache.
pub fn drain(state: &AppState) -> usize {
    let mut done = 0;
    while let Some(job) = state.refine_queue.try_pop() {
        process(state, job);
        done += 1;
    }
    done
}

/// Worker-thread body: drain jobs until the queue closes or shutdown
/// triggers.
pub fn worker_loop(state: &Arc<AppState>, shutdown: &ShutdownSignal) {
    while let Some(job) = state.refine_queue.pop() {
        process(state, job);
        if shutdown.is_triggered() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_job(key: u64) -> RefineJob {
        use perpetuum_core::network::Network;
        use perpetuum_geom::Point2;
        let network = Network::new(
            vec![Point2::new(1.0, 0.0), Point2::new(2.0, 0.0)],
            vec![Point2::new(0.0, 0.0)],
        );
        let instance = Instance::new(network, vec![4.0; 2], 8.0);
        let schedule = perpetuum_core::mtd::plan_min_total_distance(
            &instance,
            &perpetuum_core::mtd::MtdConfig::default(),
        );
        RefineJob {
            key,
            instance,
            schedule,
            steps: 100,
            seed: 1,
            meta: PlanMeta { n: 2, q: 1, seed: 1, index: 0, sparse: false, refine_steps: 100 },
        }
    }

    #[test]
    fn queue_bounds_and_close_semantics() {
        let q = RefineQueue::default();
        assert!(q.is_empty());
        for i in 0..QUEUE_CAPACITY {
            assert!(q.push(dummy_job(i as u64)), "push {i} rejected early");
        }
        assert!(!q.push(dummy_job(9999)), "over-capacity push accepted");
        assert_eq!(q.len(), QUEUE_CAPACITY);
        q.close();
        assert!(!q.push(dummy_job(1)), "push after close accepted");
        // Drained hand-out still works after close, then pop yields None.
        let mut seen = 0;
        while q.try_pop().is_some() {
            seen += 1;
        }
        assert_eq!(seen, QUEUE_CAPACITY);
        assert!(q.pop().is_none());
    }
}
