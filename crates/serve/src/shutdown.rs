//! Graceful-shutdown coordination.
//!
//! One [`ShutdownSignal`] is shared by every thread of the daemon. The
//! protocol, in order:
//!
//! 1. something trips the signal — `POST /shutdown` on the loopback admin
//!    listener, a `SIGINT`/`SIGTERM` (forwarded by
//!    [`install_signal_forwarder`]), or [`ShutdownSignal::trigger`] from
//!    the embedding test;
//! 2. `trigger` pokes every registered listener address with a throwaway
//!    loopback connection so blocked `accept` calls return and observe the
//!    flag — the accept loops close their listeners (new connections are
//!    refused from this point);
//! 3. the request queue's sender is dropped; workers drain what was
//!    already queued and exit — in-flight requests complete and their
//!    responses are written in full, never reset;
//! 4. the embedding thread joins everything and exits cleanly.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A latchable, waitable shutdown flag that knows how to wake blocked
/// accept loops.
#[derive(Default)]
pub struct ShutdownSignal {
    flag: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
    wakers: Mutex<Vec<SocketAddr>>,
}

impl ShutdownSignal {
    /// A fresh, untriggered signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once shutdown has been requested. Accept loops check this
    /// immediately after every `accept` return.
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Registers a listener address to poke on trigger so its blocked
    /// `accept` returns.
    pub fn register_waker(&self, addr: SocketAddr) {
        if let Ok(mut w) = self.wakers.lock() {
            w.push(addr);
        }
    }

    /// Latches the flag, wakes [`ShutdownSignal::wait`]ers, and pokes
    /// every registered listener. Idempotent.
    pub fn trigger(&self) {
        if self.flag.swap(true, Ordering::SeqCst) {
            return;
        }
        drop(self.lock.lock());
        self.cv.notify_all();
        let addrs: Vec<SocketAddr> = match self.wakers.lock() {
            Ok(w) => w.clone(),
            Err(_) => Vec::new(),
        };
        for addr in addrs {
            // Throwaway connection: the accept loop sees it, checks the
            // flag, and exits. Errors mean the listener is already gone.
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        }
    }

    /// Blocks until the signal is triggered.
    pub fn wait(&self) {
        let mut guard = match self.lock.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        while !self.is_triggered() {
            guard = match self.cv.wait(guard) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set from the signal handler; polled by the forwarder thread. (A
    /// handler may only do async-signal-safe work — flag-and-poll keeps
    /// the actual shutdown on a normal thread.)
    pub(super) static SIGNALLED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal(2)` with a handler that only stores a relaxed
        // atomic flag is async-signal-safe; libc is always linked.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Installs `SIGINT`/`SIGTERM` handlers (unix; a no-op elsewhere) and
/// spawns a thread that forwards the first signal to `shutdown`.
pub fn install_signal_forwarder(shutdown: Arc<ShutdownSignal>) {
    #[cfg(unix)]
    {
        sig::install();
        std::thread::spawn(move || loop {
            if sig::SIGNALLED.load(Ordering::SeqCst) {
                shutdown.trigger();
                return;
            }
            if shutdown.is_triggered() {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        });
    }
    #[cfg(not(unix))]
    {
        let _ = shutdown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn trigger_is_idempotent_and_wakes_waiters() {
        let s = Arc::new(ShutdownSignal::new());
        assert!(!s.is_triggered());
        let waiter = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.wait())
        };
        s.trigger();
        s.trigger();
        assert!(s.is_triggered());
        waiter.join().expect("waiter returns after trigger");
    }

    #[test]
    fn trigger_pokes_registered_listeners() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let s = Arc::new(ShutdownSignal::new());
        s.register_waker(addr);
        let acceptor = std::thread::spawn(move || {
            // Blocks until the poke arrives.
            listener.accept().map(|_| ()).expect("poked");
        });
        s.trigger();
        acceptor.join().expect("accept loop woken");
    }
}
