//! `perpetuum-serve`: a concurrent planning & simulation daemon.
//!
//! Exposes the workspace's planning pipeline and event-driven simulator
//! over a small HTTP/1.1 JSON API — `POST /plan`, `POST /simulate`,
//! `GET /healthz`, `GET /metrics` — built entirely on `std::net` (no
//! async runtime, consistent with the workspace's vendored-dependency
//! constraint). The load-bearing pieces:
//!
//! * [`cache`] — a sharded LRU plan cache keyed by a canonical content
//!   hash, so near-duplicate `/plan` requests skip the `O(n log n)`
//!   pipeline entirely and return byte-identical schedules;
//! * [`server`] — bounded request queue with `503` + `Retry-After`
//!   backpressure, a worker pool, and a loopback-only admin listener;
//! * [`shutdown`] — signal/endpoint-triggered graceful drain: stop
//!   accepting, finish everything in flight, exit cleanly;
//! * [`session`] — a **sharded** store of stateful closed-loop telemetry
//!   sessions: each wraps one [`perpetuum_online::OnlineController`]
//!   behind its own lock (`POST /session`,
//!   `POST /session/{id}/telemetry`, `GET /session/{id}/plan`,
//!   `DELETE /session/{id}`), slots live in hash-picked shards with
//!   per-shard LRU eviction so 100k+ concurrent sessions never funnel
//!   through one lock;
//! * [`wire`] — a compact length-prefixed binary codec for telemetry
//!   frames, ingest reports, and plan summaries, negotiated via
//!   `Content-Type`/`Accept` on the batch-ingest path
//!   (`POST /telemetry/batch`);
//! * [`journal`] — a per-shard write-ahead journal (`--data-dir`):
//!   session genesis records and every accepted telemetry frame are
//!   appended before the ack, so a `kill -9` loses nothing a client was
//!   told succeeded; restart replays snapshot + WAL into a byte-identical
//!   session store;
//! * [`chaos`] — a seeded socket-level fault proxy (drops, truncation,
//!   stalls, corruption) for crash/recovery testing;
//! * [`metrics`] — Prometheus text exposition of request counts, latency
//!   histograms, cache hit rates, session/shard/eviction gauges, journal
//!   and recovery counters, and queue gauges.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cache;
pub mod chaos;
pub mod handlers;
pub mod http;
pub mod journal;
pub mod metrics;
pub mod refine;
pub mod router;
pub mod server;
pub mod session;
pub mod shutdown;
pub mod wire;

pub use cache::{canonical_hash, PlanCache};
pub use chaos::{FaultKind, FaultProxy};
pub use handlers::{AppState, DEFAULT_SESSION_CAPACITY};
pub use journal::{EndReason, FsyncPolicy, JournalSet, RecoveryStats};
pub use metrics::Metrics;
pub use server::{start, ServerConfig, ServerHandle};
pub use session::{MutexMapStore, SessionSlot, SessionStore, DEFAULT_SHARDS, MAX_SHARDS};
pub use shutdown::{install_signal_forwarder, ShutdownSignal};
