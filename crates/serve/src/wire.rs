//! Compact binary wire format for the ingest path.
//!
//! JSON costs the million-sensor ingest path twice: bytes on the wire
//! (~3–4× the information content for numeric telemetry) and parse time
//! per frame. This module is a hand-rolled little-endian codec — plain
//! `put_*`/`get_*` over a byte buffer, no reflection, no new
//! dependencies — for the three message shapes the hot path speaks:
//!
//! * a **frame batch** ([`encode_frames`]/[`decode_frames`]): telemetry
//!   frames for many sessions in one request body
//!   (`POST /telemetry/batch` with `Content-Type:` [`CONTENT_TYPE`]);
//! * a **report batch** ([`encode_reports`]/[`decode_reports`]): the
//!   per-frame ingest outcomes going back (`Accept:` [`CONTENT_TYPE`]);
//! * a **plan summary** ([`PlanWire::encode`]/[`PlanWire::decode`]): the
//!   compact numeric view of a session's plan
//!   (`GET /session/{id}/plan` with `Accept:` [`CONTENT_TYPE`]).
//!
//! Layout (all integers little-endian, all floats IEEE-754 `f64` bits):
//!
//! ```text
//! frame batch                      report batch
//! ┌────────┬─────────────┐        ┌────────┬─────────────┐
//! │ "PBT1" │ u32 frames  │        │ "PRP1" │ u32 reports │
//! ├────────┴─────────────┤        ├────────┴─────────────┤
//! │ frame × frames       │        │ report × reports     │
//! └──────────────────────┘        └──────────────────────┘
//! frame:   u64 session · u8 tag · payload
//!   tag 0 (telemetry): f64 time · u32 records · record × records
//!   tag 1 (events):    f64 time · u8 sync · u32 events · event × events
//!                      · u64 observed · u64 sent
//! record:  u32 sensor · u8 flags(1=rate,2=level) · [f64 rate] · [f64 level]
//! event:   u32 sensor · f64 rho_hat · f64 last_rate · f64 level
//! report:  u64 session · u8 ok
//!          ok=1: u64 revision · f64 time · u8 replan(0|1|2)
//!                · u32 class_changes · u32 emergencies · u32 planner_calls
//!          ok=0: u16 len · len bytes of UTF-8 error text
//! ```
//!
//! The per-frame tag byte is the codec's versioning space: tag 0 is
//! per-slot telemetry, tag 1 the suppressed [`ClassEvent`] batches of
//! `perpetuum-client`, and every other value is *reserved* — decoders
//! reject it with the typed [`WireError::BadTag`] (`field: "frame_tag"`),
//! never a misleading truncation error, so an old server confronted with
//! a newer frame kind fails loud and precise. (The tag byte is a PBT1
//! layout change; pre-1.0 journals written by earlier builds are not
//! readable by this one.)
//!
//! Every decoder rejects truncated buffers ([`WireError::Truncated`]),
//! trailing garbage ([`WireError::Trailing`]), bad magic, and
//! out-of-range tags — a malformed binary body maps to the same typed
//! `400` a malformed JSON body gets. Declared element counts are capped
//! against the remaining buffer length before any allocation, so a
//! hostile 4-gigabyte count in a 40-byte body cannot reserve memory.

use perpetuum_online::{
    ClassEvent, EventBatch, IngestReport, ReplanKind, TelemetryBatch, TelemetryRecord,
};
use std::fmt;

/// MIME type negotiated for every binary message this module encodes.
pub const CONTENT_TYPE: &str = "application/x-perpetuum";

/// Magic prefix of a frame-batch request body.
pub const MAGIC_FRAMES: [u8; 4] = *b"PBT1";
/// Magic prefix of a report-batch response body.
pub const MAGIC_REPORTS: [u8; 4] = *b"PRP1";
/// Magic prefix of a plan-summary response body.
pub const MAGIC_PLAN: [u8; 4] = *b"PPL1";

/// Why a buffer failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a fixed-width field or declared payload.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes the buffer still had.
        have: usize,
    },
    /// The first four bytes are not the expected magic.
    BadMagic {
        /// The magic the decoder expected.
        expected: [u8; 4],
        /// The bytes it found.
        found: [u8; 4],
    },
    /// Bytes remain after the message's declared end.
    Trailing {
        /// Count of unconsumed bytes.
        extra: usize,
    },
    /// A tag/flag byte holds a value outside its domain.
    BadTag {
        /// Which field carried the tag.
        field: &'static str,
        /// The offending value.
        value: u8,
    },
    /// A declared element count cannot fit in the remaining bytes.
    BadCount {
        /// Which field carried the count.
        field: &'static str,
        /// The declared count.
        count: u64,
    },
    /// A string payload is not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { need, have } => {
                write!(f, "truncated buffer: need {need} more bytes, have {have}")
            }
            Self::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected:?}, found {found:?}")
            }
            Self::Trailing { extra } => write!(f, "{extra} trailing bytes after message end"),
            Self::BadTag { field, value } => write!(f, "bad `{field}` tag: {value}"),
            Self::BadCount { field, count } => {
                write!(f, "`{field}` count {count} exceeds the buffer")
            }
            Self::BadUtf8 => write!(f, "string payload is not UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

// --- primitive put/get ---------------------------------------------------

/// Growable little-endian write buffer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor over a byte slice with typed, bounds-checked reads.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { need: n, have: self.remaining() });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an `f64` from its little-endian bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads and checks a 4-byte magic prefix.
    pub fn expect_magic(&mut self, expected: [u8; 4]) -> Result<(), WireError> {
        let b = self.take(4)?;
        let found = [b[0], b[1], b[2], b[3]];
        if found != expected {
            return Err(WireError::BadMagic { expected, found });
        }
        Ok(())
    }

    /// Reads an element count and sanity-checks it against the remaining
    /// buffer assuming each element costs at least `min_bytes` — a
    /// hostile count can never drive an allocation past the body it
    /// arrived in.
    pub fn get_count(&mut self, field: &'static str, min_bytes: usize) -> Result<usize, WireError> {
        let count = self.get_u32()? as u64;
        if count.saturating_mul(min_bytes as u64) > self.remaining() as u64 {
            return Err(WireError::BadCount { field, count });
        }
        Ok(count as usize)
    }

    /// Asserts the buffer is fully consumed (call after the last field).
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Trailing { extra: self.remaining() });
        }
        Ok(())
    }
}

// --- telemetry frames ----------------------------------------------------

/// One ingest frame addressed to a session: the batch-ingest unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Target session id.
    pub session: u64,
    /// What the frame carries.
    pub payload: FramePayload,
}

/// The two kinds of payload a PBT1 frame can carry, discriminated on the
/// wire by the per-frame tag byte. Tags outside this enum are reserved
/// for future frame kinds and decode to [`WireError::BadTag`].
#[derive(Debug, Clone, PartialEq)]
pub enum FramePayload {
    /// Tag 0: per-slot telemetry records (rates and/or levels).
    Telemetry(TelemetryBatch),
    /// Tag 1: suppressed rounding-class events from edge clients.
    Events(EventBatch),
}

impl Frame {
    /// A telemetry frame (wire tag [`TAG_TELEMETRY`]).
    pub fn telemetry(session: u64, batch: TelemetryBatch) -> Self {
        Self { session, payload: FramePayload::Telemetry(batch) }
    }

    /// A suppressed-event frame (wire tag [`TAG_EVENTS`]).
    pub fn events(session: u64, batch: EventBatch) -> Self {
        Self { session, payload: FramePayload::Events(batch) }
    }

    /// The payload's timestamp, whichever kind it is.
    pub fn time(&self) -> f64 {
        match &self.payload {
            FramePayload::Telemetry(b) => b.time,
            FramePayload::Events(b) => b.time,
        }
    }
}

/// Frame tag for a telemetry payload.
pub const TAG_TELEMETRY: u8 = 0;
/// Frame tag for a suppressed-event payload.
pub const TAG_EVENTS: u8 = 1;

const RATE_FLAG: u8 = 1;
const LEVEL_FLAG: u8 = 2;
/// Cheapest possible frame: session + tag + time + element count
/// (the telemetry shape; an events frame is strictly larger).
const MIN_FRAME_BYTES: usize = 8 + 1 + 8 + 4;
/// Cheapest possible record: sensor + flags.
const MIN_RECORD_BYTES: usize = 4 + 1;
/// Exact event size: sensor + rho_hat + last_rate + level.
const EVENT_BYTES: usize = 4 + 8 + 8 + 8;

/// Encodes a frame batch (request body of `POST /telemetry/batch`).
pub fn encode_frames(frames: &[Frame]) -> Vec<u8> {
    let mut w = Writer::with_capacity(8 + frames.len() * 48);
    w.put_bytes(&MAGIC_FRAMES);
    w.put_u32(frames.len() as u32);
    for f in frames {
        w.put_u64(f.session);
        match &f.payload {
            FramePayload::Telemetry(batch) => {
                w.put_u8(TAG_TELEMETRY);
                w.put_f64(batch.time);
                w.put_u32(batch.records.len() as u32);
                for r in &batch.records {
                    w.put_u32(r.sensor as u32);
                    let mut flags = 0u8;
                    if r.rate.is_some() {
                        flags |= RATE_FLAG;
                    }
                    if r.level.is_some() {
                        flags |= LEVEL_FLAG;
                    }
                    w.put_u8(flags);
                    if let Some(rate) = r.rate {
                        w.put_f64(rate);
                    }
                    if let Some(level) = r.level {
                        w.put_f64(level);
                    }
                }
            }
            FramePayload::Events(batch) => {
                w.put_u8(TAG_EVENTS);
                w.put_f64(batch.time);
                w.put_u8(u8::from(batch.sync));
                w.put_u32(batch.events.len() as u32);
                for e in &batch.events {
                    w.put_u32(e.sensor as u32);
                    w.put_f64(e.rho_hat);
                    w.put_f64(e.last_rate);
                    w.put_f64(e.level);
                }
                w.put_u64(batch.observed);
                w.put_u64(batch.sent);
            }
        }
    }
    w.into_bytes()
}

/// Decodes a frame batch, rejecting truncation, trailing garbage and
/// reserved frame tags.
pub fn decode_frames(bytes: &[u8]) -> Result<Vec<Frame>, WireError> {
    let mut r = Reader::new(bytes);
    r.expect_magic(MAGIC_FRAMES)?;
    let frames = r.get_count("frames", MIN_FRAME_BYTES)?;
    let mut out = Vec::with_capacity(frames);
    for _ in 0..frames {
        let session = r.get_u64()?;
        let payload = match r.get_u8()? {
            TAG_TELEMETRY => {
                let time = r.get_f64()?;
                let records = r.get_count("records", MIN_RECORD_BYTES)?;
                let mut batch = TelemetryBatch { time, records: Vec::with_capacity(records) };
                for _ in 0..records {
                    let sensor = r.get_u32()? as usize;
                    let flags = r.get_u8()?;
                    if flags & !(RATE_FLAG | LEVEL_FLAG) != 0 {
                        return Err(WireError::BadTag { field: "record flags", value: flags });
                    }
                    let rate = if flags & RATE_FLAG != 0 { Some(r.get_f64()?) } else { None };
                    let level = if flags & LEVEL_FLAG != 0 { Some(r.get_f64()?) } else { None };
                    batch.records.push(TelemetryRecord { sensor, rate, level });
                }
                FramePayload::Telemetry(batch)
            }
            TAG_EVENTS => {
                let time = r.get_f64()?;
                let sync = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(WireError::BadTag { field: "sync", value: other }),
                };
                let count = r.get_count("events", EVENT_BYTES)?;
                let mut events = Vec::with_capacity(count);
                for _ in 0..count {
                    let sensor = r.get_u32()? as usize;
                    let rho_hat = r.get_f64()?;
                    let last_rate = r.get_f64()?;
                    let level = r.get_f64()?;
                    events.push(ClassEvent { sensor, rho_hat, last_rate, level });
                }
                let observed = r.get_u64()?;
                let sent = r.get_u64()?;
                FramePayload::Events(EventBatch { time, sync, events, observed, sent })
            }
            other => return Err(WireError::BadTag { field: "frame_tag", value: other }),
        };
        out.push(Frame { session, payload });
    }
    r.finish()?;
    Ok(out)
}

// --- ingest reports ------------------------------------------------------

/// Outcome of one frame inside a batch: the session it addressed plus
/// either the controller's report or the typed error text.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameOutcome {
    /// The session the frame addressed.
    pub session: u64,
    /// `Ok(report)` when the frame was applied, `Err(text)` otherwise.
    pub result: Result<IngestReport, String>,
}

fn replan_tag(kind: ReplanKind) -> u8 {
    match kind {
        ReplanKind::None => 0,
        ReplanKind::Incremental => 1,
        ReplanKind::Full => 2,
    }
}

fn replan_from_tag(tag: u8) -> Result<ReplanKind, WireError> {
    match tag {
        0 => Ok(ReplanKind::None),
        1 => Ok(ReplanKind::Incremental),
        2 => Ok(ReplanKind::Full),
        other => Err(WireError::BadTag { field: "replan", value: other }),
    }
}

/// Cheapest possible report: session + ok byte.
const MIN_REPORT_BYTES: usize = 8 + 1;

/// Encodes a report batch (binary response of `POST /telemetry/batch`).
pub fn encode_reports(outcomes: &[FrameOutcome]) -> Vec<u8> {
    let mut w = Writer::with_capacity(8 + outcomes.len() * 38);
    w.put_bytes(&MAGIC_REPORTS);
    w.put_u32(outcomes.len() as u32);
    for o in outcomes {
        w.put_u64(o.session);
        match &o.result {
            Ok(rep) => {
                w.put_u8(1);
                w.put_u64(rep.revision);
                w.put_f64(rep.time);
                w.put_u8(replan_tag(rep.replan));
                w.put_u32(rep.class_changes as u32);
                w.put_u32(rep.emergency_sensors as u32);
                w.put_u32(rep.planner_calls as u32);
            }
            Err(text) => {
                w.put_u8(0);
                let bytes = text.as_bytes();
                let len = bytes.len().min(u16::MAX as usize);
                w.put_u16(len as u16);
                w.put_bytes(&bytes[..len]);
            }
        }
    }
    w.into_bytes()
}

/// Decodes a report batch.
pub fn decode_reports(bytes: &[u8]) -> Result<Vec<FrameOutcome>, WireError> {
    let mut r = Reader::new(bytes);
    r.expect_magic(MAGIC_REPORTS)?;
    let count = r.get_count("reports", MIN_REPORT_BYTES)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let session = r.get_u64()?;
        let result = match r.get_u8()? {
            1 => Ok(IngestReport {
                revision: r.get_u64()?,
                time: r.get_f64()?,
                replan: replan_from_tag(r.get_u8()?)?,
                class_changes: r.get_u32()? as usize,
                emergency_sensors: r.get_u32()? as usize,
                planner_calls: r.get_u32()? as usize,
            }),
            0 => {
                let len = r.get_u16()? as usize;
                let bytes = r.take(len)?;
                Err(String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)?)
            }
            other => return Err(WireError::BadTag { field: "ok", value: other }),
        };
        out.push(FrameOutcome { session, result });
    }
    r.finish()?;
    Ok(out)
}

// --- plan summaries ------------------------------------------------------

/// Compact numeric view of a session plan — everything the JSON plan
/// response carries except the per-tour geometry: revision, clocks,
/// assigned cycles and the dispatch timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanWire {
    /// Plan revision.
    pub revision: u64,
    /// Controller clock.
    pub now: f64,
    /// Monitoring horizon.
    pub horizon: f64,
    /// Base cycle τ₁.
    pub tau1: f64,
    /// Total service cost of the schedule.
    pub service_cost: f64,
    /// Executed dispatch count.
    pub executed: u64,
    /// Per-sensor assigned (rounded) cycles.
    pub assigned: Vec<f64>,
    /// `(time, set id)` for every dispatch, in series order.
    pub dispatches: Vec<(f64, u32)>,
}

impl PlanWire {
    /// Encodes the summary (binary response of `GET /session/{id}/plan`).
    pub fn encode(&self) -> Vec<u8> {
        let mut w =
            Writer::with_capacity(60 + self.assigned.len() * 8 + self.dispatches.len() * 12);
        w.put_bytes(&MAGIC_PLAN);
        w.put_u64(self.revision);
        w.put_f64(self.now);
        w.put_f64(self.horizon);
        w.put_f64(self.tau1);
        w.put_f64(self.service_cost);
        w.put_u64(self.executed);
        w.put_u32(self.assigned.len() as u32);
        for &a in &self.assigned {
            w.put_f64(a);
        }
        w.put_u32(self.dispatches.len() as u32);
        for &(time, set) in &self.dispatches {
            w.put_f64(time);
            w.put_u32(set);
        }
        w.into_bytes()
    }

    /// Decodes a summary, rejecting truncation and trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        r.expect_magic(MAGIC_PLAN)?;
        let revision = r.get_u64()?;
        let now = r.get_f64()?;
        let horizon = r.get_f64()?;
        let tau1 = r.get_f64()?;
        let service_cost = r.get_f64()?;
        let executed = r.get_u64()?;
        let n = r.get_count("assigned", 8)?;
        let mut assigned = Vec::with_capacity(n);
        for _ in 0..n {
            assigned.push(r.get_f64()?);
        }
        let d = r.get_count("dispatches", 12)?;
        let mut dispatches = Vec::with_capacity(d);
        for _ in 0..d {
            let time = r.get_f64()?;
            let set = r.get_u32()?;
            dispatches.push((time, set));
        }
        r.finish()?;
        Ok(Self { revision, now, horizon, tau1, service_cost, executed, assigned, dispatches })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::telemetry(
                7,
                TelemetryBatch {
                    time: 1.5,
                    records: vec![
                        TelemetryRecord::rate(0, 0.25),
                        TelemetryRecord::level(3, 0.5),
                        TelemetryRecord::full(9, 0.1, 0.9),
                        TelemetryRecord { sensor: 2, rate: None, level: None },
                    ],
                },
            ),
            Frame::telemetry(u64::MAX, TelemetryBatch::tick(2.0)),
            Frame::events(
                9,
                EventBatch {
                    time: 3.5,
                    sync: true,
                    events: vec![
                        ClassEvent::new(0, 0.25, 0.26, 0.75),
                        ClassEvent::new(4, 0.125, 0.12, 1.0),
                    ],
                    observed: 40,
                    sent: 2,
                },
            ),
            Frame::events(10, EventBatch::new(4.0, vec![])),
        ]
    }

    #[test]
    fn frames_round_trip() {
        let frames = sample_frames();
        let bytes = encode_frames(&frames);
        assert_eq!(decode_frames(&bytes).expect("decode"), frames);
    }

    #[test]
    fn every_truncation_of_a_frame_batch_is_rejected() {
        let bytes = encode_frames(&sample_frames());
        for cut in 0..bytes.len() {
            let err = decode_frames(&bytes[..cut]).expect_err("truncated must fail");
            assert!(
                matches!(err, WireError::Truncated { .. } | WireError::BadCount { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_frames(&sample_frames());
        bytes.push(0xAB);
        assert_eq!(decode_frames(&bytes), Err(WireError::Trailing { extra: 1 }));
    }

    #[test]
    fn bad_magic_and_bad_flags_are_rejected() {
        let mut bytes = encode_frames(&sample_frames());
        bytes[0] = b'X';
        assert!(matches!(decode_frames(&bytes), Err(WireError::BadMagic { .. })));

        let one = vec![Frame::telemetry(
            1,
            TelemetryBatch { time: 0.0, records: vec![TelemetryRecord::rate(0, 0.1)] },
        )];
        let mut bytes = encode_frames(&one);
        // The flags byte of the single record: magic(4)+count(4)+session(8)
        // +tag(1)+time(8)+records(4)+sensor(4) = offset 33.
        bytes[33] = 0xFF;
        assert!(matches!(
            decode_frames(&bytes),
            Err(WireError::BadTag { field: "record flags", .. })
        ));
    }

    #[test]
    fn reserved_frame_tags_are_rejected_with_a_typed_error() {
        let one = vec![Frame::telemetry(1, TelemetryBatch::tick(0.5))];
        let mut bytes = encode_frames(&one);
        // The frame tag byte: magic(4)+count(4)+session(8) = offset 16.
        for reserved in [2u8, 3, 0x7F, 0xFF] {
            bytes[16] = reserved;
            assert_eq!(
                decode_frames(&bytes),
                Err(WireError::BadTag { field: "frame_tag", value: reserved }),
                "reserved tag {reserved} must fail loud, not as truncation"
            );
        }
    }

    #[test]
    fn bad_sync_byte_is_rejected() {
        let one = vec![Frame::events(1, EventBatch::new(0.5, vec![]))];
        let mut bytes = encode_frames(&one);
        // The sync byte: magic(4)+count(4)+session(8)+tag(1)+time(8) = 25.
        bytes[25] = 7;
        assert_eq!(decode_frames(&bytes), Err(WireError::BadTag { field: "sync", value: 7 }));
    }

    #[test]
    fn hostile_counts_cannot_drive_allocation() {
        let mut w = Writer::default();
        w.put_bytes(&MAGIC_FRAMES);
        w.put_u32(u32::MAX);
        let err = decode_frames(&w.into_bytes()).expect_err("hostile count");
        assert!(matches!(err, WireError::BadCount { field: "frames", .. }), "{err:?}");
    }

    #[test]
    fn reports_round_trip_including_errors() {
        let outcomes = vec![
            FrameOutcome {
                session: 3,
                result: Ok(IngestReport {
                    revision: 9,
                    time: 4.25,
                    replan: ReplanKind::Incremental,
                    class_changes: 2,
                    emergency_sensors: 1,
                    planner_calls: 3,
                }),
            },
            FrameOutcome { session: 4, result: Err("no session 4".to_string()) },
        ];
        let bytes = encode_reports(&outcomes);
        assert_eq!(decode_reports(&bytes).expect("decode"), outcomes);
        for cut in 0..bytes.len() {
            assert!(decode_reports(&bytes[..cut]).is_err(), "cut {cut} must fail");
        }
    }

    #[test]
    fn plan_summary_round_trips() {
        let plan = PlanWire {
            revision: 12,
            now: 31.5,
            horizon: 300.0,
            tau1: 4.0,
            service_cost: 1234.5,
            executed: 6,
            assigned: vec![4.0, 8.0, 8.0, 16.0],
            dispatches: vec![(4.0, 0), (8.0, 1), (12.0, 0)],
        };
        let bytes = plan.encode();
        assert_eq!(PlanWire::decode(&bytes).expect("decode"), plan);
        for cut in 0..bytes.len() {
            assert!(PlanWire::decode(&bytes[..cut]).is_err(), "cut {cut} must fail");
        }
        let mut garbage = bytes.clone();
        garbage.extend_from_slice(&[1, 2, 3]);
        assert_eq!(PlanWire::decode(&garbage), Err(WireError::Trailing { extra: 3 }));
    }

    #[test]
    fn binary_frames_are_smaller_than_json() {
        // Realistic telemetry: measured floats whose shortest JSON
        // rendering runs to ~17 significant digits, vs 8 bytes binary.
        let batch = TelemetryBatch {
            time: 17.0 / 3.0,
            records: (0..32)
                .map(|i| TelemetryRecord::full(i, i as f64 / 3.0 + 0.01, i as f64 / 7.0))
                .collect(),
        };
        // Size of the same request as the JSON batch body:
        // {"frames":[{"session":42,<batch fields>}]}.
        let json: usize = 12 + 16 + serde_json::to_string(&batch).expect("json").len();
        let binary = encode_frames(&[Frame::telemetry(42, batch)]).len();
        assert!(binary * 2 < json, "binary {binary}B must be well under JSON {json}B");
    }
}
