//! Sharded LRU plan cache keyed by a canonical content hash.
//!
//! `/plan` is the daemon's hot path: repeated requests for the same
//! scenario should cost a hash lookup, not an `O(n log n)` planning run.
//! The key is a **canonical** FNV-1a hash of the request's JSON tree —
//! object keys are visited in sorted order and numbers by their bit
//! pattern — so two requests that differ only in key order or whitespace
//! hit the same entry.
//!
//! Shards are independent `Mutex`-guarded LRU maps picked by the key's
//! low bits: concurrent workers planning different scenarios never
//! contend on one lock, and a lock is only ever held for a map operation
//! (never across planning).

use serde_json::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Number of independent shards (power of two; the key's low bits pick
/// the shard).
const SHARDS: usize = 8;

/// One shard: an LRU map with a monotonic use counter.
#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    tick: u64,
}

struct Entry {
    value: Arc<str>,
    last_used: u64,
}

/// A sharded LRU cache from canonical scenario hashes to rendered plan
/// JSON. Values are `Arc<str>` so a hit hands back the exact cached bytes
/// without copying — which is also what makes repeated responses
/// byte-identical.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    /// Lock-free entry count, kept exact by `insert` — `/metrics` scrapes
    /// never touch a shard lock.
    len: AtomicUsize,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (split evenly over the
    /// shards, at least one each). `capacity = 0` disables caching.
    pub fn new(capacity: usize) -> Self {
        let per_shard_capacity = if capacity == 0 { 0 } else { capacity.div_ceil(SHARDS) };
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            len: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Looks up a plan, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<str>> {
        let mut shard = match self.shard(key).lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        shard.tick += 1;
        let tick = shard.tick;
        let entry = shard.map.get_mut(&key)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.value))
    }

    /// Inserts a plan, evicting the shard's least-recently-used entry when
    /// full; returns `true` when an entry was evicted (so the caller can
    /// count it into `/metrics`). No-op on a zero-capacity cache.
    pub fn insert(&self, key: u64, value: Arc<str>) -> bool {
        if self.per_shard_capacity == 0 {
            return false;
        }
        let mut shard = match self.shard(key).lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        shard.tick += 1;
        let tick = shard.tick;
        let mut evicted = false;
        if shard.map.len() >= self.per_shard_capacity && !shard.map.contains_key(&key) {
            // O(capacity) scan: shards are small and eviction is the cold
            // path (it only runs once a shard is full).
            if let Some(&lru) = shard.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k) {
                shard.map.remove(&lru);
                evicted = true;
            }
        }
        let fresh = shard.map.insert(key, Entry { value, last_used: tick }).is_none();
        drop(shard);
        // Net growth: a fresh key grows the cache unless it displaced an
        // LRU entry; re-inserting an existing key is length-neutral.
        if fresh && !evicted {
            self.len.fetch_add(1, Relaxed);
        } else if !fresh && evicted {
            self.len.fetch_sub(1, Relaxed);
        }
        evicted
    }

    /// Number of cached plans across all shards — one atomic load, no
    /// locks (the `/metrics` scrape path).
    pub fn len(&self) -> usize {
        self.len.load(Relaxed)
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FNV-1a over a canonical rendering of the JSON tree: object keys in
/// sorted order, strings length-prefixed, numbers by normalized bit
/// pattern. Key order and formatting differences therefore hash
/// identically; any semantic difference changes the hash.
pub fn canonical_hash(v: &Value) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    hash_value(v, &mut h);
    h
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn hash_value(v: &Value, h: &mut u64) {
    match v {
        Value::Null => fnv(h, b"n"),
        Value::Bool(b) => fnv(h, if *b { b"t" } else { b"f" }),
        Value::Num(n) => {
            // Normalize -0.0 so it hashes like 0.0 (they compare equal).
            let n = if *n == 0.0 { 0.0 } else { *n };
            fnv(h, b"#");
            fnv(h, &n.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            fnv(h, b"s");
            fnv(h, &(s.len() as u64).to_le_bytes());
            fnv(h, s.as_bytes());
        }
        Value::Arr(items) => {
            fnv(h, b"[");
            for item in items {
                hash_value(item, h);
            }
            fnv(h, b"]");
        }
        Value::Obj(pairs) => {
            let mut order: Vec<usize> = (0..pairs.len()).collect();
            order.sort_by(|&a, &b| pairs[a].0.cmp(&pairs[b].0));
            fnv(h, b"{");
            for i in order {
                let (k, val) = &pairs[i];
                fnv(h, &(k.len() as u64).to_le_bytes());
                fnv(h, k.as_bytes());
                hash_value(val, h);
            }
            fnv(h, b"}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        serde_json::parse_value(s).unwrap()
    }

    #[test]
    fn key_order_and_whitespace_do_not_change_the_hash() {
        let a = parse(r#"{"n": 50, "q": 3, "nested": {"x": 1, "y": [1, 2]}}"#);
        let b = parse(r#"{ "nested":{"y":[1,2],"x":1},"q":3,"n":50 }"#);
        assert_eq!(canonical_hash(&a), canonical_hash(&b));
    }

    #[test]
    fn semantic_differences_change_the_hash() {
        let base = parse(r#"{"n": 50, "q": 3}"#);
        for other in [
            r#"{"n": 51, "q": 3}"#,
            r#"{"n": 50, "q": 4}"#,
            r#"{"n": 50}"#,
            r#"{"n": "50", "q": 3}"#,
            r#"{"n": [50], "q": 3}"#,
        ] {
            assert_ne!(canonical_hash(&base), canonical_hash(&parse(other)), "{other}");
        }
        // Array order is semantic, unlike object key order.
        assert_ne!(canonical_hash(&parse("[1,2]")), canonical_hash(&parse("[2,1]")));
        // String/number confusion across adjacent fields is still distinct
        // thanks to length prefixes and type tags.
        assert_ne!(
            canonical_hash(&parse(r#"{"ab":"c"}"#)),
            canonical_hash(&parse(r#"{"a":"bc"}"#))
        );
    }

    #[test]
    fn cache_hits_return_the_same_bytes() {
        let cache = PlanCache::new(16);
        assert!(cache.is_empty());
        assert!(cache.get(1).is_none());
        cache.insert(1, Arc::from("plan-1"));
        let a = cache.get(1).unwrap();
        let b = cache.get(1).unwrap();
        assert_eq!(&*a, "plan-1");
        assert!(Arc::ptr_eq(&a, &b), "hits share the cached allocation");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        // Single-shard capacity: keys in the same shard (multiples of 8).
        let cache = PlanCache::new(16); // 2 per shard
        assert!(!cache.insert(0, Arc::from("a")));
        assert!(!cache.insert(8, Arc::from("b")));
        assert!(cache.get(0).is_some()); // refresh 0 — 8 is now LRU
        assert!(cache.insert(16, Arc::from("c")), "overflow insert reports the eviction");
        assert!(cache.get(0).is_some());
        assert!(cache.get(8).is_none(), "LRU entry evicted");
        assert!(cache.get(16).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        cache.insert(1, Arc::from("x"));
        assert!(cache.get(1).is_none());
        assert!(cache.is_empty());
    }
}
