//! Endpoint handlers: the JSON-level logic behind the router.
//!
//! Both planning endpoints parse the request into a JSON tree first; for
//! `/plan` that tree's canonical hash ([`crate::cache::canonical_hash`])
//! is the cache key, so the cache is consulted *before* any scenario
//! validation or topology construction — a hit costs one hash and one
//! shard lookup. All scenario parsing goes through
//! [`perpetuum_exp::scenario`]'s typed [`ScenarioError`] surface: the CLI
//! and the daemon reject exactly the same inputs with the same messages.

use crate::cache::{canonical_hash, PlanCache};
use crate::http::Response;
use crate::metrics::Metrics;
use perpetuum_core::mtd::{plan_min_total_distance, MtdConfig};
use perpetuum_core::network::{Instance, Network};
use perpetuum_exp::scenario::{world_from_value, Algo, ScenarioError};
use perpetuum_sim::FaultModel;
use serde::{Deserialize as _, Serialize as _};
use serde_json::Value;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::Instant;

/// Everything the handlers share: the plan cache and the metric set.
pub struct AppState {
    /// The sharded LRU plan cache.
    pub cache: PlanCache,
    /// Counters, gauges and histograms served by `/metrics`.
    pub metrics: Metrics,
}

impl AppState {
    /// Fresh state with the given plan-cache capacity.
    pub fn new(cache_capacity: usize) -> Self {
        Self { cache: PlanCache::new(cache_capacity), metrics: Metrics::default() }
    }
}

/// Default master seed when a request omits `seed` (the workspace-wide
/// experiment default).
const DEFAULT_SEED: u64 = 42;

fn bad_json(err: impl std::fmt::Display) -> Response {
    Response::error(400, "bad_json", &err.to_string())
}

fn bad_scenario(err: &ScenarioError) -> Response {
    Response::error(400, "invalid_scenario", &err.to_string())
}

/// Pulls an optional unsigned integer field (e.g. `seed`) out of the
/// request tree.
fn u64_field(v: &Value, key: &str, default: u64) -> Result<u64, Response> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        Some(other) => {
            Err(bad_json(format!("field `{key}` must be a non-negative integer, got {other:?}")))
        }
    }
}

fn bool_field(v: &Value, key: &str) -> Result<bool, Response> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(other) => Err(bad_json(format!("field `{key}` must be a boolean, got {other:?}"))),
    }
}

/// `GET /healthz`.
pub fn healthz() -> Response {
    Response::json(200, "{\"status\":\"ok\"}".to_string())
}

/// `GET /metrics`.
pub fn metrics(state: &AppState) -> Response {
    Response::text(200, state.metrics.render(state.cache.len()))
}

/// `POST /plan` — scenario JSON in, charging schedule + service cost out.
///
/// Request: `{"scenario": {...}, "seed"?: u64, "index"?: u64, "sparse"?: bool}`.
/// Response: `{"cache_hit": bool, "plan_us": u64, "result": {...}}` where
/// the `result` bytes come verbatim from the cache on a hit — repeated
/// requests return byte-identical schedules.
pub fn plan(state: &AppState, body: &[u8]) -> Response {
    let started = Instant::now();
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(e) => return bad_json(format!("body is not UTF-8: {e}")),
    };
    let tree = match serde_json::parse_value(text) {
        Ok(v) => v,
        Err(e) => return bad_json(e),
    };
    let key = canonical_hash(&tree);

    if let Some(cached) = state.cache.get(key) {
        state.metrics.cache_hits.fetch_add(1, Relaxed);
        return respond_plan(true, started, &cached);
    }
    state.metrics.cache_misses.fetch_add(1, Relaxed);

    let Some(scenario_value) = tree.get("scenario") else {
        return bad_json("missing field `scenario`");
    };
    let seed = match u64_field(&tree, "seed", DEFAULT_SEED) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let index = match u64_field(&tree, "index", 0) {
        Ok(i) => i,
        Err(r) => return r,
    };
    let sparse = match bool_field(&tree, "sparse") {
        Ok(b) => b,
        Err(r) => return r,
    };

    let parsed = match world_from_value(scenario_value, seed, index) {
        Ok(p) => p,
        Err(e) => return bad_scenario(&e),
    };
    let instance = if sparse {
        // Force the sparse pipeline: planning runs off on-demand point
        // distances, never materializing the Θ((n+q)²) matrix.
        let points = parsed.topology.network.points();
        let n = parsed.topology.network.n();
        let network = Network::sparse(points[..n].to_vec(), points[n..].to_vec());
        Instance::new(network, parsed.topology.init_cycles.clone(), parsed.scenario.horizon)
    } else {
        parsed.instance()
    };
    let schedule = plan_min_total_distance(&instance, &MtdConfig::default());

    let result = Value::Obj(vec![
        ("n".to_string(), Value::Num(instance.n() as f64)),
        ("q".to_string(), Value::Num(instance.q() as f64)),
        ("seed".to_string(), Value::Num(seed as f64)),
        ("index".to_string(), Value::Num(index as f64)),
        ("sparse".to_string(), Value::Bool(sparse)),
        ("service_cost".to_string(), Value::Num(schedule.service_cost())),
        ("dispatches".to_string(), Value::Num(schedule.dispatch_count() as f64)),
        ("total_charges".to_string(), Value::Num(schedule.total_charges() as f64)),
        ("schedule".to_string(), schedule.to_value()),
    ]);
    let rendered: Arc<str> = match serde_json::to_string(&result) {
        Ok(s) => Arc::from(s),
        Err(e) => return Response::error(500, "internal_error", &e.to_string()),
    };
    state.cache.insert(key, Arc::clone(&rendered));
    respond_plan(false, started, &rendered)
}

fn respond_plan(cache_hit: bool, started: Instant, result: &str) -> Response {
    let us = started.elapsed().as_micros();
    Response::json(
        200,
        format!("{{\"cache_hit\":{cache_hit},\"plan_us\":{us},\"result\":{result}}}"),
    )
}

/// `POST /simulate` — run the event-driven engine over a scenario,
/// optionally under a fault model.
///
/// Request: `{"scenario": {...}, "algo"?: "Mtd"|"MtdVar"|"Greedy",
/// "seed"?: u64, "index"?: u64, "faults"?: {...}}`.
/// Response: `{"algo": ..., "sim_us": u64, "result": <SimResult>}`.
pub fn simulate(body: &[u8]) -> Response {
    let started = Instant::now();
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(e) => return bad_json(format!("body is not UTF-8: {e}")),
    };
    let tree = match serde_json::parse_value(text) {
        Ok(v) => v,
        Err(e) => return bad_json(e),
    };
    let Some(scenario_value) = tree.get("scenario") else {
        return bad_json("missing field `scenario`");
    };
    let algo = match tree.get("algo") {
        None | Some(Value::Null) => Algo::Mtd,
        Some(v) => match Algo::from_value(v) {
            Ok(a) => a,
            Err(_) => {
                return bad_json(format!(
                    "field `algo` must be one of \"Mtd\", \"MtdVar\", \"Greedy\", got {v:?}"
                ))
            }
        },
    };
    let seed = match u64_field(&tree, "seed", DEFAULT_SEED) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let index = match u64_field(&tree, "index", 0) {
        Ok(i) => i,
        Err(r) => return r,
    };
    let faults = match tree.get("faults") {
        None | Some(Value::Null) => FaultModel::none(),
        Some(v) => match FaultModel::from_value(v) {
            Ok(f) => f,
            Err(e) => return Response::error(400, "invalid_faults", &e.to_string()),
        },
    };
    if let Err(e) = faults.validate() {
        return Response::error(400, "invalid_faults", &e);
    }

    let parsed = match world_from_value(scenario_value, seed, index) {
        Ok(p) => p,
        Err(e) => return bad_scenario(&e),
    };
    let result = parsed.simulate(algo, &faults);

    let algo_json = match serde_json::to_string(&algo) {
        Ok(s) => s,
        Err(e) => return Response::error(500, "internal_error", &e.to_string()),
    };
    let result_json = match serde_json::to_string(&result) {
        Ok(s) => s,
        Err(e) => return Response::error(500, "internal_error", &e.to_string()),
    };
    let us = started.elapsed().as_micros();
    Response::json(
        200,
        format!("{{\"algo\":{algo_json},\"sim_us\":{us},\"result\":{result_json}}}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plan_body(seed: u64) -> String {
        format!(
            r#"{{"scenario": {{
                "field_size": 500.0, "n": 12, "q": 2,
                "tau_min": 1.0, "tau_max": 20.0,
                "dist": {{ "Linear": {{ "sigma": 2.0 }} }},
                "horizon": 60.0, "slot": 10.0,
                "variable": false, "deployment": "Uniform"
            }}, "seed": {seed}}}"#
        )
    }

    #[test]
    fn plan_misses_then_hits_with_identical_result_bytes() {
        let state = AppState::new(32);
        let body = small_plan_body(7);
        let first = plan(&state, body.as_bytes());
        assert_eq!(first.status, 200);
        let first_body = String::from_utf8(first.body).unwrap();
        assert!(first_body.starts_with("{\"cache_hit\":false,"), "{first_body}");

        let second = plan(&state, body.as_bytes());
        let second_body = String::from_utf8(second.body).unwrap();
        assert!(second_body.starts_with("{\"cache_hit\":true,"), "{second_body}");

        let result_of = |b: &str| b.split_once("\"result\":").map(|(_, r)| r.to_string());
        assert_eq!(result_of(&first_body), result_of(&second_body), "byte-identical schedules");
        assert_eq!(state.metrics.cache_hits.load(Relaxed), 1);
        assert_eq!(state.metrics.cache_misses.load(Relaxed), 1);
    }

    #[test]
    fn key_order_and_whitespace_still_hit_the_cache() {
        let state = AppState::new(32);
        let a = r#"{"seed": 3, "scenario": {
            "field_size": 500.0, "n": 10, "q": 2,
            "tau_min": 1.0, "tau_max": 20.0,
            "dist": { "Linear": { "sigma": 2.0 } },
            "horizon": 60.0, "slot": 10.0,
            "variable": false, "deployment": "Uniform"
        }}"#;
        let b = r#"{"scenario":{"q":2,"n":10,"field_size":500.0,"tau_min":1.0,"tau_max":20.0,"dist":{"Linear":{"sigma":2.0}},"horizon":60.0,"slot":10.0,"variable":false,"deployment":"Uniform"},"seed":3}"#;
        assert_eq!(plan(&state, a.as_bytes()).status, 200);
        assert_eq!(plan(&state, b.as_bytes()).status, 200);
        assert_eq!(state.metrics.cache_hits.load(Relaxed), 1, "near-duplicate request hit");
    }

    #[test]
    fn sparse_plan_matches_dense_cost() {
        let state = AppState::new(32);
        let dense = plan(&state, small_plan_body(5).as_bytes());
        let sparse_body =
            small_plan_body(5).replace("\"seed\": 5", "\"seed\": 5, \"sparse\": true");
        let sparse = plan(&state, sparse_body.as_bytes());
        assert_eq!(dense.status, 200);
        assert_eq!(sparse.status, 200);
        let cost = |r: &Response| {
            let body = std::str::from_utf8(&r.body).unwrap().to_string();
            let v = serde_json::parse_value(&body).unwrap();
            match v.get("result").and_then(|r| r.get("service_cost")) {
                Some(Value::Num(n)) => *n,
                other => panic!("no service_cost: {other:?}"),
            }
        };
        let (dc, sc) = (cost(&dense), cost(&sparse));
        assert!(dc > 0.0);
        // Sparse routing is near-identical at this scale (sparse MSF may
        // differ slightly from the dense one in edge ties).
        assert!((dc - sc).abs() <= 0.05 * dc, "dense {dc} vs sparse {sc}");
    }

    #[test]
    fn malformed_plan_inputs_are_typed_400s() {
        let state = AppState::new(32);
        for (body, kind) in [
            (r#"{"#.to_string(), "bad_json"),
            (r#"{"no_scenario": 1}"#.to_string(), "bad_json"),
            (small_plan_body(1).replace("\"q\": 2", "\"q\": 0"), "invalid_scenario"),
            (small_plan_body(1).replace("60.0,", "-60.0,"), "invalid_scenario"),
            (small_plan_body(1).replace("\"seed\": 1", "\"seed\": -3"), "bad_json"),
            (small_plan_body(1).replace("\"seed\": 1", "\"seed\": 1, \"sparse\": 7"), "bad_json"),
        ] {
            let r = plan(&state, body.as_bytes());
            assert_eq!(r.status, 400, "{body}");
            let text = String::from_utf8(r.body).unwrap();
            assert!(text.contains(&format!("\"kind\":\"{kind}\"")), "{text}");
        }
    }

    #[test]
    fn simulate_runs_with_and_without_faults() {
        let body = small_plan_body(2).replace("\"seed\": 2", "\"seed\": 2, \"algo\": \"Greedy\"");
        let r = simulate(body.as_bytes());
        assert_eq!(r.status, 200);
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("\"algo\":\"Greedy\""), "{text}");
        assert!(text.contains("\"service_cost\":"), "{text}");

        let faulty = small_plan_body(2).replace(
            "\"seed\": 2",
            r#""seed": 2, "faults": {"chargers": {"mtbf": 10.0, "mttr": 20.0}, "seed": 1}"#,
        );
        let r = simulate(faulty.as_bytes());
        assert_eq!(r.status, 200);
        let v = serde_json::parse_value(std::str::from_utf8(&r.body).unwrap()).unwrap();
        let breakdowns = v
            .get("result")
            .and_then(|r| r.get("faults"))
            .and_then(|f| f.get("breakdowns"))
            .cloned();
        assert!(matches!(breakdowns, Some(Value::Num(n)) if n > 0.0), "{breakdowns:?}");
    }

    #[test]
    fn simulate_rejects_bad_algo_and_bad_faults() {
        let bad_algo = small_plan_body(2).replace("\"seed\": 2", "\"seed\": 2, \"algo\": \"Nope\"");
        let r = simulate(bad_algo.as_bytes());
        assert_eq!(r.status, 400);
        let bad_faults = small_plan_body(2).replace(
            "\"seed\": 2",
            r#""seed": 2, "faults": {"chargers": {"mtbf": -1.0, "mttr": 20.0}}"#,
        );
        let r = simulate(bad_faults.as_bytes());
        assert_eq!(r.status, 400);
        assert!(String::from_utf8(r.body).unwrap().contains("invalid_faults"));
    }
}
