//! Endpoint handlers: the JSON-level logic behind the router.
//!
//! Both planning endpoints parse the request into a JSON tree first; for
//! `/plan` that tree's canonical hash ([`crate::cache::canonical_hash`])
//! is the cache key, so the cache is consulted *before* any scenario
//! validation or topology construction — a hit costs one hash and one
//! shard lookup. All scenario parsing goes through
//! [`perpetuum_exp::scenario`]'s typed [`ScenarioError`] surface: the CLI
//! and the daemon reject exactly the same inputs with the same messages.

use crate::cache::{canonical_hash, PlanCache};
use crate::http::{Request, Response};
use crate::journal::{EndReason, JournalSet};
use crate::metrics::Metrics;
use crate::refine::{RefineJob, RefineQueue};
use crate::session::SessionStore;
use crate::wire;
use perpetuum_core::mtd::{plan_min_total_distance, MtdConfig};
use perpetuum_core::network::{Instance, Network};
use perpetuum_core::refine::{refine, Budget, RefineReport};
use perpetuum_core::ScheduleSeries;
use perpetuum_exp::scenario::{world_from_value, Algo, ScenarioError};
use perpetuum_online::{
    ClassEvent, ControllerSeed, EventBatch, OnlineConfig, OnlineError, TelemetryBatch,
    TelemetryRecord,
};
use perpetuum_sim::FaultModel;
use serde::{Deserialize, Serialize as _};
use serde_json::Value;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::Instant;

/// Default number of live telemetry sessions the daemon holds before
/// evicting the least-recently-used one.
pub const DEFAULT_SESSION_CAPACITY: usize = 64;

/// Everything the handlers share: the plan cache, the session store, the
/// metric set, and (when `--data-dir` is set) the write-ahead journal.
pub struct AppState {
    /// The sharded LRU plan cache.
    pub cache: PlanCache,
    /// Live telemetry sessions (`/session` endpoints).
    pub sessions: SessionStore,
    /// Counters, gauges and histograms served by `/metrics` — shared
    /// (`Arc`) with the journal, which counts its own bytes and fsyncs.
    pub metrics: Arc<Metrics>,
    /// Max threads applying a `/telemetry/batch` request's shard groups
    /// in parallel (`--session-threads`).
    pub batch_threads: usize,
    /// The write-ahead journal; `None` runs the daemon in-memory only.
    pub journal: Option<JournalSet>,
    /// Pending background-refinement jobs (`/plan` with
    /// `"refine":"background"`), drained by the pool in
    /// [`crate::refine`].
    pub refine_queue: RefineQueue,
}

impl AppState {
    /// Fresh state with the given plan-cache capacity and the default
    /// session capacity/shards.
    pub fn new(cache_capacity: usize) -> Self {
        Self {
            cache: PlanCache::new(cache_capacity),
            sessions: SessionStore::new(DEFAULT_SESSION_CAPACITY, 0),
            metrics: Arc::new(Metrics::default()),
            batch_threads: 1,
            journal: None,
            refine_queue: RefineQueue::default(),
        }
    }

    /// Overrides the session-store capacity, keeping the default shard
    /// count. Builder-style.
    pub fn with_session_capacity(self, capacity: usize) -> Self {
        self.with_sessions(capacity, 0)
    }

    /// Overrides both session-store capacity and shard count (`0` shards
    /// means the default). Builder-style.
    pub fn with_sessions(mut self, capacity: usize, shards: usize) -> Self {
        self.sessions = SessionStore::new(capacity, shards);
        self
    }

    /// Overrides the batch-apply parallelism. Builder-style.
    pub fn with_batch_threads(mut self, threads: usize) -> Self {
        self.batch_threads = threads.max(1);
        self
    }

    /// Attaches a write-ahead journal. The journal must have been opened
    /// with this state's metrics (`Arc::clone(&state.metrics)`) and the
    /// session store's shard count. Builder-style.
    pub fn with_journal(mut self, journal: JournalSet) -> Self {
        self.journal = Some(journal);
        self
    }
}

/// Default master seed when a request omits `seed` (the workspace-wide
/// experiment default).
const DEFAULT_SEED: u64 = 42;

fn bad_json(err: impl std::fmt::Display) -> Response {
    Response::error(400, "bad_json", &err.to_string())
}

fn bad_scenario(err: &ScenarioError) -> Response {
    Response::error(400, "invalid_scenario", &err.to_string())
}

/// Pulls an optional unsigned integer field (e.g. `seed`) out of the
/// request tree.
fn u64_field(v: &Value, key: &str, default: u64) -> Result<u64, Response> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        Some(other) => {
            Err(bad_json(format!("field `{key}` must be a non-negative integer, got {other:?}")))
        }
    }
}

fn bool_field(v: &Value, key: &str) -> Result<bool, Response> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(other) => Err(bad_json(format!("field `{key}` must be a boolean, got {other:?}"))),
    }
}

/// Pulls an optional finite float field (e.g. `margin`) out of the
/// request tree; `None` means the field was absent and the config default
/// applies.
fn f64_field(v: &Value, key: &str) -> Result<Option<f64>, Response> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Num(n)) if n.is_finite() => Ok(Some(*n)),
        Some(other) => {
            Err(bad_json(format!("field `{key}` must be a finite number, got {other:?}")))
        }
    }
}

/// Default refinement step budget when a request opts into `refine`
/// without setting `refine_steps` — enough to converge the Section VII
/// grid sizes, small enough that an inline pass stays sub-second.
pub const DEFAULT_REFINE_STEPS: u64 = 200_000;

/// How a `/plan` request wants its schedule refined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefineMode {
    /// Constructive plan only (the default; byte-compatible with
    /// requests that predate the knob).
    Off,
    /// Refine before responding: the response already carries the
    /// improved schedule, at the price of local-search latency.
    Inline,
    /// Respond with the constructive plan immediately and enqueue a
    /// background job that upgrades the cached entry in place.
    Background,
}

fn refine_mode(v: &Value) -> Result<RefineMode, Response> {
    match v.get("refine") {
        None | Some(Value::Null) => Ok(RefineMode::Off),
        Some(Value::Str(s)) => match s.as_str() {
            "off" => Ok(RefineMode::Off),
            "inline" => Ok(RefineMode::Inline),
            "background" => Ok(RefineMode::Background),
            other => Err(bad_json(format!(
                "field `refine` must be \"off\", \"inline\" or \"background\", got {other:?}"
            ))),
        },
        Some(other) => Err(bad_json(format!("field `refine` must be a string, got {other:?}"))),
    }
}

/// The request-derived response fields a background upgrade must
/// re-render around the improved schedule.
#[derive(Debug, Clone, Copy)]
pub struct PlanMeta {
    /// Sensor count.
    pub n: usize,
    /// Depot count.
    pub q: usize,
    /// Master seed of the request.
    pub seed: u64,
    /// Scenario grid index.
    pub index: u64,
    /// Whether the sparse pipeline was forced.
    pub sparse: bool,
    /// Refinement step budget of the request.
    pub refine_steps: u64,
}

/// Builds the `result` object of a `/plan` response. The field order is
/// fixed — the background worker re-renders through this same function,
/// so an upgraded cache entry differs from the original only in the
/// schedule, the costs, and the `refine` object.
pub fn render_plan_result(
    meta: &PlanMeta,
    schedule: &ScheduleSeries,
    refine: Option<(&str, bool, Option<&RefineReport>)>,
) -> Value {
    let mut fields = vec![
        ("n".to_string(), Value::Num(meta.n as f64)),
        ("q".to_string(), Value::Num(meta.q as f64)),
        ("seed".to_string(), Value::Num(meta.seed as f64)),
        ("index".to_string(), Value::Num(meta.index as f64)),
        ("sparse".to_string(), Value::Bool(meta.sparse)),
        ("service_cost".to_string(), Value::Num(schedule.service_cost())),
        ("dispatches".to_string(), Value::Num(schedule.dispatch_count() as f64)),
        ("total_charges".to_string(), Value::Num(schedule.total_charges() as f64)),
        ("schedule".to_string(), schedule.to_value()),
    ];
    if let Some((mode, refined, report)) = refine {
        let mut obj = vec![
            ("mode".to_string(), Value::Str(mode.to_string())),
            ("refined".to_string(), Value::Bool(refined)),
            ("budget_steps".to_string(), Value::Num(meta.refine_steps as f64)),
        ];
        if let Some(rep) = report {
            obj.push(("constructive_cost".to_string(), Value::Num(rep.constructive_cost)));
            obj.push(("improvement_ratio".to_string(), Value::Num(rep.improvement_ratio())));
        }
        fields.push(("refine".to_string(), Value::Obj(obj)));
    }
    Value::Obj(fields)
}

/// `GET /healthz`.
pub fn healthz() -> Response {
    Response::json(200, "{\"status\":\"ok\"}".to_string())
}

/// `GET /metrics`.
pub fn metrics(state: &AppState) -> Response {
    Response::text(
        200,
        state.metrics.render(state.cache.len(), state.sessions.len(), &state.sessions.shard_lens()),
    )
}

/// `POST /plan` — scenario JSON in, charging schedule + service cost out.
///
/// Request: `{"scenario": {...}, "seed"?: u64, "index"?: u64, "sparse"?: bool}`.
/// Response: `{"cache_hit": bool, "plan_us": u64, "result": {...}}` where
/// the `result` bytes come verbatim from the cache on a hit — repeated
/// requests return byte-identical schedules.
pub fn plan(state: &AppState, body: &[u8]) -> Response {
    let started = Instant::now();
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(e) => return bad_json(format!("body is not UTF-8: {e}")),
    };
    let tree = match serde_json::parse_value(text) {
        Ok(v) => v,
        Err(e) => return bad_json(e),
    };
    let key = canonical_hash(&tree);

    if let Some(cached) = state.cache.get(key) {
        state.metrics.cache_hits.fetch_add(1, Relaxed);
        return respond_plan(true, started, &cached);
    }
    state.metrics.cache_misses.fetch_add(1, Relaxed);

    let Some(scenario_value) = tree.get("scenario") else {
        return bad_json("missing field `scenario`");
    };
    let seed = match u64_field(&tree, "seed", DEFAULT_SEED) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let index = match u64_field(&tree, "index", 0) {
        Ok(i) => i,
        Err(r) => return r,
    };
    let sparse = match bool_field(&tree, "sparse") {
        Ok(b) => b,
        Err(r) => return r,
    };
    let mode = match refine_mode(&tree) {
        Ok(m) => m,
        Err(r) => return r,
    };
    let refine_steps = match u64_field(&tree, "refine_steps", DEFAULT_REFINE_STEPS) {
        Ok(s) => s,
        Err(r) => return r,
    };

    let parsed = match world_from_value(scenario_value, seed, index) {
        Ok(p) => p,
        Err(e) => return bad_scenario(&e),
    };
    let instance = if sparse {
        // Force the sparse pipeline: planning runs off on-demand point
        // distances, never materializing the Θ((n+q)²) matrix.
        let points = parsed.topology.network.points();
        let n = parsed.topology.network.n();
        let network = Network::sparse(points[..n].to_vec(), points[n..].to_vec());
        Instance::new(network, parsed.topology.init_cycles.clone(), parsed.scenario.horizon)
    } else {
        parsed.instance()
    };
    let schedule = plan_min_total_distance(&instance, &MtdConfig::default());
    let meta = PlanMeta { n: instance.n(), q: instance.q(), seed, index, sparse, refine_steps };

    let result = match mode {
        // No `refine` object at all: byte-compatible with pre-knob
        // responses, which the cache round-trip tests pin.
        RefineMode::Off => render_plan_result(&meta, &schedule, None),
        RefineMode::Inline => {
            let t0 = Instant::now();
            let (refined, report) =
                refine(instance.network(), &schedule, &Budget::steps(refine_steps), seed);
            state.metrics.record_refine(
                report.constructive_cost,
                report.refined_cost,
                t0.elapsed().as_secs_f64(),
            );
            render_plan_result(&meta, &refined, Some(("inline", true, Some(&report))))
        }
        RefineMode::Background => {
            render_plan_result(&meta, &schedule, Some(("background", false, None)))
        }
    };
    let rendered: Arc<str> = match serde_json::to_string(&result) {
        Ok(s) => Arc::from(s),
        Err(e) => return Response::error(500, "internal_error", &e.to_string()),
    };
    if state.cache.insert(key, Arc::clone(&rendered)) {
        state.metrics.cache_evictions.fetch_add(1, Relaxed);
    }
    if mode == RefineMode::Background {
        // Enqueue after the constructive entry is cached so the worker's
        // evicted-check races the right way; a full (or closed) queue
        // just means this entry stays constructive.
        let queued = state.refine_queue.push(RefineJob {
            key,
            instance,
            schedule,
            steps: refine_steps,
            seed,
            meta,
        });
        if !queued {
            state.metrics.refine_jobs_dropped.fetch_add(1, Relaxed);
        }
    }
    respond_plan(false, started, &rendered)
}

fn respond_plan(cache_hit: bool, started: Instant, result: &str) -> Response {
    let us = started.elapsed().as_micros();
    Response::json(
        200,
        format!("{{\"cache_hit\":{cache_hit},\"plan_us\":{us},\"result\":{result}}}"),
    )
}

/// `POST /simulate` — run the event-driven engine over a scenario,
/// optionally under a fault model.
///
/// Request: `{"scenario": {...}, "algo"?: "Mtd"|"MtdVar"|"Greedy",
/// "seed"?: u64, "index"?: u64, "faults"?: {...}}`.
/// Response: `{"algo": ..., "sim_us": u64, "result": <SimResult>}`.
pub fn simulate(body: &[u8]) -> Response {
    let started = Instant::now();
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(e) => return bad_json(format!("body is not UTF-8: {e}")),
    };
    let tree = match serde_json::parse_value(text) {
        Ok(v) => v,
        Err(e) => return bad_json(e),
    };
    let Some(scenario_value) = tree.get("scenario") else {
        return bad_json("missing field `scenario`");
    };
    let algo = match tree.get("algo") {
        None | Some(Value::Null) => Algo::Mtd,
        Some(v) => match Algo::from_value(v) {
            Ok(a) => a,
            Err(_) => {
                return bad_json(format!(
                    "field `algo` must be one of \"Mtd\", \"MtdVar\", \"Greedy\", got {v:?}"
                ))
            }
        },
    };
    let seed = match u64_field(&tree, "seed", DEFAULT_SEED) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let index = match u64_field(&tree, "index", 0) {
        Ok(i) => i,
        Err(r) => return r,
    };
    let faults = match tree.get("faults") {
        None | Some(Value::Null) => FaultModel::none(),
        Some(v) => match FaultModel::from_value(v) {
            Ok(f) => f,
            Err(e) => return Response::error(400, "invalid_faults", &e.to_string()),
        },
    };
    if let Err(e) = faults.validate() {
        return Response::error(400, "invalid_faults", &e);
    }

    let parsed = match world_from_value(scenario_value, seed, index) {
        Ok(p) => p,
        Err(e) => return bad_scenario(&e),
    };
    let result = parsed.simulate(algo, &faults);

    let algo_json = match serde_json::to_string(&algo) {
        Ok(s) => s,
        Err(e) => return Response::error(500, "internal_error", &e.to_string()),
    };
    let result_json = match serde_json::to_string(&result) {
        Ok(s) => s,
        Err(e) => return Response::error(500, "internal_error", &e.to_string()),
    };
    let us = started.elapsed().as_micros();
    Response::json(
        200,
        format!("{{\"algo\":{algo_json},\"sim_us\":{us},\"result\":{result_json}}}"),
    )
}

fn no_session(id: u64) -> Response {
    Response::error(404, "unknown_session", &format!("no session {id} (expired or deleted?)"))
}

/// Removes a session whose in-memory state can no longer be trusted to
/// match its journal — a panic mid-ingest, a lock poisoned by a panic
/// elsewhere, or a journal flush failure *after* the controller already
/// applied a batch. The session is removed, counted, and journaled as
/// ended, so neither a retrying client nor a restart can act on state of
/// unknown integrity; subsequent requests for the id get a plain 404.
/// Returns whether the session was present.
fn quarantine_session(state: &AppState, id: u64) -> bool {
    if !state.sessions.remove(id) {
        return false;
    }
    state.metrics.sessions_quarantined.fetch_add(1, Relaxed);
    if let Some(journal) = &state.journal {
        journal.append_end(id, EndReason::Quarantined);
        // Best-effort: if this flush fails too, the staged End rides
        // along with the next successful flush (or the drain), so the
        // journaled stream still closes.
        let _ = journal.flush();
    }
    true
}

/// [`quarantine_session`] + the 500 the panic paths answer with.
fn quarantine(state: &AppState, id: u64) -> Response {
    quarantine_session(state, id);
    Response::error(
        500,
        "session_quarantined",
        &format!("session {id} panicked during ingest and was quarantined"),
    )
}

/// `POST /session` — realise a scenario and open a closed-loop telemetry
/// session over it.
///
/// Request: `{"scenario": {...}, "seed"?: u64, "index"?: u64,
/// "gamma"?: f64, "margin"?: f64, "emergency_slack"?: f64}`.
/// Response: `{"session": id, "n": ..., "q": ..., "horizon": ...,
/// "revision": ..., "tau1": ...}`. The controller's initial rate estimate
/// for sensor `i` is `capacity_i / τ_i` — exactly what the realised
/// topology's recharge cycles imply.
pub fn session_create(state: &AppState, body: &[u8]) -> Response {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(e) => return bad_json(format!("body is not UTF-8: {e}")),
    };
    let tree = match serde_json::parse_value(text) {
        Ok(v) => v,
        Err(e) => return bad_json(e),
    };
    let Some(scenario_value) = tree.get("scenario") else {
        return bad_json("missing field `scenario`");
    };
    let seed = match u64_field(&tree, "seed", DEFAULT_SEED) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let index = match u64_field(&tree, "index", 0) {
        Ok(i) => i,
        Err(r) => return r,
    };
    let parsed = match world_from_value(scenario_value, seed, index) {
        Ok(p) => p,
        Err(e) => return bad_scenario(&e),
    };

    let mut cfg = OnlineConfig::new(parsed.scenario.horizon);
    match f64_field(&tree, "gamma") {
        Ok(Some(g)) => cfg = cfg.with_gamma(g),
        Ok(None) => {}
        Err(r) => return r,
    }
    match f64_field(&tree, "margin") {
        Ok(Some(m)) => cfg = cfg.with_margin(m),
        Ok(None) => {}
        Err(r) => return r,
    }
    match f64_field(&tree, "emergency_slack") {
        Ok(Some(s)) => cfg = cfg.with_emergency_slack(s),
        Ok(None) => {}
        Err(r) => return r,
    }

    let capacities = parsed.world.capacities();
    let rates: Vec<f64> =
        capacities.iter().zip(&parsed.topology.init_cycles).map(|(&cap, &tau)| cap / tau).collect();
    // The controller is built *through the seed* so the journaled genesis
    // record and the live construction are one and the same code path —
    // recovery rebuilds exactly what was served.
    let seed = ControllerSeed::new(&parsed.topology.network, capacities, rates, cfg);
    let controller = match seed.build() {
        Ok(c) => c,
        Err(e) => return Response::error(400, "invalid_session", &e.to_string()),
    };

    let summary = Value::Obj(vec![
        ("n".to_string(), Value::Num(controller.network().n() as f64)),
        ("q".to_string(), Value::Num(controller.network().q() as f64)),
        ("horizon".to_string(), Value::Num(parsed.scenario.horizon)),
        ("revision".to_string(), Value::Num(controller.revision() as f64)),
        ("tau1".to_string(), Value::Num(controller.tau1())),
    ]);
    // Journal the genesis *before* the session becomes visible: no
    // concurrent ingest can journal frames ahead of their Create record.
    let id = state.sessions.allocate_id();
    if let Some(journal) = &state.journal {
        journal.append_create(id, &seed);
    }
    let evicted = state.sessions.insert_with_id(id, controller);
    if let Some(evicted) = evicted {
        state.metrics.session_evictions.fetch_add(1, Relaxed);
        if let Some(journal) = &state.journal {
            journal.append_end(evicted, EndReason::Evicted);
        }
    }
    // Group commit: the staged Create (and any Evicted tombstone) must be
    // kernel-durable before the id is acknowledged.
    if let Some(journal) = &state.journal {
        if let Err(e) = journal.flush() {
            // The failed flush re-staged the Create, so a later flush
            // would persist a session the client was told failed. Remove
            // it and stage its End so the journaled stream closes either
            // way — no ghost session on recovery.
            if state.sessions.remove(id) {
                journal.append_end(id, EndReason::Deleted);
            }
            return Response::error(500, "journal_error", &e.to_string());
        }
    }
    let mut fields = vec![("session".to_string(), Value::Num(id as f64))];
    if let Value::Obj(rest) = summary {
        fields.extend(rest);
    }
    match serde_json::to_string(&Value::Obj(fields)) {
        Ok(s) => Response::json(200, s),
        Err(e) => Response::error(500, "internal_error", &e.to_string()),
    }
}

/// `POST /session/{id}/telemetry` — ingest one telemetry batch.
///
/// Request: a [`TelemetryBatch`]: `{"time": t, "records": [{"sensor": i,
/// "rate"?: f64, "level"?: f64}, ...]}`. Response: the controller's
/// [`IngestReport`](perpetuum_online::IngestReport) — revision, replan
/// kind, changed classes, emergency dispatches, and the number of planner
/// invocations this batch cost (0 when every touched sensor stayed inside
/// its rounding band).
pub fn session_telemetry(state: &AppState, id: u64, body: &[u8]) -> Response {
    let Some(slot) = state.sessions.get(id) else {
        return no_session(id);
    };
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(e) => return bad_json(format!("body is not UTF-8: {e}")),
    };
    let batch: TelemetryBatch = match serde_json::from_str(text) {
        Ok(b) => b,
        Err(e) => return bad_json(e),
    };
    // Per-session lock: concurrent batches for this session serialize
    // here; batches for other sessions proceed in parallel. A poisoned
    // lock means a previous request panicked mid-mutation — quarantine.
    let mut controller = match slot.lock() {
        Ok(g) => g,
        Err(_) => return quarantine(state, id),
    };
    let started = Instant::now();
    // Panic isolation: a controller bug takes down this session, not the
    // worker (the guard survives the catch, so the mutex stays clean and
    // the explicit quarantine below is the only consequence).
    let outcome = catch_unwind(AssertUnwindSafe(|| controller.ingest(&batch)));
    let report = match outcome {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => return Response::error(400, "invalid_telemetry", &e.to_string()),
        Err(_) => {
            drop(controller);
            return quarantine(state, id);
        }
    };
    // The batch was accepted: stage it while the slot lock still orders
    // this session's appends, then flush before acking.
    if let Some(journal) = &state.journal {
        journal.append_frames(id, vec![wire::Frame::telemetry(id, batch)]);
    }
    drop(controller);
    if let Some(journal) = &state.journal {
        if let Err(e) = journal.flush() {
            // The controller already applied the batch, and the failed
            // flush re-staged its Frames record — so a client retry after
            // this 500 would double-ingest (the same `time` passes the
            // monotonicity check) and journal the batch twice. Fail-stop
            // instead: quarantine the session so acknowledged, live, and
            // durable state can never drift apart.
            quarantine_session(state, id);
            return Response::error(
                500,
                "journal_error",
                &format!("journal flush failed after ingest; session {id} quarantined: {e}"),
            );
        }
    }
    state.metrics.record_ingest(
        report.replan,
        report.emergency_sensors as u64,
        started.elapsed().as_secs_f64(),
    );
    match serde_json::to_string(&report.to_value()) {
        Ok(s) => Response::json(200, s),
        Err(e) => Response::error(500, "internal_error", &e.to_string()),
    }
}

/// `POST /session/{id}/events` — ingest one suppressed-event batch from
/// edge clients.
///
/// Request: JSON [`EventBatch`]: `{"time": t, "sync"?: bool, "events":
/// [{"sensor": i, "rho_hat": f, "last_rate": f, "level": f}, ...],
/// "observed"?: n, "sent"?: n}` — or the compact binary frame batch of
/// [`crate::wire`] when `Content-Type:` is [`wire::CONTENT_TYPE`],
/// carrying exactly one events frame addressed to the path's session.
/// Response: the controller's ingest report, as for telemetry.
///
/// A batch whose drift demands a **full** replan is refused with `409
/// sync_required` and **zero** controller mutation — the client retries
/// with a `sync: true` batch carrying every sensor's state. The refusal
/// is never journaled (nothing changed), so recovery replay sees only
/// the accepted stream.
pub fn session_events(state: &AppState, id: u64, req: &Request) -> Response {
    let Some(slot) = state.sessions.get(id) else {
        return no_session(id);
    };
    let batch: EventBatch = if req.body_is(wire::CONTENT_TYPE) {
        let frames = match wire::decode_frames(&req.body) {
            Ok(f) => f,
            Err(e) => return Response::error(400, "bad_wire", &e.to_string()),
        };
        match <[wire::Frame; 1]>::try_from(frames) {
            Ok([frame]) if frame.session == id => match frame.payload {
                wire::FramePayload::Events(b) => b,
                wire::FramePayload::Telemetry(_) => {
                    return Response::error(
                        400,
                        "bad_wire",
                        "frame is telemetry; POST it to /session/{id}/telemetry",
                    );
                }
            },
            Ok([frame]) => {
                return Response::error(
                    400,
                    "bad_wire",
                    &format!("frame addresses session {}, path says {id}", frame.session),
                );
            }
            Err(frames) => {
                return Response::error(
                    400,
                    "bad_wire",
                    &format!("expected exactly 1 frame, got {}", frames.len()),
                );
            }
        }
    } else {
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t,
            Err(e) => return bad_json(format!("body is not UTF-8: {e}")),
        };
        match serde_json::from_str(text) {
            Ok(b) => b,
            Err(e) => return bad_json(e),
        }
    };
    let mut controller = match slot.lock() {
        Ok(g) => g,
        Err(_) => return quarantine(state, id),
    };
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| controller.ingest_events(&batch)));
    let report = match outcome {
        Ok(Ok(report)) => report,
        // The sync refusal mutates nothing — safe to hand back for retry.
        Ok(Err(OnlineError::SyncRequired)) => {
            return Response::error(
                409,
                "sync_required",
                "full replan required: retry with a sync batch covering all sensors",
            );
        }
        Ok(Err(e)) => return Response::error(400, "invalid_events", &e.to_string()),
        Err(_) => {
            drop(controller);
            return quarantine(state, id);
        }
    };
    let (observed, sent) = (batch.observed, batch.sent);
    // Accepted: stage under the slot lock, flush before acking — same
    // durability contract as the telemetry path.
    if let Some(journal) = &state.journal {
        journal.append_frames(id, vec![wire::Frame::events(id, batch)]);
    }
    drop(controller);
    if let Some(journal) = &state.journal {
        if let Err(e) = journal.flush() {
            quarantine_session(state, id);
            return Response::error(
                500,
                "journal_error",
                &format!("journal flush failed after ingest; session {id} quarantined: {e}"),
            );
        }
    }
    state.metrics.record_ingest(
        report.replan,
        report.emergency_sensors as u64,
        started.elapsed().as_secs_f64(),
    );
    state.metrics.record_events(observed, sent);
    match serde_json::to_string(&report.to_value()) {
        Ok(s) => Response::json(200, s),
        Err(e) => Response::error(500, "internal_error", &e.to_string()),
    }
}

/// `POST /telemetry/batch` — ingest telemetry frames for many sessions
/// in one request.
///
/// Request: JSON `{"frames": [{"session": id, "time": t, "records":
/// [...]}, ...]}`, or the compact binary frame batch of
/// [`crate::wire`] when `Content-Type:` is [`wire::CONTENT_TYPE`].
/// Frames are grouped by session (each session's slot is acquired and
/// locked exactly once, its frames applied in arrival order as one
/// controller step) and session groups are bucketed by store shard;
/// distinct shards apply in parallel, bounded by `--session-threads`.
///
/// The response carries one outcome per frame **in request order** —
/// a frame that fails (unknown session, non-monotone time) is reported
/// in place and does not abort the rest of the batch, exactly as if the
/// frames had been posted one request at a time. Binary when `Accept:`
/// asks for [`wire::CONTENT_TYPE`], JSON otherwise.
pub fn telemetry_batch(state: &AppState, req: &Request) -> Response {
    let frames = if req.body_is(wire::CONTENT_TYPE) {
        match wire::decode_frames(&req.body) {
            Ok(f) => f,
            Err(e) => return Response::error(400, "bad_wire", &e.to_string()),
        }
    } else {
        match json_frames(&req.body) {
            Ok(f) => f,
            Err(r) => return r,
        }
    };

    let outcomes = apply_frames(state, &frames);
    // One group commit for the whole batch: every accepted frame staged
    // above reaches the kernel before any outcome is acknowledged.
    if let Some(journal) = &state.journal {
        if let Err(e) = journal.flush() {
            // Accepted frames were applied in memory but not made
            // durable, and the failed flush re-staged them — a retry of
            // this batch would double-ingest. Fail-stop: quarantine every
            // session that accepted at least one frame.
            let mut failed: Vec<u64> =
                outcomes.iter().filter(|o| o.result.is_ok()).map(|o| o.session).collect();
            failed.sort_unstable();
            failed.dedup();
            for &id in &failed {
                quarantine_session(state, id);
            }
            return Response::error(
                500,
                "journal_error",
                &format!(
                    "journal flush failed after ingest; {} session(s) quarantined: {e}",
                    failed.len()
                ),
            );
        }
    }
    let errors = outcomes.iter().filter(|o| o.result.is_err()).count();
    state.metrics.batch_frames.fetch_add(outcomes.len() as u64, Relaxed);
    state.metrics.batch_frame_errors.fetch_add(errors as u64, Relaxed);

    if req.accepts(wire::CONTENT_TYPE) {
        return Response::binary(200, wire::CONTENT_TYPE, wire::encode_reports(&outcomes));
    }
    let results: Vec<Value> = outcomes
        .iter()
        .map(|o| {
            let mut fields = vec![("session".to_string(), Value::Num(o.session as f64))];
            match &o.result {
                Ok(report) => fields.push(("report".to_string(), report.to_value())),
                Err(text) => fields.push(("error".to_string(), Value::Str(text.clone()))),
            }
            Value::Obj(fields)
        })
        .collect();
    let body = Value::Obj(vec![
        ("frames".to_string(), Value::Num(outcomes.len() as f64)),
        ("errors".to_string(), Value::Num(errors as f64)),
        ("results".to_string(), Value::Arr(results)),
    ]);
    match serde_json::to_string(&body) {
        Ok(s) => Response::json(200, s),
        Err(e) => Response::error(500, "internal_error", &e.to_string()),
    }
}

/// JSON shape of one batched frame. Telemetry frames are
/// `{"session", "time", "records"}`; suppressed-event frames carry an
/// `"events"` array instead (plus optional `"sync"`, `"observed"`,
/// `"sent"`). A frame with both `records` and `events` is ambiguous and
/// rejected.
#[derive(Deserialize)]
struct JsonFrame {
    session: u64,
    time: f64,
    #[serde(default)]
    records: Vec<TelemetryRecord>,
    #[serde(default)]
    events: Option<Vec<ClassEvent>>,
    #[serde(default)]
    sync: bool,
    #[serde(default)]
    observed: u64,
    #[serde(default)]
    sent: u64,
}

/// JSON shape of the whole batch request.
#[derive(Deserialize)]
struct JsonBatchRequest {
    frames: Vec<JsonFrame>,
}

fn json_frames(body: &[u8]) -> Result<Vec<wire::Frame>, Response> {
    let text =
        std::str::from_utf8(body).map_err(|e| bad_json(format!("body is not UTF-8: {e}")))?;
    let parsed: JsonBatchRequest = serde_json::from_str(text).map_err(bad_json)?;
    parsed
        .frames
        .into_iter()
        .map(|f| match f.events {
            Some(events) => {
                if !f.records.is_empty() {
                    return Err(bad_json(format!(
                        "frame for session {} has both records and events",
                        f.session
                    )));
                }
                Ok(wire::Frame::events(
                    f.session,
                    EventBatch {
                        time: f.time,
                        sync: f.sync,
                        events,
                        observed: f.observed,
                        sent: f.sent,
                    },
                ))
            }
            None => Ok(wire::Frame::telemetry(
                f.session,
                TelemetryBatch { time: f.time, records: f.records },
            )),
        })
        .collect()
}

/// Applies a decoded frame batch: group by session, bucket sessions by
/// shard, apply shard buckets in parallel (each session locked once,
/// all its frames ingested as one [`OnlineController::ingest_all`]
/// step). Returns one outcome per input frame, in input order.
fn apply_frames(state: &AppState, frames: &[wire::Frame]) -> Vec<wire::FrameOutcome> {
    // Group frame indices by session, preserving first-appearance order
    // of sessions and arrival order of each session's frames.
    let mut session_order: Vec<u64> = Vec::new();
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, f) in frames.iter().enumerate() {
        groups
            .entry(f.session)
            .or_insert_with(|| {
                session_order.push(f.session);
                Vec::new()
            })
            .push(i);
    }

    // Bucket sessions by store shard: two sessions in different buckets
    // can never contend on a shard lock or a slot lock, so buckets are
    // safe units of parallelism.
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); state.sessions.shard_count()];
    for &session in &session_order {
        buckets[state.sessions.shard_of(session)].push(session);
    }
    buckets.retain(|b| !b.is_empty());

    let apply_bucket = |sessions: &[u64]| -> Vec<(usize, wire::FrameOutcome)> {
        let mut out = Vec::new();
        for &session in sessions {
            let Some(indices) = groups.get(&session) else { continue };
            let Some(slot) = state.sessions.get(session) else {
                for &i in indices {
                    out.push((
                        i,
                        wire::FrameOutcome {
                            session,
                            result: Err(format!("no session {session} (expired or deleted?)")),
                        },
                    ));
                }
                continue;
            };
            // One slot lookup, one lock, one controller step for the
            // session's whole frame group — the batch path's saving over
            // per-frame requests. Poisoned lock or a panic inside the
            // controller quarantines the session and fails its frames in
            // place; the rest of the batch is unaffected.
            let quarantine_frames = |out: &mut Vec<(usize, wire::FrameOutcome)>| {
                quarantine(state, session);
                for &i in indices {
                    out.push((
                        i,
                        wire::FrameOutcome {
                            session,
                            result: Err(format!(
                                "session {session} panicked during ingest and was quarantined"
                            )),
                        },
                    ));
                }
            };
            let mut controller = match slot.lock() {
                Ok(g) => g,
                Err(_) => {
                    quarantine_frames(&mut out);
                    continue;
                }
            };
            let started = Instant::now();
            let reports = match catch_unwind(AssertUnwindSafe(|| {
                indices
                    .iter()
                    .map(|&i| match &frames[i].payload {
                        wire::FramePayload::Telemetry(batch) => controller.ingest(batch),
                        wire::FramePayload::Events(batch) => controller.ingest_events(batch),
                    })
                    .collect::<Vec<_>>()
            })) {
                Ok(reports) => reports,
                Err(_) => {
                    drop(controller);
                    quarantine_frames(&mut out);
                    continue;
                }
            };
            // Stage exactly the accepted frames, in ingest order, while
            // the slot lock still orders this session's appends; the
            // request-level flush in `telemetry_batch` group-commits them
            // before any outcome is acknowledged.
            if let Some(journal) = &state.journal {
                let accepted: Vec<wire::Frame> = indices
                    .iter()
                    .zip(&reports)
                    .filter(|(_, r)| r.is_ok())
                    .map(|(&i, _)| frames[i].clone())
                    .collect();
                if !accepted.is_empty() {
                    journal.append_frames(session, accepted);
                }
            }
            drop(controller);
            // The group shared one clock; meter each frame its share.
            let per_frame = started.elapsed().as_secs_f64() / indices.len().max(1) as f64;
            for (&i, report) in indices.iter().zip(reports) {
                let result = match report {
                    Ok(report) => {
                        state.metrics.record_ingest(
                            report.replan,
                            report.emergency_sensors as u64,
                            per_frame,
                        );
                        if let wire::FramePayload::Events(b) = &frames[i].payload {
                            state.metrics.record_events(b.observed, b.sent);
                        }
                        Ok(report)
                    }
                    Err(e) => Err(e.to_string()),
                };
                out.push((i, wire::FrameOutcome { session, result }));
            }
        }
        out
    };

    let threads = state.batch_threads.min(buckets.len()).max(1);
    let mut results: Vec<Option<wire::FrameOutcome>> = frames.iter().map(|_| None).collect();
    if threads <= 1 {
        for bucket in &buckets {
            for (i, outcome) in apply_bucket(bucket) {
                results[i] = Some(outcome);
            }
        }
    } else {
        let lane_size = buckets.len().div_ceil(threads);
        let apply = &apply_bucket;
        let merged = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .chunks(lane_size)
                .map(|lane| {
                    scope.spawn(move || {
                        lane.iter().flat_map(|bucket| apply(bucket)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().filter_map(|h| h.join().ok()).collect::<Vec<_>>()
        });
        for lane in merged {
            for (i, outcome) in lane {
                results[i] = Some(outcome);
            }
        }
    }

    // A panicked lane (caught by join) leaves holes; surface them as
    // per-frame errors rather than dropping frames from the response.
    results
        .into_iter()
        .enumerate()
        .map(|(i, outcome)| {
            outcome.unwrap_or_else(|| wire::FrameOutcome {
                session: frames[i].session,
                result: Err("internal error: frame processing failed".to_string()),
            })
        })
        .collect()
}

/// `GET /session/{id}/plan` — the session's current plan: revision,
/// counters, assigned cycles, and the full dispatch schedule. Compact
/// binary ([`wire::PlanWire`]) when `Accept:` asks for
/// [`wire::CONTENT_TYPE`], JSON otherwise.
pub fn session_plan(state: &AppState, id: u64, req: &Request) -> Response {
    let Some(slot) = state.sessions.get(id) else {
        return no_session(id);
    };
    let controller = match slot.lock() {
        Ok(g) => g,
        Err(_) => return quarantine(state, id),
    };
    if req.accepts(wire::CONTENT_TYPE) {
        let plan = wire::PlanWire {
            revision: controller.revision(),
            now: controller.now(),
            horizon: controller.horizon(),
            tau1: controller.tau1(),
            service_cost: controller.series().service_cost(),
            executed: controller.executed_dispatches() as u64,
            assigned: controller.assigned_cycles().to_vec(),
            dispatches: controller
                .series()
                .dispatches()
                .iter()
                .map(|d| (d.time, d.set as u32))
                .collect(),
        };
        return Response::binary(200, wire::CONTENT_TYPE, plan.encode());
    }
    let json = controller.plan_json();
    Response::json(200, json)
}

/// `DELETE /session/{id}` — drop a session (journaled, so a restart does
/// not resurrect it).
pub fn session_delete(state: &AppState, id: u64) -> Response {
    if state.sessions.remove(id) {
        if let Some(journal) = &state.journal {
            journal.append_end(id, EndReason::Deleted);
            if let Err(e) = journal.flush() {
                return Response::error(500, "journal_error", &e.to_string());
            }
        }
        Response::json(200, format!("{{\"session\":{id},\"deleted\":true}}"))
    } else {
        no_session(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plain `GET /session/{id}/plan` request (JSON negotiation).
    fn get_plan(state: &AppState, id: u64) -> Response {
        session_plan(state, id, &Request::new("GET", format!("/session/{id}/plan"), Vec::new()))
    }

    fn small_plan_body(seed: u64) -> String {
        format!(
            r#"{{"scenario": {{
                "field_size": 500.0, "n": 12, "q": 2,
                "tau_min": 1.0, "tau_max": 20.0,
                "dist": {{ "Linear": {{ "sigma": 2.0 }} }},
                "horizon": 60.0, "slot": 10.0,
                "variable": false, "deployment": "Uniform"
            }}, "seed": {seed}}}"#
        )
    }

    #[test]
    fn plan_misses_then_hits_with_identical_result_bytes() {
        let state = AppState::new(32);
        let body = small_plan_body(7);
        let first = plan(&state, body.as_bytes());
        assert_eq!(first.status, 200);
        let first_body = String::from_utf8(first.body).unwrap();
        assert!(first_body.starts_with("{\"cache_hit\":false,"), "{first_body}");

        let second = plan(&state, body.as_bytes());
        let second_body = String::from_utf8(second.body).unwrap();
        assert!(second_body.starts_with("{\"cache_hit\":true,"), "{second_body}");

        let result_of = |b: &str| b.split_once("\"result\":").map(|(_, r)| r.to_string());
        assert_eq!(result_of(&first_body), result_of(&second_body), "byte-identical schedules");
        assert_eq!(state.metrics.cache_hits.load(Relaxed), 1);
        assert_eq!(state.metrics.cache_misses.load(Relaxed), 1);
    }

    #[test]
    fn key_order_and_whitespace_still_hit_the_cache() {
        let state = AppState::new(32);
        let a = r#"{"seed": 3, "scenario": {
            "field_size": 500.0, "n": 10, "q": 2,
            "tau_min": 1.0, "tau_max": 20.0,
            "dist": { "Linear": { "sigma": 2.0 } },
            "horizon": 60.0, "slot": 10.0,
            "variable": false, "deployment": "Uniform"
        }}"#;
        let b = r#"{"scenario":{"q":2,"n":10,"field_size":500.0,"tau_min":1.0,"tau_max":20.0,"dist":{"Linear":{"sigma":2.0}},"horizon":60.0,"slot":10.0,"variable":false,"deployment":"Uniform"},"seed":3}"#;
        assert_eq!(plan(&state, a.as_bytes()).status, 200);
        assert_eq!(plan(&state, b.as_bytes()).status, 200);
        assert_eq!(state.metrics.cache_hits.load(Relaxed), 1, "near-duplicate request hit");
    }

    #[test]
    fn sparse_plan_matches_dense_cost() {
        let state = AppState::new(32);
        let dense = plan(&state, small_plan_body(5).as_bytes());
        let sparse_body =
            small_plan_body(5).replace("\"seed\": 5", "\"seed\": 5, \"sparse\": true");
        let sparse = plan(&state, sparse_body.as_bytes());
        assert_eq!(dense.status, 200);
        assert_eq!(sparse.status, 200);
        let cost = |r: &Response| {
            let body = std::str::from_utf8(&r.body).unwrap().to_string();
            let v = serde_json::parse_value(&body).unwrap();
            match v.get("result").and_then(|r| r.get("service_cost")) {
                Some(Value::Num(n)) => *n,
                other => panic!("no service_cost: {other:?}"),
            }
        };
        let (dc, sc) = (cost(&dense), cost(&sparse));
        assert!(dc > 0.0);
        // Sparse routing is near-identical at this scale (sparse MSF may
        // differ slightly from the dense one in edge ties).
        assert!((dc - sc).abs() <= 0.05 * dc, "dense {dc} vs sparse {sc}");
    }

    #[test]
    fn malformed_plan_inputs_are_typed_400s() {
        let state = AppState::new(32);
        for (body, kind) in [
            (r#"{"#.to_string(), "bad_json"),
            (r#"{"no_scenario": 1}"#.to_string(), "bad_json"),
            (small_plan_body(1).replace("\"q\": 2", "\"q\": 0"), "invalid_scenario"),
            (small_plan_body(1).replace("60.0,", "-60.0,"), "invalid_scenario"),
            (small_plan_body(1).replace("\"seed\": 1", "\"seed\": -3"), "bad_json"),
            (small_plan_body(1).replace("\"seed\": 1", "\"seed\": 1, \"sparse\": 7"), "bad_json"),
        ] {
            let r = plan(&state, body.as_bytes());
            assert_eq!(r.status, 400, "{body}");
            let text = String::from_utf8(r.body).unwrap();
            assert!(text.contains(&format!("\"kind\":\"{kind}\"")), "{text}");
        }
    }

    /// Every refine mode is part of the cache key (the mode lives in the
    /// request tree), so off/inline/background get distinct entries; the
    /// inline entry carries the refined schedule and a `refine` object
    /// with a non-negative improvement ratio.
    #[test]
    fn inline_refine_cuts_cost_and_records_metrics() {
        let state = AppState::new(32);
        let off = plan(&state, small_plan_body(9).as_bytes());
        let inline_body =
            small_plan_body(9).replace("\"seed\": 9", "\"seed\": 9, \"refine\": \"inline\"");
        let refined = plan(&state, inline_body.as_bytes());
        assert_eq!(off.status, 200);
        assert_eq!(refined.status, 200);
        assert_eq!(state.metrics.cache_misses.load(Relaxed), 2, "distinct cache entries");

        let cost = |r: &Response| {
            let body = std::str::from_utf8(&r.body).unwrap().to_string();
            let v = serde_json::parse_value(&body).unwrap();
            match v.get("result").and_then(|r| r.get("service_cost")) {
                Some(Value::Num(n)) => *n,
                other => panic!("no service_cost: {other:?}"),
            }
        };
        assert!(cost(&refined) <= cost(&off) + 1e-9, "refined plan must not cost more");
        let text = String::from_utf8(refined.body).unwrap();
        assert!(text.contains("\"refine\":{\"mode\":\"inline\",\"refined\":true"), "{text}");
        assert_eq!(state.metrics.refine_passes.load(Relaxed), 1);
        // The off-mode response must stay byte-compatible: no refine
        // object at all.
        let off_text = String::from_utf8(off.body).unwrap();
        assert!(!off_text.contains("\"refine\""), "{off_text}");
    }

    /// Background mode answers with the constructive plan immediately
    /// (`refined:false`), and draining the queue upgrades the cached
    /// entry in place: same key, same dispatch count, lower-or-equal
    /// cost, `refined:true`.
    #[test]
    fn background_refine_upgrades_the_cached_entry_in_place() {
        let state = AppState::new(32);
        let body =
            small_plan_body(11).replace("\"seed\": 11", "\"seed\": 11, \"refine\": \"background\"");
        let first = plan(&state, body.as_bytes());
        assert_eq!(first.status, 200);
        let first_text = String::from_utf8(first.body).unwrap();
        assert!(
            first_text.contains("\"refine\":{\"mode\":\"background\",\"refined\":false"),
            "{first_text}"
        );
        assert_eq!(state.refine_queue.len(), 1);

        assert_eq!(crate::refine::drain(&state), 1);
        assert_eq!(state.metrics.refine_upgrades.load(Relaxed), 1);
        assert_eq!(state.metrics.refine_jobs_dropped.load(Relaxed), 0);

        let second = plan(&state, body.as_bytes());
        let second_text = String::from_utf8(second.body).unwrap();
        assert!(second_text.starts_with("{\"cache_hit\":true,"), "{second_text}");
        assert!(
            second_text.contains("\"refine\":{\"mode\":\"background\",\"refined\":true"),
            "{second_text}"
        );
        let cost = |t: &str| {
            let v = serde_json::parse_value(t).unwrap();
            match v.get("result").and_then(|r| r.get("service_cost")) {
                Some(Value::Num(n)) => *n,
                other => panic!("no service_cost: {other:?}"),
            }
        };
        assert!(cost(&second_text) <= cost(&first_text) + 1e-9);
    }

    /// If the constructive entry is gone by the time its job runs (here:
    /// a zero-capacity cache, the degenerate case of LRU eviction), the
    /// upgrade is dropped and counted — never re-inserted over a live
    /// entry's slot.
    #[test]
    fn background_refine_drops_evicted_entries() {
        let state = AppState::new(0);
        let body =
            small_plan_body(13).replace("\"seed\": 13", "\"seed\": 13, \"refine\": \"background\"");
        assert_eq!(plan(&state, body.as_bytes()).status, 200);
        assert_eq!(crate::refine::drain(&state), 1);
        assert_eq!(state.metrics.refine_upgrades.load(Relaxed), 0);
        assert_eq!(state.metrics.refine_jobs_dropped.load(Relaxed), 1);
    }

    #[test]
    fn simulate_runs_with_and_without_faults() {
        let body = small_plan_body(2).replace("\"seed\": 2", "\"seed\": 2, \"algo\": \"Greedy\"");
        let r = simulate(body.as_bytes());
        assert_eq!(r.status, 200);
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("\"algo\":\"Greedy\""), "{text}");
        assert!(text.contains("\"service_cost\":"), "{text}");

        let faulty = small_plan_body(2).replace(
            "\"seed\": 2",
            r#""seed": 2, "faults": {"chargers": {"mtbf": 10.0, "mttr": 20.0}, "seed": 1}"#,
        );
        let r = simulate(faulty.as_bytes());
        assert_eq!(r.status, 200);
        let v = serde_json::parse_value(std::str::from_utf8(&r.body).unwrap()).unwrap();
        let breakdowns = v
            .get("result")
            .and_then(|r| r.get("faults"))
            .and_then(|f| f.get("breakdowns"))
            .cloned();
        assert!(matches!(breakdowns, Some(Value::Num(n)) if n > 0.0), "{breakdowns:?}");
    }

    fn num_field(body: &str, key: &str) -> f64 {
        let v = serde_json::parse_value(body).unwrap();
        match v.get(key) {
            Some(Value::Num(n)) => *n,
            other => panic!("no numeric `{key}` in {body}: {other:?}"),
        }
    }

    #[test]
    fn session_lifecycle_create_ingest_plan_delete() {
        let state = AppState::new(8);
        let created = session_create(&state, small_plan_body(9).as_bytes());
        assert_eq!(created.status, 200, "{:?}", created.body);
        let created_body = String::from_utf8(created.body).unwrap();
        let id = num_field(&created_body, "session") as u64;
        assert_eq!(state.sessions.len(), 1);

        // A batch that touches nothing stays planner-free.
        let r = session_telemetry(&state, id, br#"{"time": 0.5}"#);
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"replan\":\"none\""), "{body}");
        assert_eq!(num_field(&body, "planner_calls"), 0.0, "{body}");

        let plan = get_plan(&state, id);
        assert_eq!(plan.status, 200);
        let plan_body = String::from_utf8(plan.body).unwrap();
        assert!(plan_body.contains("\"assigned_cycles\""), "{plan_body}");

        assert_eq!(session_delete(&state, id).status, 200);
        assert_eq!(state.sessions.len(), 0);
        assert_eq!(get_plan(&state, id).status, 404);
        assert_eq!(session_delete(&state, id).status, 404);
    }

    #[test]
    fn session_errors_are_typed() {
        let state = AppState::new(8);
        // Create-time errors.
        for (body, kind) in [
            (r#"{"#.to_string(), "bad_json"),
            (r#"{"no_scenario": 1}"#.to_string(), "bad_json"),
            (small_plan_body(1).replace("\"q\": 2", "\"q\": 0"), "invalid_scenario"),
            (
                small_plan_body(1).replace("\"seed\": 1", "\"seed\": 1, \"margin\": 2.0"),
                "invalid_session",
            ),
            (
                small_plan_body(1).replace("\"seed\": 1", "\"seed\": 1, \"gamma\": \"x\""),
                "bad_json",
            ),
        ] {
            let r = session_create(&state, body.as_bytes());
            assert_eq!(r.status, 400, "{body}");
            let text = String::from_utf8(r.body).unwrap();
            assert!(text.contains(&format!("\"kind\":\"{kind}\"")), "{text}");
        }

        // Ingest-time errors against a real session.
        let created = session_create(&state, small_plan_body(2).as_bytes());
        let id = num_field(&String::from_utf8(created.body).unwrap(), "session") as u64;
        let r = session_telemetry(&state, id, br#"{"time": 1.0}"#);
        assert_eq!(r.status, 200);
        // Time travel and unknown sensors are typed 400s, not panics.
        let r = session_telemetry(&state, id, br#"{"time": 0.2}"#);
        assert_eq!(r.status, 400);
        assert!(String::from_utf8(r.body).unwrap().contains("invalid_telemetry"));
        let r = session_telemetry(
            &state,
            id,
            br#"{"time": 1.5, "records": [{"sensor": 999, "rate": 0.1}]}"#,
        );
        assert_eq!(r.status, 400);
        // Unknown session id.
        assert_eq!(session_telemetry(&state, 777, br#"{"time": 1.0}"#).status, 404);
    }

    #[test]
    fn session_eviction_is_counted() {
        // One shard so the capacity-1 LRU semantics are exact.
        let state = AppState::new(8).with_sessions(1, 1);
        let first = session_create(&state, small_plan_body(1).as_bytes());
        assert_eq!(first.status, 200);
        let first_id = num_field(&String::from_utf8(first.body).unwrap(), "session") as u64;
        let second = session_create(&state, small_plan_body(2).as_bytes());
        assert_eq!(second.status, 200);
        assert_eq!(state.sessions.len(), 1);
        assert_eq!(state.metrics.session_evictions.load(Relaxed), 1);
        assert_eq!(get_plan(&state, first_id).status, 404, "evicted session is gone");
    }

    /// Creates `count` sessions and returns their ids.
    fn make_sessions(state: &AppState, count: usize) -> Vec<u64> {
        (0..count)
            .map(|i| {
                let r = session_create(state, small_plan_body(100 + i as u64).as_bytes());
                assert_eq!(r.status, 200);
                num_field(&String::from_utf8(r.body).unwrap(), "session") as u64
            })
            .collect()
    }

    fn batch_req(body: Vec<u8>, binary_body: bool, binary_accept: bool) -> Request {
        let mut req = Request::new("POST", "/telemetry/batch", body);
        if binary_body {
            req.content_type = Some(wire::CONTENT_TYPE.to_string());
        }
        if binary_accept {
            req.accept = Some(wire::CONTENT_TYPE.to_string());
        }
        req
    }

    #[test]
    fn batch_json_applies_frames_in_order_and_reports_errors_in_place() {
        let state = AppState::new(8).with_sessions(16, 4).with_batch_threads(4);
        let ids = make_sessions(&state, 3);
        let body = format!(
            concat!(
                r#"{{"frames":["#,
                r#"{{"session":{a},"time":1.0}},"#,
                r#"{{"session":{b},"time":1.0,"records":[{{"sensor":0,"rate":0.5}}]}},"#,
                r#"{{"session":777,"time":1.0}},"#,
                r#"{{"session":{a},"time":0.5}},"#,
                r#"{{"session":{c},"time":2.0}}]}}"#
            ),
            a = ids[0],
            b = ids[1],
            c = ids[2],
        );
        let resp = telemetry_batch(&state, &batch_req(body.into_bytes(), false, false));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        let v = serde_json::parse_value(&text).unwrap();
        assert_eq!(num_field(&text, "frames"), 5.0);
        assert_eq!(num_field(&text, "errors"), 2.0, "{text}");
        let Some(Value::Arr(results)) = v.get("results") else {
            panic!("no results array: {text}");
        };
        assert_eq!(results.len(), 5);
        // Outcomes come back in request order: sessions in results match
        // the frames, and the two failures sit at positions 2 (unknown
        // session) and 3 (time travel within the group).
        let session_of = |r: &Value| match r.get("session") {
            Some(Value::Num(n)) => *n as u64,
            other => panic!("no session: {other:?}"),
        };
        assert_eq!(session_of(&results[0]), ids[0]);
        assert_eq!(session_of(&results[2]), 777);
        assert!(results[0].get("report").is_some(), "{text}");
        assert!(results[2].get("error").is_some(), "{text}");
        assert!(results[3].get("error").is_some(), "time travel rejected: {text}");
        assert!(results[4].get("report").is_some(), "later frame unaffected: {text}");
        assert_eq!(state.metrics.batch_frames.load(Relaxed), 5);
        assert_eq!(state.metrics.batch_frame_errors.load(Relaxed), 2);
    }

    #[test]
    fn batch_binary_round_trips_and_matches_sequential_ingest() {
        // Two identical states: one takes a binary batch, the other the
        // same frames one `session_telemetry` call at a time. Their final
        // plans must be byte-identical.
        let batched = AppState::new(8).with_sessions(16, 4).with_batch_threads(2);
        let sequential = AppState::new(8).with_sessions(16, 4);
        let b_ids = make_sessions(&batched, 2);
        let s_ids = make_sessions(&sequential, 2);
        assert_eq!(b_ids, s_ids, "deterministic session ids");

        let batches = vec![
            (b_ids[0], TelemetryBatch { time: 1.0, records: vec![TelemetryRecord::rate(0, 0.9)] }),
            (b_ids[1], TelemetryBatch::tick(1.5)),
            (
                b_ids[0],
                TelemetryBatch { time: 2.0, records: vec![TelemetryRecord::level(1, 0.25)] },
            ),
        ];
        let frames: Vec<wire::Frame> =
            batches.iter().map(|(id, b)| wire::Frame::telemetry(*id, b.clone())).collect();

        let resp = telemetry_batch(&batched, &batch_req(wire::encode_frames(&frames), true, true));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, wire::CONTENT_TYPE);
        let outcomes = wire::decode_reports(&resp.body).expect("binary reports");
        assert_eq!(outcomes.len(), frames.len());

        for (id, batch) in &batches {
            let body = serde_json::to_string(batch).unwrap();
            let r = session_telemetry(&sequential, *id, body.as_bytes());
            assert_eq!(r.status, 200);
        }
        for &id in &b_ids {
            let b = get_plan(&batched, id).body;
            let s = get_plan(&sequential, id).body;
            assert_eq!(b, s, "batched and sequential plans diverge for session {id}");
        }
        // Binary reports carry the same ingest results the sequential
        // JSON path reported.
        for o in &outcomes {
            assert!(o.result.is_ok(), "{:?}", o.result);
        }
    }

    #[test]
    fn batch_binary_plan_summary_matches_json_plan() {
        let state = AppState::new(8);
        let ids = make_sessions(&state, 1);
        let r = session_telemetry(
            &state,
            ids[0],
            br#"{"time": 5.0, "records": [{"sensor": 0, "rate": 2.0}]}"#,
        );
        assert_eq!(r.status, 200);

        let mut req = Request::new("GET", format!("/session/{}/plan", ids[0]), Vec::new());
        req.accept = Some(wire::CONTENT_TYPE.to_string());
        let resp = session_plan(&state, ids[0], &req);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, wire::CONTENT_TYPE);
        let plan = wire::PlanWire::decode(&resp.body).expect("binary plan");

        let json = String::from_utf8(get_plan(&state, ids[0]).body).unwrap();
        assert_eq!(plan.revision, num_field(&json, "revision") as u64);
        assert_eq!(plan.now, num_field(&json, "now"));
        assert_eq!(plan.tau1, num_field(&json, "tau1"));
        assert_eq!(plan.service_cost, num_field(&json, "service_cost"));
        assert_eq!(plan.executed, num_field(&json, "executed") as u64);
        assert_eq!(plan.dispatches.len() as f64, num_field(&json, "dispatches"));
        assert!(!plan.assigned.is_empty());
    }

    /// Four bytes that are a well-formed length but the wrong magic: the
    /// same width as [`wire::MAGIC_FRAMES`] (`PBT1`), deliberately not
    /// any of the `P??1` magics, so the decoder's magic check — not a
    /// truncation check — must be what rejects it.
    const WRONG_MAGIC: [u8; 4] = *b"XXXX";

    #[test]
    fn batch_rejects_malformed_bodies() {
        let state = AppState::new(8);
        for (body, binary, kind) in [
            (b"{".to_vec(), false, "bad_json"),
            (br#"{"no_frames": 1}"#.to_vec(), false, "bad_json"),
            (WRONG_MAGIC.to_vec(), true, "bad_wire"),
            (wire::encode_frames(&[])[..4].to_vec(), true, "bad_wire"),
        ] {
            let r = telemetry_batch(&state, &batch_req(body, binary, false));
            assert_eq!(r.status, 400);
            let text = String::from_utf8(r.body).unwrap();
            assert!(text.contains(&format!("\"kind\":\"{kind}\"")), "{text}");
        }
        // An empty frame list is valid and a no-op.
        let r = telemetry_batch(&state, &batch_req(br#"{"frames": []}"#.to_vec(), false, false));
        assert_eq!(r.status, 200);
    }

    /// The refine knob must not open a parsing side door: binary garbage
    /// (wrong magic or real PBT1 frames) posted to `/plan` is still
    /// `bad_json`, and a bad `refine` value is rejected before any
    /// scenario work.
    #[test]
    fn plan_refine_path_rejects_bad_knobs_and_binary_bodies() {
        let state = AppState::new(8);
        for body in [WRONG_MAGIC.to_vec(), wire::encode_frames(&[])] {
            let r = plan(&state, &body);
            assert_eq!(r.status, 400);
            let text = String::from_utf8(r.body).unwrap();
            assert!(text.contains("\"kind\":\"bad_json\""), "{text}");
        }
        for body in [
            small_plan_body(1).replace("\"seed\": 1", "\"seed\": 1, \"refine\": \"sometimes\""),
            small_plan_body(1).replace("\"seed\": 1", "\"seed\": 1, \"refine\": 3"),
            small_plan_body(1).replace(
                "\"seed\": 1",
                "\"seed\": 1, \"refine\": \"inline\", \"refine_steps\": -1",
            ),
        ] {
            let r = plan(&state, body.as_bytes());
            assert_eq!(r.status, 400, "{body}");
            let text = String::from_utf8(r.body).unwrap();
            assert!(text.contains("\"kind\":\"bad_json\""), "{text}");
        }
    }

    use crate::journal::FsyncPolicy;

    fn journal_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("perpetuum-handlers-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn with_journal(state: AppState, dir: &std::path::Path) -> AppState {
        let journal = JournalSet::open(
            dir,
            state.sessions.shard_count(),
            FsyncPolicy::Never,
            0,
            Arc::clone(&state.metrics),
        )
        .expect("open journal");
        state.with_journal(journal)
    }

    #[test]
    fn poisoned_session_is_quarantined_then_404() {
        let state = AppState::new(8);
        let ids = make_sessions(&state, 1);
        let slot = state.sessions.get(ids[0]).expect("present");
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = slot.lock().expect("clean lock");
            panic!("controller bug");
        }));
        let r = session_telemetry(&state, ids[0], br#"{"time": 1.0}"#);
        assert_eq!(r.status, 500);
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("session_quarantined"), "{text}");
        assert_eq!(state.metrics.sessions_quarantined.load(Relaxed), 1);
        // The quarantined session is gone, not wedged: plain 404s now.
        assert_eq!(session_telemetry(&state, ids[0], br#"{"time": 2.0}"#).status, 404);
        assert_eq!(get_plan(&state, ids[0]).status, 404);
        assert!(state.sessions.is_empty());
    }

    #[test]
    fn poisoned_session_fails_its_batch_frames_in_place() {
        let state = AppState::new(8).with_sessions(16, 4);
        let ids = make_sessions(&state, 2);
        let slot = state.sessions.get(ids[0]).expect("present");
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = slot.lock().expect("clean lock");
            panic!("controller bug");
        }));
        let frames = vec![
            wire::Frame::telemetry(ids[0], TelemetryBatch::tick(1.0)),
            wire::Frame::telemetry(ids[1], TelemetryBatch::tick(1.0)),
        ];
        let resp = telemetry_batch(&state, &batch_req(wire::encode_frames(&frames), true, true));
        assert_eq!(resp.status, 200);
        let outcomes = wire::decode_reports(&resp.body).expect("binary reports");
        assert!(outcomes[0].result.is_err(), "poisoned session fails in place");
        assert!(outcomes[1].result.is_ok(), "healthy session unaffected");
        assert_eq!(state.metrics.sessions_quarantined.load(Relaxed), 1);
    }

    /// Reviewer scenario: a journal flush failure after the controller
    /// already ingested must not leave a session whose live state is
    /// ahead of its durable state — a retrying client would double-ingest
    /// (the same `time` passes monotonicity). Fail-stop: quarantine.
    #[test]
    fn flush_failure_after_ingest_quarantines_the_session() {
        let dir = journal_dir("failflush");
        let state = with_journal(AppState::new(8).with_sessions(16, 4), &dir);
        let ids = make_sessions(&state, 1);
        assert_eq!(session_telemetry(&state, ids[0], br#"{"time": 1.0}"#).status, 200);

        state.journal.as_ref().unwrap().fail_flush.store(true, Relaxed);
        let r = session_telemetry(&state, ids[0], br#"{"time": 2.0}"#);
        assert_eq!(r.status, 500);
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("journal_error"), "{text}");
        assert!(text.contains("quarantined"), "{text}");
        // Fail-stop: the session is gone, so a retry 404s instead of
        // double-ingesting the batch it never saw acknowledged.
        assert_eq!(session_telemetry(&state, ids[0], br#"{"time": 2.0}"#).status, 404);
        assert_eq!(state.metrics.sessions_quarantined.load(Relaxed), 1);

        // Once flushing works again (the drop-flush), the re-staged
        // Frames ride along with the quarantine End: recovery sees a
        // closed stream, not a resurrected session.
        state.journal.as_ref().unwrap().fail_flush.store(false, Relaxed);
        drop(state);
        let recovered = AppState::new(8).with_sessions(16, 4);
        let journal = JournalSet::open(
            &dir,
            recovered.sessions.shard_count(),
            FsyncPolicy::Never,
            0,
            Arc::clone(&recovered.metrics),
        )
        .expect("reopen journal");
        let stats = journal.recover(&recovered.sessions).expect("recover");
        assert_eq!(stats.sessions, 0, "quarantined session stays dead");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_failure_on_create_does_not_leave_a_ghost_session() {
        let dir = journal_dir("failcreate");
        let state = with_journal(AppState::new(8).with_sessions(16, 4), &dir);
        state.journal.as_ref().unwrap().fail_flush.store(true, Relaxed);
        let r = session_create(&state, small_plan_body(1).as_bytes());
        assert_eq!(r.status, 500);
        assert!(String::from_utf8(r.body).unwrap().contains("journal_error"));
        assert!(state.sessions.is_empty(), "failed create leaves no live session");

        // The re-staged Create persists alongside its End tombstone on
        // the next successful flush: recovery sees a closed stream, not
        // a session the client was told failed.
        state.journal.as_ref().unwrap().fail_flush.store(false, Relaxed);
        drop(state);
        let recovered = AppState::new(8).with_sessions(16, 4);
        let journal = JournalSet::open(
            &dir,
            recovered.sessions.shard_count(),
            FsyncPolicy::Never,
            0,
            Arc::clone(&recovered.metrics),
        )
        .expect("reopen journal");
        let stats = journal.recover(&recovered.sessions).expect("recover");
        assert_eq!(stats.sessions, 0, "no ghost session after a failed create");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_failure_after_batch_quarantines_every_accepting_session() {
        let dir = journal_dir("failbatch");
        let state = with_journal(AppState::new(8).with_sessions(16, 4), &dir);
        let ids = make_sessions(&state, 2);
        state.journal.as_ref().unwrap().fail_flush.store(true, Relaxed);
        let frames = vec![
            wire::Frame::telemetry(ids[0], TelemetryBatch::tick(1.0)),
            wire::Frame::telemetry(ids[1], TelemetryBatch::tick(1.0)),
            wire::Frame::telemetry(777, TelemetryBatch::tick(1.0)),
        ];
        let resp = telemetry_batch(&state, &batch_req(wire::encode_frames(&frames), true, false));
        assert_eq!(resp.status, 500);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("journal_error"), "{text}");
        assert!(text.contains("2 session(s) quarantined"), "{text}");
        assert!(state.sessions.is_empty(), "both accepting sessions quarantined");
        assert_eq!(state.metrics.sessions_quarantined.load(Relaxed), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journaled_lifecycle_survives_recovery_byte_identically() {
        let dir = journal_dir("lifecycle");
        let state = with_journal(AppState::new(8).with_sessions(16, 4), &dir);
        let ids = make_sessions(&state, 2);
        let r = session_telemetry(
            &state,
            ids[0],
            br#"{"time": 1.0, "records": [{"sensor": 0, "rate": 0.9}]}"#,
        );
        assert_eq!(r.status, 200);
        assert_eq!(session_delete(&state, ids[1]).status, 200);
        let expected = get_plan(&state, ids[0]).body;
        drop(state); // crash: nothing flushed beyond the appends themselves

        let recovered = AppState::new(8).with_sessions(16, 4);
        let journal = JournalSet::open(
            &dir,
            recovered.sessions.shard_count(),
            FsyncPolicy::Never,
            0,
            Arc::clone(&recovered.metrics),
        )
        .expect("reopen journal");
        let stats = journal.recover(&recovered.sessions).expect("recover");
        assert_eq!(stats.sessions, 1);
        let recovered = recovered.with_journal(journal);
        assert_eq!(get_plan(&recovered, ids[0]).body, expected, "byte-identical plan");
        assert_eq!(get_plan(&recovered, ids[1]).status, 404, "deleted session stays dead");
        assert_eq!(recovered.metrics.sessions_recovered.load(Relaxed), 1);
        // Fresh sessions allocate past every journaled id.
        let more = make_sessions(&recovered, 1);
        assert!(more[0] > ids[1], "id counter resumed past {}, got {}", ids[1], more[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evicted_session_stays_dead_after_recovery_and_404s_both_negotiations() {
        let dir = journal_dir("evict");
        // Capacity 1, one shard: the second create evicts the first.
        let state = with_journal(AppState::new(8).with_sessions(1, 1), &dir);
        let ids = make_sessions(&state, 1);
        assert_eq!(
            session_telemetry(&state, ids[0], br#"{"time": 1.0}"#).status,
            200,
            "journal holds state for the soon-evicted session"
        );
        let survivor = make_sessions(&state, 1)[0];
        assert_eq!(state.metrics.session_evictions.load(Relaxed), 1);

        // JSON negotiation: deterministic 404 with a typed error body.
        let r = session_telemetry(&state, ids[0], br#"{"time": 2.0}"#);
        assert_eq!(r.status, 404);
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("unknown_session"), "{text}");
        // Binary negotiation: the frame fails in place with an error body.
        let frames = vec![wire::Frame::telemetry(ids[0], TelemetryBatch::tick(2.0))];
        let resp = telemetry_batch(&state, &batch_req(wire::encode_frames(&frames), true, true));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, wire::CONTENT_TYPE);
        let outcomes = wire::decode_reports(&resp.body).expect("binary reports");
        assert!(
            matches!(&outcomes[0].result, Err(e) if e.contains("no session")),
            "{:?}",
            outcomes[0].result
        );
        drop(state);

        // Recovery must not resurrect the evicted session's stale state.
        let recovered = AppState::new(8).with_sessions(1, 1);
        let journal = JournalSet::open(
            &dir,
            recovered.sessions.shard_count(),
            FsyncPolicy::Never,
            0,
            Arc::clone(&recovered.metrics),
        )
        .expect("reopen journal");
        let stats = journal.recover(&recovered.sessions).expect("recover");
        assert_eq!(stats.sessions, 1, "only the survivor comes back");
        let recovered = recovered.with_journal(journal);
        assert_eq!(get_plan(&recovered, ids[0]).status, 404, "evicted session not resurrected");
        assert_eq!(get_plan(&recovered, survivor).status, 200);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_rejects_bad_algo_and_bad_faults() {
        let bad_algo = small_plan_body(2).replace("\"seed\": 2", "\"seed\": 2, \"algo\": \"Nope\"");
        let r = simulate(bad_algo.as_bytes());
        assert_eq!(r.status, 400);
        let bad_faults = small_plan_body(2).replace(
            "\"seed\": 2",
            r#""seed": 2, "faults": {"chargers": {"mtbf": -1.0, "mttr": 20.0}}"#,
        );
        let r = simulate(bad_faults.as_bytes());
        assert_eq!(r.status, 400);
        assert!(String::from_utf8(r.body).unwrap().contains("invalid_faults"));
    }
}
