//! A seeded socket-level fault proxy for crash/recovery testing.
//!
//! [`FaultProxy`] sits between a test client and the daemon and injects
//! the network's greatest hits — dropped connections, mid-frame
//! truncation, stalls, byte corruption — on a deterministic schedule: a
//! hand-rolled xorshift64 stream seeded by the test, decided once per
//! accepted connection. The same seed against the same connection
//! sequence injects the same faults, so a chaos run that finds a bug is
//! replayable.
//!
//! The proxy is intentionally dumb about HTTP: it copies bytes. Faults
//! mutate the *client→daemon* direction only, because that is the
//! direction durability cares about — a corrupted or truncated request
//! must be *rejected* (never acked and lost), while the daemon's own
//! response bytes passing through untouched lets the test distinguish
//! "server rejected it" from "proxy ate it". Every injected fault is
//! counted so tests can assert the schedule actually fired.
//!
//! No `rand` dependency: `perpetuum-serve` stays std-only.

use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The faults the proxy can inject on one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Pass the connection through untouched.
    None,
    /// Close the client connection immediately, before any byte reaches
    /// the daemon.
    Drop,
    /// Forward only a prefix of the request, then close the upstream
    /// write half — the daemon sees a mid-frame truncation.
    Truncate,
    /// Sleep before forwarding anything — exercises the daemon's
    /// slow-client read timeout without violating the protocol.
    Stall,
    /// Flip one byte of the request stream — exercises body/frame
    /// validation (the daemon must reject, never silently accept).
    Corrupt,
}

/// Per-mille injection rates for each fault (the remainder passes
/// through clean). `drop + truncate + stall + corrupt` must be ≤ 1000.
#[derive(Debug, Clone, Copy)]
pub struct FaultRates {
    /// ‰ of connections dropped outright.
    pub drop: u32,
    /// ‰ of connections truncated mid-request.
    pub truncate: u32,
    /// ‰ of connections stalled before forwarding.
    pub stall: u32,
    /// ‰ of connections with one corrupted request byte.
    pub corrupt: u32,
    /// How long a stalled connection sleeps.
    pub stall_for: Duration,
}

impl Default for FaultRates {
    fn default() -> Self {
        Self { drop: 0, truncate: 0, stall: 0, corrupt: 0, stall_for: Duration::from_millis(50) }
    }
}

/// Injected-fault counters, one per [`FaultKind`].
#[derive(Debug, Default)]
pub struct FaultCounts {
    /// Connections passed through untouched.
    pub clean: AtomicU64,
    /// Connections dropped.
    pub dropped: AtomicU64,
    /// Connections truncated.
    pub truncated: AtomicU64,
    /// Connections stalled.
    pub stalled: AtomicU64,
    /// Connections with a corrupted byte.
    pub corrupted: AtomicU64,
}

/// xorshift64: tiny, seedable, good enough to schedule faults.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        // xorshift has a fixed point at 0; displace it deterministically.
        Self(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Picks the fault for one connection plus its parameters (truncation
/// length / corruption offset), consuming a fixed two RNG draws so the
/// schedule stays aligned whatever fault fires.
fn decide(rng: &mut XorShift64, rates: &FaultRates) -> (FaultKind, u64) {
    let roll = (rng.next() % 1000) as u32;
    let param = rng.next();
    let mut bound = rates.drop;
    if roll < bound {
        return (FaultKind::Drop, param);
    }
    bound += rates.truncate;
    if roll < bound {
        return (FaultKind::Truncate, param);
    }
    bound += rates.stall;
    if roll < bound {
        return (FaultKind::Stall, param);
    }
    bound += rates.corrupt;
    if roll < bound {
        return (FaultKind::Corrupt, param);
    }
    (FaultKind::None, param)
}

/// A running fault proxy: listens on loopback, forwards to `upstream`.
pub struct FaultProxy {
    addr: SocketAddr,
    counts: Arc<FaultCounts>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts the proxy in front of `upstream` with a deterministic fault
    /// schedule drawn from `seed`.
    pub fn start(upstream: SocketAddr, seed: u64, rates: FaultRates) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let counts = Arc::new(FaultCounts::default());
        let stop = Arc::new(AtomicBool::new(false));
        let rng = Mutex::new(XorShift64::new(seed));
        let thread_counts = Arc::clone(&counts);
        let thread_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if thread_stop.load(Relaxed) {
                    break;
                }
                let Ok(client) = conn else { continue };
                let fault = {
                    let mut rng = match rng.lock() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    decide(&mut rng, &rates)
                };
                let counts = Arc::clone(&thread_counts);
                let stall_for = rates.stall_for;
                std::thread::spawn(move || {
                    serve_one(client, upstream, fault, stall_for, &counts);
                });
            }
        });
        Ok(Self { addr, counts, stop, accept_thread: Some(accept_thread) })
    }

    /// The address test clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The injected-fault counters.
    pub fn counts(&self) -> &FaultCounts {
        &self.counts
    }

    /// Stops accepting and joins the accept loop (in-flight connection
    /// threads finish on their own).
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Relaxed);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

/// Handles one proxied connection under its assigned fault.
fn serve_one(
    client: TcpStream,
    upstream: SocketAddr,
    (kind, param): (FaultKind, u64),
    stall_for: Duration,
    counts: &FaultCounts,
) {
    match kind {
        FaultKind::Drop => {
            counts.dropped.fetch_add(1, Relaxed);
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
        FaultKind::Stall => {
            counts.stalled.fetch_add(1, Relaxed);
            std::thread::sleep(stall_for);
        }
        FaultKind::Truncate => {
            counts.truncated.fetch_add(1, Relaxed);
        }
        FaultKind::Corrupt => {
            counts.corrupted.fetch_add(1, Relaxed);
        }
        FaultKind::None => {
            counts.clean.fetch_add(1, Relaxed);
        }
    }
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };

    // Forward limit for truncation: a small prefix so the cut lands
    // mid-request (headers or early body) rather than after it.
    let limit = match kind {
        FaultKind::Truncate => 16 + (param % 120) as usize,
        _ => usize::MAX,
    };
    // Corruption offset: somewhere in the first KiB of the request.
    let corrupt_at = match kind {
        FaultKind::Corrupt => Some((param % 1024) as usize),
        _ => None,
    };

    let client_read = client.try_clone();
    let server_write = server.try_clone();
    let upstream_half = std::thread::spawn(move || {
        let (Ok(mut from), Ok(mut to)) = (client_read, server_write) else { return };
        let mut sent = 0usize;
        let mut buf = [0u8; 4096];
        loop {
            let n = match from.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            let mut chunk = buf[..n].to_vec();
            if let Some(at) = corrupt_at {
                if (sent..sent + n).contains(&at) {
                    chunk[at - sent] ^= 0xA5;
                }
            }
            let take = chunk.len().min(limit.saturating_sub(sent));
            if take > 0 && to.write_all(&chunk[..take]).is_err() {
                break;
            }
            sent += n;
            if sent >= limit {
                // Truncation point reached: slam the upstream write half.
                let _ = to.shutdown(Shutdown::Write);
                break;
            }
        }
        if limit == usize::MAX {
            let _ = to.shutdown(Shutdown::Write);
        }
    });

    // Response direction: always a clean copy.
    let mut from = server;
    let mut to = client;
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = upstream_half.join();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic_in_the_seed() {
        let rates =
            FaultRates { drop: 100, truncate: 200, stall: 100, corrupt: 200, ..Default::default() };
        let draw = |seed: u64| -> Vec<FaultKind> {
            let mut rng = XorShift64::new(seed);
            (0..64).map(|_| decide(&mut rng, &rates).0).collect()
        };
        assert_eq!(draw(7), draw(7), "same seed, same schedule");
        assert_ne!(draw(7), draw(8), "different seed, different schedule");
        let kinds = draw(7);
        assert!(kinds.contains(&FaultKind::None));
        assert!(
            kinds.iter().any(|k| *k != FaultKind::None),
            "40% fault rate must fire within 64 draws"
        );
    }

    #[test]
    fn zero_rates_never_inject() {
        let mut rng = XorShift64::new(99);
        for _ in 0..256 {
            assert_eq!(decide(&mut rng, &FaultRates::default()).0, FaultKind::None);
        }
    }

    /// A one-shot upstream that echoes a fixed response after reading the
    /// request (enough to exercise both copy directions).
    fn tiny_upstream() -> (SocketAddr, std::thread::JoinHandle<Vec<u8>>) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind upstream");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let mut request = Vec::new();
            let _ = conn.read_to_end(&mut request); // until client write-half closes
            let _ = conn.write_all(b"PONG");
            request
        });
        (addr, handle)
    }

    #[test]
    fn clean_connections_pass_bytes_through_unchanged() {
        let (upstream, server) = tiny_upstream();
        let proxy = FaultProxy::start(upstream, 1, FaultRates::default()).expect("proxy");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        conn.write_all(b"PING-BODY").expect("write");
        conn.shutdown(Shutdown::Write).expect("half close");
        let mut reply = Vec::new();
        conn.read_to_end(&mut reply).expect("read");
        assert_eq!(reply, b"PONG");
        assert_eq!(server.join().expect("upstream"), b"PING-BODY");
        assert_eq!(proxy.counts().clean.load(Relaxed), 1);
        proxy.shutdown();
    }

    #[test]
    fn corrupting_connections_flip_exactly_one_byte() {
        let (upstream, server) = tiny_upstream();
        let rates = FaultRates { corrupt: 1000, ..Default::default() };
        let proxy = FaultProxy::start(upstream, 3, rates).expect("proxy");
        let sent = vec![0u8; 1024]; // zeroed: any flip is visible
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        conn.write_all(&sent).expect("write");
        conn.shutdown(Shutdown::Write).expect("half close");
        let mut reply = Vec::new();
        conn.read_to_end(&mut reply).expect("read");
        let received = server.join().expect("upstream");
        assert_eq!(received.len(), sent.len());
        let flipped: Vec<usize> = (0..sent.len()).filter(|&i| received[i] != sent[i]).collect();
        assert_eq!(flipped.len(), 1, "exactly one corrupted byte, got {flipped:?}");
        assert_eq!(received[flipped[0]], 0xA5);
        assert_eq!(proxy.counts().corrupted.load(Relaxed), 1);
        proxy.shutdown();
    }

    #[test]
    fn truncating_connections_cut_the_request_short() {
        let (upstream, server) = tiny_upstream();
        let rates = FaultRates { truncate: 1000, ..Default::default() };
        let proxy = FaultProxy::start(upstream, 5, rates).expect("proxy");
        let sent = vec![7u8; 2048];
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        let _ = conn.write_all(&sent); // proxy may close mid-write
        let _ = conn.shutdown(Shutdown::Write);
        let mut reply = Vec::new();
        let _ = conn.read_to_end(&mut reply);
        let received = server.join().expect("upstream");
        assert!(
            received.len() < sent.len() && received.len() < 136,
            "upstream saw a short prefix, got {} bytes",
            received.len()
        );
        assert_eq!(proxy.counts().truncated.load(Relaxed), 1);
        proxy.shutdown();
    }

    #[test]
    fn dropped_connections_never_reach_upstream() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind upstream");
        let upstream = listener.local_addr().expect("addr");
        listener.set_nonblocking(true).expect("nonblocking");
        let rates = FaultRates { drop: 1000, ..Default::default() };
        let proxy = FaultProxy::start(upstream, 9, rates).expect("proxy");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        let _ = conn.write_all(b"DOOMED");
        let mut reply = Vec::new();
        let _ = conn.read_to_end(&mut reply);
        assert!(reply.is_empty(), "dropped connection got {reply:?}");
        assert_eq!(proxy.counts().dropped.load(Relaxed), 1);
        std::thread::sleep(Duration::from_millis(20));
        assert!(listener.accept().is_err(), "upstream must never see the connection");
        proxy.shutdown();
    }
}
