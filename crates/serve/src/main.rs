//! The `perpetuum-serve` binary: parse flags, start the daemon, wait for
//! shutdown, print a drain summary.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use perpetuum_serve::{install_signal_forwarder, server, FsyncPolicy, ServerConfig, MAX_SHARDS};
use std::fmt;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::Ordering::Relaxed;
use std::time::Duration;

/// Upper bound on `--session-threads`: far beyond any sane machine, low
/// enough to catch a mistyped value before it spawns a thread storm.
const MAX_SESSION_THREADS: usize = 256;

const USAGE: &str = "\
perpetuum-serve: planning & simulation daemon

USAGE:
    perpetuum-serve [OPTIONS]

OPTIONS:
    --addr <host:port>        main listener        [default: 127.0.0.1:7878]
    --admin-addr <host:port>  loopback admin listener (POST /shutdown)
                                                   [default: 127.0.0.1:7879]
    --workers <n>             worker threads       [default: #cores, 2..=16]
    --queue <n>               bounded queue capacity (503 beyond)
                                                   [default: 64]
    --max-body <bytes>        request body cap     [default: 1048576]
    --cache <n>               plan-cache capacity (0 disables)
                                                   [default: 128]
    --sessions <n>            live telemetry-session capacity (LRU beyond)
                                                   [default: 64]
    --shards <n>              session-store shards, 1..=1024 (rounded up to
                              a power of two)      [default: workers]
    --session-threads <n>     max parallel shard groups per
                              /telemetry/batch request, 1..=256
                                                   [default: workers]
    --read-timeout-secs <s>   per-connection socket read timeout [default: 10]
    --write-timeout-secs <s>  per-connection socket write timeout [default: 10]
    --deadline-secs <s>       whole-request deadline; trickling clients get
                              408 past it (0 disables)  [default: 30]
    --refine-workers <n>      background plan-refinement threads, 0..=64
                              (0 disables the pool)  [default: 1]
    --data-dir <path>         write-ahead journal directory; sessions and
                              accepted telemetry survive a crash and are
                              replayed on restart   [default: in-memory only]
    --fsync-policy <p>        when journal appends reach stable storage:
                              always | batch | never [default: batch]
    --compact-every <n>       WAL records per shard before auto-compaction
                              (0 = only on drain)    [default: 4096]
    -h, --help                print this help
";

/// Why the command line was rejected — each variant renders its own
/// message, and `Help` is the clean-exit path for `-h`/`--help`.
#[derive(Debug, PartialEq, Eq)]
enum ArgError {
    /// `-h`/`--help`: print usage, exit 0.
    Help,
    /// A flag at the end of the line with no value after it.
    MissingValue { flag: String },
    /// A value that doesn't parse as the flag's type.
    BadValue { flag: &'static str, value: String },
    /// A numeric value outside the flag's accepted range (zero included).
    OutOfRange { flag: &'static str, value: usize, min: usize, max: usize },
    /// A flag the daemon doesn't know.
    UnknownFlag { flag: String },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Help => write!(f, "help requested"),
            Self::MissingValue { flag } => write!(f, "{flag} needs a value"),
            Self::BadValue { flag, value } => write!(f, "bad {flag} {value:?}"),
            Self::OutOfRange { flag, value, min, max } => {
                write!(f, "{flag} must be in {min}..={max}, got {value}")
            }
            Self::UnknownFlag { flag } => write!(f, "unknown flag {flag:?}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parses a numeric flag value and rejects anything outside
/// `min..=max` — `--shards 0` or a fat-fingered `--workers 100000` die
/// here with a typed error instead of misconfiguring the daemon.
fn parse_in_range(
    flag: &'static str,
    value: &str,
    min: usize,
    max: usize,
) -> Result<usize, ArgError> {
    let parsed: usize =
        value.parse().map_err(|_| ArgError::BadValue { flag, value: value.to_string() })?;
    if !(min..=max).contains(&parsed) {
        return Err(ArgError::OutOfRange { flag, value: parsed, min, max });
    }
    Ok(parsed)
}

fn parse_args(args: &[String]) -> Result<ServerConfig, ArgError> {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        admin_addr: "127.0.0.1:7879".to_string(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            return Err(ArgError::Help);
        }
        let value = it.next().ok_or_else(|| ArgError::MissingValue { flag: flag.clone() })?;
        match flag.as_str() {
            "--addr" => cfg.addr = value.clone(),
            "--admin-addr" => cfg.admin_addr = value.clone(),
            "--workers" => cfg.workers = parse_in_range("--workers", value, 1, 1024)?,
            "--queue" => cfg.queue_capacity = parse_in_range("--queue", value, 1, 1 << 20)?,
            "--max-body" => cfg.max_body = parse_in_range("--max-body", value, 1, 1 << 30)?,
            "--cache" => cfg.cache_capacity = parse_in_range("--cache", value, 0, 1 << 24)?,
            "--sessions" => cfg.session_capacity = parse_in_range("--sessions", value, 1, 1 << 24)?,
            "--shards" => cfg.session_shards = parse_in_range("--shards", value, 1, MAX_SHARDS)?,
            "--session-threads" => {
                cfg.session_threads =
                    parse_in_range("--session-threads", value, 1, MAX_SESSION_THREADS)?
            }
            "--read-timeout-secs" => {
                let secs = parse_in_range("--read-timeout-secs", value, 1, 86_400)?;
                cfg.read_timeout = Duration::from_secs(secs as u64);
            }
            "--write-timeout-secs" => {
                let secs = parse_in_range("--write-timeout-secs", value, 1, 86_400)?;
                cfg.write_timeout = Duration::from_secs(secs as u64);
            }
            "--deadline-secs" => {
                let secs = parse_in_range("--deadline-secs", value, 0, 86_400)?;
                cfg.request_deadline = Duration::from_secs(secs as u64);
            }
            "--refine-workers" => {
                cfg.refine_workers = parse_in_range("--refine-workers", value, 0, 64)?
            }
            "--data-dir" => cfg.data_dir = Some(PathBuf::from(value)),
            "--fsync-policy" => {
                cfg.fsync_policy = FsyncPolicy::parse(value).ok_or_else(|| ArgError::BadValue {
                    flag: "--fsync-policy",
                    value: value.clone(),
                })?
            }
            "--compact-every" => {
                cfg.compact_every = parse_in_range("--compact-every", value, 0, 1 << 30)? as u64
            }
            _ => return Err(ArgError::UnknownFlag { flag: flag.clone() }),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(ArgError::Help) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(err) => {
            eprintln!("error: {err}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let workers = cfg.workers;
    let journal_line = cfg
        .data_dir
        .as_ref()
        .map(|dir| format!("  journal: {} (fsync: {})", dir.display(), cfg.fsync_policy.as_str()));
    let handle = match server::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    install_signal_forwarder(handle.shutdown_signal());

    println!("perpetuum-serve listening on http://{}", handle.addr);
    println!("  admin (loopback only):    http://{}", handle.admin_addr);
    if let Some(line) = journal_line {
        println!("{line}");
    }
    println!(
        "  workers: {workers}, session shards: {}  (POST /plan, POST /simulate, \
         POST /session, POST /telemetry/batch, GET /healthz, GET /metrics)",
        handle.state().sessions.shard_count()
    );

    // Wait for SIGINT/SIGTERM or POST /shutdown, then drain. Keep an
    // owning clone of the state so the summary survives `wait()`
    // consuming the handle.
    let final_state = handle.state_arc();
    handle.wait();

    let m = &final_state.metrics;
    println!(
        "drained: {} plan ({} cache hits / {} misses), {} simulate, {} session, \
         {} batch ({} frames), {} shed with 503",
        m.plan.requests.load(Relaxed),
        m.cache_hits.load(Relaxed),
        m.cache_misses.load(Relaxed),
        m.simulate.requests.load(Relaxed),
        m.session.requests.load(Relaxed),
        m.batch.requests.load(Relaxed),
        m.batch_frames.load(Relaxed),
        m.queue_rejected.load(Relaxed),
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn defaults_and_flags_parse() {
        let cfg = parse_args(&[]).expect("empty args");
        assert_eq!(cfg.addr, "127.0.0.1:7878");
        assert_eq!(cfg.session_shards, 0, "auto shards by default");
        assert_eq!(cfg.session_threads, 0, "auto threads by default");

        let cfg = parse_args(&args(&[
            "--shards",
            "32",
            "--session-threads",
            "4",
            "--sessions",
            "100000",
        ]))
        .expect("valid flags");
        assert_eq!(cfg.session_shards, 32);
        assert_eq!(cfg.session_threads, 4);
        assert_eq!(cfg.session_capacity, 100_000);
    }

    #[test]
    fn refine_workers_flag_parses_and_zero_disables() {
        assert_eq!(parse_args(&[]).expect("empty args").refine_workers, 1);
        let cfg = parse_args(&args(&["--refine-workers", "0"])).expect("zero is valid");
        assert_eq!(cfg.refine_workers, 0);
        assert_eq!(
            parse_args(&args(&["--refine-workers", "65"])),
            Err(ArgError::OutOfRange { flag: "--refine-workers", value: 65, min: 0, max: 64 })
        );
    }

    #[test]
    fn durability_flags_parse() {
        let cfg = parse_args(&[]).expect("empty args");
        assert_eq!(cfg.data_dir, None, "in-memory by default");
        assert_eq!(cfg.fsync_policy, FsyncPolicy::Batch);
        assert_eq!(cfg.request_deadline, Duration::from_secs(30));

        let cfg = parse_args(&args(&[
            "--data-dir",
            "/tmp/perpetuum",
            "--fsync-policy",
            "always",
            "--compact-every",
            "128",
            "--write-timeout-secs",
            "5",
            "--deadline-secs",
            "0",
        ]))
        .expect("valid flags");
        assert_eq!(cfg.data_dir, Some(PathBuf::from("/tmp/perpetuum")));
        assert_eq!(cfg.fsync_policy, FsyncPolicy::Always);
        assert_eq!(cfg.compact_every, 128);
        assert_eq!(cfg.write_timeout, Duration::from_secs(5));
        assert_eq!(cfg.request_deadline, Duration::ZERO, "0 disables the deadline");

        assert_eq!(
            parse_args(&args(&["--fsync-policy", "sometimes"])),
            Err(ArgError::BadValue { flag: "--fsync-policy", value: "sometimes".to_string() })
        );
    }

    #[test]
    fn zero_and_absurd_values_are_typed_rejections() {
        assert_eq!(
            parse_args(&args(&["--shards", "0"])),
            Err(ArgError::OutOfRange { flag: "--shards", value: 0, min: 1, max: MAX_SHARDS })
        );
        assert_eq!(
            parse_args(&args(&["--shards", "4096"])),
            Err(ArgError::OutOfRange { flag: "--shards", value: 4096, min: 1, max: MAX_SHARDS })
        );
        assert_eq!(
            parse_args(&args(&["--session-threads", "0"])),
            Err(ArgError::OutOfRange {
                flag: "--session-threads",
                value: 0,
                min: 1,
                max: MAX_SESSION_THREADS
            })
        );
        assert_eq!(
            parse_args(&args(&["--workers", "0"])),
            Err(ArgError::OutOfRange { flag: "--workers", value: 0, min: 1, max: 1024 })
        );
        assert_eq!(
            parse_args(&args(&["--shards", "eight"])),
            Err(ArgError::BadValue { flag: "--shards", value: "eight".to_string() })
        );
    }

    #[test]
    fn help_missing_value_and_unknown_flags() {
        assert_eq!(parse_args(&args(&["--help"])), Err(ArgError::Help));
        assert_eq!(parse_args(&args(&["-h"])), Err(ArgError::Help));
        assert_eq!(
            parse_args(&args(&["--shards"])),
            Err(ArgError::MissingValue { flag: "--shards".to_string() })
        );
        assert_eq!(
            parse_args(&args(&["--nope", "1"])),
            Err(ArgError::UnknownFlag { flag: "--nope".to_string() })
        );
        // The error messages name the offending flag and bounds.
        let msg =
            ArgError::OutOfRange { flag: "--shards", value: 0, min: 1, max: 1024 }.to_string();
        assert!(msg.contains("--shards") && msg.contains("1..=1024"), "{msg}");
    }
}
