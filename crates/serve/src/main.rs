//! The `perpetuum-serve` binary: parse flags, start the daemon, wait for
//! shutdown, print a drain summary.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use perpetuum_serve::{install_signal_forwarder, server, ServerConfig};
use std::process::ExitCode;
use std::sync::atomic::Ordering::Relaxed;
use std::time::Duration;

const USAGE: &str = "\
perpetuum-serve: planning & simulation daemon

USAGE:
    perpetuum-serve [OPTIONS]

OPTIONS:
    --addr <host:port>        main listener        [default: 127.0.0.1:7878]
    --admin-addr <host:port>  loopback admin listener (POST /shutdown)
                                                   [default: 127.0.0.1:7879]
    --workers <n>             worker threads       [default: #cores, 2..=16]
    --queue <n>               bounded queue capacity (503 beyond)
                                                   [default: 64]
    --max-body <bytes>        request body cap     [default: 1048576]
    --cache <n>               plan-cache capacity (0 disables)
                                                   [default: 128]
    --sessions <n>            live telemetry-session capacity (LRU beyond)
                                                   [default: 64]
    --read-timeout-secs <s>   per-connection socket timeout [default: 10]
    -h, --help                print this help
";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        admin_addr: "127.0.0.1:7879".to_string(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            return Err(String::new()); // caller prints usage, exits 0
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--addr" => cfg.addr = value.clone(),
            "--admin-addr" => cfg.admin_addr = value.clone(),
            "--workers" => {
                cfg.workers = value.parse().map_err(|_| format!("bad --workers {value:?}"))?
            }
            "--queue" => {
                cfg.queue_capacity = value.parse().map_err(|_| format!("bad --queue {value:?}"))?
            }
            "--max-body" => {
                cfg.max_body = value.parse().map_err(|_| format!("bad --max-body {value:?}"))?
            }
            "--cache" => {
                cfg.cache_capacity = value.parse().map_err(|_| format!("bad --cache {value:?}"))?
            }
            "--sessions" => {
                cfg.session_capacity =
                    value.parse().map_err(|_| format!("bad --sessions {value:?}"))?
            }
            "--read-timeout-secs" => {
                let secs: u64 =
                    value.parse().map_err(|_| format!("bad --read-timeout-secs {value:?}"))?;
                cfg.read_timeout = Duration::from_secs(secs.max(1));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let workers = cfg.workers;
    let handle = match server::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    install_signal_forwarder(handle.shutdown_signal());

    println!("perpetuum-serve listening on http://{}", handle.addr);
    println!("  admin (loopback only):    http://{}", handle.admin_addr);
    println!(
        "  workers: {workers}  (POST /plan, POST /simulate, POST /session, GET /healthz, GET /metrics)"
    );

    // Wait for SIGINT/SIGTERM or POST /shutdown, then drain. Keep an
    // owning clone of the state so the summary survives `wait()`
    // consuming the handle.
    let final_state = handle.state_arc();
    handle.wait();

    let m = &final_state.metrics;
    println!(
        "drained: {} plan ({} cache hits / {} misses), {} simulate, {} session, {} shed with 503",
        m.plan.requests.load(Relaxed),
        m.cache_hits.load(Relaxed),
        m.cache_misses.load(Relaxed),
        m.simulate.requests.load(Relaxed),
        m.session.requests.load(Relaxed),
        m.queue_rejected.load(Relaxed),
    );
    ExitCode::SUCCESS
}
