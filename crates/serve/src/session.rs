//! Stateful online-controller sessions behind a **sharded** store.
//!
//! A session wraps one [`OnlineController`] behind its own mutex: store
//! locks are only ever held for a lookup/insert/remove, never while a
//! telemetry batch is being ingested, so concurrent clients feeding
//! *different* sessions never contend, and concurrent clients feeding the
//! *same* session serialize on that session alone — every acknowledged
//! batch is applied (no lost updates).
//!
//! At million-session scale the store itself becomes the contention
//! point, so it is split into independent shards selected by a
//! multiplicative hash of the session id. Each shard owns its slice of
//! the id space behind an `RwLock`: the hot path (`get`) takes a shard
//! *read* lock — many workers resolving different (or the same) sessions
//! proceed in parallel — while insert/remove take the write lock of one
//! shard only. Recency is tracked with per-slot atomics so a `get` never
//! needs a write lock.
//!
//! The store is bounded: creating a session beyond `capacity` evicts the
//! least-recently-used one *in the new session's shard* (capacity is
//! split evenly across shards; the eviction is reported to the caller so
//! the daemon can count it into `/metrics`). Live counts are maintained
//! per shard and in one aggregate atomic, so `/metrics` scrapes read
//! gauges without touching any lock.
//!
//! [`MutexMapStore`] preserves the previous single-`Mutex<HashMap>`
//! design. It is not used by the daemon — it exists so the ingest
//! benchmark can race the sharded store against the exact baseline it
//! replaced.

use perpetuum_online::OnlineController;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Default shard count when the caller passes `0` (auto) and no worker
/// count is known.
pub const DEFAULT_SHARDS: usize = 8;

/// Hard ceiling on the shard count (`--shards` validation re-checks this
/// at the CLI boundary; the constructor clamps as a safety net).
pub const MAX_SHARDS: usize = 1024;

/// A session's controller mutex was poisoned: a request panicked while
/// mutating it, so its state can no longer be trusted. The daemon reacts
/// by quarantining the session (remove + journal `End` + count), never by
/// silently reusing the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionPoisoned;

/// One live session: the controller behind its own lock.
pub struct SessionSlot {
    controller: Mutex<OnlineController>,
    last_used: AtomicU64,
}

impl SessionSlot {
    /// Locks the controller for one ingest/plan operation.
    ///
    /// Poisoning is surfaced, not swallowed: a poisoned mutex means some
    /// request panicked *while holding the controller* — the thread that
    /// was concurrently blocked on the same session must not proceed on
    /// state of unknown integrity. Callers treat `Err` exactly like a
    /// panic of their own: quarantine the session.
    pub fn lock(&self) -> Result<MutexGuard<'_, OnlineController>, SessionPoisoned> {
        self.controller.lock().map_err(|_| SessionPoisoned)
    }
}

/// One shard: an id → slot map behind a read/write lock, plus the shard's
/// recency clock and live-count gauge (both lock-free).
struct Shard {
    slots: RwLock<HashMap<u64, Arc<SessionSlot>>>,
    tick: AtomicU64,
    live: AtomicU64,
}

impl Shard {
    fn read(&self) -> RwLockReadGuard<'_, HashMap<u64, Arc<SessionSlot>>> {
        match self.slots.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write(&self) -> RwLockWriteGuard<'_, HashMap<u64, Arc<SessionSlot>>> {
        match self.slots.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A bounded, sharded LRU map from session ids to [`SessionSlot`]s.
pub struct SessionStore {
    shards: Vec<Shard>,
    /// `shards.len()` is a power of two; the hash's high bits select via
    /// this shift.
    shard_shift: u32,
    per_shard_capacity: usize,
    next_id: AtomicU64,
    live: AtomicU64,
}

/// Fibonacci-style multiplicative mix: sequential session ids land on
/// well-spread shards instead of marching through them in order.
#[inline]
fn mix(id: u64) -> u64 {
    id.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Index of the shard owning `id` in a store of `shard_count` shards
/// (`shard_count` must be a power of two). Exported so the write-ahead
/// journal files one `shard-<i>.wal` per store shard with the *same*
/// ownership mapping — a session's journal records and its live slot
/// always agree on the shard index.
#[inline]
pub fn shard_index(id: u64, shard_count: usize) -> usize {
    if shard_count <= 1 {
        return 0; // a 64-bit shift would overflow
    }
    (mix(id) >> (64 - shard_count.trailing_zeros())) as usize
}

impl SessionStore {
    /// A store holding at most `capacity` live sessions split over
    /// `shards` shards (rounded up to a power of two, clamped to
    /// `1..=`[`MAX_SHARDS`]; `0` means [`DEFAULT_SHARDS`]).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = if shards == 0 { DEFAULT_SHARDS } else { shards }
            .clamp(1, MAX_SHARDS)
            .next_power_of_two();
        let capacity = capacity.max(1);
        Self {
            shards: (0..shards)
                .map(|_| Shard {
                    slots: RwLock::new(HashMap::new()),
                    tick: AtomicU64::new(0),
                    live: AtomicU64::new(0),
                })
                .collect(),
            shard_shift: 64 - shards.trailing_zeros(),
            per_shard_capacity: capacity.div_ceil(shards),
            next_id: AtomicU64::new(0),
            live: AtomicU64::new(0),
        }
    }

    /// Index of the shard owning `id`.
    pub fn shard_of(&self, id: u64) -> usize {
        if self.shards.len() == 1 {
            return 0; // a 64-bit shift would overflow
        }
        (mix(id) >> self.shard_shift) as usize
    }

    /// Reserves the next session id without making anything visible. The
    /// daemon journals the session's `Create` record between allocation
    /// and [`insert_with_id`](Self::insert_with_id), so no concurrent
    /// ingest can ever journal frames for an id whose genesis is not on
    /// disk yet.
    pub fn allocate_id(&self) -> u64 {
        self.next_id.fetch_add(1, Relaxed) + 1
    }

    /// Ensures future [`allocate_id`](Self::allocate_id) calls return ids
    /// strictly greater than `floor` — recovery calls this with the
    /// highest id seen in the journal so restored and new sessions never
    /// collide (ids stay never-reused across restarts).
    pub fn bump_next_id(&self, floor: u64) {
        self.next_id.fetch_max(floor, Relaxed);
    }

    /// Registers a controller under a previously allocated (or recovered)
    /// id; returns the id of the session LRU-evicted to make room, if
    /// any. The id must come from [`allocate_id`](Self::allocate_id) or a
    /// journal — inserting an id twice would double-count the gauges.
    pub fn insert_with_id(&self, id: u64, controller: OnlineController) -> Option<u64> {
        self.bump_next_id(id);
        let shard = &self.shards[self.shard_of(id)];
        let slot = Arc::new(SessionSlot {
            controller: Mutex::new(controller),
            last_used: AtomicU64::new(shard.tick.fetch_add(1, Relaxed)),
        });
        let mut map = shard.write();
        let mut evicted = None;
        if map.len() >= self.per_shard_capacity {
            // O(len) scan, same trade as the plan cache: eviction is the
            // cold path and each shard's map is small.
            if let Some(&lru) =
                map.iter().min_by_key(|(_, s)| s.last_used.load(Relaxed)).map(|(k, _)| k)
            {
                map.remove(&lru);
                evicted = Some(lru);
            }
        }
        map.insert(id, slot);
        drop(map);
        if evicted.is_none() {
            shard.live.fetch_add(1, Relaxed);
            self.live.fetch_add(1, Relaxed);
        }
        evicted
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Registers a controller and returns its fresh id plus the id of the
    /// session evicted to make room, if any. Ids are monotonically
    /// increasing and never reused.
    pub fn insert(&self, controller: OnlineController) -> (u64, Option<u64>) {
        let id = self.allocate_id();
        let evicted = self.insert_with_id(id, controller);
        (id, evicted)
    }

    /// Looks a session up, refreshing its recency. Read-mostly hot path:
    /// only the shard's *read* lock is taken, so concurrent lookups —
    /// even of the same session — never serialize on the store. The
    /// returned `Arc` outlives the lock; callers lock the slot *after*
    /// this returns.
    pub fn get(&self, id: u64) -> Option<Arc<SessionSlot>> {
        let shard = &self.shards[self.shard_of(id)];
        let slot = Arc::clone(shard.read().get(&id)?);
        slot.last_used.store(shard.tick.fetch_add(1, Relaxed), Relaxed);
        Some(slot)
    }

    /// Removes a session; `true` if it existed.
    pub fn remove(&self, id: u64) -> bool {
        let shard = &self.shards[self.shard_of(id)];
        let removed = shard.write().remove(&id).is_some();
        if removed {
            shard.live.fetch_sub(1, Relaxed);
            self.live.fetch_sub(1, Relaxed);
        }
        removed
    }

    /// Number of live sessions — one atomic load, no locks (kept exact
    /// by insert/evict/remove).
    pub fn len(&self) -> usize {
        self.live.load(Relaxed) as usize
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard live-session gauges — atomic loads, no locks.
    pub fn shard_lens(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.live.load(Relaxed)).collect()
    }
}

/// The pre-sharding store: one global `Mutex<HashMap>` with whole-store
/// LRU. Kept verbatim as the ingest benchmark's contention baseline; the
/// daemon never instantiates it.
pub struct MutexMapStore {
    inner: Mutex<HashMap<u64, Arc<SessionSlot>>>,
    capacity: usize,
    next_id: AtomicU64,
    tick: AtomicU64,
}

impl MutexMapStore {
    /// A store holding at most `capacity` live sessions (at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            next_id: AtomicU64::new(0),
            tick: AtomicU64::new(0),
        }
    }

    fn map(&self) -> MutexGuard<'_, HashMap<u64, Arc<SessionSlot>>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a controller; returns its id and whether the LRU session
    /// was evicted.
    pub fn insert(&self, controller: OnlineController) -> (u64, bool) {
        let id = self.next_id.fetch_add(1, Relaxed) + 1;
        let slot = Arc::new(SessionSlot {
            controller: Mutex::new(controller),
            last_used: AtomicU64::new(self.tick.fetch_add(1, Relaxed)),
        });
        let mut map = self.map();
        let mut evicted = false;
        if map.len() >= self.capacity {
            if let Some(&lru) =
                map.iter().min_by_key(|(_, s)| s.last_used.load(Relaxed)).map(|(k, _)| k)
            {
                map.remove(&lru);
                evicted = true;
            }
        }
        map.insert(id, slot);
        (id, evicted)
    }

    /// Looks a session up through the global lock, refreshing recency.
    pub fn get(&self, id: u64) -> Option<Arc<SessionSlot>> {
        let slot = Arc::clone(self.map().get(&id)?);
        slot.last_used.store(self.tick.fetch_add(1, Relaxed), Relaxed);
        Some(slot)
    }

    /// Number of live sessions (takes the store lock).
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// True when no sessions are live (takes the store lock).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_core::network::Network;
    use perpetuum_geom::Point2;
    use perpetuum_online::OnlineConfig;

    fn controller() -> OnlineController {
        let sensors = vec![Point2::new(10.0, 20.0), Point2::new(40.0, 20.0)];
        let depots = vec![Point2::new(25.0, 60.0)];
        let network = Network::new(sensors, depots);
        OnlineController::new(network, vec![1.0, 1.0], vec![0.25, 0.125], OnlineConfig::new(100.0))
            .expect("valid controller")
    }

    #[test]
    fn ids_are_monotone_and_never_reused() {
        let store = SessionStore::new(8, 4);
        let (a, _) = store.insert(controller());
        let (b, _) = store.insert(controller());
        assert!(b > a);
        assert!(store.remove(a));
        let (c, _) = store.insert(controller());
        assert!(c > b, "removed ids are not recycled");
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn lru_session_is_evicted_at_capacity() {
        // One shard so all sessions share a single LRU domain.
        let store = SessionStore::new(2, 1);
        let (a, e1) = store.insert(controller());
        let (b, e2) = store.insert(controller());
        assert!(e1.is_none() && e2.is_none());
        assert!(store.get(a).is_some(), "refresh a — b becomes LRU");
        let (c, evicted) = store.insert(controller());
        assert_eq!(evicted, Some(b), "third insert evicts the LRU session by id");
        assert!(store.get(a).is_some());
        assert!(store.get(b).is_none(), "LRU session gone");
        assert!(store.get(c).is_some());
        assert_eq!(store.len(), 2, "eviction kept the aggregate gauge exact");
    }

    #[test]
    fn slots_lock_independently_of_the_store() {
        let store = SessionStore::new(4, 2);
        let (id, _) = store.insert(controller());
        let slot = store.get(id).expect("present");
        let guard = slot.lock().expect("not poisoned");
        // Store operations proceed while a session is locked.
        assert_eq!(store.len(), 1);
        let (other, _) = store.insert(controller());
        assert!(store.get(other).is_some());
        drop(guard);
    }

    #[test]
    fn explicit_ids_restore_and_keep_the_counter_monotone() {
        let store = SessionStore::new(8, 4);
        // Recovery-style insert at an arbitrary id.
        assert!(store.insert_with_id(41, controller()).is_none());
        assert!(store.get(41).is_some());
        // Fresh allocations jump past it — recovered ids are never reused.
        let (fresh, _) = store.insert(controller());
        assert!(fresh > 41, "allocator resumed past the recovered id, got {fresh}");
        store.bump_next_id(100);
        assert!(store.allocate_id() > 100);
    }

    #[test]
    fn poisoned_slots_report_instead_of_recovering() {
        let store = SessionStore::new(4, 1);
        let (id, _) = store.insert(controller());
        let slot = store.get(id).expect("present");
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = slot.lock().expect("first lock clean");
            panic!("ingest blew up while holding the controller");
        }));
        assert!(panicked.is_err());
        assert_eq!(slot.lock().err(), Some(SessionPoisoned), "poison must surface");
    }

    #[test]
    fn missing_sessions_are_none() {
        let store = SessionStore::new(2, 2);
        assert!(store.is_empty());
        assert!(store.get(99).is_none());
        assert!(!store.remove(99));
    }

    #[test]
    fn shard_count_normalizes_to_a_power_of_two() {
        assert_eq!(SessionStore::new(8, 0).shard_count(), DEFAULT_SHARDS);
        assert_eq!(SessionStore::new(8, 1).shard_count(), 1);
        assert_eq!(SessionStore::new(8, 3).shard_count(), 4);
        assert_eq!(SessionStore::new(8, 16).shard_count(), 16);
        assert_eq!(SessionStore::new(8, MAX_SHARDS + 5).shard_count(), MAX_SHARDS);
    }

    #[test]
    fn sequential_ids_spread_across_shards() {
        let store = SessionStore::new(1024, 8);
        for _ in 0..64 {
            store.insert(controller());
        }
        let lens = store.shard_lens();
        assert_eq!(lens.len(), 8);
        assert_eq!(lens.iter().sum::<u64>(), 64);
        assert_eq!(store.len(), 64);
        let populated = lens.iter().filter(|&&l| l > 0).count();
        assert!(populated >= 6, "64 sequential ids must spread widely: {lens:?}");
    }

    #[test]
    fn gauges_track_insert_evict_remove() {
        let store = SessionStore::new(4, 1);
        let mut ids = Vec::new();
        for _ in 0..4 {
            ids.push(store.insert(controller()).0);
        }
        assert_eq!(store.len(), 4);
        let (_, evicted) = store.insert(controller());
        assert_eq!(evicted, Some(ids[0]), "oldest session evicted");
        assert_eq!(store.len(), 4, "evicting insert is len-neutral");
        assert!(store.remove(ids[3]));
        assert_eq!(store.len(), 3);
        assert_eq!(store.shard_lens()[0], 3);
    }

    #[test]
    fn mutex_baseline_still_works() {
        let store = MutexMapStore::new(2);
        let (a, _) = store.insert(controller());
        let (b, _) = store.insert(controller());
        assert!(store.get(a).is_some());
        let (_, evicted) = store.insert(controller());
        assert!(evicted);
        assert!(store.get(b).is_none(), "LRU evicted");
        assert_eq!(store.len(), 2);
    }
}
