//! Stateful online-controller sessions with per-session locking and LRU
//! eviction.
//!
//! A session wraps one [`OnlineController`] behind its own mutex: the
//! store's map lock is only ever held for a lookup/insert/remove, never
//! while a telemetry batch is being ingested, so concurrent clients
//! feeding *different* sessions never contend, and concurrent clients
//! feeding the *same* session serialize on that session alone —
//! every acknowledged batch is applied (no lost updates).
//!
//! The store is bounded: creating a session beyond `capacity` evicts the
//! least-recently-used one (the eviction is reported to the caller so the
//! daemon can count it into `/metrics`).

use perpetuum_online::OnlineController;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard};

/// One live session: the controller behind its own lock.
pub struct SessionSlot {
    controller: Mutex<OnlineController>,
    last_used: AtomicU64,
}

impl SessionSlot {
    /// Locks the controller for one ingest/plan operation. Recovers from
    /// poisoning: the controller's state transitions are atomic per call,
    /// so a panicking request cannot leave it half-updated.
    pub fn lock(&self) -> MutexGuard<'_, OnlineController> {
        match self.controller.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A bounded LRU map from session ids to [`SessionSlot`]s.
pub struct SessionStore {
    inner: Mutex<HashMap<u64, Arc<SessionSlot>>>,
    capacity: usize,
    next_id: AtomicU64,
    tick: AtomicU64,
}

impl SessionStore {
    /// A store holding at most `capacity` live sessions (at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            next_id: AtomicU64::new(0),
            tick: AtomicU64::new(0),
        }
    }

    fn map(&self) -> MutexGuard<'_, HashMap<u64, Arc<SessionSlot>>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a controller and returns its fresh id plus whether an
    /// older session was evicted to make room. Ids are monotonically
    /// increasing and never reused.
    pub fn insert(&self, controller: OnlineController) -> (u64, bool) {
        let id = self.next_id.fetch_add(1, Relaxed) + 1;
        let slot = Arc::new(SessionSlot {
            controller: Mutex::new(controller),
            last_used: AtomicU64::new(self.tick.fetch_add(1, Relaxed)),
        });
        let mut map = self.map();
        let mut evicted = false;
        if map.len() >= self.capacity {
            // O(len) scan, same trade as the plan cache: eviction is the
            // cold path and the map is small.
            if let Some(&lru) =
                map.iter().min_by_key(|(_, s)| s.last_used.load(Relaxed)).map(|(k, _)| k)
            {
                map.remove(&lru);
                evicted = true;
            }
        }
        map.insert(id, slot);
        (id, evicted)
    }

    /// Looks a session up, refreshing its recency. The returned `Arc`
    /// outlives the map lock — callers lock the slot *after* this returns.
    pub fn get(&self, id: u64) -> Option<Arc<SessionSlot>> {
        let slot = Arc::clone(self.map().get(&id)?);
        slot.last_used.store(self.tick.fetch_add(1, Relaxed), Relaxed);
        Some(slot)
    }

    /// Removes a session; `true` if it existed.
    pub fn remove(&self, id: u64) -> bool {
        self.map().remove(&id).is_some()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_core::network::Network;
    use perpetuum_geom::Point2;
    use perpetuum_online::OnlineConfig;

    fn controller() -> OnlineController {
        let sensors = vec![Point2::new(10.0, 20.0), Point2::new(40.0, 20.0)];
        let depots = vec![Point2::new(25.0, 60.0)];
        let network = Network::new(sensors, depots);
        OnlineController::new(network, vec![1.0, 1.0], vec![0.25, 0.125], OnlineConfig::new(100.0))
            .expect("valid controller")
    }

    #[test]
    fn ids_are_monotone_and_never_reused() {
        let store = SessionStore::new(8);
        let (a, _) = store.insert(controller());
        let (b, _) = store.insert(controller());
        assert!(b > a);
        assert!(store.remove(a));
        let (c, _) = store.insert(controller());
        assert!(c > b, "removed ids are not recycled");
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn lru_session_is_evicted_at_capacity() {
        let store = SessionStore::new(2);
        let (a, e1) = store.insert(controller());
        let (b, e2) = store.insert(controller());
        assert!(!e1 && !e2);
        assert!(store.get(a).is_some(), "refresh a — b becomes LRU");
        let (c, evicted) = store.insert(controller());
        assert!(evicted, "third insert overflows capacity 2");
        assert!(store.get(a).is_some());
        assert!(store.get(b).is_none(), "LRU session gone");
        assert!(store.get(c).is_some());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn slots_lock_independently_of_the_map() {
        let store = SessionStore::new(4);
        let (id, _) = store.insert(controller());
        let slot = store.get(id).expect("present");
        let guard = slot.lock();
        // Map operations proceed while a session is locked.
        assert_eq!(store.len(), 1);
        let (other, _) = store.insert(controller());
        assert!(store.get(other).is_some());
        drop(guard);
    }

    #[test]
    fn missing_sessions_are_none() {
        let store = SessionStore::new(2);
        assert!(store.is_empty());
        assert!(store.get(99).is_none());
        assert!(!store.remove(99));
    }
}
