//! Method + path dispatch with panic isolation.
//!
//! The router owns the per-endpoint metrics (request counters and latency
//! histograms) and wraps every handler in `catch_unwind` so a bug in one
//! request can never take the worker thread — or the daemon — down with
//! it.

use crate::handlers::{self, AppState};
use crate::http::{Request, Response};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering::Relaxed;
use std::time::Instant;

/// Routes one parsed request to its handler and records endpoint metrics.
/// Unknown paths get `404`, known paths with the wrong method get `405`.
pub fn route(state: &AppState, req: &Request) -> Response {
    // The query string never selects the endpoint.
    let path = req.path.split('?').next().unwrap_or(&req.path);
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            state.metrics.other_requests.fetch_add(1, Relaxed);
            handlers::healthz()
        }
        ("GET", "/metrics") => {
            state.metrics.other_requests.fetch_add(1, Relaxed);
            handlers::metrics(state)
        }
        ("POST", "/plan") => {
            state.metrics.plan.requests.fetch_add(1, Relaxed);
            let started = Instant::now();
            let resp = handlers::plan(state, &req.body);
            state.metrics.plan.latency.observe(started.elapsed().as_secs_f64());
            resp
        }
        ("POST", "/simulate") => {
            state.metrics.simulate.requests.fetch_add(1, Relaxed);
            let started = Instant::now();
            let resp = handlers::simulate(&req.body);
            state.metrics.simulate.latency.observe(started.elapsed().as_secs_f64());
            resp
        }
        (_, "/healthz" | "/metrics" | "/plan" | "/simulate") => {
            state.metrics.other_requests.fetch_add(1, Relaxed);
            Response::error(
                405,
                "method_not_allowed",
                &format!("{} is not supported on {path}", req.method),
            )
        }
        _ => {
            state.metrics.other_requests.fetch_add(1, Relaxed);
            Response::error(404, "not_found", &format!("no route for {path}"))
        }
    }
}

/// Best-effort extraction of a panic payload's message (`&str` or
/// `String`; anything else gets a generic text).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "handler panicked".to_string())
}

/// [`route`] behind a panic barrier: a panicking handler becomes a `500`
/// with the panic message instead of an aborted connection.
pub fn handle(state: &AppState, req: &Request) -> Response {
    match catch_unwind(AssertUnwindSafe(|| route(state, req))) {
        Ok(resp) => resp,
        Err(payload) => Response::error(500, "internal_error", &panic_message(&*payload)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str, body: &str) -> Request {
        Request { method: method.into(), path: path.into(), body: body.as_bytes().to_vec() }
    }

    #[test]
    fn routes_and_rejects() {
        let state = AppState::new(4);
        assert_eq!(route(&state, &req("GET", "/healthz", "")).status, 200);
        assert_eq!(route(&state, &req("GET", "/healthz?verbose=1", "")).status, 200);
        assert_eq!(route(&state, &req("GET", "/metrics", "")).status, 200);
        assert_eq!(route(&state, &req("GET", "/plan", "")).status, 405);
        assert_eq!(route(&state, &req("POST", "/healthz", "")).status, 405);
        assert_eq!(route(&state, &req("GET", "/nope", "")).status, 404);
        assert_eq!(state.metrics.other_requests.load(Relaxed), 6);
    }

    #[test]
    fn plan_requests_are_counted_and_timed() {
        let state = AppState::new(4);
        let resp = handle(&state, &req("POST", "/plan", "not json"));
        assert_eq!(resp.status, 400);
        assert_eq!(state.metrics.plan.requests.load(Relaxed), 1);
        assert_eq!(state.metrics.plan.latency.count(), 1);
    }

    #[test]
    fn panics_become_500s() {
        // The barrier itself: a panicking closure produces a 500 body
        // with the message, not an unwind (both payload shapes).
        for boom in [
            catch_unwind(|| panic!("kaboom")),
            catch_unwind(|| {
                let code = std::hint::black_box(7);
                panic!("kaboom {code}") // formatted at runtime → String payload
            }),
        ] {
            let payload = boom.expect_err("closure panicked");
            let resp = Response::error(500, "internal_error", &panic_message(&*payload));
            assert_eq!(resp.status, 500);
            assert!(String::from_utf8(resp.body).unwrap().contains("kaboom"));
        }
    }
}
