//! Method + path dispatch with panic isolation.
//!
//! The router owns the per-endpoint metrics (request counters and latency
//! histograms) and wraps every handler in `catch_unwind` so a bug in one
//! request can never take the worker thread — or the daemon — down with
//! it.

use crate::handlers::{self, AppState};
use crate::http::{Request, Response};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering::Relaxed;
use std::time::Instant;

/// Routes one parsed request to its handler and records endpoint metrics.
/// Unknown paths get `404`, known paths with the wrong method get `405`.
pub fn route(state: &AppState, req: &Request) -> Response {
    // The query string never selects the endpoint.
    let path = req.path.split('?').next().unwrap_or(&req.path);
    if path == "/session" || path.starts_with("/session/") {
        return route_session(state, req, path);
    }
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            state.metrics.other_requests.fetch_add(1, Relaxed);
            handlers::healthz()
        }
        ("GET", "/metrics") => {
            state.metrics.other_requests.fetch_add(1, Relaxed);
            handlers::metrics(state)
        }
        ("POST", "/plan") => {
            state.metrics.plan.requests.fetch_add(1, Relaxed);
            let started = Instant::now();
            let resp = handlers::plan(state, &req.body);
            state.metrics.plan.latency.observe(started.elapsed().as_secs_f64());
            resp
        }
        ("POST", "/telemetry/batch") => {
            state.metrics.batch.requests.fetch_add(1, Relaxed);
            let started = Instant::now();
            let resp = handlers::telemetry_batch(state, req);
            state.metrics.batch.latency.observe(started.elapsed().as_secs_f64());
            resp
        }
        ("POST", "/simulate") => {
            state.metrics.simulate.requests.fetch_add(1, Relaxed);
            let started = Instant::now();
            let resp = handlers::simulate(&req.body);
            state.metrics.simulate.latency.observe(started.elapsed().as_secs_f64());
            resp
        }
        (_, "/healthz" | "/metrics" | "/plan" | "/simulate" | "/telemetry/batch") => {
            state.metrics.other_requests.fetch_add(1, Relaxed);
            Response::error(
                405,
                "method_not_allowed",
                &format!("{} is not supported on {path}", req.method),
            )
        }
        _ => {
            state.metrics.other_requests.fetch_add(1, Relaxed);
            Response::error(404, "not_found", &format!("no route for {path}"))
        }
    }
}

/// Dispatches the `/session` endpoint family. Unlike the fixed routes,
/// these paths carry a session id segment: `POST /session`,
/// `POST /session/{id}/telemetry`, `POST /session/{id}/events`,
/// `GET /session/{id}/plan`, `DELETE /session/{id}`.
fn route_session(state: &AppState, req: &Request, path: &str) -> Response {
    let method = req.method.as_str();
    let tail = path.strip_prefix("/session").unwrap_or("");
    // Resolve the handler first; a recognised shape with the wrong method
    // is a 405, an unrecognised shape (bad id, unknown action) a 404.
    enum Target {
        Create,
        Telemetry(u64),
        Events(u64),
        Plan(u64),
        Delete(u64),
        WrongMethod,
        Unknown,
    }
    let target = if tail.is_empty() {
        match method {
            "POST" => Target::Create,
            _ => Target::WrongMethod,
        }
    } else {
        let rest = &tail[1..]; // skip the '/'
        let (id_text, action) = match rest.split_once('/') {
            Some((id, action)) => (id, Some(action)),
            None => (rest, None),
        };
        match id_text.parse::<u64>() {
            Err(_) => Target::Unknown,
            Ok(id) => match (method, action) {
                ("POST", Some("telemetry")) => Target::Telemetry(id),
                ("POST", Some("events")) => Target::Events(id),
                ("GET", Some("plan")) => Target::Plan(id),
                ("DELETE", None) => Target::Delete(id),
                (_, Some("telemetry") | Some("events") | Some("plan") | None) => {
                    Target::WrongMethod
                }
                _ => Target::Unknown,
            },
        }
    };
    match target {
        Target::WrongMethod => {
            state.metrics.other_requests.fetch_add(1, Relaxed);
            Response::error(
                405,
                "method_not_allowed",
                &format!("{method} is not supported on {path}"),
            )
        }
        Target::Unknown => {
            state.metrics.other_requests.fetch_add(1, Relaxed);
            Response::error(404, "not_found", &format!("no route for {path}"))
        }
        known => {
            state.metrics.session.requests.fetch_add(1, Relaxed);
            let started = Instant::now();
            let resp = match known {
                Target::Create => handlers::session_create(state, &req.body),
                Target::Telemetry(id) => handlers::session_telemetry(state, id, &req.body),
                Target::Events(id) => handlers::session_events(state, id, req),
                Target::Plan(id) => handlers::session_plan(state, id, req),
                Target::Delete(id) => handlers::session_delete(state, id),
                Target::WrongMethod | Target::Unknown => unreachable!("handled above"),
            };
            state.metrics.session.latency.observe(started.elapsed().as_secs_f64());
            resp
        }
    }
}

/// Best-effort extraction of a panic payload's message (`&str` or
/// `String`; anything else gets a generic text).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "handler panicked".to_string())
}

/// [`route`] behind a panic barrier: a panicking handler becomes a `500`
/// with the panic message instead of an aborted connection.
pub fn handle(state: &AppState, req: &Request) -> Response {
    match catch_unwind(AssertUnwindSafe(|| route(state, req))) {
        Ok(resp) => resp,
        Err(payload) => Response::error(500, "internal_error", &panic_message(&*payload)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str, body: &str) -> Request {
        Request::new(method, path, body.as_bytes().to_vec())
    }

    #[test]
    fn routes_and_rejects() {
        let state = AppState::new(4);
        assert_eq!(route(&state, &req("GET", "/healthz", "")).status, 200);
        assert_eq!(route(&state, &req("GET", "/healthz?verbose=1", "")).status, 200);
        assert_eq!(route(&state, &req("GET", "/metrics", "")).status, 200);
        assert_eq!(route(&state, &req("GET", "/plan", "")).status, 405);
        assert_eq!(route(&state, &req("POST", "/healthz", "")).status, 405);
        assert_eq!(route(&state, &req("GET", "/telemetry/batch", "")).status, 405);
        assert_eq!(route(&state, &req("GET", "/nope", "")).status, 404);
        assert_eq!(state.metrics.other_requests.load(Relaxed), 7);
    }

    #[test]
    fn batch_requests_are_counted_and_timed() {
        let state = AppState::new(4);
        let resp = handle(&state, &req("POST", "/telemetry/batch", r#"{"frames": []}"#));
        assert_eq!(resp.status, 200);
        assert_eq!(state.metrics.batch.requests.load(Relaxed), 1);
        assert_eq!(state.metrics.batch.latency.count(), 1);
    }

    #[test]
    fn session_routes_dispatch_and_reject() {
        let state = AppState::new(4);
        // Recognised shapes with bodies/ids that don't resolve: the
        // handler answers (400/404), and the request counts as `session`.
        assert_eq!(route(&state, &req("POST", "/session", "{not json")).status, 400);
        assert_eq!(route(&state, &req("GET", "/session/1/plan", "")).status, 404);
        assert_eq!(route(&state, &req("POST", "/session/1/telemetry", "{}")).status, 404);
        assert_eq!(route(&state, &req("POST", "/session/1/events", "{}")).status, 404);
        assert_eq!(route(&state, &req("DELETE", "/session/1", "")).status, 404);
        assert_eq!(state.metrics.session.requests.load(Relaxed), 5);
        assert_eq!(state.metrics.session.latency.count(), 5);

        // Wrong method on a known shape: 405, counted as `other`.
        assert_eq!(route(&state, &req("GET", "/session", "")).status, 405);
        assert_eq!(route(&state, &req("POST", "/session/1/plan", "")).status, 405);
        assert_eq!(route(&state, &req("GET", "/session/1/events", "")).status, 405);
        assert_eq!(route(&state, &req("GET", "/session/1", "")).status, 405);
        // Unparsable id or unknown action: 404.
        assert_eq!(route(&state, &req("GET", "/session/abc/plan", "")).status, 404);
        assert_eq!(route(&state, &req("POST", "/session/1/nope", "")).status, 404);
        assert_eq!(state.metrics.other_requests.load(Relaxed), 6);
        assert_eq!(state.metrics.session.requests.load(Relaxed), 5, "rejections not mixed in");
    }

    #[test]
    fn plan_requests_are_counted_and_timed() {
        let state = AppState::new(4);
        let resp = handle(&state, &req("POST", "/plan", "not json"));
        assert_eq!(resp.status, 400);
        assert_eq!(state.metrics.plan.requests.load(Relaxed), 1);
        assert_eq!(state.metrics.plan.latency.count(), 1);
    }

    #[test]
    fn panics_become_500s() {
        // The barrier itself: a panicking closure produces a 500 body
        // with the message, not an unwind (both payload shapes).
        for boom in [
            catch_unwind(|| panic!("kaboom")),
            catch_unwind(|| {
                let code = std::hint::black_box(7);
                panic!("kaboom {code}") // formatted at runtime → String payload
            }),
        ] {
            let payload = boom.expect_err("closure panicked");
            let resp = Response::error(500, "internal_error", &panic_message(&*payload));
            assert_eq!(resp.status, 500);
            assert!(String::from_utf8(resp.body).unwrap().contains("kaboom"));
        }
    }
}
