//! Process metrics in Prometheus text exposition format.
//!
//! Everything is lock-free atomics: counters for requests, responses by
//! class, cache hits/misses and queue rejections; gauges for in-flight
//! requests and queue depth; and fixed-bucket latency histograms for the
//! two planning endpoints. `GET /metrics` renders the whole set in one
//! pass — no locks are ever held while a request is being served.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Histogram bucket upper bounds, in seconds (`+Inf` is implicit).
const BUCKETS: [f64; 9] = [0.0005, 0.001, 0.005, 0.025, 0.1, 0.25, 1.0, 5.0, 15.0];

/// A fixed-bucket latency histogram (Prometheus `histogram` type).
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS.len() + 1],
    /// Sum of observations in microseconds (integer atomics; Prometheus
    /// gets seconds back at render time).
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, seconds: f64) {
        let idx = BUCKETS.iter().position(|&ub| seconds <= ub).unwrap_or(BUCKETS.len());
        self.buckets[idx].fetch_add(1, Relaxed);
        self.sum_us.fetch_add((seconds * 1e6) as u64, Relaxed);
        self.count.fetch_add(1, Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Renders the histogram with one fixed `key="value"` label pair.
    fn render(&self, out: &mut String, name: &str, label: &str, value: &str) {
        let mut cumulative = 0u64;
        for (i, ub) in BUCKETS.iter().enumerate() {
            cumulative += self.buckets[i].load(Relaxed);
            let _ = writeln!(out, "{name}_bucket{{{label}=\"{value}\",le=\"{ub}\"}} {cumulative}");
        }
        cumulative += self.buckets[BUCKETS.len()].load(Relaxed);
        let _ = writeln!(out, "{name}_bucket{{{label}=\"{value}\",le=\"+Inf\"}} {cumulative}");
        let sum = self.sum_us.load(Relaxed) as f64 / 1e6;
        let _ = writeln!(out, "{name}_sum{{{label}=\"{value}\"}} {sum}");
        let _ = writeln!(out, "{name}_count{{{label}=\"{value}\"}} {}", self.count.load(Relaxed));
    }
}

/// Counters and histograms for one endpoint.
#[derive(Default)]
pub struct EndpointStats {
    /// Requests routed to the endpoint.
    pub requests: AtomicU64,
    /// End-to-end handling latency.
    pub latency: Histogram,
}

/// The daemon's full metric set. One instance is shared (`Arc`) by every
/// worker, the accept loop, and the `/metrics` handler.
#[derive(Default)]
pub struct Metrics {
    /// Requests accepted and parsed, by endpoint.
    pub plan: EndpointStats,
    /// Same for `/simulate`.
    pub simulate: EndpointStats,
    /// Same for the `/session` endpoint family (create, telemetry, plan,
    /// delete).
    pub session: EndpointStats,
    /// Same for `POST /telemetry/batch`.
    pub batch: EndpointStats,
    /// Telemetry frames carried by `/telemetry/batch` requests (a single
    /// request can carry thousands).
    pub batch_frames: AtomicU64,
    /// Frames inside batches that were rejected (unknown session or
    /// invalid telemetry) — applied frames are `batch_frames - this`.
    pub batch_frame_errors: AtomicU64,
    /// Suppressed-event batches accepted (any path: `/session/{id}/events`
    /// or events frames inside `/telemetry/batch`).
    pub events_ingested: AtomicU64,
    /// Client-side observations reported by accepted event batches (the
    /// frames edge clients *would* have streamed without suppression).
    pub client_frames_observed: AtomicU64,
    /// Frames edge clients actually sent, as reported by accepted event
    /// batches. `1 - sent/observed` is the suppression ratio.
    pub client_frames_sent: AtomicU64,
    /// `GET /healthz` + `GET /metrics` + unroutable requests.
    pub other_requests: AtomicU64,
    /// Plan-cache hits.
    pub cache_hits: AtomicU64,
    /// Plan-cache misses (each one paid for a full planning run).
    pub cache_misses: AtomicU64,
    /// Plans evicted from the cache to make room for new ones.
    pub cache_evictions: AtomicU64,
    /// Live sessions evicted (LRU) to make room for new ones.
    pub session_evictions: AtomicU64,
    /// Sessions quarantined after a panic during ingest (removed from the
    /// store and journaled as ended; never served again).
    pub sessions_quarantined: AtomicU64,
    /// Sessions reconstructed from the journal at startup.
    pub sessions_recovered: AtomicU64,
    /// Bytes appended to the write-ahead journal (WAL + snapshots).
    pub journal_bytes_written: AtomicU64,
    /// Explicit `fsync` calls issued by the journal.
    pub journal_fsyncs: AtomicU64,
    /// WAL records replayed at startup — 0 after a clean drain, because
    /// drain compacts every live session into its snapshot.
    pub journal_replayed_wal_records: AtomicU64,
    /// Wall-clock duration of startup recovery passes.
    pub recovery_seconds: Histogram,
    /// Session telemetry outcomes by replan kind: `[none, incremental,
    /// full]` (indexing matches [`perpetuum_online::ReplanKind`]).
    pub session_replans: [AtomicU64; 3],
    /// Emergency rescue dispatches issued by session ingests.
    pub session_emergencies: AtomicU64,
    /// Planner latency of telemetry batches resolved on the incremental
    /// (forest-splice) path.
    pub planner_incremental: Histogram,
    /// Planner latency of telemetry batches that forced a full replan.
    pub planner_full: Histogram,
    /// Refinement passes completed (inline `/plan` requests and background
    /// worker jobs alike).
    pub refine_passes: AtomicU64,
    /// Cached `/plan` entries replaced in place by a background
    /// refinement pass.
    pub refine_upgrades: AtomicU64,
    /// Background refinement jobs dropped: the queue was full, or the
    /// cache entry was evicted before the upgrade landed.
    pub refine_jobs_dropped: AtomicU64,
    /// Cumulative constructive service cost seen by refinement passes,
    /// in cost millis (integer atomics; the improvement-ratio gauge is
    /// derived at render time).
    pub refine_constructive_millicost: AtomicU64,
    /// Cumulative refined service cost, in cost millis.
    pub refine_refined_millicost: AtomicU64,
    /// Wall-clock duration of refinement passes.
    pub refine_seconds: Histogram,
    /// Connections rejected with `503` because the request queue was full.
    pub queue_rejected: AtomicU64,
    /// Responses by status class: `[2xx, 4xx, 5xx]`.
    pub responses: [AtomicU64; 3],
    /// Requests currently being handled by workers (gauge).
    pub in_flight: AtomicU64,
    /// Connections waiting in the bounded queue (gauge).
    pub queue_depth: AtomicU64,
}

impl Metrics {
    /// Records one session telemetry ingest: the replan kind it resolved
    /// to, the rescued-sensor count, and (for the two planning paths) the
    /// end-to-end ingest latency.
    pub fn record_ingest(
        &self,
        kind: perpetuum_online::ReplanKind,
        emergencies: u64,
        seconds: f64,
    ) {
        use perpetuum_online::ReplanKind;
        let idx = match kind {
            ReplanKind::None => 0,
            ReplanKind::Incremental => 1,
            ReplanKind::Full => 2,
        };
        self.session_replans[idx].fetch_add(1, Relaxed);
        self.session_emergencies.fetch_add(emergencies, Relaxed);
        match kind {
            ReplanKind::Incremental => self.planner_incremental.observe(seconds),
            ReplanKind::Full => self.planner_full.observe(seconds),
            ReplanKind::None => {}
        }
    }

    /// Records one accepted suppressed-event batch and its delta counters
    /// (observations made vs frames actually sent since the client's last
    /// accepted batch).
    pub fn record_events(&self, observed: u64, sent: u64) {
        self.events_ingested.fetch_add(1, Relaxed);
        self.client_frames_observed.fetch_add(observed, Relaxed);
        self.client_frames_sent.fetch_add(sent, Relaxed);
    }

    /// Records one completed refinement pass: the service cost before and
    /// after, and the wall-clock time it took. Feeds the pass counter,
    /// the improvement-ratio gauge and the latency histogram.
    pub fn record_refine(&self, constructive_cost: f64, refined_cost: f64, seconds: f64) {
        self.refine_passes.fetch_add(1, Relaxed);
        self.refine_constructive_millicost
            .fetch_add((constructive_cost.max(0.0) * 1e3) as u64, Relaxed);
        self.refine_refined_millicost.fetch_add((refined_cost.max(0.0) * 1e3) as u64, Relaxed);
        self.refine_seconds.observe(seconds);
    }

    /// Records a finished response's status class.
    pub fn record_status(&self, status: u16) {
        let idx = match status {
            200..=299 => 0,
            400..=499 => 1,
            _ => 2,
        };
        self.responses[idx].fetch_add(1, Relaxed);
    }

    /// Renders the Prometheus text exposition. `cache_len` and
    /// `session_count` are sampled by the caller from lock-free gauges;
    /// `shard_sessions` holds the per-shard live counts (one gauge line
    /// each, labelled by shard index).
    pub fn render(&self, cache_len: usize, session_count: usize, shard_sessions: &[u64]) -> String {
        let mut out = String::with_capacity(2048);
        let requests_total = self.plan.requests.load(Relaxed)
            + self.simulate.requests.load(Relaxed)
            + self.session.requests.load(Relaxed)
            + self.batch.requests.load(Relaxed)
            + self.other_requests.load(Relaxed);

        out.push_str("# HELP perpetuum_requests_total Requests parsed, by endpoint.\n");
        out.push_str("# TYPE perpetuum_requests_total counter\n");
        let _ = writeln!(
            out,
            "perpetuum_requests_total{{endpoint=\"plan\"}} {}",
            self.plan.requests.load(Relaxed)
        );
        let _ = writeln!(
            out,
            "perpetuum_requests_total{{endpoint=\"simulate\"}} {}",
            self.simulate.requests.load(Relaxed)
        );
        let _ = writeln!(
            out,
            "perpetuum_requests_total{{endpoint=\"session\"}} {}",
            self.session.requests.load(Relaxed)
        );
        let _ = writeln!(
            out,
            "perpetuum_requests_total{{endpoint=\"telemetry_batch\"}} {}",
            self.batch.requests.load(Relaxed)
        );
        let _ = writeln!(
            out,
            "perpetuum_requests_total{{endpoint=\"other\"}} {}",
            self.other_requests.load(Relaxed)
        );
        let _ = writeln!(out, "# Total across endpoints: {requests_total}");

        out.push_str("# HELP perpetuum_request_seconds End-to-end handling latency.\n");
        out.push_str("# TYPE perpetuum_request_seconds histogram\n");
        self.plan.latency.render(&mut out, "perpetuum_request_seconds", "endpoint", "plan");
        self.simulate.latency.render(&mut out, "perpetuum_request_seconds", "endpoint", "simulate");
        self.session.latency.render(&mut out, "perpetuum_request_seconds", "endpoint", "session");
        self.batch.latency.render(
            &mut out,
            "perpetuum_request_seconds",
            "endpoint",
            "telemetry_batch",
        );

        out.push_str("# HELP perpetuum_batch_frames_total Telemetry frames carried by batches.\n");
        out.push_str("# TYPE perpetuum_batch_frames_total counter\n");
        let _ = writeln!(out, "perpetuum_batch_frames_total {}", self.batch_frames.load(Relaxed));
        out.push_str("# HELP perpetuum_batch_frame_errors_total Rejected frames inside batches.\n");
        out.push_str("# TYPE perpetuum_batch_frame_errors_total counter\n");
        let _ = writeln!(
            out,
            "perpetuum_batch_frame_errors_total {}",
            self.batch_frame_errors.load(Relaxed)
        );

        out.push_str("# HELP perpetuum_events_ingested_total Suppressed-event batches accepted.\n");
        out.push_str("# TYPE perpetuum_events_ingested_total counter\n");
        let _ =
            writeln!(out, "perpetuum_events_ingested_total {}", self.events_ingested.load(Relaxed));
        out.push_str(
            "# HELP perpetuum_client_frames_observed_total Edge-client observations reported.\n",
        );
        out.push_str("# TYPE perpetuum_client_frames_observed_total counter\n");
        let _ = writeln!(
            out,
            "perpetuum_client_frames_observed_total {}",
            self.client_frames_observed.load(Relaxed)
        );
        out.push_str(
            "# HELP perpetuum_client_frames_sent_total Edge-client frames actually sent.\n",
        );
        out.push_str("# TYPE perpetuum_client_frames_sent_total counter\n");
        let _ = writeln!(
            out,
            "perpetuum_client_frames_sent_total {}",
            self.client_frames_sent.load(Relaxed)
        );
        out.push_str(
            "# HELP perpetuum_frames_suppressed_ratio Fraction of edge observations never sent.\n",
        );
        out.push_str("# TYPE perpetuum_frames_suppressed_ratio gauge\n");
        let observed = self.client_frames_observed.load(Relaxed);
        let sent = self.client_frames_sent.load(Relaxed);
        let suppressed =
            if observed == 0 { 0.0 } else { 1.0 - (sent.min(observed) as f64 / observed as f64) };
        let _ = writeln!(out, "perpetuum_frames_suppressed_ratio {suppressed}");

        out.push_str("# HELP perpetuum_session_replans_total Telemetry batches by replan kind.\n");
        out.push_str("# TYPE perpetuum_session_replans_total counter\n");
        for (idx, kind) in ["none", "incremental", "full"].iter().enumerate() {
            let _ = writeln!(
                out,
                "perpetuum_session_replans_total{{kind=\"{kind}\"}} {}",
                self.session_replans[idx].load(Relaxed)
            );
        }
        out.push_str("# HELP perpetuum_session_emergencies_total Emergency rescue dispatches.\n");
        out.push_str("# TYPE perpetuum_session_emergencies_total counter\n");
        let _ = writeln!(
            out,
            "perpetuum_session_emergencies_total {}",
            self.session_emergencies.load(Relaxed)
        );

        out.push_str("# HELP perpetuum_planner_seconds Telemetry ingest latency by replan path.\n");
        out.push_str("# TYPE perpetuum_planner_seconds histogram\n");
        self.planner_incremental.render(
            &mut out,
            "perpetuum_planner_seconds",
            "path",
            "incremental",
        );
        self.planner_full.render(&mut out, "perpetuum_planner_seconds", "path", "full");

        out.push_str("# HELP perpetuum_cache_hits_total Plan-cache hits.\n");
        out.push_str("# TYPE perpetuum_cache_hits_total counter\n");
        let _ = writeln!(out, "perpetuum_cache_hits_total {}", self.cache_hits.load(Relaxed));
        out.push_str("# HELP perpetuum_cache_misses_total Plan-cache misses.\n");
        out.push_str("# TYPE perpetuum_cache_misses_total counter\n");
        let _ = writeln!(out, "perpetuum_cache_misses_total {}", self.cache_misses.load(Relaxed));
        out.push_str("# HELP perpetuum_cache_evictions_total Plans evicted from the cache.\n");
        out.push_str("# TYPE perpetuum_cache_evictions_total counter\n");
        let _ =
            writeln!(out, "perpetuum_cache_evictions_total {}", self.cache_evictions.load(Relaxed));
        out.push_str("# HELP perpetuum_cache_plans Plans currently cached.\n");
        out.push_str("# TYPE perpetuum_cache_plans gauge\n");
        let _ = writeln!(out, "perpetuum_cache_plans {cache_len}");

        out.push_str("# HELP perpetuum_sessions Live telemetry sessions.\n");
        out.push_str("# TYPE perpetuum_sessions gauge\n");
        let _ = writeln!(out, "perpetuum_sessions {session_count}");
        out.push_str("# HELP perpetuum_session_shard_sessions Live sessions per store shard.\n");
        out.push_str("# TYPE perpetuum_session_shard_sessions gauge\n");
        for (shard, &count) in shard_sessions.iter().enumerate() {
            let _ = writeln!(out, "perpetuum_session_shard_sessions{{shard=\"{shard}\"}} {count}");
        }
        out.push_str("# HELP perpetuum_session_evictions_total Sessions evicted (LRU).\n");
        out.push_str("# TYPE perpetuum_session_evictions_total counter\n");
        let _ = writeln!(
            out,
            "perpetuum_session_evictions_total {}",
            self.session_evictions.load(Relaxed)
        );

        out.push_str(
            "# HELP perpetuum_sessions_quarantined_total Sessions quarantined after a panic.\n",
        );
        out.push_str("# TYPE perpetuum_sessions_quarantined_total counter\n");
        let _ = writeln!(
            out,
            "perpetuum_sessions_quarantined_total {}",
            self.sessions_quarantined.load(Relaxed)
        );
        out.push_str("# HELP perpetuum_sessions_recovered_total Sessions rebuilt from the journal at startup.\n");
        out.push_str("# TYPE perpetuum_sessions_recovered_total counter\n");
        let _ = writeln!(
            out,
            "perpetuum_sessions_recovered_total {}",
            self.sessions_recovered.load(Relaxed)
        );
        out.push_str(
            "# HELP perpetuum_journal_bytes_written_total Bytes appended to the journal.\n",
        );
        out.push_str("# TYPE perpetuum_journal_bytes_written_total counter\n");
        let _ = writeln!(
            out,
            "perpetuum_journal_bytes_written_total {}",
            self.journal_bytes_written.load(Relaxed)
        );
        out.push_str(
            "# HELP perpetuum_journal_fsyncs_total Explicit fsyncs issued by the journal.\n",
        );
        out.push_str("# TYPE perpetuum_journal_fsyncs_total counter\n");
        let _ =
            writeln!(out, "perpetuum_journal_fsyncs_total {}", self.journal_fsyncs.load(Relaxed));
        out.push_str(
            "# HELP perpetuum_journal_replayed_wal_records_total WAL records replayed at startup.\n",
        );
        out.push_str("# TYPE perpetuum_journal_replayed_wal_records_total counter\n");
        let _ = writeln!(
            out,
            "perpetuum_journal_replayed_wal_records_total {}",
            self.journal_replayed_wal_records.load(Relaxed)
        );
        out.push_str("# HELP perpetuum_recovery_seconds Startup journal-recovery duration.\n");
        out.push_str("# TYPE perpetuum_recovery_seconds histogram\n");
        self.recovery_seconds.render(&mut out, "perpetuum_recovery_seconds", "phase", "startup");

        out.push_str("# HELP perpetuum_refine_passes_total Refinement passes completed.\n");
        out.push_str("# TYPE perpetuum_refine_passes_total counter\n");
        let _ = writeln!(out, "perpetuum_refine_passes_total {}", self.refine_passes.load(Relaxed));
        out.push_str(
            "# HELP perpetuum_refine_upgrades_total Cached plans upgraded in place by background refinement.\n",
        );
        out.push_str("# TYPE perpetuum_refine_upgrades_total counter\n");
        let _ =
            writeln!(out, "perpetuum_refine_upgrades_total {}", self.refine_upgrades.load(Relaxed));
        out.push_str(
            "# HELP perpetuum_refine_jobs_dropped_total Background refinement jobs dropped (queue full or entry evicted).\n",
        );
        out.push_str("# TYPE perpetuum_refine_jobs_dropped_total counter\n");
        let _ = writeln!(
            out,
            "perpetuum_refine_jobs_dropped_total {}",
            self.refine_jobs_dropped.load(Relaxed)
        );
        out.push_str(
            "# HELP perpetuum_refine_improvement_ratio Service cost removed by refinement, as a fraction of constructive cost.\n",
        );
        out.push_str("# TYPE perpetuum_refine_improvement_ratio gauge\n");
        let constructive = self.refine_constructive_millicost.load(Relaxed);
        let refined = self.refine_refined_millicost.load(Relaxed);
        let ratio = if constructive == 0 {
            0.0
        } else {
            1.0 - refined.min(constructive) as f64 / constructive as f64
        };
        let _ = writeln!(out, "perpetuum_refine_improvement_ratio {ratio}");
        out.push_str("# HELP perpetuum_refine_seconds Refinement pass duration.\n");
        out.push_str("# TYPE perpetuum_refine_seconds histogram\n");
        self.refine_seconds.render(&mut out, "perpetuum_refine_seconds", "kind", "pass");

        out.push_str("# HELP perpetuum_queue_rejected_total Connections shed with 503.\n");
        out.push_str("# TYPE perpetuum_queue_rejected_total counter\n");
        let _ =
            writeln!(out, "perpetuum_queue_rejected_total {}", self.queue_rejected.load(Relaxed));

        out.push_str("# HELP perpetuum_responses_total Responses by status class.\n");
        out.push_str("# TYPE perpetuum_responses_total counter\n");
        for (idx, class) in ["2xx", "4xx", "5xx"].iter().enumerate() {
            let _ = writeln!(
                out,
                "perpetuum_responses_total{{class=\"{class}\"}} {}",
                self.responses[idx].load(Relaxed)
            );
        }

        out.push_str("# HELP perpetuum_in_flight Requests currently being handled.\n");
        out.push_str("# TYPE perpetuum_in_flight gauge\n");
        let _ = writeln!(out, "perpetuum_in_flight {}", self.in_flight.load(Relaxed));
        out.push_str("# HELP perpetuum_queue_depth Connections waiting in the bounded queue.\n");
        out.push_str("# TYPE perpetuum_queue_depth gauge\n");
        let _ = writeln!(out, "perpetuum_queue_depth {}", self.queue_depth.load(Relaxed));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.observe(0.0001); // first bucket
        h.observe(0.01); // ≤ 0.025
        h.observe(100.0); // +Inf only
        assert_eq!(h.count(), 3);
        let mut out = String::new();
        h.render(&mut out, "x_seconds", "endpoint", "plan");
        assert!(out.contains("x_seconds_bucket{endpoint=\"plan\",le=\"0.0005\"} 1"), "{out}");
        assert!(out.contains("x_seconds_bucket{endpoint=\"plan\",le=\"0.025\"} 2"), "{out}");
        assert!(out.contains("x_seconds_bucket{endpoint=\"plan\",le=\"+Inf\"} 3"), "{out}");
        assert!(out.contains("x_seconds_count{endpoint=\"plan\"} 3"), "{out}");
    }

    #[test]
    fn render_contains_every_family() {
        let m = Metrics::default();
        m.plan.requests.fetch_add(2, Relaxed);
        m.session.requests.fetch_add(3, Relaxed);
        m.cache_hits.fetch_add(1, Relaxed);
        m.cache_evictions.fetch_add(4, Relaxed);
        m.session_evictions.fetch_add(1, Relaxed);
        m.record_status(200);
        m.record_status(404);
        m.record_status(503);
        m.batch.requests.fetch_add(7, Relaxed);
        m.batch_frames.fetch_add(120, Relaxed);
        m.batch_frame_errors.fetch_add(2, Relaxed);
        m.sessions_quarantined.fetch_add(1, Relaxed);
        m.sessions_recovered.fetch_add(3, Relaxed);
        m.journal_bytes_written.fetch_add(4096, Relaxed);
        m.journal_fsyncs.fetch_add(9, Relaxed);
        m.journal_replayed_wal_records.fetch_add(17, Relaxed);
        m.recovery_seconds.observe(0.012);
        m.record_events(40, 3);
        m.record_events(10, 2);
        m.record_refine(200.0, 150.0, 0.004);
        m.refine_upgrades.fetch_add(1, Relaxed);
        m.refine_jobs_dropped.fetch_add(2, Relaxed);
        let text = m.render(5, 2, &[2, 0]);
        for needle in [
            "perpetuum_refine_passes_total 1",
            "perpetuum_refine_upgrades_total 1",
            "perpetuum_refine_jobs_dropped_total 2",
            "perpetuum_refine_improvement_ratio 0.25",
            "perpetuum_refine_seconds_count{kind=\"pass\"} 1",
            "perpetuum_refine_seconds_bucket{kind=\"pass\",le=\"0.005\"} 1",
            "perpetuum_events_ingested_total 2",
            "perpetuum_client_frames_observed_total 50",
            "perpetuum_client_frames_sent_total 5",
            "perpetuum_frames_suppressed_ratio 0.9",
            "perpetuum_sessions_quarantined_total 1",
            "perpetuum_sessions_recovered_total 3",
            "perpetuum_journal_bytes_written_total 4096",
            "perpetuum_journal_fsyncs_total 9",
            "perpetuum_journal_replayed_wal_records_total 17",
            "perpetuum_recovery_seconds_count{phase=\"startup\"} 1",
            "perpetuum_recovery_seconds_bucket{phase=\"startup\",le=\"0.025\"} 1",
            "perpetuum_requests_total{endpoint=\"telemetry_batch\"} 7",
            "perpetuum_batch_frames_total 120",
            "perpetuum_batch_frame_errors_total 2",
            "perpetuum_session_shard_sessions{shard=\"0\"} 2",
            "perpetuum_session_shard_sessions{shard=\"1\"} 0",
            "perpetuum_requests_total{endpoint=\"plan\"} 2",
            "perpetuum_requests_total{endpoint=\"session\"} 3",
            "perpetuum_cache_hits_total 1",
            "perpetuum_cache_misses_total 0",
            "perpetuum_cache_evictions_total 4",
            "perpetuum_cache_plans 5",
            "perpetuum_sessions 2",
            "perpetuum_session_evictions_total 1",
            "perpetuum_responses_total{class=\"2xx\"} 1",
            "perpetuum_responses_total{class=\"4xx\"} 1",
            "perpetuum_responses_total{class=\"5xx\"} 1",
            "perpetuum_in_flight 0",
            "perpetuum_queue_depth 0",
            "perpetuum_session_replans_total{kind=\"none\"} 0",
            "perpetuum_session_emergencies_total 0",
            "perpetuum_planner_seconds_count{path=\"incremental\"} 0",
            "perpetuum_planner_seconds_count{path=\"full\"} 0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn ingest_records_split_by_replan_path() {
        use perpetuum_online::ReplanKind;
        let m = Metrics::default();
        m.record_ingest(ReplanKind::None, 0, 0.0001);
        m.record_ingest(ReplanKind::Incremental, 0, 0.002);
        m.record_ingest(ReplanKind::Incremental, 1, 0.003);
        m.record_ingest(ReplanKind::Full, 2, 0.2);
        let text = m.render(0, 1, &[1]);
        for needle in [
            "perpetuum_session_replans_total{kind=\"none\"} 1",
            "perpetuum_session_replans_total{kind=\"incremental\"} 2",
            "perpetuum_session_replans_total{kind=\"full\"} 1",
            "perpetuum_session_emergencies_total 3",
            "perpetuum_planner_seconds_count{path=\"incremental\"} 2",
            "perpetuum_planner_seconds_count{path=\"full\"} 1",
            "perpetuum_planner_seconds_bucket{path=\"full\",le=\"0.25\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // The planner-free path never lands in either histogram.
        assert_eq!(m.planner_incremental.count() + m.planner_full.count(), 3);
    }
}
