//! End-to-end suppression equivalence over the HTTP handlers: a fleet of
//! `SensorClient`s posting suppressed event batches to
//! `POST /session/{id}/events` — as JSON *and* as binary PBT1 frames —
//! must leave the session's plan byte-identical, at every slot, to a
//! twin session fed the full per-slot telemetry stream. Random drift
//! traces exercise suppression, in-band adoption, the `409
//! sync_required` refusal, and the sync retry on both encodings.

use std::collections::HashSet;

use perpetuum_client::SensorClient;
use perpetuum_online::{
    ClassEvent, ControllerSeed, EventBatch, OnlineConfig, OnlineController, TelemetryBatch,
    TelemetryRecord,
};
use perpetuum_serve::handlers::{session_events, session_plan, session_telemetry};
use perpetuum_serve::http::Request;
use perpetuum_serve::wire::{self, Frame};
use perpetuum_serve::AppState;
use proptest::prelude::*;

const EPS: f64 = 1e-9;
const HORIZON: f64 = 100.0;
const MARGIN: f64 = 0.1;
const GAMMA: f64 = 0.5;
const N: usize = 5;

/// Base consumption cycles of the 5-sensor line world (τ₁ = 4).
const CYCLES: [f64; 5] = [4.0, 5.5, 6.5, 13.0, 14.0];

fn seed() -> ControllerSeed {
    ControllerSeed {
        sensors: vec![(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (30.0, 0.0), (40.0, 0.0)],
        depots: vec![(20.0, 30.0)],
        capacities: vec![1.0; N],
        initial_rates: CYCLES.iter().map(|c| 1.0 / c).collect(),
        config: OnlineConfig::new(HORIZON).with_gamma(GAMMA).with_margin(MARGIN),
    }
}

/// A fresh state holding one session built from [`seed`]. Sessions built
/// this way are identical across states, so their plan streams are
/// comparable byte-for-byte.
fn fresh_state() -> (AppState, u64) {
    let state = AppState::new(4);
    let controller = seed().build().expect("valid seed");
    let id = state.sessions.allocate_id();
    assert!(state.sessions.insert_with_id(id, controller).is_none(), "empty store");
    (state, id)
}

fn with_controller<T>(state: &AppState, id: u64, f: impl FnOnce(&OnlineController) -> T) -> T {
    let slot = state.sessions.get(id).expect("live session");
    let guard = slot.lock().expect("unpoisoned");
    f(&guard)
}

/// Every `(time, sensor)` charge the session's current schedule implies.
fn schedule_charges(state: &AppState, id: u64) -> Vec<(f64, usize)> {
    with_controller(state, id, |ctl| {
        let mut out = Vec::new();
        for d in ctl.series().dispatches() {
            for &i in ctl.series().sets()[d.set].sensors() {
                out.push((d.time, i));
            }
        }
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    })
}

fn apply_charges(
    charges: &[(f64, usize)],
    applied: &mut HashSet<(u64, usize)>,
    clients: &mut [SensorClient],
    limit: f64,
) {
    for &(time, i) in charges {
        if time <= limit && applied.insert((time.to_bits(), i)) {
            clients[i].recharged(time);
        }
    }
}

fn refresh_plans(state: &AppState, id: u64, clients: &mut [SensorClient]) {
    with_controller(state, id, |ctl| {
        let tau1 = ctl.tau1();
        for (i, c) in clients.iter_mut().enumerate() {
            c.plan_update(tau1, ctl.assigned_cycles()[i]);
        }
    });
}

fn plan_bytes(state: &AppState, id: u64) -> Vec<u8> {
    let req = Request::new("GET", format!("/session/{id}/plan"), Vec::new());
    let resp = session_plan(state, id, &req);
    assert_eq!(resp.status, 200);
    resp.body
}

/// Posts one event batch as a JSON body.
fn post_events_json(state: &AppState, id: u64, batch: &EventBatch) -> u16 {
    let body = serde_json::to_string(batch).expect("event batch json");
    let req = Request::new("POST", format!("/session/{id}/events"), body.into_bytes());
    session_events(state, id, &req).status
}

/// Posts one event batch as a binary PBT1 events frame.
fn post_events_binary(state: &AppState, id: u64, batch: &EventBatch) -> u16 {
    let body = wire::encode_frames(&[Frame::events(id, batch.clone())]);
    let mut req = Request::new("POST", format!("/session/{id}/events"), body);
    req.content_type = Some(wire::CONTENT_TYPE.to_string());
    session_events(state, id, &req).status
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline acceptance property: for random per-sensor drift
    /// traces, the suppressed JSON path, the suppressed binary path and
    /// the full streaming path produce byte-identical plan sequences.
    #[test]
    fn suppressed_http_paths_match_streaming_byte_for_byte(
        drifts in prop::collection::vec(0.995f64..1.03, N),
        slots in 20u32..36,
    ) {
        let (streaming, id_s) = fresh_state();
        let (via_json, id_j) = fresh_state();
        let (via_binary, id_b) = fresh_state();
        prop_assert_eq!(plan_bytes(&streaming, id_s), plan_bytes(&via_json, id_j));
        prop_assert_eq!(plan_bytes(&streaming, id_s), plan_bytes(&via_binary, id_b));

        let base: Vec<f64> = CYCLES.iter().map(|c| 1.0 / c).collect();
        // One client fleet mirrors both suppressed sessions: the two see
        // identical batches, so their controllers stay in lockstep.
        let mut clients: Vec<SensorClient> =
            base.iter().map(|&r| SensorClient::new(GAMMA, MARGIN, HORIZON, 1.0, r)).collect();
        refresh_plans(&via_binary, id_b, &mut clients);
        let mut charges = schedule_charges(&via_binary, id_b);
        let mut applied = HashSet::new();
        apply_charges(&charges, &mut applied, &mut clients, EPS);

        for slot in 1..=slots {
            let t = f64::from(slot);
            apply_charges(&charges, &mut applied, &mut clients, t - EPS);

            let mut events = Vec::new();
            let mut rates = Vec::new();
            for (i, c) in clients.iter_mut().enumerate() {
                let rate = base[i] * drifts[i].powi(slot as i32);
                rates.push(rate);
                if let Some(s) = c.observe(t, rate) {
                    events.push(ClassEvent::new(i, s.rho_hat, s.last_rate, s.level));
                }
            }

            // Streaming arm: the full per-slot batch over JSON.
            let full = TelemetryBatch {
                time: t,
                records: rates.iter().enumerate().map(|(i, &r)| TelemetryRecord::rate(i, r)).collect(),
            };
            let body = serde_json::to_string(&full).expect("batch json");
            prop_assert_eq!(session_telemetry(&streaming, id_s, body.as_bytes()).status, 200);

            // Suppressed arms: the same event batch via both encodings.
            let batch = EventBatch::new(t, events);
            let sj = post_events_json(&via_json, id_j, &batch);
            let sb = post_events_binary(&via_binary, id_b, &batch);
            prop_assert_eq!(sj, sb, "JSON and binary must agree on acceptance at slot {}", slot);
            if sj == 409 {
                // Full replan demanded: retry with the fleet-wide sync
                // batch on both paths.
                let all: Vec<ClassEvent> = clients
                    .iter_mut()
                    .enumerate()
                    .map(|(i, c)| {
                        let s = c.state();
                        if !batch.events.iter().any(|e| e.sensor == i) {
                            c.record_sync();
                        }
                        ClassEvent::new(i, s.rho_hat, s.last_rate, s.level)
                    })
                    .collect();
                let sync =
                    EventBatch { time: t, sync: true, events: all, observed: 0, sent: 0 };
                prop_assert_eq!(post_events_json(&via_json, id_j, &sync), 200);
                prop_assert_eq!(post_events_binary(&via_binary, id_b, &sync), 200);
            } else {
                prop_assert_eq!(sj, 200, "unexpected status at slot {}", slot);
            }

            // Downlink: fresh plan + revised charge schedule.
            refresh_plans(&via_binary, id_b, &mut clients);
            charges = schedule_charges(&via_binary, id_b);
            apply_charges(&charges, &mut applied, &mut clients, t + EPS);

            let want = plan_bytes(&streaming, id_s);
            prop_assert_eq!(&want, &plan_bytes(&via_json, id_j), "JSON diverged at slot {}", slot);
            prop_assert_eq!(&want, &plan_bytes(&via_binary, id_b), "binary diverged at slot {}", slot);
        }

        let observed: u64 = clients.iter().map(|c| c.observed()).sum();
        let sent: u64 = clients.iter().map(|c| c.sent()).sum();
        prop_assert!(sent <= observed);
    }
}

/// Deterministic strong-drift run: proves the HTTP property is not
/// vacuous (the 409 path and real suppression both fire) and pins the
/// suppression metrics the daemon exports.
#[test]
fn strong_drift_exercises_sync_and_metrics() {
    let (streaming, id_s) = fresh_state();
    let (via_json, id_j) = fresh_state();
    let (via_binary, id_b) = fresh_state();

    let base: Vec<f64> = CYCLES.iter().map(|c| 1.0 / c).collect();
    let mut clients: Vec<SensorClient> =
        base.iter().map(|&r| SensorClient::new(GAMMA, MARGIN, HORIZON, 1.0, r)).collect();
    refresh_plans(&via_binary, id_b, &mut clients);
    let mut charges = schedule_charges(&via_binary, id_b);
    let mut applied = HashSet::new();
    apply_charges(&charges, &mut applied, &mut clients, EPS);

    let mut syncs = 0u32;
    for slot in 1..=60u32 {
        let t = f64::from(slot);
        apply_charges(&charges, &mut applied, &mut clients, t - EPS);
        let mut events = Vec::new();
        let mut rates = Vec::new();
        for (i, c) in clients.iter_mut().enumerate() {
            // Sensors 0–2 drift 1.5%/slot; 3–4 wobble ±1%.
            let rate = if i < 3 {
                base[i] * 1.015f64.powi(slot as i32)
            } else if slot % 2 == 0 {
                base[i] * 1.01
            } else {
                base[i] * 0.99
            };
            rates.push(rate);
            if let Some(s) = c.observe(t, rate) {
                events.push(ClassEvent::new(i, s.rho_hat, s.last_rate, s.level));
            }
        }
        let full = TelemetryBatch {
            time: t,
            records: rates.iter().enumerate().map(|(i, &r)| TelemetryRecord::rate(i, r)).collect(),
        };
        let body = serde_json::to_string(&full).expect("batch json");
        assert_eq!(session_telemetry(&streaming, id_s, body.as_bytes()).status, 200);

        // Delta counters since the last accepted batch feed the metrics.
        let observed: u64 = clients.iter().map(|c| c.observed()).sum();
        let sent: u64 = clients.iter().map(|c| c.sent()).sum();
        let batch = EventBatch { observed, sent, ..EventBatch::new(t, events) };
        let sj = post_events_json(&via_json, id_j, &batch);
        assert_eq!(sj, post_events_binary(&via_binary, id_b, &batch));
        if sj == 409 {
            syncs += 1;
            let all: Vec<ClassEvent> = clients
                .iter_mut()
                .enumerate()
                .map(|(i, c)| {
                    let s = c.state();
                    if !batch.events.iter().any(|e| e.sensor == i) {
                        c.record_sync();
                    }
                    ClassEvent::new(i, s.rho_hat, s.last_rate, s.level)
                })
                .collect();
            let sync = EventBatch { time: t, sync: true, events: all, observed: 0, sent: 0 };
            assert_eq!(post_events_json(&via_json, id_j, &sync), 200);
            assert_eq!(post_events_binary(&via_binary, id_b, &sync), 200);
        } else {
            assert_eq!(sj, 200, "slot {slot}");
        }
        refresh_plans(&via_binary, id_b, &mut clients);
        charges = schedule_charges(&via_binary, id_b);
        apply_charges(&charges, &mut applied, &mut clients, t + EPS);

        let want = plan_bytes(&streaming, id_s);
        assert_eq!(want, plan_bytes(&via_json, id_j), "JSON diverged at slot {slot}");
        assert_eq!(want, plan_bytes(&via_binary, id_b), "binary diverged at slot {slot}");
    }
    assert!(syncs >= 1, "drift trace never hit the 409 sync protocol");
    let observed: u64 = clients.iter().map(|c| c.observed()).sum();
    let sent: u64 = clients.iter().map(|c| c.sent()).sum();
    assert!(sent * 2 < observed, "suppression too weak: {sent}/{observed}");

    // The suppression metrics the daemon scrapes from these ingests.
    use std::sync::atomic::Ordering::Relaxed;
    assert!(via_json.metrics.events_ingested.load(Relaxed) >= 60);
    let text = via_json.metrics.render(0, 1, &[1]);
    assert!(text.contains("perpetuum_events_ingested_total"), "{text}");
    let ratio_line = text
        .lines()
        .find(|l| l.starts_with("perpetuum_frames_suppressed_ratio"))
        .expect("suppressed-ratio gauge rendered");
    let ratio: f64 = ratio_line.split_whitespace().nth(1).expect("value").parse().expect("f64");
    assert!(ratio > 0.5, "suppressed ratio {ratio} should reflect strong suppression");
}
