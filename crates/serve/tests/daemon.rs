//! End-to-end tests against a real daemon: every request here crosses a
//! TCP socket and the full accept → queue → worker → router path.

use perpetuum_online::{TelemetryBatch, TelemetryRecord};
use perpetuum_serve::{start, wire, FsyncPolicy, ServerConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::Ordering::Relaxed;
use std::time::{Duration, Instant};

/// A parsed wire response: status code, headers (lowercased names), body.
struct Wire {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Wire {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Sends raw bytes, reads to EOF (every response closes the connection),
/// and splits the head from the body.
fn raw_request(addr: SocketAddr, raw: &[u8]) -> Wire {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("write");
    stream.shutdown(Shutdown::Write).expect("half-close");
    read_response(&mut stream)
}

fn read_response(stream: &mut TcpStream) -> Wire {
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable status line {status_line:?}"));
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Wire { status, headers, body: body.to_string() }
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Wire {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_request(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> Wire {
    raw_request(addr, format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes())
}

/// POSTs a binary body (`Content-Type`/`Accept:` the perpetuum wire
/// type) and returns `(status, raw body bytes)` — binary responses are
/// not UTF-8, so the text helpers don't apply.
fn post_binary(addr: SocketAddr, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-type: {ct}\r\naccept: {ct}\r\ncontent-length: {}\r\n\r\n",
        body.len(),
        ct = wire::CONTENT_TYPE,
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("head/body split");
    let head = String::from_utf8_lossy(&raw[..split]);
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, raw[split + 4..].to_vec())
}

fn delete(addr: SocketAddr, path: &str) -> Wire {
    raw_request(addr, format!("DELETE {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes())
}

/// Pulls a top-level numeric field out of a JSON response body.
fn num_field(body: &str, key: &str) -> f64 {
    let v = serde_json::parse_value(body).expect("valid JSON body");
    match v.get(key) {
        Some(serde_json::Value::Num(n)) => *n,
        other => panic!("no numeric `{key}` in {body}: {other:?}"),
    }
}

/// Pulls the `assigned_cycles` array out of a `GET /session/{id}/plan`
/// body.
fn assigned_cycles(body: &str) -> Vec<f64> {
    let v = serde_json::parse_value(body).expect("valid JSON body");
    match v.get("assigned_cycles") {
        Some(serde_json::Value::Arr(items)) => items
            .iter()
            .map(|x| match x {
                serde_json::Value::Num(n) => *n,
                other => panic!("non-numeric cycle {other:?}"),
            })
            .collect(),
        other => panic!("no assigned_cycles in {body}: {other:?}"),
    }
}

fn scenario_body(seed: u64) -> String {
    format!(
        r#"{{"scenario": {{
            "field_size": 500.0, "n": 15, "q": 2,
            "tau_min": 1.0, "tau_max": 20.0,
            "dist": {{ "Linear": {{ "sigma": 2.0 }} }},
            "horizon": 60.0, "slot": 10.0,
            "variable": false, "deployment": "Uniform"
        }}, "seed": {seed}}}"#
    )
}

/// Spin until `probe` is true or the deadline passes.
fn wait_for(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn plan_cache_round_trip_is_byte_identical_over_the_wire() {
    let handle = start(ServerConfig::default()).expect("start");
    let addr = handle.addr;
    let body = scenario_body(11);

    let first = post(addr, "/plan", &body);
    assert_eq!(first.status, 200, "{}", first.body);
    assert!(first.body.starts_with("{\"cache_hit\":false,"), "{}", first.body);

    // Same scenario, different key order and whitespace: still a hit.
    let reordered = r#"{ "seed": 11, "scenario": {"deployment":"Uniform","variable":false,"slot":10.0,"horizon":60.0,"dist":{"Linear":{"sigma":2.0}},"tau_max":20.0,"tau_min":1.0,"q":2,"n":15,"field_size":500.0} }"#;
    let second = post(addr, "/plan", reordered);
    assert_eq!(second.status, 200, "{}", second.body);
    assert!(second.body.starts_with("{\"cache_hit\":true,"), "{}", second.body);

    let result_of = |w: &Wire| w.body.split_once("\"result\":").map(|(_, r)| r.to_string());
    assert_eq!(result_of(&first), result_of(&second), "byte-identical schedule");

    let metrics = handle.state();
    assert_eq!(metrics.metrics.cache_hits.load(Relaxed), 1);
    assert_eq!(metrics.metrics.cache_misses.load(Relaxed), 1);
    handle.shutdown();
}

#[test]
fn simulate_with_faults_over_the_wire() {
    let handle = start(ServerConfig::default()).expect("start");
    let body = scenario_body(3).replace(
        "\"seed\": 3",
        r#""seed": 3, "algo": "Mtd", "faults": {"chargers": {"mtbf": 10.0, "mttr": 20.0}, "seed": 5}"#,
    );
    let resp = post(handle.addr, "/simulate", &body);
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"algo\":\"Mtd\""), "{}", resp.body);
    assert!(resp.body.contains("\"breakdowns\":"), "{}", resp.body);
    handle.shutdown();
}

#[test]
fn healthz_metrics_and_routing_errors() {
    let handle = start(ServerConfig::default()).expect("start");
    let addr = handle.addr;

    assert_eq!(get(addr, "/healthz").status, 200);
    let _ = post(addr, "/plan", &scenario_body(1));
    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    for family in [
        "perpetuum_requests_total{endpoint=\"plan\"} 1",
        "perpetuum_cache_misses_total 1",
        "perpetuum_request_seconds_bucket",
        "perpetuum_responses_total{class=\"2xx\"}",
        "perpetuum_queue_depth 0",
    ] {
        assert!(metrics.body.contains(family), "missing {family:?}:\n{}", metrics.body);
    }

    assert_eq!(get(addr, "/nope").status, 404);
    assert_eq!(get(addr, "/plan").status, 405);
    assert_eq!(post(addr, "/healthz", "").status, 405);
    handle.shutdown();
}

#[test]
fn malformed_wire_inputs_get_typed_errors_never_panics() {
    let handle = start(ServerConfig { max_body: 1024, ..ServerConfig::default() }).expect("start");
    let addr = handle.addr;

    // Invalid JSON body.
    let resp = post(addr, "/plan", "{not json");
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("\"kind\":\"bad_json\""), "{}", resp.body);

    // Valid JSON, invalid scenario.
    let resp = post(addr, "/plan", &scenario_body(1).replace("\"q\": 2", "\"q\": 0"));
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("\"kind\":\"invalid_scenario\""), "{}", resp.body);

    // Truncated body: Content-Length promises more than is sent.
    let resp = raw_request(
        addr,
        b"POST /plan HTTP/1.1\r\nhost: t\r\ncontent-length: 500\r\n\r\n{\"scenario\"",
    );
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("truncated"), "{}", resp.body);

    // Unparsable Content-Length.
    let resp =
        raw_request(addr, b"POST /plan HTTP/1.1\r\nhost: t\r\ncontent-length: banana\r\n\r\n");
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("Content-Length"), "{}", resp.body);

    // Declared body over the cap: 413 with Retry-After, body never read.
    let resp =
        raw_request(addr, b"POST /plan HTTP/1.1\r\nhost: t\r\ncontent-length: 999999\r\n\r\n");
    assert_eq!(resp.status, 413);
    assert!(resp.body.contains("\"kind\":\"payload_too_large\""), "{}", resp.body);
    assert_eq!(resp.header("retry-after"), Some("1"));

    // The daemon is still healthy after all of that.
    assert_eq!(get(addr, "/healthz").status, 200);
    handle.shutdown();
}

#[test]
fn full_queue_sheds_load_with_503_and_retry_after() {
    // One worker, one queue slot: occupy both, then overflow.
    let handle = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr;
    let m = handle.state_arc();

    // c1 occupies the worker: it connects but sends nothing, so the
    // worker blocks in read_request until the 2s socket timeout.
    let c1 = TcpStream::connect(addr).expect("c1");
    wait_for("worker to pick up c1", || m.metrics.in_flight.load(Relaxed) == 1);

    // c2 fills the single queue slot.
    let c2 = TcpStream::connect(addr).expect("c2");
    wait_for("c2 to be queued", || m.metrics.queue_depth.load(Relaxed) == 1);

    // c3 overflows: the accept thread itself must shed it.
    let mut c3 = TcpStream::connect(addr).expect("c3");
    let resp = read_response(&mut c3);
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert!(resp.body.contains("\"kind\":\"overloaded\""), "{}", resp.body);
    assert!(m.metrics.queue_rejected.load(Relaxed) >= 1);

    drop(c1);
    drop(c2);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let handle = start(ServerConfig {
        workers: 1,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr;
    let admin = handle.admin_addr;
    let m = handle.state_arc();

    // Open a request and send only half of it, so it is mid-flight when
    // shutdown arrives.
    let body = scenario_body(21);
    let raw =
        format!("POST /plan HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}", body.len());
    let (half, rest) = raw.split_at(raw.len() / 2);
    let mut c1 = TcpStream::connect(addr).expect("c1");
    c1.write_all(half.as_bytes()).expect("first half");
    wait_for("worker to pick up c1", || m.metrics.in_flight.load(Relaxed) == 1);

    // Trigger shutdown through the loopback admin endpoint.
    let resp = raw_request(admin, b"POST /shutdown HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("shutting down"), "{}", resp.body);

    // The in-flight request must still complete — full response, no reset.
    c1.write_all(rest.as_bytes()).expect("second half");
    c1.shutdown(Shutdown::Write).expect("half-close");
    let resp = read_response(&mut c1);
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"service_cost\":"), "{}", resp.body);

    // wait() returns because the admin endpoint latched the signal; new
    // connections are refused after the drain.
    handle.wait();
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err());
}

#[test]
fn session_lifecycle_over_the_wire() {
    let handle = start(ServerConfig::default()).expect("start");
    let addr = handle.addr;

    // Create: scenario in, session id + initial plan summary out.
    let created = post(addr, "/session", &scenario_body(13));
    assert_eq!(created.status, 200, "{}", created.body);
    let id = num_field(&created.body, "session") as u64;
    assert!(num_field(&created.body, "tau1") > 0.0, "{}", created.body);

    // A telemetry batch that changes nothing is planner-free.
    let r = post(addr, &format!("/session/{id}/telemetry"), r#"{"time": 0.5}"#);
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"replan\":\"none\""), "{}", r.body);
    assert_eq!(num_field(&r.body, "planner_calls"), 0.0, "{}", r.body);

    // The plan endpoint serves the live schedule.
    let plan = get(addr, &format!("/session/{id}/plan"));
    assert_eq!(plan.status, 200, "{}", plan.body);
    let assigned = assigned_cycles(&plan.body);
    assert!(!assigned.is_empty());

    // Pick a slow sensor whose class drop keeps the top class inhabited,
    // then report a rate that lands it in class 0 without undercutting τ₁
    // (capacities are 1.0 in realised scenarios): the replan must resolve
    // on the incremental forest-splice path.
    let tau1 = num_field(&created.body, "tau1");
    let class_of = |tau: f64| (tau / tau1).log2().round() as u32;
    let top = assigned.iter().map(|&a| class_of(a)).max().expect("classes");
    let top_count = assigned.iter().filter(|&&a| class_of(a) == top).count();
    let migrant = assigned
        .iter()
        .position(|&a| class_of(a) >= 1 && (class_of(a) < top || top_count > 1))
        .expect("a sensor that can drop a class");
    let body = format!(
        r#"{{"time": 1.0, "records": [{{"sensor": {migrant}, "rate": {}}}]}}"#,
        1.0 / (1.5 * tau1)
    );
    let r = post(addr, &format!("/session/{id}/telemetry"), &body);
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"replan\":\"incremental\""), "{}", r.body);

    // The scrape sees the live session, the session endpoint family, and
    // the per-path replan counters/latency histograms.
    let metrics = get(addr, "/metrics");
    for family in [
        "perpetuum_sessions 1",
        "perpetuum_session_evictions_total 0",
        "perpetuum_cache_evictions_total 0",
        "perpetuum_requests_total{endpoint=\"session\"}",
        "perpetuum_session_replans_total{kind=\"none\"} 1",
        "perpetuum_session_replans_total{kind=\"incremental\"} 1",
        "perpetuum_session_replans_total{kind=\"full\"} 0",
        "perpetuum_planner_seconds_count{path=\"incremental\"} 1",
        "perpetuum_planner_seconds_count{path=\"full\"} 0",
        "perpetuum_planner_seconds_bucket{path=\"incremental\",le=\"+Inf\"} 1",
    ] {
        assert!(metrics.body.contains(family), "missing {family:?}:\n{}", metrics.body);
    }

    // Delete, then every session route 404s and the gauge drops to zero.
    assert_eq!(delete(addr, &format!("/session/{id}")).status, 200);
    assert_eq!(get(addr, &format!("/session/{id}/plan")).status, 404);
    assert_eq!(delete(addr, &format!("/session/{id}")).status, 404);
    assert!(get(addr, "/metrics").body.contains("perpetuum_sessions 0"));
    handle.shutdown();
}

#[test]
fn suppressed_events_over_the_wire_update_suppression_metrics() {
    let handle = start(ServerConfig::default()).expect("start");
    let addr = handle.addr;
    let created = post(addr, "/session", &scenario_body(21));
    assert_eq!(created.status, 200, "{}", created.body);
    let id = num_field(&created.body, "session") as u64;
    let tau1 = num_field(&created.body, "tau1");
    let assigned = assigned_cycles(&get(addr, &format!("/session/{id}/plan")).body);

    // An empty events batch is a pure clock tick carrying suppression
    // deltas: 10 client observations, 1 frame actually sent.
    let r = post(
        addr,
        &format!("/session/{id}/events"),
        r#"{"time": 0.5, "events": [], "observed": 10, "sent": 1}"#,
    );
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"replan\":\"none\""), "{}", r.body);

    // An in-band event for sensor 0 (τ̂ inside [assigned, 2·assigned))
    // is adopted without a replan.
    let in_band = 1.0 / (1.5 * assigned[0]);
    let r = post(
        addr,
        &format!("/session/{id}/events"),
        &format!(
            r#"{{"time": 1.0, "events": [{{"sensor": 0, "rho_hat": {in_band}, "last_rate": {in_band}, "level": 0.9}}], "observed": 5, "sent": 1}}"#
        ),
    );
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(num_field(&r.body, "planner_calls"), 0.0, "{}", r.body);

    // A rate fast enough to undercut τ₁ demands a full replan: the
    // non-sync batch is refused with 409 and mutates nothing...
    let fast = 2.0 / tau1;
    let body = format!(
        r#"{{"time": 2.0, "events": [{{"sensor": 0, "rho_hat": {fast}, "last_rate": {fast}, "level": 0.5}}]}}"#
    );
    let r = post(addr, &format!("/session/{id}/events"), &body);
    assert_eq!(r.status, 409, "{}", r.body);
    assert!(r.body.contains("sync_required"), "{}", r.body);

    // ...and the sync retry carrying every sensor's state is accepted.
    let events: Vec<String> = assigned
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let rho = if i == 0 { fast } else { 1.0 / (1.5 * a) };
            format!(r#"{{"sensor": {i}, "rho_hat": {rho}, "last_rate": {rho}, "level": 1.0}}"#)
        })
        .collect();
    let sync = format!(r#"{{"time": 2.0, "sync": true, "events": [{}]}}"#, events.join(","));
    let r = post(addr, &format!("/session/{id}/events"), &sync);
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"replan\":\"full\""), "{}", r.body);

    // The scrape shows the accepted batches (the 409 is not counted) and
    // the suppression ratio 1 - 2/15 from the delta counters.
    let metrics = get(addr, "/metrics");
    for family in [
        "perpetuum_events_ingested_total 3",
        "perpetuum_client_frames_observed_total 15",
        "perpetuum_client_frames_sent_total 2",
        "perpetuum_frames_suppressed_ratio 0.8666666666666667",
    ] {
        assert!(metrics.body.contains(family), "missing {family:?}:\n{}", metrics.body);
    }
    handle.shutdown();
}

#[test]
fn session_eviction_shows_up_in_the_scrape() {
    // One shard: with capacity split across shards, a single-slot store
    // needs a single shard for exact LRU semantics.
    let handle =
        start(ServerConfig { session_capacity: 1, session_shards: 1, ..ServerConfig::default() })
            .expect("start");
    let addr = handle.addr;

    let first = post(addr, "/session", &scenario_body(1));
    assert_eq!(first.status, 200, "{}", first.body);
    let first_id = num_field(&first.body, "session") as u64;
    let second = post(addr, "/session", &scenario_body(2));
    assert_eq!(second.status, 200, "{}", second.body);

    // The store held one slot: creating the second evicted the first.
    assert_eq!(get(addr, &format!("/session/{first_id}/plan")).status, 404);
    let metrics = get(addr, "/metrics");
    assert!(metrics.body.contains("perpetuum_sessions 1"), "{}", metrics.body);
    assert!(metrics.body.contains("perpetuum_session_evictions_total 1"), "{}", metrics.body);
    handle.shutdown();
}

#[test]
fn concurrent_telemetry_from_four_clients_loses_no_updates() {
    let handle = start(ServerConfig::default()).expect("start");
    let addr = handle.addr;

    let created = post(addr, "/session", &scenario_body(17));
    assert_eq!(created.status, 200, "{}", created.body);
    let id = num_field(&created.body, "session") as u64;
    let before = assigned_cycles(&get(addr, &format!("/session/{id}/plan")).body);

    // Four clients, one sensor each, hammer the same session with rate
    // reports 8× the planned consumption — every sensor's rounding class
    // must drop. All batches carry the same timestamp (monotonicity
    // accepts equal times), so interleaving order is irrelevant.
    let threads: Vec<_> = (0..4)
        .map(|sensor| {
            let new_rate = 8.0 / before[sensor];
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let body = format!(
                        r#"{{"time": 1.0, "records": [{{"sensor": {sensor}, "rate": {new_rate}}}]}}"#
                    );
                    let r = post(addr, &format!("/session/{id}/telemetry"), &body);
                    assert_eq!(r.status, 200, "{}", r.body);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread must not panic");
    }

    // Every client's update took effect: all four sensors were re-assigned
    // strictly tighter cycles, and nothing was served a 5xx.
    let after = assigned_cycles(&get(addr, &format!("/session/{id}/plan")).body);
    for sensor in 0..4 {
        assert!(
            after[sensor] < before[sensor],
            "sensor {sensor}: {} -> {} (update lost?)",
            before[sensor],
            after[sensor]
        );
    }
    let m = handle.state();
    assert_eq!(m.metrics.responses[2].load(Relaxed), 0, "no 5xx under concurrent ingest");
    assert!(m.metrics.session.requests.load(Relaxed) >= 21);
    handle.shutdown();
}

#[test]
fn binary_batch_ingest_over_the_wire() {
    let handle =
        start(ServerConfig { session_shards: 4, session_threads: 2, ..ServerConfig::default() })
            .expect("start");
    let addr = handle.addr;

    // Three live sessions created over the JSON path.
    let ids: Vec<u64> = (0..3)
        .map(|i| {
            let created = post(addr, "/session", &scenario_body(30 + i));
            assert_eq!(created.status, 200, "{}", created.body);
            num_field(&created.body, "session") as u64
        })
        .collect();

    // One binary batch carrying frames for all three sessions plus one
    // unknown session — posted with binary content-type AND accept.
    let frames = vec![
        wire::Frame::telemetry(
            ids[0],
            TelemetryBatch { time: 1.0, records: vec![TelemetryRecord::rate(0, 0.05)] },
        ),
        wire::Frame::telemetry(ids[1], TelemetryBatch::tick(1.0)),
        wire::Frame::telemetry(999_999, TelemetryBatch::tick(1.0)),
        wire::Frame::telemetry(ids[2], TelemetryBatch::tick(2.0)),
    ];
    let (status, body) = post_binary(addr, "/telemetry/batch", &wire::encode_frames(&frames));
    assert_eq!(status, 200);
    let outcomes = wire::decode_reports(&body).expect("binary report batch");
    assert_eq!(outcomes.len(), 4);
    assert_eq!(outcomes[0].session, ids[0]);
    assert!(outcomes[0].result.is_ok(), "{:?}", outcomes[0].result);
    assert!(outcomes[1].result.is_ok());
    assert!(outcomes[2].result.is_err(), "unknown session reported in place");
    assert!(outcomes[3].result.is_ok());

    // The scrape carries the batch endpoint family, frame counters, and
    // per-shard session gauges summing to the live session count.
    let metrics = get(addr, "/metrics");
    for family in [
        "perpetuum_requests_total{endpoint=\"telemetry_batch\"} 1",
        "perpetuum_batch_frames_total 4",
        "perpetuum_batch_frame_errors_total 1",
        "perpetuum_session_shard_sessions{shard=\"0\"}",
        "perpetuum_session_shard_sessions{shard=\"3\"}",
        "perpetuum_sessions 3",
    ] {
        assert!(metrics.body.contains(family), "missing {family:?}:\n{}", metrics.body);
    }

    // A malformed binary body is a typed 400, not a hang or a panic.
    let (status, body) = post_binary(addr, "/telemetry/batch", b"PBT1\x01");
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("bad_wire"));
    handle.shutdown();
}

#[test]
fn oversized_real_body_reads_a_clean_413_not_a_reset() {
    // The client sends a 256 KiB body against a 1 KiB cap. The daemon
    // must drain it before responding — otherwise the client's writes
    // die on a reset connection and it never sees the 413.
    let handle = start(ServerConfig { max_body: 1024, ..ServerConfig::default() }).expect("start");
    let big = "x".repeat(256 * 1024);
    let resp = post(handle.addr, "/plan", &big);
    assert_eq!(resp.status, 413, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"payload_too_large\""), "{}", resp.body);
    assert!(resp.body.contains("262144"), "declared size named: {}", resp.body);
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert_eq!(get(handle.addr, "/healthz").status, 200, "daemon healthy after the drain");
    handle.shutdown();
}

#[test]
fn trickling_clients_hit_the_request_deadline_with_408() {
    // The deadline is enforced *inside* the server's reads: a partial
    // head followed by silence gets its 408 when the 100 ms deadline
    // fires, not after the 10 s per-read socket timeout. (Writing more
    // bytes past the deadline would only race the server's close — the
    // byte-drip variant is pinned by the `http` unit tests.)
    let handle = start(ServerConfig {
        request_deadline: Duration::from_millis(100),
        ..ServerConfig::default()
    })
    .expect("start");
    let started = std::time::Instant::now();
    let mut c = TcpStream::connect(handle.addr).expect("connect");
    c.write_all(b"GET /healthz HTTP/1.1\r\n").expect("partial head");
    let resp = read_response(&mut c);
    assert_eq!(resp.status, 408, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"request_timeout\""), "{}", resp.body);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline must beat the per-read socket timeout, took {:?}",
        started.elapsed()
    );
    handle.shutdown();
}

#[test]
fn journaled_daemon_exports_journal_metrics_over_the_wire() {
    let dir = std::env::temp_dir().join(format!("perpetuum-daemon-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(ServerConfig {
        data_dir: Some(dir.clone()),
        fsync_policy: FsyncPolicy::Always,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr;

    let created = post(addr, "/session", &scenario_body(5));
    assert_eq!(created.status, 200, "{}", created.body);
    let id = num_field(&created.body, "session") as u64;
    let r = post(addr, &format!("/session/{id}/telemetry"), r#"{"time": 0.5}"#);
    assert_eq!(r.status, 200, "{}", r.body);

    // The scrape exposes the full journal/recovery family; a fresh
    // journaled daemon has written and fsynced but recovered nothing.
    let metrics = get(addr, "/metrics");
    for family in [
        "perpetuum_journal_bytes_written_total",
        "perpetuum_journal_fsyncs_total",
        "perpetuum_sessions_quarantined_total 0",
        "perpetuum_sessions_recovered_total 0",
        "perpetuum_journal_replayed_wal_records_total 0",
        "perpetuum_recovery_seconds_bucket{phase=\"startup\"",
    ] {
        assert!(metrics.body.contains(family), "missing {family:?}:\n{}", metrics.body);
    }
    let m = handle.state();
    assert!(m.metrics.journal_bytes_written.load(Relaxed) > 0, "create + frames journaled");
    assert!(m.metrics.journal_fsyncs.load(Relaxed) >= 2, "fsync-always fsyncs each append");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admin_listener_is_loopback_only_and_404s_unknown_routes() {
    let handle = start(ServerConfig::default()).expect("start");
    assert!(handle.admin_addr.ip().is_loopback());
    let resp = raw_request(handle.admin_addr, b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(resp.status, 200);
    let resp = raw_request(handle.admin_addr, b"GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(resp.status, 404);
    handle.shutdown();
}
