//! Property: batch ingest is *semantically invisible*. For any frame
//! stream, posting it as one `/telemetry/batch` request (JSON or
//! binary, single- or multi-threaded apply) leaves every session's plan
//! byte-identical to posting the same frames one
//! `/session/{id}/telemetry` request at a time — including streams with
//! rejected frames (unknown sessions, non-monotone times), which fail
//! in place without perturbing anything else.

use perpetuum_online::{TelemetryBatch, TelemetryRecord};
use perpetuum_serve::http::Request;
use perpetuum_serve::wire::{self, Frame};
use perpetuum_serve::AppState;
use proptest::prelude::*;

/// Sensor count of the test scenario below.
const N: usize = 12;
/// Live sessions per state; frame streams may also address the unknown
/// session id 999 to exercise in-place rejection.
const SESSIONS: usize = 3;

fn scenario_body(seed: u64) -> String {
    format!(
        r#"{{"scenario": {{
            "field_size": 500.0, "n": {N}, "q": 2,
            "tau_min": 1.0, "tau_max": 20.0,
            "dist": {{ "Linear": {{ "sigma": 2.0 }} }},
            "horizon": 60.0, "slot": 10.0,
            "variable": false, "deployment": "Uniform"
        }}, "seed": {seed}}}"#
    )
}

/// A fresh state holding [`SESSIONS`] deterministic sessions; returns
/// the session ids (identical across identically-built states).
fn fresh_state(shards: usize, threads: usize) -> (AppState, Vec<u64>) {
    let state = AppState::new(4).with_sessions(16, shards).with_batch_threads(threads);
    let ids = (0..SESSIONS as u64)
        .map(|i| {
            let resp =
                perpetuum_serve::handlers::session_create(&state, scenario_body(50 + i).as_bytes());
            assert_eq!(resp.status, 200);
            let body = String::from_utf8(resp.body).expect("utf8");
            let v = serde_json::parse_value(&body).expect("json");
            match v.get("session") {
                Some(serde_json::Value::Num(n)) => *n as u64,
                other => panic!("no session id: {other:?}"),
            }
        })
        .collect();
    (state, ids)
}

/// Arbitrary frame streams: mostly-forward-moving times (occasional
/// equal or backwards steps exercise the monotonicity rejection),
/// random sensors, and an unknown-session frame mixed in now and then.
fn stream_strategy() -> impl Strategy<Value = Vec<(usize, TelemetryBatch)>> {
    let record = (0..N, 0.02f64..0.6, 0.0f64..1.0, 0u8..3).prop_map(
        |(sensor, rate, level, kind)| match kind {
            0 => TelemetryRecord::rate(sensor, rate),
            1 => TelemetryRecord::level(sensor, level),
            _ => TelemetryRecord::full(sensor, rate, level),
        },
    );
    let frame = (0..SESSIONS + 1, -0.5f64..4.0, prop::collection::vec(record, 0..4));
    prop::collection::vec(frame, 1..16).prop_map(|raw| {
        let mut t = 0.0;
        raw.into_iter()
            .map(|(target, dt, records)| {
                t = (t + dt).max(0.0);
                (target, TelemetryBatch { time: t, records })
            })
            .collect()
    })
}

/// Resolves stream targets against the state's session ids (the
/// out-of-range target becomes the unknown session 999).
fn to_addressed(stream: &[(usize, TelemetryBatch)], ids: &[u64]) -> Vec<(u64, TelemetryBatch)> {
    stream
        .iter()
        .map(|(target, batch)| (ids.get(*target).copied().unwrap_or(999), batch.clone()))
        .collect()
}

fn to_frames(addressed: &[(u64, TelemetryBatch)]) -> Vec<Frame> {
    addressed.iter().map(|(id, batch)| Frame::telemetry(*id, batch.clone())).collect()
}

/// The JSON request body equivalent of a binary frame batch.
fn json_body(addressed: &[(u64, TelemetryBatch)]) -> String {
    let parts: Vec<String> = addressed
        .iter()
        .map(|(id, batch)| {
            let batch = serde_json::to_string(batch).expect("batch json");
            format!("{{\"session\":{id},{}", &batch[1..])
        })
        .collect();
    format!("{{\"frames\":[{}]}}", parts.join(","))
}

fn batch_request(body: Vec<u8>, binary: bool) -> Request {
    let mut req = Request::new("POST", "/telemetry/batch", body);
    if binary {
        req.content_type = Some(wire::CONTENT_TYPE.to_string());
    }
    req
}

/// Every session's plan, rendered to the JSON the wire would carry.
fn plans(state: &AppState, ids: &[u64]) -> Vec<Vec<u8>> {
    ids.iter()
        .map(|&id| {
            let req = Request::new("GET", format!("/session/{id}/plan"), Vec::new());
            perpetuum_serve::handlers::session_plan(state, id, &req).body
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_ingest_matches_sequential_posting(stream in stream_strategy()) {
        let (batched, b_ids) = fresh_state(4, 4);
        let (sequential, s_ids) = fresh_state(4, 4);
        prop_assert_eq!(&b_ids, &s_ids, "session ids must be deterministic");

        let addressed = to_addressed(&stream, &b_ids);
        let frames = to_frames(&addressed);

        // One batch request vs one request per frame.
        let resp = perpetuum_serve::handlers::telemetry_batch(
            &batched,
            &batch_request(wire::encode_frames(&frames), true),
        );
        prop_assert_eq!(resp.status, 200);
        for (id, batch) in &addressed {
            let body = serde_json::to_string(batch).expect("batch json");
            let r = perpetuum_serve::handlers::session_telemetry(
                &sequential, *id, body.as_bytes(),
            );
            // Rejections (404 unknown session / 400 time travel) are part
            // of the stream; both paths must reject the same frames.
            prop_assert!(r.status == 200 || r.status == 400 || r.status == 404);
        }

        prop_assert_eq!(
            plans(&batched, &b_ids),
            plans(&sequential, &s_ids),
            "batched vs sequential plans diverge"
        );
    }

    #[test]
    fn binary_and_json_batches_are_interchangeable(stream in stream_strategy()) {
        let (via_binary, bin_ids) = fresh_state(2, 1);
        let (via_json, json_ids) = fresh_state(2, 1);
        prop_assert_eq!(&bin_ids, &json_ids);

        let addressed = to_addressed(&stream, &bin_ids);
        let r1 = perpetuum_serve::handlers::telemetry_batch(
            &via_binary,
            &batch_request(wire::encode_frames(&to_frames(&addressed)), true),
        );
        let r2 = perpetuum_serve::handlers::telemetry_batch(
            &via_json,
            &batch_request(json_body(&addressed).into_bytes(), false),
        );
        prop_assert_eq!(r1.status, 200);
        prop_assert_eq!(r2.status, 200);

        prop_assert_eq!(
            plans(&via_binary, &bin_ids),
            plans(&via_json, &json_ids),
            "binary vs JSON ingest diverges"
        );
    }

    /// The parallel shard-group apply cannot change outcomes relative to
    /// a single-threaded apply of the same batch.
    #[test]
    fn parallel_apply_matches_single_threaded(stream in stream_strategy()) {
        let (parallel, p_ids) = fresh_state(8, 8);
        let (single, s_ids) = fresh_state(8, 1);
        prop_assert_eq!(&p_ids, &s_ids);

        let body = wire::encode_frames(&to_frames(&to_addressed(&stream, &p_ids)));
        let rp = perpetuum_serve::handlers::telemetry_batch(
            &parallel, &batch_request(body.clone(), true));
        let rs = perpetuum_serve::handlers::telemetry_batch(
            &single, &batch_request(body, true));
        prop_assert_eq!(rp.status, 200);
        prop_assert_eq!(rs.status, 200);
        // Same per-frame outcome bytes (request order is preserved by
        // both), same resulting plans.
        prop_assert_eq!(
            String::from_utf8(rp.body).expect("json"),
            String::from_utf8(rs.body).expect("json")
        );
        prop_assert_eq!(plans(&parallel, &p_ids), plans(&single, &s_ids));
    }
}
