//! Property tests for the binary wire codec: encode→decode is the
//! identity on arbitrary messages, and every mutilation of a valid
//! buffer — truncation at any byte, trailing garbage — is rejected with
//! a typed error, never a panic or a silent misparse.

use perpetuum_online::{
    ClassEvent, EventBatch, IngestReport, ReplanKind, TelemetryBatch, TelemetryRecord,
};
use perpetuum_serve::wire::{
    decode_frames, decode_reports, encode_frames, encode_reports, Frame, FrameOutcome, PlanWire,
    WireError,
};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = TelemetryRecord> {
    // `kind` bits select which optional measurements are present, so all
    // four flag combinations (none/rate/level/both) are exercised.
    (0usize..4096, 0u8..4, 0.0f64..10.0, 0.0f64..1.0).prop_map(|(sensor, kind, rate, level)| {
        TelemetryRecord {
            sensor,
            rate: (kind & 1 != 0).then_some(rate),
            level: (kind & 2 != 0).then_some(level),
        }
    })
}

fn event_strategy() -> impl Strategy<Value = ClassEvent> {
    (0usize..4096, 0.0f64..10.0, 0.0f64..10.0, 0.0f64..1.0).prop_map(
        |(sensor, rho_hat, last_rate, level)| ClassEvent { sensor, rho_hat, last_rate, level },
    )
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    // `kind` selects the payload: 0 → telemetry, 1 → events, 2 → sync
    // events, so both wire tags (and both sync bytes) are exercised.
    (
        (0u64..=u64::MAX, 0.0f64..1e6, 0u8..3),
        prop::collection::vec(record_strategy(), 0..8),
        prop::collection::vec(event_strategy(), 0..8),
        (0u64..1 << 40, 0u64..1 << 40),
    )
        .prop_map(|((session, time, kind), records, events, (observed, sent))| match kind {
            0 => Frame::telemetry(session, TelemetryBatch { time, records }),
            k => Frame::events(session, EventBatch { time, sync: k == 2, events, observed, sent }),
        })
}

fn frames_strategy() -> impl Strategy<Value = Vec<Frame>> {
    prop::collection::vec(frame_strategy(), 0..12)
}

fn report_strategy() -> impl Strategy<Value = FrameOutcome> {
    let text = prop::collection::vec(32u8..127, 0..60)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII"));
    (
        (0u64..=u64::MAX, 0u8..2, text),
        (0u64..1 << 40, 0.0f64..1e6, 0u8..3),
        (0usize..100, 0usize..100, 0usize..100),
    )
        .prop_map(
            |(
                (session, ok, text),
                (revision, time, replan),
                (class_changes, emergency_sensors, planner_calls),
            )| {
                let result = if ok == 1 {
                    Ok(IngestReport {
                        revision,
                        time,
                        replan: match replan {
                            0 => ReplanKind::None,
                            1 => ReplanKind::Incremental,
                            _ => ReplanKind::Full,
                        },
                        class_changes,
                        emergency_sensors,
                        planner_calls,
                    })
                } else {
                    Err(text)
                };
                FrameOutcome { session, result }
            },
        )
}

fn plan_strategy() -> impl Strategy<Value = PlanWire> {
    (
        (0u64..=u64::MAX, 0.0f64..1e6, 0.0f64..1e6, 0.01f64..1e3),
        (0.0f64..1e9, 0u64..1000),
        prop::collection::vec(0.01f64..1e3, 0..32),
        prop::collection::vec((0.0f64..1e6, 0u32..64), 0..64),
    )
        .prop_map(
            |((revision, now, horizon, tau1), (service_cost, executed), assigned, dispatches)| {
                PlanWire {
                    revision,
                    now,
                    horizon,
                    tau1,
                    service_cost,
                    executed,
                    assigned,
                    dispatches,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_batches_round_trip(frames in frames_strategy()) {
        let bytes = encode_frames(&frames);
        prop_assert_eq!(decode_frames(&bytes).expect("decode"), frames);
    }

    #[test]
    fn truncated_frame_batches_are_always_rejected(frames in frames_strategy()) {
        let bytes = encode_frames(&frames);
        for cut in 0..bytes.len() {
            let err = decode_frames(&bytes[..cut]).expect_err("truncated buffer must fail");
            prop_assert!(
                matches!(err, WireError::Truncated { .. } | WireError::BadCount { .. }),
                "cut {}: unexpected error {:?}", cut, err
            );
        }
    }

    #[test]
    fn trailing_garbage_is_always_rejected(frames in frames_strategy(), extra in 1usize..16) {
        let mut bytes = encode_frames(&frames);
        bytes.extend(std::iter::repeat_n(0x5A, extra));
        prop_assert_eq!(decode_frames(&bytes), Err(WireError::Trailing { extra }));
    }

    #[test]
    fn report_batches_round_trip(outcomes in prop::collection::vec(report_strategy(), 0..12)) {
        let bytes = encode_reports(&outcomes);
        prop_assert_eq!(decode_reports(&bytes).expect("decode"), outcomes.clone());
        for cut in 0..bytes.len() {
            prop_assert!(decode_reports(&bytes[..cut]).is_err(), "cut {} must fail", cut);
        }
    }

    #[test]
    fn plan_summaries_round_trip(plan in plan_strategy()) {
        let bytes = plan.encode();
        prop_assert_eq!(PlanWire::decode(&bytes).expect("decode"), plan.clone());
        for cut in 0..bytes.len() {
            prop_assert!(PlanWire::decode(&bytes[..cut]).is_err(), "cut {} must fail", cut);
        }
    }
}
