//! Crash-recovery property tests: for arbitrary session lifecycles and
//! telemetry streams, snapshot + WAL replay reconstructs the session
//! store **byte-identically** — same ids, same plan bytes, same future
//! ingest reports — and a journal truncated at *every byte offset* (what
//! a `kill -9` mid-append leaves behind) recovers exactly the state of
//! the longest complete-record prefix, never panicking and never
//! resurrecting an ended session.

use perpetuum_online::{ControllerSeed, OnlineConfig, OnlineController, TelemetryBatch};
use perpetuum_serve::journal::{decode_log, encode_record, Record};
use perpetuum_serve::wire::{Frame, FramePayload};
use perpetuum_serve::{FsyncPolicy, JournalSet, Metrics, SessionStore};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// One generated session lifecycle script.
#[derive(Debug, Clone)]
struct Script {
    /// Per-session initial consumption rates (length = sensor count).
    sessions: Vec<Vec<f64>>,
    /// Telemetry stream: (session index, sensor, new rate or tick).
    batches: Vec<(usize, Option<(usize, f64)>)>,
    /// Delete this session (by index) after the stream, if present.
    delete: Option<usize>,
}

const SENSORS: usize = 4;

fn seed_for(rates: &[f64]) -> ControllerSeed {
    let sensors: Vec<(f64, f64)> =
        (0..SENSORS).map(|i| (30.0 + 40.0 * i as f64, 20.0 + 50.0 * ((i % 2) as f64))).collect();
    ControllerSeed {
        sensors,
        depots: vec![(80.0, 45.0)],
        capacities: vec![1.0; SENSORS],
        initial_rates: rates.to_vec(),
        config: OnlineConfig::new(200.0),
    }
}

fn script_strategy(max_sessions: usize, max_batches: usize) -> impl Strategy<Value = Script> {
    let rates = prop::collection::vec(0.05f64..0.5, SENSORS);
    (
        prop::collection::vec(rates, 1..=max_sessions),
        prop::collection::vec(
            (0usize..max_sessions, prop::option::of((0usize..SENSORS, 0.02f64..0.8))),
            0..max_batches,
        ),
        prop::option::of(0usize..max_sessions),
    )
        .prop_map(|(sessions, mut batches, delete)| {
            let n = sessions.len();
            for (s, _) in &mut batches {
                *s %= n;
            }
            Script { sessions, batches, delete: delete.map(|d| d % n) }
        })
}

fn tmp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "perpetuum-recovery-prop-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &std::path::Path, shards: usize) -> JournalSet {
    JournalSet::open(dir, shards, FsyncPolicy::Never, 0, Arc::new(Metrics::default()))
        .expect("open journal")
}

/// Runs the script the way the daemon's handlers do: id allocated, Create
/// journaled before the session is visible, each accepted batch journaled
/// under the slot lock, End journaled on delete. Returns the live ids in
/// creation order.
fn run_live(script: &Script, store: &SessionStore, journal: &JournalSet) -> Vec<u64> {
    let mut ids = Vec::new();
    for rates in &script.sessions {
        let seed = seed_for(rates);
        let controller = seed.build().expect("valid generated seed");
        let id = store.allocate_id();
        journal.append_create(id, &seed);
        journal.flush().expect("journal flush");
        assert!(store.insert_with_id(id, controller).is_none(), "no eviction in these tests");
        ids.push(id);
    }
    for (i, &(session, update)) in script.batches.iter().enumerate() {
        let id = ids[session];
        let batch = batch_at(i, update);
        let slot = store.get(id).expect("live session");
        let mut guard = slot.lock().expect("not poisoned");
        guard.ingest(&batch).expect("monotone generated stream");
        journal.append_frames(id, vec![Frame::telemetry(id, batch)]);
        journal.flush().expect("journal flush");
    }
    if let Some(d) = script.delete {
        let id = ids[d];
        assert!(store.remove(id), "deleting a live session");
        journal.append_end(id, perpetuum_serve::EndReason::Deleted);
        journal.flush().expect("journal flush");
        ids.retain(|&x| x != id);
    }
    ids
}

/// Batch `i` of the global stream: strictly increasing times keep every
/// per-session stream monotone regardless of interleaving.
fn batch_at(i: usize, update: Option<(usize, f64)>) -> TelemetryBatch {
    let time = 0.5 + i as f64 * 0.5;
    match update {
        Some((sensor, rate)) => TelemetryBatch {
            time,
            records: vec![perpetuum_online::TelemetryRecord::rate(sensor, rate)],
        },
        None => TelemetryBatch::tick(time),
    }
}

/// The per-session plan bytes of every live session, keyed by id.
fn plans(store: &SessionStore, ids: &[u64]) -> BTreeMap<u64, String> {
    ids.iter()
        .map(|&id| {
            let slot = store.get(id).expect("live session");
            let plan = slot.lock().expect("not poisoned").plan_json();
            (id, plan)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole invariant: recovery is indistinguishable from never
    /// having crashed — plan bytes match, ids match, and the *future*
    /// evolves identically (same ingest reports, same next plan).
    #[test]
    fn recovery_reconstructs_the_uninterrupted_run_byte_identically(
        script in script_strategy(3, 8),
    ) {
        let dir = tmp_dir("equiv");
        let store = SessionStore::new(16, 4);
        let journal = open(&dir, 4);
        let ids = run_live(&script, &store, &journal);
        let expected = plans(&store, &ids);
        drop(journal);

        let recovered = SessionStore::new(16, 4);
        let journal = open(&dir, 4);
        let stats = journal.recover(&recovered).expect("recover");
        prop_assert_eq!(stats.sessions, ids.len());
        prop_assert_eq!(stats.skipped, 0);
        prop_assert!(!stats.truncated_tail);
        prop_assert_eq!(&plans(&recovered, &ids), &expected, "plan bytes diverge");
        // Exactly the live sessions came back — a deleted one stays dead.
        prop_assert_eq!(recovered.len(), ids.len());

        // Same future: one more batch produces the same report and the
        // same plan bytes on both sides.
        let next = batch_at(script.batches.len(), Some((0, 0.33)));
        for &id in &ids {
            let a = store.get(id).expect("live");
            let b = recovered.get(id).expect("recovered");
            let ra = a.lock().expect("lock").ingest(&next).expect("ingest");
            let rb = b.lock().expect("lock").ingest(&next).expect("ingest");
            prop_assert_eq!(ra, rb, "ingest reports diverge for session {}", id);
            prop_assert_eq!(
                a.lock().expect("lock").plan_json(),
                b.lock().expect("lock").plan_json(),
                "post-recovery plans diverge for session {}", id
            );
        }
        // Ids are never reused, even across the crash.
        let floor = ids.iter().copied().max().unwrap_or(0);
        prop_assert!(recovered.allocate_id() > floor);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Kill-at-any-byte: truncate the WAL at every offset and recover.
    /// The result must be exactly the replay of the longest complete
    /// record prefix — never a panic, never a half-applied record.
    #[test]
    fn recovery_from_every_truncation_offset_keeps_the_complete_prefix(
        script in script_strategy(2, 4),
    ) {
        // Single shard so the whole journal is one file of known order.
        let dir = tmp_dir("cuts");
        let store = SessionStore::new(16, 1);
        let journal = open(&dir, 1);
        run_live(&script, &store, &journal);
        drop(journal);
        let wal = std::fs::read(dir.join("shard-0.wal")).expect("wal bytes");
        let _ = std::fs::remove_dir_all(&dir);

        // Expected state after each record prefix: replay records 0..k
        // into plain controllers.
        let full = decode_log(&wal);
        prop_assert!(!full.truncated);
        let mut live: BTreeMap<u64, OnlineController> = BTreeMap::new();
        let mut expected: Vec<BTreeMap<u64, String>> = vec![BTreeMap::new()];
        let mut boundaries = vec![0usize];
        for record in &full.records {
            match record {
                Record::Create { id, seed } => {
                    live.insert(*id, seed.build().expect("valid seed"));
                }
                Record::Frames(frames) => {
                    for frame in frames {
                        let c = live.get_mut(&frame.session).expect("create precedes frames");
                        match &frame.payload {
                            FramePayload::Telemetry(batch) => c.ingest(batch).map(|_| ()),
                            FramePayload::Events(batch) => c.ingest_events(batch).map(|_| ()),
                        }
                        .expect("accepted stream replays");
                    }
                }
                Record::End { id, .. } => {
                    live.remove(id);
                }
                // The WAL opens with its generation marker — no session
                // state of its own.
                Record::Epoch { .. } => {}
            }
            expected.push(live.iter().map(|(&id, c)| (id, c.plan_json())).collect());
            boundaries.push(boundaries.last().expect("nonempty") + encode_record(record).len());
        }

        for cut in 0..=wal.len() {
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            let cut_dir = tmp_dir("cut-at");
            std::fs::create_dir_all(&cut_dir).expect("mkdir");
            std::fs::write(cut_dir.join("shard-0.wal"), &wal[..cut]).expect("write cut");
            let journal = open(&cut_dir, 1);
            let recovered = SessionStore::new(16, 1);
            let stats = journal.recover(&recovered).expect("recover never errors on a cut");
            prop_assert_eq!(
                stats.truncated_tail,
                cut != boundaries[complete],
                "cut {} torn-tail flag", cut
            );
            let want = &expected[complete];
            let got: BTreeMap<u64, String> = want
                .keys()
                .map(|&id| {
                    let slot = recovered.get(id).expect("prefix session survives");
                    let plan = slot.lock().expect("lock").plan_json();
                    (id, plan)
                })
                .collect();
            prop_assert_eq!(&got, want, "cut {} state diverges", cut);
            prop_assert_eq!(recovered.len(), want.len(), "cut {} session count", cut);
            let _ = std::fs::remove_dir_all(&cut_dir);
        }
    }
}
