//! Chaos harness: the real `perpetuum-serve` binary, journaling to disk,
//! ingesting through a fault-injecting proxy (drops, truncation, stalls,
//! corruption), then `kill -9`'d mid-flight and restarted on the same
//! `--data-dir`. The restarted daemon must report the recovered sessions
//! in `/metrics` and serve **byte-identical** plans to the pre-kill
//! state — every frame a client saw acknowledged survives the crash.

use perpetuum_serve::chaos::{FaultProxy, FaultRates};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns the daemon binary journaling into `data_dir`, parses its bound
/// address off stdout, and waits until `/healthz` answers.
fn spawn_daemon(data_dir: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_perpetuum-serve"))
        .args(["--addr", "127.0.0.1:0", "--admin-addr", "127.0.0.1:0"])
        .arg("--data-dir")
        .arg(data_dir)
        .args(["--fsync-policy", "batch", "--workers", "2", "--read-timeout-secs", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn perpetuum-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let addr: SocketAddr = loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("daemon stdout");
        assert!(n > 0, "daemon exited before announcing its address");
        if let Some(rest) = line.trim().strip_prefix("perpetuum-serve listening on http://") {
            break rest.parse().expect("parse bound address");
        }
    };
    // Keep draining stdout so the daemon never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    wait_for("daemon /healthz", || {
        request(addr, "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
            .is_some_and(|(status, _)| status == 200)
    });
    Daemon { child, addr }
}

/// One request over a fresh connection; `None` when the socket dies
/// (reset, injected drop, daemon gone) before a parsable response.
fn request(addr: SocketAddr, raw: &str) -> Option<(u16, String)> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).ok()?;
    let mut stream = stream;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    stream.set_write_timeout(Some(Duration::from_secs(5))).ok()?;
    stream.write_all(raw.as_bytes()).ok()?;
    stream.shutdown(Shutdown::Write).ok()?;
    let mut text = String::new();
    stream.read_to_string(&mut text).ok()?;
    let (head, body) = text.split_once("\r\n\r\n")?;
    let status: u16 = head.lines().next()?.split(' ').nth(1)?.parse().ok()?;
    Some((status, body.to_string()))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Option<(u16, String)> {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> Option<(u16, String)> {
    request(addr, &format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n"))
}

fn wait_for(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn scenario_body(seed: u64) -> String {
    format!(
        r#"{{"scenario": {{
            "field_size": 500.0, "n": 12, "q": 2,
            "tau_min": 1.0, "tau_max": 20.0,
            "dist": {{ "Linear": {{ "sigma": 2.0 }} }},
            "horizon": 60.0, "slot": 10.0,
            "variable": false, "deployment": "Uniform"
        }}, "seed": {seed}}}"#
    )
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perpetuum-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Parses one counter value out of a Prometheus text scrape.
fn metric(scrape: &str, name: &str) -> Option<f64> {
    scrape
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
}

#[test]
fn killed_daemon_recovers_every_acknowledged_frame() {
    let data_dir = tmp_dir("kill9");
    let daemon = spawn_daemon(&data_dir);

    // All ingest traffic goes through the fault proxy: some connections
    // are dropped before reaching the daemon, some cut mid-request, some
    // stalled, and some have one request byte flipped.
    let proxy = FaultProxy::start(
        daemon.addr,
        0xC4A0_5EED,
        FaultRates {
            drop: 120,
            truncate: 120,
            corrupt: 150,
            stall: 30,
            stall_for: Duration::from_millis(20),
        },
    )
    .expect("start fault proxy");
    let via_proxy = proxy.addr();

    // Create three sessions through the proxy, retrying the faulted
    // attempts — only a 200 with a session id counts.
    let mut ids: Vec<u64> = Vec::new();
    let mut attempt = 0u64;
    while ids.len() < 3 {
        attempt += 1;
        assert!(attempt < 200, "could not create sessions through the proxy");
        let Some((200, body)) = post(via_proxy, "/session", &scenario_body(40 + ids.len() as u64))
        else {
            continue;
        };
        let id = body
            .split_once("\"session\":")
            .and_then(|(_, r)| r.split(&[',', '}'][..]).next())
            .and_then(|s| s.trim().parse().ok())
            .expect("session id in create body");
        ids.push(id);
    }

    // Hammer telemetry through the proxy. Acknowledged (200) ingests are
    // the ledger the recovered daemon must honour; faulted attempts are
    // free to vanish.
    let mut acked = 0u64;
    for round in 0..25u64 {
        for (k, &id) in ids.iter().enumerate() {
            let time = 0.1 + round as f64 * 0.1;
            let rate = 0.05 + ((round + k as u64) % 7) as f64 * 0.01;
            let body = format!(
                r#"{{"time": {time}, "records": [{{"sensor": {}, "rate": {rate}}}]}}"#,
                (round as usize + k) % 12
            );
            if let Some((200, _)) = post(via_proxy, &format!("/session/{id}/telemetry"), &body) {
                acked += 1;
            }
        }
    }
    assert!(acked > 0, "no telemetry survived the proxy at all");
    let counts = proxy.counts();
    let injected = counts.dropped.load(std::sync::atomic::Ordering::Relaxed)
        + counts.truncated.load(std::sync::atomic::Ordering::Relaxed)
        + counts.corrupted.load(std::sync::atomic::Ordering::Relaxed);
    assert!(injected > 0, "the chaos proxy injected nothing — rates too low?");

    // Pre-kill ground truth, read directly (not through the proxy).
    let pre_kill: Vec<String> = ids
        .iter()
        .map(|id| {
            let (status, body) =
                get(daemon.addr, &format!("/session/{id}/plan")).expect("pre-kill plan read");
            assert_eq!(status, 200, "{body}");
            body
        })
        .collect();

    // SIGKILL: no drain, no fsync, no goodbye. The journal's write-before
    // -ack discipline is all that stands between the acks and the void.
    proxy.shutdown();
    drop(daemon); // Drop sends SIGKILL and reaps

    let daemon = spawn_daemon(&data_dir);
    let (status, scrape) = get(daemon.addr, "/metrics").expect("metrics after restart");
    assert_eq!(status, 200);
    assert_eq!(
        metric(&scrape, "perpetuum_sessions_recovered_total"),
        Some(3.0),
        "recovered-session counter:\n{scrape}"
    );
    assert_eq!(metric(&scrape, "perpetuum_sessions"), Some(3.0), "live gauge:\n{scrape}");
    assert!(
        metric(&scrape, "perpetuum_recovery_seconds_count{phase=\"startup\"}").unwrap_or(0.0)
            >= 1.0,
        "recovery histogram missing:\n{scrape}"
    );

    // Every acknowledged frame survived: plans are byte-identical to the
    // pre-kill reads.
    for (id, expected) in ids.iter().zip(&pre_kill) {
        let (status, body) =
            get(daemon.addr, &format!("/session/{id}/plan")).expect("post-restart plan read");
        assert_eq!(status, 200, "{body}");
        assert_eq!(&body, expected, "session {id} diverged across kill -9");
    }

    // And the recovered sessions are live, not husks: one more ingest
    // lands with a 200.
    for &id in &ids {
        let (status, body) =
            post(daemon.addr, &format!("/session/{id}/telemetry"), r#"{"time": 99.0}"#)
                .expect("post-restart ingest");
        assert_eq!(status, 200, "{body}");
    }
    drop(daemon);
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn clean_drain_then_restart_replays_zero_wal_records() {
    let data_dir = tmp_dir("drain");
    let daemon = spawn_daemon(&data_dir);

    let (status, body) = post(daemon.addr, "/session", &scenario_body(7)).expect("create");
    assert_eq!(status, 200, "{body}");
    let id: u64 = body
        .split_once("\"session\":")
        .and_then(|(_, r)| r.split(&[',', '}'][..]).next())
        .and_then(|s| s.trim().parse().ok())
        .expect("session id");
    for i in 0..5 {
        let (status, _) = post(
            daemon.addr,
            &format!("/session/{id}/telemetry"),
            &format!(r#"{{"time": {}.5}}"#, i),
        )
        .expect("ingest");
        assert_eq!(status, 200);
    }
    let (_, pre) = get(daemon.addr, &format!("/session/{id}/plan")).expect("plan");

    // Graceful shutdown via SIGTERM → drain → journal compaction.
    let pid = daemon.child.id();
    unsafe {
        assert_eq!(libc_kill(pid as i32, 15), 0, "SIGTERM");
    }
    let mut daemon = daemon;
    let exit = daemon.child.wait().expect("daemon exits after SIGTERM");
    assert!(exit.success(), "graceful exit status {exit:?}");

    // After a drain every WAL holds only its epoch marker — the
    // snapshot carries everything else.
    for entry in std::fs::read_dir(&data_dir).expect("data dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "wal") {
            let len = std::fs::metadata(&path).expect("wal metadata").len();
            assert_eq!(
                len,
                perpetuum_serve::journal::EPOCH_RECORD_BYTES as u64,
                "{} not drained to its epoch marker",
                path.display()
            );
        }
    }

    let daemon = spawn_daemon(&data_dir);
    let (status, scrape) = get(daemon.addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    assert_eq!(
        metric(&scrape, "perpetuum_journal_replayed_wal_records_total"),
        Some(0.0),
        "clean restart must replay zero WAL records:\n{scrape}"
    );
    assert_eq!(metric(&scrape, "perpetuum_sessions_recovered_total"), Some(1.0));
    let (status, post_restart) = get(daemon.addr, &format!("/session/{id}/plan")).expect("plan");
    assert_eq!(status, 200);
    assert_eq!(post_restart, pre, "drained state diverged across restart");
    drop(daemon);
    let _ = std::fs::remove_dir_all(&data_dir);
}

extern "C" {
    #[link_name = "kill"]
    fn libc_kill(pid: i32, sig: i32) -> i32;
}
