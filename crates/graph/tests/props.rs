//! Property-based tests for the graph crate.

use perpetuum_geom::hull::hull_perimeter;
use perpetuum_geom::Point2;
use perpetuum_graph::euler::{double_edges, euler_circuit, is_euler_circuit};
use perpetuum_graph::mst::{is_spanning_tree, kruskal, prim, tree_weight};
use perpetuum_graph::one_tree::one_tree_lower_bound;
use perpetuum_graph::tsp_exact::held_karp;
use perpetuum_graph::tsp_heur::{nearest_neighbor, two_opt};
use perpetuum_graph::{DistMatrix, Tour};
use proptest::prelude::*;

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point2::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn euclidean_matrices_are_metric(pts in points(2..24)) {
        let d = DistMatrix::from_points(&pts);
        prop_assert!(d.is_metric(1e-6));
    }

    #[test]
    fn prim_produces_spanning_tree_matching_kruskal(pts in points(2..32)) {
        let n = pts.len();
        let d = DistMatrix::from_points(&pts);
        let p = prim(&d);
        prop_assert!(is_spanning_tree(n, &p));
        let edges: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| (i, j, d.get(i, j)))
            .collect();
        let k = kruskal(n, &edges);
        prop_assert!(is_spanning_tree(n, &k));
        prop_assert!((tree_weight(&d, &p) - tree_weight(&d, &k)).abs() < 1e-6);
    }

    #[test]
    fn doubled_mst_euler_shortcut_within_twice_mst(pts in points(3..28)) {
        // The exact pipeline of Algorithm 2, on a single (un-rooted) tree.
        let n = pts.len();
        let d = DistMatrix::from_points(&pts);
        let mst = prim(&d);
        let w_mst = tree_weight(&d, &mst);
        let doubled = double_edges(&mst);
        let circ = euler_circuit(n, &doubled, 0).expect("doubled tree is Eulerian");
        prop_assert!(is_euler_circuit(&doubled, 0, &circ));
        let tour = Tour::shortcut(&circ);
        prop_assert_eq!(tour.len(), n);
        prop_assert!(tour.length(&d) <= 2.0 * w_mst + 1e-6);
    }

    #[test]
    fn mst_lower_bounds_tsp_optimum(pts in points(3..10)) {
        let d = DistMatrix::from_points(&pts);
        let mst_w = tree_weight(&d, &prim(&d));
        let (_, opt) = held_karp(&d);
        // Removing one edge from the optimal tour yields a spanning tree.
        prop_assert!(mst_w <= opt + 1e-6);
        // And tree doubling caps the approximation at 2x.
        prop_assert!(opt <= 2.0 * mst_w + 1e-6);
    }

    #[test]
    fn two_opt_never_increases_length(pts in points(4..24)) {
        let d = DistMatrix::from_points(&pts);
        let mut t = nearest_neighbor(&d, 0);
        let before = t.length(&d);
        two_opt(&mut t, &d, 50);
        prop_assert!(t.length(&d) <= before + 1e-6);
        // Still a permutation starting at 0.
        prop_assert_eq!(t.start(), Some(0));
        let mut nodes: Vec<usize> = t.nodes().to_vec();
        nodes.sort_unstable();
        prop_assert_eq!(nodes, (0..pts.len()).collect::<Vec<_>>());
    }

    #[test]
    fn shortcut_is_subsequence_of_first_visits(walk in prop::collection::vec(0usize..12, 1..48)) {
        let t = Tour::shortcut(&walk);
        // Every node of the walk appears exactly once.
        let mut expected: Vec<usize> = Vec::new();
        for &v in &walk {
            if !expected.contains(&v) {
                expected.push(v);
            }
        }
        prop_assert_eq!(t.nodes(), &expected[..]);
    }

    #[test]
    fn held_karp_beats_or_matches_nearest_neighbor(pts in points(3..9)) {
        let d = DistMatrix::from_points(&pts);
        let (_, opt) = held_karp(&d);
        let nn = nearest_neighbor(&d, 0).length(&d);
        prop_assert!(opt <= nn + 1e-6);
    }

    #[test]
    fn bound_sandwich_hull_one_tree_optimum(pts in points(4..10)) {
        // hull perimeter ≤ 1-tree bound is NOT generally true; but both
        // lower-bound the optimum, and the optimum lower-bounds any
        // constructed tour.
        let d = DistMatrix::from_points(&pts);
        let (_, opt) = held_karp(&d);
        prop_assert!(hull_perimeter(&pts) <= opt + 1e-6);
        prop_assert!(one_tree_lower_bound(&d) <= opt + 1e-6);
        let nn = nearest_neighbor(&d, 0).length(&d);
        prop_assert!(opt <= nn + 1e-6);
    }

    #[test]
    fn every_constructor_respects_the_one_tree_bound(pts in points(4..24)) {
        let d = DistMatrix::from_points(&pts);
        let lb = one_tree_lower_bound(&d);
        let nn = nearest_neighbor(&d, 0).length(&d);
        let chris = perpetuum_graph::tsp_christofides::christofides(&d, 0).length(&d);
        let customers: Vec<usize> = (1..pts.len()).collect();
        let sav = perpetuum_graph::tsp_savings::savings_tour(&d, 0, &customers).length(&d);
        prop_assert!(nn + 1e-6 >= lb);
        prop_assert!(chris + 1e-6 >= lb);
        prop_assert!(sav + 1e-6 >= lb);
    }
}
