//! Minimum-weight perfect matching heuristics.
//!
//! Needed by the Christofides-style routing variant: after an MST is
//! built, its odd-degree vertices must be matched at minimum weight. An
//! exact solution needs Edmonds' blossom algorithm; this module provides a
//! *greedy + local-improvement* matching instead — simple, `O(m² log m)`,
//! and within a few percent of optimal on Euclidean instances. The
//! consequence (documented in DESIGN.md) is that the 3/2 Christofides
//! guarantee does not formally hold here; the routing still never loses
//! to tree doubling in our ablation because both are polished by the same
//! short-cutting.

use crate::dist::Metric;

/// A perfect matching over an even-sized node set, as `(u, v)` pairs.
pub type Matching = Vec<(usize, usize)>;

/// Greedy minimum-weight perfect matching over `nodes` (must be of even
/// size): repeatedly match the globally closest unmatched pair, then
/// improve with pair swaps until a local optimum.
///
/// # Panics
/// Panics when `nodes.len()` is odd.
pub fn greedy_min_matching<M: Metric>(dist: &M, nodes: &[usize]) -> Matching {
    assert!(nodes.len().is_multiple_of(2), "perfect matching needs an even node count");
    let m = nodes.len();
    if m == 0 {
        return Vec::new();
    }

    // All pairs sorted by weight.
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(m * (m - 1) / 2);
    for a in 0..m {
        for b in (a + 1)..m {
            pairs.push((a, b));
        }
    }
    pairs.sort_by(|&(a1, b1), &(a2, b2)| {
        let w1 = dist.get(nodes[a1], nodes[b1]);
        let w2 = dist.get(nodes[a2], nodes[b2]);
        w1.partial_cmp(&w2).expect("distances must not be NaN")
    });

    let mut used = vec![false; m];
    let mut matching: Vec<(usize, usize)> = Vec::with_capacity(m / 2);
    for (a, b) in pairs {
        if !used[a] && !used[b] {
            used[a] = true;
            used[b] = true;
            matching.push((a, b));
            if matching.len() == m / 2 {
                break;
            }
        }
    }

    improve_matching(dist, nodes, &mut matching);
    matching.into_iter().map(|(a, b)| (nodes[a], nodes[b])).collect()
}

/// 2-swap local search: for every pair of matched edges `(a,b)`, `(c,d)`,
/// try the re-pairings `(a,c)+(b,d)` and `(a,d)+(b,c)`; keep the best.
/// Runs to a local optimum.
fn improve_matching<M: Metric>(dist: &M, nodes: &[usize], matching: &mut [(usize, usize)]) {
    let w = |a: usize, b: usize| dist.get(nodes[a], nodes[b]);
    loop {
        let mut improved = false;
        for i in 0..matching.len() {
            for j in (i + 1)..matching.len() {
                let (a, b) = matching[i];
                let (c, d) = matching[j];
                let cur = w(a, b) + w(c, d);
                let alt1 = w(a, c) + w(b, d);
                let alt2 = w(a, d) + w(b, c);
                if alt1 + 1e-12 < cur && alt1 <= alt2 {
                    matching[i] = (a, c);
                    matching[j] = (b, d);
                    improved = true;
                } else if alt2 + 1e-12 < cur {
                    matching[i] = (a, d);
                    matching[j] = (b, c);
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// Total weight of a matching.
pub fn matching_weight<M: Metric>(dist: &M, matching: &Matching) -> f64 {
    matching.iter().map(|&(u, v)| dist.get(u, v)).sum()
}

/// Exact minimum matching by exhaustive recursion — test oracle, `m ≤ 12`.
pub fn exact_min_matching_weight<M: Metric>(dist: &M, nodes: &[usize]) -> f64 {
    assert!(nodes.len().is_multiple_of(2) && nodes.len() <= 12);
    fn rec<M: Metric>(dist: &M, remaining: &[usize]) -> f64 {
        if remaining.is_empty() {
            return 0.0;
        }
        let first = remaining[0];
        let mut best = f64::INFINITY;
        for &partner in &remaining[1..] {
            let rest: Vec<usize> =
                remaining.iter().copied().filter(|&x| x != first && x != partner).collect();
            let w = dist.get(first, partner) + rec(dist, &rest);
            best = best.min(w);
        }
        best
    }
    rec(dist, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DistMatrix;
    use perpetuum_geom::Point2;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_matching() {
        let d = DistMatrix::zeros(0);
        assert!(greedy_min_matching(&d, &[]).is_empty());
    }

    #[test]
    fn single_pair() {
        let d = DistMatrix::from_points(&[Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)]);
        let m = greedy_min_matching(&d, &[0, 1]);
        assert_eq!(m, vec![(0, 1)]);
        assert_eq!(matching_weight(&d, &m), 1.0);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_count_rejected() {
        let d = DistMatrix::zeros(3);
        greedy_min_matching(&d, &[0, 1, 2]);
    }

    #[test]
    fn matches_each_node_once() {
        let pts: Vec<Point2> = (0..10)
            .map(|i| Point2::new((i * 31 % 13) as f64 * 7.0, (i * 17 % 11) as f64 * 9.0))
            .collect();
        let d = DistMatrix::from_points(&pts);
        let nodes: Vec<usize> = (0..10).collect();
        let m = greedy_min_matching(&d, &nodes);
        assert_eq!(m.len(), 5);
        let mut seen = [false; 10];
        for (u, v) in m {
            assert!(!seen[u] && !seen[v]);
            seen[u] = true;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn near_optimal_on_random_instances() {
        for seed in 0..8u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = 2 * rng.gen_range(2..6);
            let pts: Vec<Point2> = (0..m)
                .map(|_| Point2::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let d = DistMatrix::from_points(&pts);
            let nodes: Vec<usize> = (0..m).collect();
            let greedy = matching_weight(&d, &greedy_min_matching(&d, &nodes));
            let exact = exact_min_matching_weight(&d, &nodes);
            assert!(greedy >= exact - 1e-9, "seed {seed}");
            assert!(greedy <= exact * 1.25 + 1e-9, "seed {seed}: greedy {greedy} vs exact {exact}");
        }
    }

    #[test]
    fn improvement_fixes_crossing_pairs() {
        // Points where pure greedy picks (0,1) first and strands (2,3) far
        // apart; the 2-swap must recover.
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 10.0),
            Point2::new(1.0, 10.0),
        ];
        let d = DistMatrix::from_points(&pts);
        let m = greedy_min_matching(&d, &[0, 1, 2, 3]);
        assert_eq!(matching_weight(&d, &m), 2.0);
    }

    #[test]
    fn subset_matching_uses_host_ids() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(5.0, 5.0), // not in the matching
            Point2::new(1.0, 0.0),
        ];
        let d = DistMatrix::from_points(&pts);
        let m = greedy_min_matching(&d, &[0, 2]);
        assert_eq!(m, vec![(0, 2)]);
    }
}
