//! Distance access without a mandatory dense matrix.
//!
//! The paper's algorithms are written over a metric complete graph, and the
//! seed implementation materialized it as an `n × n` [`DistMatrix`]
//! everywhere. That representation is optimal up to a few thousand nodes
//! and impossible beyond (n = 10,000 ⇒ 800 MB of f64). [`DistSource`] is
//! the switch point: the *same* planning code runs against a dense matrix
//! or against on-demand Euclidean distances computed from point positions,
//! chosen per instance by a size threshold.
//!
//! [`Metric`] is the minimal read-only surface (`len` + `get`) the tour
//! and local-search code needs; it is implemented by both [`DistMatrix`]
//! and [`DistSource`], so algorithm functions stay generic and
//! monomorphize to the exact code the seed had on the dense path.

use crate::matrix::DistMatrix;
use perpetuum_geom::Point2;

/// Read-only access to pairwise distances of a metric graph.
pub trait Metric {
    /// Number of nodes.
    fn len(&self) -> usize;

    /// True when the graph has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distance between nodes `i` and `j`.
    fn get(&self, i: usize, j: usize) -> f64;

    /// Total weight of a walk visiting `nodes` in order (open, no return).
    fn walk_len(&self, nodes: &[usize]) -> f64 {
        nodes.windows(2).map(|w| self.get(w[0], w[1])).sum()
    }

    /// Smallest distance from `i` to any node in `targets`, with the
    /// achieving target. `None` when `targets` is empty. First minimum in
    /// target order wins ties (same rule as `DistMatrix::nearest_of`).
    fn nearest_of(&self, i: usize, targets: &[usize]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for &t in targets {
            let d = self.get(i, t);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((t, d)),
            }
        }
        best
    }
}

impl Metric for DistMatrix {
    #[inline]
    fn len(&self) -> usize {
        DistMatrix::len(self)
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        DistMatrix::get(self, i, j)
    }
}

impl<M: Metric + ?Sized> Metric for &M {
    #[inline]
    fn len(&self) -> usize {
        (**self).len()
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        (**self).get(i, j)
    }
}

/// Where a planner's distances come from: a materialized dense matrix, or
/// point positions queried on demand.
///
/// `Points` computes `points[i].dist(points[j])` per call — O(1) with no
/// O(n²) memory, and *bit-identical* to the values `DistMatrix::from_points`
/// stores (both evaluate the same IEEE expression), so switching sources
/// never changes planner output, only its footprint.
#[derive(Debug, Clone, Copy)]
pub enum DistSource<'a> {
    /// A dense `n × n` matrix (the classic representation).
    Dense(&'a DistMatrix),
    /// On-demand Euclidean distances over node positions.
    Points(&'a [Point2]),
}

impl<'a> DistSource<'a> {
    /// Wraps a dense matrix.
    pub fn dense(dist: &'a DistMatrix) -> Self {
        DistSource::Dense(dist)
    }

    /// Wraps point positions (node id = slice index).
    pub fn points(points: &'a [Point2]) -> Self {
        DistSource::Points(points)
    }

    /// The positions backing this source, when it has them.
    pub fn positions(&self) -> Option<&'a [Point2]> {
        match self {
            DistSource::Dense(_) => None,
            DistSource::Points(p) => Some(p),
        }
    }

    /// True when distances live in a materialized dense matrix.
    pub fn is_dense(&self) -> bool {
        matches!(self, DistSource::Dense(_))
    }
}

impl Metric for DistSource<'_> {
    #[inline]
    fn len(&self) -> usize {
        match self {
            DistSource::Dense(d) => d.len(),
            DistSource::Points(p) => p.len(),
        }
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        match self {
            DistSource::Dense(d) => d.get(i, j),
            DistSource::Points(p) => p[i].dist(p[j]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let i = i as f64;
                Point2::new((i * 37.0) % 101.0, (i * i * 13.0) % 89.0)
            })
            .collect()
    }

    #[test]
    fn sources_agree_bit_for_bit() {
        let pts = cloud(30);
        let dense = DistMatrix::from_points(&pts);
        let a = DistSource::dense(&dense);
        let b = DistSource::points(&pts);
        assert_eq!(Metric::len(&a), Metric::len(&b));
        for i in 0..30 {
            for j in 0..30 {
                // Exact equality on purpose: the two sources must be
                // interchangeable without any tolerance.
                assert_eq!(a.get(i, j), b.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn trait_helpers_match_matrix_inherents() {
        let pts = cloud(12);
        let dense = DistMatrix::from_points(&pts);
        let src = DistSource::points(&pts);
        let walk: Vec<usize> = vec![0, 5, 2, 9, 1];
        assert_eq!(src.walk_len(&walk), dense.walk_len(&walk));
        assert_eq!(Metric::nearest_of(&src, 3, &[7, 1, 11]), dense.nearest_of(3, &[7, 1, 11]));
        assert_eq!(Metric::nearest_of(&src, 0, &[]), None);
    }

    #[test]
    fn accessors() {
        let pts = cloud(4);
        let dense = DistMatrix::from_points(&pts);
        assert!(DistSource::dense(&dense).is_dense());
        assert!(!DistSource::points(&pts).is_dense());
        assert!(DistSource::dense(&dense).positions().is_none());
        assert_eq!(DistSource::points(&pts).positions().unwrap().len(), 4);
    }
}
