//! Minimum spanning trees on dense and sparse graphs.

use crate::dsu::DisjointSets;
use crate::matrix::DistMatrix;

/// An undirected tree edge `(u, v)`.
pub type Edge = (usize, usize);

/// Prim's algorithm on a dense distance matrix, `O(n²)` time and `O(n)`
/// extra space — optimal for the complete metric graphs the schedulers use.
///
/// Returns the `n − 1` edges of an MST over all nodes of `dist` (empty for
/// `n ≤ 1`). Node 0 is the implicit root.
pub fn prim(dist: &DistMatrix) -> Vec<Edge> {
    let n = dist.len();
    if n <= 1 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    // best[v] = cheapest known connection cost of v to the growing tree,
    // via node parent[v].
    let mut best = vec![f64::INFINITY; n];
    let mut parent = vec![usize::MAX; n];
    let mut edges = Vec::with_capacity(n - 1);

    in_tree[0] = true;
    for (v, b) in best.iter_mut().enumerate().skip(1) {
        *b = dist.get(0, v);
        parent[v] = 0;
    }

    for _ in 1..n {
        // Pick the cheapest fringe node.
        let mut u = usize::MAX;
        let mut bu = f64::INFINITY;
        for v in 0..n {
            if !in_tree[v] && best[v] < bu {
                bu = best[v];
                u = v;
            }
        }
        // A complete graph with finite weights always yields a fringe node;
        // guard anyway so non-finite inputs fail loudly.
        assert!(u != usize::MAX, "graph is disconnected or has non-finite weights");
        in_tree[u] = true;
        edges.push((parent[u], u));
        let row = dist.row(u);
        for v in 0..n {
            if !in_tree[v] && row[v] < best[v] {
                best[v] = row[v];
                parent[v] = u;
            }
        }
    }
    edges
}

/// Kruskal's algorithm over an explicit edge list `(u, v, w)` on `n` nodes.
///
/// Returns MST (or minimum spanning forest, if disconnected) edges. Used as
/// a cross-check for [`prim`] and for sparse auxiliary graphs.
pub fn kruskal(n: usize, edges: &[(usize, usize, f64)]) -> Vec<Edge> {
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by(|&a, &b| {
        edges[a].2.partial_cmp(&edges[b].2).expect("edge weights must not be NaN")
    });
    let mut dsu = DisjointSets::new(n);
    let mut out = Vec::with_capacity(n.saturating_sub(1));
    for idx in order {
        let (u, v, _) = edges[idx];
        if dsu.union(u, v) {
            out.push((u, v));
            if out.len() + 1 == n {
                break;
            }
        }
    }
    out
}

/// Total weight of a set of edges under `dist`.
pub fn tree_weight(dist: &DistMatrix, edges: &[Edge]) -> f64 {
    edges.iter().map(|&(u, v)| dist.get(u, v)).sum()
}

/// Checks that `edges` form a spanning tree of the `n`-node graph:
/// exactly `n − 1` edges, no cycles, all nodes connected.
pub fn is_spanning_tree(n: usize, edges: &[Edge]) -> bool {
    if n == 0 {
        return edges.is_empty();
    }
    if edges.len() != n - 1 {
        return false;
    }
    let mut dsu = DisjointSets::new(n);
    for &(u, v) in edges {
        if u >= n || v >= n || !dsu.union(u, v) {
            return false;
        }
    }
    dsu.set_count() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_geom::Point2;

    fn line_points(n: usize) -> Vec<Point2> {
        (0..n).map(|i| Point2::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn prim_on_line_is_chain() {
        let pts = line_points(5);
        let dist = DistMatrix::from_points(&pts);
        let mst = prim(&dist);
        assert!(is_spanning_tree(5, &mst));
        assert_eq!(tree_weight(&dist, &mst), 4.0);
    }

    #[test]
    fn prim_trivial_sizes() {
        assert!(prim(&DistMatrix::zeros(0)).is_empty());
        assert!(prim(&DistMatrix::zeros(1)).is_empty());
        let dist = DistMatrix::from_points(&line_points(2));
        let mst = prim(&dist);
        assert_eq!(mst, vec![(0, 1)]);
    }

    #[test]
    fn prim_matches_kruskal_weight() {
        // A deterministic, irregular point cloud.
        let pts: Vec<Point2> = (0..20)
            .map(|i| {
                let i = i as f64;
                Point2::new((i * 37.0) % 101.0, (i * i * 13.0) % 89.0)
            })
            .collect();
        let dist = DistMatrix::from_points(&pts);
        let p = prim(&dist);
        let edges: Vec<(usize, usize, f64)> = (0..20)
            .flat_map(|i| ((i + 1)..20).map(move |j| (i, j)))
            .map(|(i, j)| (i, j, dist.get(i, j)))
            .collect();
        let k = kruskal(20, &edges);
        assert!(is_spanning_tree(20, &p));
        assert!(is_spanning_tree(20, &k));
        assert!((tree_weight(&dist, &p) - tree_weight(&dist, &k)).abs() < 1e-9);
    }

    #[test]
    fn kruskal_disconnected_gives_forest() {
        // Two components: {0,1} and {2,3}, no cross edges.
        let edges = [(0, 1, 1.0), (2, 3, 2.0)];
        let f = kruskal(4, &edges);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn mst_weight_is_minimal_on_square() {
        // Unit square: MST weight is 3 (three sides), never includes the
        // diagonal.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        let dist = DistMatrix::from_points(&pts);
        let mst = prim(&dist);
        assert!((tree_weight(&dist, &mst) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn is_spanning_tree_rejects_cycles_and_wrong_counts() {
        assert!(!is_spanning_tree(3, &[(0, 1)]));
        assert!(!is_spanning_tree(3, &[(0, 1), (1, 0)]));
        assert!(is_spanning_tree(3, &[(0, 1), (1, 2)]));
        assert!(!is_spanning_tree(4, &[(0, 1), (1, 2), (0, 2)]));
    }
}
