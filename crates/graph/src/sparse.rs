//! Sparse k-NN graphs and near-linear MST construction.
//!
//! Dense Prim is the right tool on a materialized complete graph, but it is
//! Θ(n²) in time and memory. For Euclidean instances the MST is already
//! contained in very sparse proximity subgraphs: the Euclidean MST is a
//! subgraph of the Delaunay triangulation, and in practice a k-nearest-
//! neighbour graph with small k (≈ 8–16) almost always contains it. This
//! module provides:
//!
//! * [`SparseGraph`] — CSR adjacency built from an undirected edge list,
//! * [`knn_edges`] — the symmetric k-NN edge list of a point set, built
//!   with the kd-tree index in `O(n · k · log n)`,
//! * [`prim_sparse`] — binary-heap Prim on a [`SparseGraph`],
//!   `O(m log n)`, reporting disconnection instead of failing silently,
//! * [`mst_knn`] — the escalation driver: try k-NN Prim, double `k` while
//!   the subgraph is disconnected, and fall back to an exact dense MST
//!   only when sparsity genuinely fails (pathological clustered inputs).
//!
//! Determinism: edge lists are sorted, Prim's heap is seeded and popped in
//! a fixed order, and all distance values are the same IEEE expressions
//! the dense path evaluates, so repeated runs produce identical forests.

use crate::matrix::DistMatrix;
use crate::mst::{self, Edge};
use perpetuum_geom::{knn_lists, KdTree, Point2};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// `f64` ordered by `total_cmp` so it can live in a [`BinaryHeap`].
/// Distances are never NaN here; `total_cmp` just keeps `Ord` lawful.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Undirected weighted graph in compressed sparse row form.
///
/// Built once from an edge list; neighbour iteration is a contiguous slice
/// scan, which is what heap-Prim spends its time on.
#[derive(Debug, Clone)]
pub struct SparseGraph {
    n: usize,
    /// `start[u]..start[u + 1]` indexes `u`'s slice of `nbr`/`weight`.
    start: Vec<u32>,
    nbr: Vec<u32>,
    weight: Vec<f64>,
}

impl SparseGraph {
    /// Builds the CSR adjacency of an undirected graph on `n` nodes from
    /// `(u, v, w)` edges. Each input edge is stored in both directions;
    /// duplicate edges are kept (harmless for MST). Panics if an endpoint
    /// is out of range or `u == v`.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut deg = vec![0u32; n + 1];
        for &(u, v, _) in edges {
            assert!(u < n && v < n && u != v, "bad edge ({u}, {v}) for n = {n}");
            deg[u + 1] += 1;
            deg[v + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let start = deg;
        let mut cursor = start.clone();
        let mut nbr = vec![0u32; 2 * edges.len()];
        let mut weight = vec![0.0f64; 2 * edges.len()];
        for &(u, v, w) in edges {
            let cu = cursor[u] as usize;
            nbr[cu] = v as u32;
            weight[cu] = w;
            cursor[u] += 1;
            let cv = cursor[v] as usize;
            nbr[cv] = u as u32;
            weight[cv] = w;
            cursor[v] += 1;
        }
        SparseGraph { n, start, nbr, weight }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of stored undirected edges.
    pub fn edge_count(&self) -> usize {
        self.nbr.len() / 2
    }

    /// `u`'s neighbours with edge weights.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.start[u] as usize;
        let hi = self.start[u + 1] as usize;
        self.nbr[lo..hi].iter().zip(&self.weight[lo..hi]).map(|(&v, &w)| (v as usize, w))
    }
}

/// The symmetric k-nearest-neighbour edge list of `points`, deduplicated
/// to one `(u, v, w)` record per unordered pair with `u < v`, sorted by
/// `(u, v)`. `O(n · k · log n)` via the kd-tree index.
pub fn knn_edges(points: &[Point2], k: usize) -> Vec<(usize, usize, f64)> {
    let tree = KdTree::new(points);
    let lists = knn_lists(&tree, k);
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(points.len() * k);
    for (u, list) in lists.iter().enumerate() {
        for &v in list {
            pairs.push(if u < v { (u, v) } else { (v, u) });
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs.into_iter().map(|(u, v)| (u, v, points[u].dist(points[v]))).collect()
}

/// Prim's algorithm with a binary heap on a sparse graph, rooted at
/// `root`: `O(m log n)`.
///
/// Returns the `n − 1` tree edges as `(parent, child)` pairs in the order
/// nodes were attached, plus the total weight — or `None` when `root`'s
/// component does not span the graph (the caller escalates; see
/// [`mst_knn`]).
pub fn prim_sparse(graph: &SparseGraph, root: usize) -> Option<(Vec<Edge>, f64)> {
    let n = graph.len();
    assert!(root < n, "root {root} out of range for n = {n}");
    if n == 1 {
        return Some((Vec::new(), 0.0));
    }
    let mut in_tree = vec![false; n];
    let mut edges = Vec::with_capacity(n - 1);
    let mut total = 0.0;
    // Lazy-deletion heap of (weight, child, parent); stale entries are
    // skipped on pop. `Reverse` turns the max-heap into a min-heap, and the
    // (child, parent) components break weight ties deterministically.
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32, u32)>> = BinaryHeap::new();
    in_tree[root] = true;
    for (v, w) in graph.neighbors(root) {
        heap.push(Reverse((OrdF64(w), v as u32, root as u32)));
    }
    while let Some(Reverse((OrdF64(w), v, parent))) = heap.pop() {
        let v = v as usize;
        if in_tree[v] {
            continue;
        }
        in_tree[v] = true;
        edges.push((parent as usize, v));
        total += w;
        for (u, wu) in graph.neighbors(v) {
            if !in_tree[u] {
                heap.push(Reverse((OrdF64(wu), u as u32, v as u32)));
            }
        }
    }
    if edges.len() == n - 1 {
        Some((edges, total))
    } else {
        None
    }
}

/// How [`mst_knn`] obtained its spanning tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MstStrategy {
    /// Heap-Prim on the k-NN graph with the recorded final `k`.
    SparseKnn { k: usize },
    /// The k-NN graph stayed disconnected up to `k ≥ n − 1`; an exact
    /// dense Prim ran instead.
    DenseFallback,
}

/// A spanning tree of `points` under Euclidean distance plus the strategy
/// that produced it.
#[derive(Debug, Clone)]
pub struct SparseMst {
    /// `n − 1` edges as `(parent, child)` index pairs.
    pub edges: Vec<Edge>,
    /// Total edge weight.
    pub weight: f64,
    /// Which code path built the tree.
    pub strategy: MstStrategy,
}

/// Minimum spanning tree of `points`, attempted sparsely first.
///
/// Builds the `k0`-NN graph and runs heap-Prim; while the subgraph is
/// disconnected, doubles `k` (each retry still `O(n k log n)`). Only when
/// `k` reaches `n − 1` — i.e. the "sparse" graph would be complete anyway —
/// does it materialize a dense matrix and run exact dense Prim. For
/// uniform and clustered deployments the first attempt virtually always
/// succeeds, giving `O(n log n)` overall.
pub fn mst_knn(points: &[Point2], k0: usize) -> SparseMst {
    let n = points.len();
    assert!(n > 0, "mst_knn on empty point set");
    if n == 1 {
        return SparseMst {
            edges: Vec::new(),
            weight: 0.0,
            strategy: MstStrategy::SparseKnn { k: 0 },
        };
    }
    let mut k = k0.max(1).min(n - 1);
    loop {
        let graph = SparseGraph::from_edges(n, &knn_edges(points, k));
        if let Some((edges, weight)) = prim_sparse(&graph, 0) {
            return SparseMst { edges, weight, strategy: MstStrategy::SparseKnn { k } };
        }
        if k >= n - 1 {
            break;
        }
        k = (k * 2).min(n - 1);
    }
    // k-NN graph disconnected even at k = n − 1 cannot happen for finite
    // points, but the dense path also serves as the belt-and-braces exact
    // route should the index ever under-deliver.
    let dist = DistMatrix::from_points(points);
    let edges = mst::prim(&dist);
    let weight = mst::tree_weight(&dist, &edges);
    SparseMst { edges, weight, strategy: MstStrategy::DenseFallback }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::{is_spanning_tree, prim, tree_weight};

    fn cloud(n: usize, scale: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let i = i as f64;
                Point2::new((i * 71.0 + 13.0) % scale, (i * i * 29.0 + 7.0) % scale)
            })
            .collect()
    }

    #[test]
    fn csr_round_trips_neighbors() {
        let g = SparseGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (0, 3, 3.0)]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 3);
        let mut n1: Vec<_> = g.neighbors(1).collect();
        n1.sort_unstable_by_key(|e| e.0);
        assert_eq!(n1, vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(g.neighbors(3).collect::<Vec<_>>(), vec![(0, 3.0)]);
    }

    #[test]
    fn knn_edges_are_unique_sorted_and_symmetric_enough() {
        let pts = cloud(60, 500.0);
        let edges = knn_edges(&pts, 4);
        for w in edges.windows(2) {
            assert!((w[0].0, w[0].1) < (w[1].0, w[1].1), "unsorted or duplicate");
        }
        for &(u, v, w) in &edges {
            assert!(u < v);
            assert_eq!(w, pts[u].dist(pts[v]));
        }
        // Every node has at least k incident edges' worth of coverage.
        let mut deg = vec![0usize; pts.len()];
        for &(u, v, _) in &edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        assert!(deg.iter().all(|&d| d >= 4));
    }

    #[test]
    fn prim_sparse_matches_dense_weight_on_complete_graph() {
        let pts = cloud(40, 300.0);
        let dist = DistMatrix::from_points(&pts);
        let mut all = Vec::new();
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                all.push((i, j, dist.get(i, j)));
            }
        }
        let g = SparseGraph::from_edges(pts.len(), &all);
        let (edges, total) = prim_sparse(&g, 0).expect("complete graph is connected");
        assert!(is_spanning_tree(pts.len(), &edges));
        let dense = prim(&dist);
        let dense_total = tree_weight(&dist, &dense);
        assert!((total - dense_total).abs() <= 1e-9 * dense_total.max(1.0));
    }

    #[test]
    fn prim_sparse_reports_disconnection() {
        let g = SparseGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(prim_sparse(&g, 0).is_none());
    }

    #[test]
    fn mst_knn_matches_dense_prim() {
        for &n in &[2usize, 7, 40, 150] {
            let pts = cloud(n, 700.0);
            let sparse = mst_knn(&pts, 8);
            assert!(is_spanning_tree(n, &sparse.edges));
            let dist = DistMatrix::from_points(&pts);
            let dense_total = tree_weight(&dist, &prim(&dist));
            assert!(
                (sparse.weight - dense_total).abs() <= 1e-9 * dense_total.max(1.0),
                "n = {n}: sparse {} vs dense {}",
                sparse.weight,
                dense_total
            );
        }
    }

    #[test]
    fn mst_knn_escalates_k_on_clustered_input() {
        // Two far-apart clusters of 12 points each: k = 2 keeps all edges
        // inside a cluster, so the driver must escalate (or fall back) and
        // still return an exact-weight spanning tree.
        let mut pts = Vec::new();
        for i in 0..12 {
            let i = i as f64;
            pts.push(Point2::new(i % 4.0, (i / 4.0).floor()));
        }
        for i in 0..12 {
            let i = i as f64;
            pts.push(Point2::new(1_000.0 + i % 4.0, (i / 4.0).floor()));
        }
        let sparse = mst_knn(&pts, 2);
        assert!(is_spanning_tree(pts.len(), &sparse.edges));
        let dist = DistMatrix::from_points(&pts);
        let dense_total = tree_weight(&dist, &prim(&dist));
        assert!((sparse.weight - dense_total).abs() <= 1e-9 * dense_total);
    }

    #[test]
    fn singleton_point_set() {
        let mst = mst_knn(&[Point2::new(3.0, 4.0)], 8);
        assert!(mst.edges.is_empty());
        assert_eq!(mst.weight, 0.0);
    }
}
