//! TSP construction and improvement heuristics.
//!
//! Algorithm 2 of the paper already carries a 2-approximation guarantee; the
//! local-search operators here (`two_opt`, `or_opt`) are used for the
//! *tour-polish ablation*: how much of the doubling slack a cheap polish
//! recovers in practice. `nearest_neighbor` provides an independent
//! construction baseline for tests.
//!
//! All operators are generic over [`Metric`], so they run identically on a
//! dense [`DistMatrix`](crate::matrix::DistMatrix) or an on-demand
//! [`DistSource`](crate::dist::DistSource). For large instances,
//! [`knn_candidates`] builds spatial-index-backed neighbour lists in
//! `O(n · k · log n)` and [`two_opt_with_candidates`] consumes them —
//! replacing the `O(n² log n)` sort-the-whole-row list construction.

use crate::dist::Metric;
use crate::tour::Tour;
use perpetuum_geom::{knn_lists, KdTree, Point2};

/// Nearest-neighbour tour over all nodes of `dist`, starting at `start`.
pub fn nearest_neighbor<M: Metric>(dist: &M, start: usize) -> Tour {
    let n = dist.len();
    assert!(start < n, "start out of bounds");
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut cur = start;
    visited[cur] = true;
    order.push(cur);
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut bd = f64::INFINITY;
        for (v, &vis) in visited.iter().enumerate() {
            if !vis {
                let d = dist.get(cur, v);
                if d < bd {
                    bd = d;
                    best = v;
                }
            }
        }
        visited[best] = true;
        order.push(best);
        cur = best;
    }
    Tour::new(order)
}

/// 2-opt local search: repeatedly reverses tour segments while that
/// shortens the closed tour, up to `max_rounds` full passes (or until a
/// local optimum). Keeps the first node fixed, so depot-rooted tours stay
/// depot-rooted. Returns the total improvement (≥ 0).
pub fn two_opt<M: Metric>(tour: &mut Tour, dist: &M, max_rounds: usize) -> f64 {
    let n = tour.len();
    if n < 4 {
        return 0.0;
    }
    let mut improvement = 0.0;
    for _ in 0..max_rounds {
        let mut improved = false;
        let nodes = tour.nodes_mut();
        // Consider removing edges (i, i+1) and (j, j+1) and reconnecting as
        // (i, j) + (i+1, j+1), i.e. reversing nodes[i+1..=j].
        for i in 0..n - 2 {
            let a = nodes[i];
            let b = nodes[i + 1];
            let d_ab = dist.get(a, b);
            for j in i + 2..n {
                // Closing edge when j == n-1 wraps to node 0; skip the pair
                // that would disconnect at the fixed start.
                let c = nodes[j];
                let d_node = nodes[(j + 1) % n];
                if i == 0 && j == n - 1 {
                    continue;
                }
                let before = d_ab + dist.get(c, d_node);
                let after = dist.get(a, c) + dist.get(b, d_node);
                if after + 1e-12 < before {
                    nodes[i + 1..=j].reverse();
                    improvement += before - after;
                    improved = true;
                    break; // restart scan from the modified prefix
                }
            }
            if improved {
                break;
            }
        }
        if !improved {
            break;
        }
    }
    improvement
}

/// Or-opt local search: relocates chains of 1–3 consecutive nodes to a
/// better position, up to `max_rounds` passes. The first node stays fixed.
/// Returns the total improvement (≥ 0).
pub fn or_opt<M: Metric>(tour: &mut Tour, dist: &M, max_rounds: usize) -> f64 {
    let n = tour.len();
    if n < 4 {
        return 0.0;
    }
    let mut improvement = 0.0;
    for _ in 0..max_rounds {
        let mut improved = false;
        'outer: for seg_len in 1..=3usize.min(n - 3) {
            let nodes = tour.nodes_mut();
            // Segment nodes[s..s+seg_len], never containing index 0.
            for s in 1..=(n - seg_len) {
                let e = s + seg_len; // exclusive end
                if e > n {
                    break;
                }
                let prev = nodes[s - 1];
                let first = nodes[s];
                let last = nodes[e - 1];
                let next = nodes[e % n];
                let removal_gain =
                    dist.get(prev, first) + dist.get(last, next) - dist.get(prev, next);
                if removal_gain <= 1e-12 {
                    continue;
                }
                // Try inserting between every remaining consecutive pair.
                for t in 0..n {
                    let u = t;
                    let v = (t + 1) % n;
                    // Skip positions inside or adjacent to the segment.
                    if (u >= s - 1 && u < e) || (v >= s && v < e) {
                        continue;
                    }
                    let insert_cost = dist.get(nodes[u], first) + dist.get(last, nodes[v])
                        - dist.get(nodes[u], nodes[v]);
                    if insert_cost + 1e-12 < removal_gain {
                        // Perform the move on a scratch copy (simplest
                        // correct implementation; segments are ≤ 3 nodes).
                        let seg: Vec<usize> = nodes[s..e].to_vec();
                        let mut rest: Vec<usize> = Vec::with_capacity(n);
                        rest.extend_from_slice(&nodes[..s]);
                        rest.extend_from_slice(&nodes[e..]);
                        // Position of u in `rest`.
                        let upos = rest.iter().position(|&x| x == nodes[u]).unwrap();
                        let mut out = Vec::with_capacity(n);
                        out.extend_from_slice(&rest[..=upos]);
                        out.extend_from_slice(&seg);
                        out.extend_from_slice(&rest[upos + 1..]);
                        *nodes = out;
                        improvement += removal_gain - insert_cost;
                        improved = true;
                        break 'outer;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    improvement
}

/// 2-opt restricted to precomputed candidate lists: only reconnections
/// `(a, c)` with `c ∈ candidates[a]` are considered. `candidates` is
/// indexed by *global node id*; ids outside the tour (or outside the slice)
/// are skipped, so one list built for the whole instance serves every
/// per-root tour.
///
/// The first node stays fixed; returns the total improvement (≥ 0).
pub fn two_opt_with_candidates<M: Metric>(
    tour: &mut Tour,
    dist: &M,
    candidates: &[Vec<usize>],
    max_rounds: usize,
) -> f64 {
    let n = tour.len();
    if n < 4 {
        return 0.0;
    }
    let mut improvement = 0.0;
    for _ in 0..max_rounds {
        let mut improved = false;
        // position of each node in the current order.
        let nodes = tour.nodes_mut();
        let max_id = *nodes.iter().max().unwrap() + 1;
        let mut pos = vec![usize::MAX; max_id];
        for (i, &v) in nodes.iter().enumerate() {
            pos[v] = i;
        }
        'scan: for i in 0..n - 2 {
            let a = nodes[i];
            let b = nodes[i + 1];
            let d_ab = dist.get(a, b);
            let list = match candidates.get(a) {
                Some(list) => list,
                None => continue,
            };
            for &c in list {
                // Candidates not on this tour have no position: skip.
                let j = match pos.get(c) {
                    Some(&j) => j,
                    None => continue,
                };
                // Candidate move: reverse nodes[i+1..=j], replacing edges
                // (a,b) and (c,d) with (a,c) and (b,d).
                if j <= i + 1 || j >= n {
                    continue;
                }
                if i == 0 && j == n - 1 {
                    continue; // would disconnect at the fixed start
                }
                let d_node = nodes[(j + 1) % n];
                let before = d_ab + dist.get(c, d_node);
                let after = dist.get(a, c) + dist.get(b, d_node);
                if after + 1e-12 < before {
                    nodes[i + 1..=j].reverse();
                    improvement += before - after;
                    improved = true;
                    break 'scan; // positions are stale; rescan
                }
            }
        }
        if !improved {
            break;
        }
    }
    improvement
}

/// Candidate lists for [`two_opt_with_candidates`] from the kd-tree index:
/// each node in `nodes` gets its `k` nearest other members of `nodes`
/// (by position in `points`, which is indexed by global node id). Runs in
/// `O(n · k · log n)` — the scalable replacement for sorting full distance
/// rows. The returned vector is indexed by global node id.
pub fn knn_candidates(points: &[Point2], nodes: &[usize], k: usize) -> Vec<Vec<usize>> {
    let max_id = match nodes.iter().copied().max() {
        Some(m) => m + 1,
        None => return Vec::new(),
    };
    let pts: Vec<Point2> = nodes.iter().map(|&v| points[v]).collect();
    let tree = KdTree::new(&pts);
    let lists = knn_lists(&tree, k);
    let mut out = vec![Vec::new(); max_id];
    for (i, list) in lists.into_iter().enumerate() {
        out[nodes[i]] = list.into_iter().map(|j| nodes[j]).collect();
    }
    out
}

/// Neighbour-list 2-opt for large instances: instead of scanning all
/// `O(n²)` edge pairs per pass, only consider reconnections `(a, c)` where
/// `c` is one of `a`'s `k` nearest neighbours — the standard scaling
/// technique for Euclidean local search. With `k ≈ 8–16` it finds nearly
/// all of full 2-opt's improvement at a fraction of the cost.
///
/// Builds the lists by sorting distance rows (`O(n² log n)`, works for any
/// [`Metric`]); when point positions are at hand, build the lists with
/// [`knn_candidates`] instead and call [`two_opt_with_candidates`]
/// directly.
///
/// The first node stays fixed; returns the total improvement (≥ 0).
pub fn two_opt_neighbors<M: Metric>(tour: &mut Tour, dist: &M, k: usize, max_rounds: usize) -> f64 {
    let n = tour.len();
    if n < 4 || k == 0 {
        return 0.0;
    }

    // k-nearest neighbour lists over the tour's nodes, indexed by node id.
    let nodes_now: Vec<usize> = tour.nodes().to_vec();
    let k = k.min(n - 1);
    let max_id = *nodes_now.iter().max().unwrap() + 1;
    let mut neighbors = vec![Vec::new(); max_id];
    for &a in &nodes_now {
        let mut others: Vec<usize> = nodes_now.iter().copied().filter(|&b| b != a).collect();
        others.sort_by(|&x, &y| {
            dist.get(a, x).partial_cmp(&dist.get(a, y)).expect("distances are not NaN")
        });
        others.truncate(k);
        neighbors[a] = others;
    }

    two_opt_with_candidates(tour, dist, &neighbors, max_rounds)
}

/// Convenience: 2-opt followed by Or-opt, alternating until neither helps
/// (bounded by `max_rounds` alternations).
pub fn polish<M: Metric>(tour: &mut Tour, dist: &M, max_rounds: usize) -> f64 {
    let mut total = 0.0;
    for _ in 0..max_rounds {
        let gain = two_opt(tour, dist, max_rounds) + or_opt(tour, dist, max_rounds);
        total += gain;
        if gain <= 1e-12 {
            break;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DistMatrix;
    use crate::tsp_exact::held_karp;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect()
    }

    #[test]
    fn nn_visits_everything_once() {
        let d = DistMatrix::from_points(&random_points(30, 1));
        let t = nearest_neighbor(&d, 5);
        assert_eq!(t.start(), Some(5));
        let mut nodes: Vec<usize> = t.nodes().to_vec();
        nodes.sort_unstable();
        assert_eq!(nodes, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn two_opt_never_worsens_and_keeps_start() {
        for seed in 0..4 {
            let d = DistMatrix::from_points(&random_points(25, seed));
            let mut t = nearest_neighbor(&d, 0);
            let before = t.length(&d);
            let gain = two_opt(&mut t, &d, 100);
            let after = t.length(&d);
            assert!(gain >= 0.0);
            assert!((before - after - gain).abs() < 1e-6);
            assert!(after <= before + 1e-9);
            assert_eq!(t.start(), Some(0));
            let mut nodes: Vec<usize> = t.nodes().to_vec();
            nodes.sort_unstable();
            assert_eq!(nodes, (0..25).collect::<Vec<_>>());
        }
    }

    #[test]
    fn or_opt_never_worsens_and_keeps_start() {
        for seed in 4..8 {
            let d = DistMatrix::from_points(&random_points(20, seed));
            let mut t = nearest_neighbor(&d, 0);
            let before = t.length(&d);
            let gain = or_opt(&mut t, &d, 100);
            let after = t.length(&d);
            assert!(gain >= -1e-9);
            assert!((before - after - gain).abs() < 1e-6);
            assert_eq!(t.start(), Some(0));
            let mut nodes: Vec<usize> = t.nodes().to_vec();
            nodes.sort_unstable();
            assert_eq!(nodes, (0..20).collect::<Vec<_>>());
        }
    }

    #[test]
    fn polish_reaches_near_optimal_on_small_instances() {
        for seed in 0..5 {
            let pts = random_points(10, seed + 100);
            let d = DistMatrix::from_points(&pts);
            let (_, opt) = held_karp(&d);
            let mut t = nearest_neighbor(&d, 0);
            polish(&mut t, &d, 1000);
            let len = t.length(&d);
            assert!(len <= opt * 1.15 + 1e-9, "seed {seed}: polish len {len} vs opt {opt}");
        }
    }

    #[test]
    fn neighbor_two_opt_never_worsens_and_preserves_permutation() {
        for seed in 0..4 {
            let d = DistMatrix::from_points(&random_points(60, seed + 30));
            let mut t = nearest_neighbor(&d, 0);
            let before = t.length(&d);
            let gain = two_opt_neighbors(&mut t, &d, 10, 500);
            let after = t.length(&d);
            assert!(gain >= 0.0);
            assert!((before - after - gain).abs() < 1e-6);
            assert_eq!(t.start(), Some(0));
            let mut nodes: Vec<usize> = t.nodes().to_vec();
            nodes.sort_unstable();
            assert_eq!(nodes, (0..60).collect::<Vec<_>>());
        }
    }

    #[test]
    fn neighbor_two_opt_captures_most_of_full_two_opt() {
        let mut full_total = 0.0;
        let mut nl_total = 0.0;
        for seed in 40..46 {
            let d = DistMatrix::from_points(&random_points(80, seed));
            let mut t_full = nearest_neighbor(&d, 0);
            two_opt(&mut t_full, &d, 10_000);
            full_total += t_full.length(&d);
            let mut t_nl = nearest_neighbor(&d, 0);
            two_opt_neighbors(&mut t_nl, &d, 12, 10_000);
            nl_total += t_nl.length(&d);
        }
        // Within 10% of full 2-opt on aggregate.
        assert!(nl_total <= full_total * 1.10, "neighbour-list {nl_total} vs full {full_total}");
    }

    #[test]
    fn neighbor_two_opt_trivial_inputs() {
        let d = DistMatrix::from_points(&random_points(3, 0));
        let mut t = Tour::new(vec![0, 1, 2]);
        assert_eq!(two_opt_neighbors(&mut t, &d, 5, 10), 0.0);
        let d2 = DistMatrix::from_points(&random_points(10, 1));
        let mut t2 = nearest_neighbor(&d2, 0);
        assert_eq!(two_opt_neighbors(&mut t2, &d2, 0, 10), 0.0, "k = 0 is a no-op");
    }

    #[test]
    fn index_backed_candidates_match_row_sorted_quality() {
        // knn_candidates (kd-tree) and the row-sorting construction produce
        // the same neighbour sets up to tie order, so candidate-list 2-opt
        // must land within the same tolerance band from either source.
        let mut row_total = 0.0;
        let mut idx_total = 0.0;
        for seed in 40..46 {
            let pts = random_points(80, seed);
            let d = DistMatrix::from_points(&pts);
            let mut t_row = nearest_neighbor(&d, 0);
            two_opt_neighbors(&mut t_row, &d, 12, 10_000);
            row_total += t_row.length(&d);
            let nodes: Vec<usize> = (0..pts.len()).collect();
            let cands = knn_candidates(&pts, &nodes, 12);
            let mut t_idx = nearest_neighbor(&d, 0);
            two_opt_with_candidates(&mut t_idx, &d, &cands, 10_000);
            idx_total += t_idx.length(&d);
        }
        assert!(
            idx_total <= row_total * 1.05 && row_total <= idx_total * 1.05,
            "index-backed {idx_total} vs row-sorted {row_total}"
        );
    }

    #[test]
    fn candidates_outside_tour_are_skipped() {
        // Candidate lists built over ALL global nodes, tour over a subset:
        // off-tour candidate ids must be ignored, not crash or corrupt.
        let pts = random_points(40, 9);
        let d = DistMatrix::from_points(&pts);
        let all: Vec<usize> = (0..pts.len()).collect();
        let cands = knn_candidates(&pts, &all, 10);
        let subset: Vec<usize> = (0..pts.len()).step_by(3).collect();
        let mut t = Tour::new(subset.clone());
        let before = t.length(&d);
        let gain = two_opt_with_candidates(&mut t, &d, &cands, 1_000);
        let after = t.length(&d);
        assert!(gain >= 0.0);
        assert!((before - after - gain).abs() < 1e-6);
        let mut nodes: Vec<usize> = t.nodes().to_vec();
        nodes.sort_unstable();
        let mut want = subset;
        want.sort_unstable();
        assert_eq!(nodes, want);
    }

    #[test]
    fn two_opt_fixes_crossing() {
        // A deliberately crossed square tour 0-2-1-3 has length 2+2√2;
        // 2-opt must recover the perimeter (4).
        let d = DistMatrix::from_points(&[
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ]);
        let mut t = Tour::new(vec![0, 2, 1, 3]);
        two_opt(&mut t, &d, 10);
        assert!((t.length(&d) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_tours_untouched() {
        let d = DistMatrix::from_points(&random_points(3, 0));
        let mut t = Tour::new(vec![0, 1, 2]);
        assert_eq!(two_opt(&mut t, &d, 10), 0.0);
        assert_eq!(or_opt(&mut t, &d, 10), 0.0);
    }
}
