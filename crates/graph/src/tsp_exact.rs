//! Exact TSP via Held–Karp dynamic programming.
//!
//! Used as the reference optimum in tests and benches that validate the
//! 2-approximation of Algorithm 2 and the lower-bound reasoning of Lemma 3.
//! `O(n² 2ⁿ)` — intended for `n ≤ 20`.

use crate::matrix::DistMatrix;
use crate::tour::Tour;

/// Hard cap on instance size: `2^20` subsets × 20 nodes ≈ 170 MB of `f32`
/// would already hurt; 20 nodes of `f64` is ~168 MB — we cap below that.
pub const HELD_KARP_MAX_NODES: usize = 18;

/// Solves TSP exactly over all nodes of `dist`, returning the optimal
/// closed tour starting at node 0 and its length.
///
/// # Panics
/// Panics when `dist.len() > HELD_KARP_MAX_NODES`.
pub fn held_karp(dist: &DistMatrix) -> (Tour, f64) {
    let n = dist.len();
    assert!(n <= HELD_KARP_MAX_NODES, "Held–Karp limited to {HELD_KARP_MAX_NODES} nodes, got {n}");
    match n {
        0 => return (Tour::new(vec![]), 0.0),
        1 => return (Tour::singleton(0), 0.0),
        2 => return (Tour::new(vec![0, 1]), 2.0 * dist.get(0, 1)),
        _ => {}
    }

    // dp[mask][v]: cheapest path from node 0 visiting exactly the nodes of
    // `mask` (which always contains 0 and v) and ending at v.
    let full: usize = (1 << n) - 1;
    let mut dp = vec![f64::INFINITY; (full + 1) * n];
    let mut parent = vec![usize::MAX; (full + 1) * n];
    dp[n] = 0.0; // mask {0} (= 1 << 0), ending at node 0

    for mask in 1..=full {
        if mask & 1 == 0 {
            continue; // paths always start at node 0
        }
        for last in 0..n {
            if mask & (1 << last) == 0 {
                continue;
            }
            let cur = dp[mask * n + last];
            if !cur.is_finite() {
                continue;
            }
            let row = dist.row(last);
            for nxt in 1..n {
                if mask & (1 << nxt) != 0 {
                    continue;
                }
                let nmask = mask | (1 << nxt);
                let cand = cur + row[nxt];
                if cand < dp[nmask * n + nxt] {
                    dp[nmask * n + nxt] = cand;
                    parent[nmask * n + nxt] = last;
                }
            }
        }
    }

    // Close the tour back to node 0.
    let mut best = f64::INFINITY;
    let mut best_last = usize::MAX;
    for last in 1..n {
        let cand = dp[full * n + last] + dist.get(last, 0);
        if cand < best {
            best = cand;
            best_last = last;
        }
    }

    // Reconstruct.
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    let mut v = best_last;
    while v != usize::MAX && v != 0 {
        order.push(v);
        let p = parent[mask * n + v];
        mask &= !(1 << v);
        v = p;
    }
    order.push(0);
    order.reverse();
    (Tour::new(order), best)
}

/// Brute-force TSP by permutation enumeration (`n ≤ 10`), for testing the
/// Held–Karp implementation itself.
pub fn brute_force(dist: &DistMatrix) -> f64 {
    let n = dist.len();
    assert!(n <= 10, "brute force limited to 10 nodes");
    if n < 2 {
        return 0.0;
    }
    let mut perm: Vec<usize> = (1..n).collect();
    let mut best = f64::INFINITY;
    permute(&mut perm, 0, &mut |p| {
        let mut len = dist.get(0, p[0]);
        for w in p.windows(2) {
            len += dist.get(w[0], w[1]);
        }
        len += dist.get(p[p.len() - 1], 0);
        if len < best {
            best = len;
        }
    });
    best
}

fn permute(arr: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == arr.len() {
        f(arr);
        return;
    }
    for i in k..arr.len() {
        arr.swap(k, i);
        permute(arr, k + 1, f);
        arr.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpetuum_geom::Point2;

    #[test]
    fn trivial_sizes() {
        assert_eq!(held_karp(&DistMatrix::zeros(0)).1, 0.0);
        assert_eq!(held_karp(&DistMatrix::zeros(1)).1, 0.0);
        let d = DistMatrix::from_points(&[Point2::new(0.0, 0.0), Point2::new(3.0, 4.0)]);
        let (t, len) = held_karp(&d);
        assert_eq!(len, 10.0);
        assert_eq!(t.nodes(), &[0, 1]);
    }

    #[test]
    fn square_optimum_is_perimeter() {
        let d = DistMatrix::from_points(&[
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ]);
        let (t, len) = held_karp(&d);
        assert!((len - 4.0).abs() < 1e-12);
        assert!((t.length(&d) - len).abs() < 1e-12);
        assert_eq!(t.start(), Some(0));
    }

    #[test]
    fn matches_brute_force_on_random_clouds() {
        for seed in 0..5u64 {
            let pts: Vec<Point2> = (0..8)
                .map(|i| {
                    let h = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i * 0x12345);
                    Point2::new((h % 1000) as f64, ((h >> 13) % 1000) as f64)
                })
                .collect();
            let d = DistMatrix::from_points(&pts);
            let (t, hk) = held_karp(&d);
            let bf = brute_force(&d);
            assert!((hk - bf).abs() < 1e-9, "seed {seed}: hk={hk} bf={bf}");
            assert!((t.length(&d) - hk).abs() < 1e-9);
            // Tour covers every node exactly once.
            let mut nodes: Vec<usize> = t.nodes().to_vec();
            nodes.sort_unstable();
            assert_eq!(nodes, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn collinear_points_tour_is_twice_span() {
        let pts: Vec<Point2> = (0..6).map(|i| Point2::new(i as f64, 0.0)).collect();
        let d = DistMatrix::from_points(&pts);
        let (_, len) = held_karp(&d);
        assert!((len - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "Held–Karp limited")]
    fn rejects_oversize() {
        held_karp(&DistMatrix::zeros(HELD_KARP_MAX_NODES + 1));
    }
}
