//! Union–find (disjoint set union) with path halving and union by size.

/// A disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl DisjointSets {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "DisjointSets supports up to u32::MAX elements");
        Self { parent: (0..n as u32).collect(), size: vec![1; n], sets: n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of the set containing `x`, with path halving.
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p];
            self.parent[x] = gp;
            x = gp as usize;
        }
    }

    /// Merges the sets containing `a` and `b`. Returns `true` when they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut d = DisjointSets::new(5);
        assert_eq!(d.set_count(), 5);
        assert!(!d.connected(0, 1));
        assert_eq!(d.size_of(3), 1);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut d = DisjointSets::new(4);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert_eq!(d.set_count(), 2);
        assert!(d.union(1, 2));
        assert_eq!(d.set_count(), 1);
        assert!(!d.union(0, 3), "already connected");
        assert!(d.connected(0, 3));
        assert_eq!(d.size_of(0), 4);
    }

    #[test]
    fn find_idempotent() {
        let mut d = DisjointSets::new(8);
        for i in 1..8 {
            d.union(0, i);
        }
        let r = d.find(7);
        assert_eq!(d.find(7), r);
        assert_eq!(d.find(0), r);
    }

    #[test]
    fn transitive_chains() {
        let mut d = DisjointSets::new(100);
        for i in 0..99 {
            d.union(i, i + 1);
        }
        assert_eq!(d.set_count(), 1);
        assert!(d.connected(0, 99));
        assert_eq!(d.size_of(50), 100);
    }

    #[test]
    fn empty_is_fine() {
        let d = DisjointSets::new(0);
        assert!(d.is_empty());
        assert_eq!(d.set_count(), 0);
    }
}
