//! Closed tours and walk short-cutting.

use crate::dist::Metric;
use serde::{Deserialize, Serialize};

/// A closed tour over nodes of a [`Metric`] graph (dense
/// [`DistMatrix`](crate::matrix::DistMatrix) or on-demand
/// [`DistSource`](crate::dist::DistSource)).
///
/// The tour is stored as the visiting order `v_0, v_1, …, v_{m−1}`; the
/// closing edge `v_{m−1} → v_0` is implicit. A tour with zero or one node
/// (e.g. a charger that stays at its depot) has length 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tour {
    nodes: Vec<usize>,
}

impl Tour {
    /// A tour visiting `nodes` in order. Nodes must be distinct (checked in
    /// debug builds only — the schedulers construct tours via
    /// [`Tour::shortcut`], which guarantees it).
    pub fn new(nodes: Vec<usize>) -> Self {
        debug_assert!(
            {
                let mut seen = std::collections::HashSet::new();
                nodes.iter().all(|&v| seen.insert(v))
            },
            "tour nodes must be distinct"
        );
        Self { nodes }
    }

    /// The trivial tour that never leaves `node`.
    pub fn singleton(node: usize) -> Self {
        Self { nodes: vec![node] }
    }

    /// Short-cuts a closed walk (e.g. an Euler circuit of a doubled tree)
    /// into a closed tour visiting each node once, preserving first-visit
    /// order. By the triangle inequality the result is never longer than
    /// the walk.
    ///
    /// The walk may or may not repeat its first node at the end; both forms
    /// are accepted.
    pub fn shortcut(walk: &[usize]) -> Self {
        let mut seen = std::collections::HashSet::with_capacity(walk.len());
        let mut nodes = Vec::with_capacity(walk.len());
        for &v in walk {
            if seen.insert(v) {
                nodes.push(v);
            }
        }
        Self { nodes }
    }

    /// Like [`Tour::shortcut`], but keeps only nodes in `keep` (given as a
    /// membership predicate). Implements the Lemma-3 step "removal of the
    /// nodes not in `R ∪ V_0 ∪ … ∪ V_k` … and performing path short-cutting".
    pub fn shortcut_filtered(walk: &[usize], keep: impl Fn(usize) -> bool) -> Self {
        let mut seen = std::collections::HashSet::with_capacity(walk.len());
        let mut nodes = Vec::with_capacity(walk.len());
        for &v in walk {
            if keep(v) && seen.insert(v) {
                nodes.push(v);
            }
        }
        Self { nodes }
    }

    /// Visiting order (closing edge implicit).
    #[inline]
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// Number of distinct nodes visited.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tour visits nothing at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// First node of the tour (the depot, for charger tours).
    #[inline]
    pub fn start(&self) -> Option<usize> {
        self.nodes.first().copied()
    }

    /// True when the tour visits `node`.
    pub fn contains(&self, node: usize) -> bool {
        self.nodes.contains(&node)
    }

    /// Total length including the closing edge.
    pub fn length<M: Metric>(&self, dist: &M) -> f64 {
        if self.nodes.len() < 2 {
            return 0.0;
        }
        let open: f64 = dist.walk_len(&self.nodes);
        open + dist.get(self.nodes[self.nodes.len() - 1], self.nodes[0])
    }

    /// Rotates the tour so it starts at `node`. No-op when absent.
    pub fn rotate_to(&mut self, node: usize) {
        if let Some(pos) = self.nodes.iter().position(|&v| v == node) {
            self.nodes.rotate_left(pos);
        }
    }

    /// Mutable access for local-search operators.
    pub(crate) fn nodes_mut(&mut self) -> &mut Vec<usize> {
        &mut self.nodes
    }

    /// Consumes the tour, returning the node order.
    pub fn into_nodes(self) -> Vec<usize> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DistMatrix;
    use perpetuum_geom::Point2;

    fn unit_square() -> DistMatrix {
        DistMatrix::from_points(&[
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ])
    }

    #[test]
    fn square_perimeter() {
        let d = unit_square();
        let t = Tour::new(vec![0, 1, 2, 3]);
        assert!((t.length(&d) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_tours() {
        let d = unit_square();
        assert_eq!(Tour::singleton(2).length(&d), 0.0);
        assert_eq!(Tour::new(vec![]).length(&d), 0.0);
        assert_eq!(Tour::new(vec![0, 1]).length(&d), 2.0); // there and back
    }

    #[test]
    fn shortcut_removes_repeats_preserving_first_visits() {
        let t = Tour::shortcut(&[0, 1, 0, 2, 1, 3, 0]);
        assert_eq!(t.nodes(), &[0, 1, 2, 3]);
    }

    #[test]
    fn shortcut_never_longer_than_walk() {
        let d = unit_square();
        let walk = [0, 1, 0, 2, 0, 3, 0];
        let walk_len: f64 = d.walk_len(&walk);
        let t = Tour::shortcut(&walk);
        assert!(t.length(&d) <= walk_len + 1e-12);
    }

    #[test]
    fn shortcut_filtered_drops_nodes() {
        let t = Tour::shortcut_filtered(&[0, 1, 2, 3, 0], |v| v != 2);
        assert_eq!(t.nodes(), &[0, 1, 3]);
    }

    #[test]
    fn rotate_to_reorders_cyclically() {
        let d = unit_square();
        let mut t = Tour::new(vec![0, 1, 2, 3]);
        let before = t.length(&d);
        t.rotate_to(2);
        assert_eq!(t.nodes(), &[2, 3, 0, 1]);
        assert!((t.length(&d) - before).abs() < 1e-12);
        t.rotate_to(99); // absent: unchanged
        assert_eq!(t.nodes(), &[2, 3, 0, 1]);
    }

    #[test]
    fn contains_and_start() {
        let t = Tour::new(vec![4, 7]);
        assert_eq!(t.start(), Some(4));
        assert!(t.contains(7));
        assert!(!t.contains(5));
        assert_eq!(Tour::new(vec![]).start(), None);
    }
}
